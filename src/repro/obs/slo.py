"""Declarative SLOs with multi-window burn-rate alerting.

An :class:`SLOSpec` names one objective over one collector series —
"web latency ≤ 50 ms for 99 % of ticks", "repair backlog = 0 for 95 %
of ticks" — and the :class:`SLOEngine` evaluates every registered spec
incrementally on each completed scrape round (it attaches to
:meth:`~repro.metrics.collector.MetricsCollector.add_scrape_hook`).
Nothing here schedules engine events or draws RNG: the engine is pure
observation over data the collector already stores, so seeded runs are
bit-identical with the SLO engine on or off.

Per spec the engine maintains

* an **attainment ledger** — good/bad scrape ticks after warmup, the
  attainment fraction, and the error-budget spend in seconds (budget =
  ``(1 - target) × observed``, spend = bad seconds);
* two **burn-rate windows** (fast and slow). The burn rate of a window
  is ``bad_fraction / (1 - target)`` where the fraction is taken over
  the window's full span (unobserved ticks count as good — a window
  still filling after warmup under-reports rather than over-reports):
  burn 1.0 spends the budget exactly at the sustainable rate, burn N
  spends it N× too fast;
* a **multi-window alert**: it *fires* when the fast AND slow windows
  both burn at or above ``burn_threshold`` (the slow window proves the
  problem is real, the fast window proves it is still happening) and
  *resolves* once the fast window drops back below the threshold.
  Fired/resolved times are recorded as :class:`SLOAlert` rows — the
  flight recorder's alert timeline.

When given a registry the engine also exports ``slo/*`` gauges
(attainment, both burn rates, firing flag) so SLO health is scrapeable
like any other ``ctrl/*`` self-metric. Exports lag evaluation by one
scrape round: the registry is sampled during the scrape, the hook runs
after it.
"""

from __future__ import annotations

import re
from collections import deque
from dataclasses import dataclass, field

#: SLO names must be single path segments: they are interpolated into
#: ``slo/<name>/<gauge>`` metric names, which the registry lints.
_SLO_NAME_RE = re.compile(r"^[a-z][a-z0-9_]*$")

#: Objective kinds, for labelling/reporting only — evaluation is always
#: "series value vs threshold".
SLO_KINDS = ("latency", "goodput", "lag", "repair_backlog", "custom")


@dataclass(frozen=True)
class SLOSpec:
    """One declarative service-level objective.

    Parameters
    ----------
    name:
        Identifier (``[a-z][a-z0-9_]*``), used in metric names and the
        RunReport.
    series:
        Full collector series name to evaluate (e.g.
        ``app/web/latency``, ``ctrl/sched/latch_active``). Read with
        ``latest()`` only, so change-point-encoded ``ctrl/*`` series
        are legal inputs.
    objective:
        Threshold on the series value.
    comparator:
        ``"le"`` — a tick is good while ``value <= objective`` (latency,
        lag, backlog); ``"ge"`` — good while ``value >= objective``
        (goodput, throughput floors).
    target:
        Required fraction of good ticks in ``[0, 1)``; ``1 - target``
        is the error budget.
    fast_window / slow_window:
        Burn-rate window lengths in seconds, fast < slow.
    burn_threshold:
        Burn rate at which the alert fires (both windows) / resolves
        (fast window).
    warmup:
        Seconds of run start excluded from evaluation (cold-start
        grace, mirroring ``PlatformConfig.plo_warmup``).
    kind:
        Label from :data:`SLO_KINDS`, reporting only.
    description:
        Free-text shown in reports.
    """

    name: str
    series: str
    objective: float
    comparator: str = "le"
    target: float = 0.99
    fast_window: float = 60.0
    slow_window: float = 600.0
    burn_threshold: float = 2.0
    warmup: float = 60.0
    kind: str = "custom"
    description: str = ""

    def __post_init__(self) -> None:
        if not _SLO_NAME_RE.match(self.name):
            raise ValueError(
                f"SLO name {self.name!r} must match {_SLO_NAME_RE.pattern}"
            )
        if self.comparator not in ("le", "ge"):
            raise ValueError("comparator must be 'le' or 'ge'")
        if not 0.0 <= self.target < 1.0:
            raise ValueError("target must be in [0, 1)")
        if not 0.0 < self.fast_window < self.slow_window:
            raise ValueError("need 0 < fast_window < slow_window")
        if self.burn_threshold <= 0:
            raise ValueError("burn_threshold must be positive")
        if self.warmup < 0:
            raise ValueError("warmup must be non-negative")
        if self.kind not in SLO_KINDS:
            raise ValueError(f"kind must be one of {SLO_KINDS}")

    def good(self, value: float) -> bool:
        if self.comparator == "le":
            return value <= self.objective
        return value >= self.objective


@dataclass
class SLOAlert:
    """One firing of an SLO's burn-rate alert."""

    slo: str
    fired_at: float
    resolved_at: float | None = None
    #: Fast/slow burn rates observed at fire time.
    burn_fast: float = 0.0
    burn_slow: float = 0.0

    @property
    def active(self) -> bool:
        return self.resolved_at is None

    def as_dict(self) -> dict:
        return {
            "slo": self.slo,
            "fired_at": self.fired_at,
            "resolved_at": self.resolved_at,
            "burn_fast": self.burn_fast,
            "burn_slow": self.burn_slow,
        }


class _WindowCounter:
    """Rolling count of bad ticks over the last ``span`` seconds.

    The bad fraction is taken over the window's *capacity* (span /
    scrape tick), not over the ticks actually observed: a window that
    has only just started filling — right after warmup, or after a
    scrape blackout — treats the unobserved remainder as good. That is
    the fixed-window burn-rate semantics: one bad tick is one tick's
    worth of budget, never "100 % bad", so a single post-warmup sample
    cannot fire an alert on its own.
    """

    __slots__ = ("span", "capacity", "ticks", "bad")

    def __init__(self, span: float, tick: float):
        self.span = span
        self.capacity = max(1, round(span / tick))
        self.ticks: deque[tuple[float, bool]] = deque()
        self.bad = 0

    def push(self, now: float, is_bad: bool) -> None:
        self.ticks.append((now, is_bad))
        if is_bad:
            self.bad += 1
        cutoff = now - self.span
        while self.ticks and self.ticks[0][0] <= cutoff:
            _, was_bad = self.ticks.popleft()
            if was_bad:
                self.bad -= 1

    def bad_fraction(self) -> float:
        return self.bad / self.capacity


@dataclass
class _SLOState:
    """Mutable evaluation state for one spec."""

    spec: SLOSpec
    tick: float
    good_ticks: int = 0
    bad_ticks: int = 0
    missing_ticks: int = 0
    first_bad_at: float | None = None
    last_value: float | None = None
    fast: _WindowCounter = None  # type: ignore[assignment]
    slow: _WindowCounter = None  # type: ignore[assignment]
    firing: bool = False
    alerts: list[SLOAlert] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.fast = _WindowCounter(self.spec.fast_window, self.tick)
        self.slow = _WindowCounter(self.spec.slow_window, self.tick)

    @property
    def observed_ticks(self) -> int:
        return self.good_ticks + self.bad_ticks

    def attainment(self) -> float:
        total = self.observed_ticks
        return self.good_ticks / total if total else 1.0

    def burn(self, window: _WindowCounter) -> float:
        budget = 1.0 - self.spec.target
        return window.bad_fraction() / budget if budget > 0 else 0.0


class SLOEngine:
    """Incremental SLO evaluator driven by collector scrape rounds.

    Parameters
    ----------
    collector:
        The :class:`~repro.metrics.collector.MetricsCollector` whose
        series are evaluated; the engine reads ``latest()`` only.
    specs:
        The SLOs to track; names must be unique.
    registry:
        Optional :class:`~repro.obs.registry.MetricsRegistry` to export
        ``slo/*`` gauges into (normally the Telemetry registry).
    """

    def __init__(self, collector, specs, *, registry=None):
        self.collector = collector
        self.specs = tuple(specs)
        names = [s.name for s in self.specs]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate SLO names: {names}")
        self.tick = float(collector.scrape_interval)
        self.states: dict[str, _SLOState] = {
            s.name: _SLOState(s, self.tick) for s in self.specs
        }
        self._gauges: dict[str, tuple] = {}
        if registry is not None:
            for spec in self.specs:
                base = f"slo/{spec.name}"
                self._gauges[spec.name] = (
                    registry.gauge(f"{base}/attainment"),
                    registry.gauge(f"{base}/burn_fast"),
                    registry.gauge(f"{base}/burn_slow"),
                    registry.gauge(f"{base}/firing"),
                )
                self._gauges[spec.name][0].set(1.0)

    # -- evaluation (the collector's scrape hook) -----------------------------

    def on_scrape(self, now: float) -> None:
        """Evaluate every spec against the just-completed scrape round."""
        latest = self.collector.latest
        for state in self.states.values():
            spec = state.spec
            if now < spec.warmup:
                continue
            value = latest(spec.series)
            state.last_value = value
            if value is None:
                # No sample yet (series not created, blackout): the tick
                # is unobserved rather than silently good or bad.
                state.missing_ticks += 1
                continue
            bad = not spec.good(value)
            if bad:
                state.bad_ticks += 1
                if state.first_bad_at is None:
                    state.first_bad_at = now
            else:
                state.good_ticks += 1
            state.fast.push(now, bad)
            state.slow.push(now, bad)
            burn_fast = state.burn(state.fast)
            burn_slow = state.burn(state.slow)
            if not state.firing:
                if (
                    burn_fast >= spec.burn_threshold
                    and burn_slow >= spec.burn_threshold
                ):
                    state.firing = True
                    state.alerts.append(SLOAlert(
                        spec.name, now,
                        burn_fast=burn_fast, burn_slow=burn_slow,
                    ))
            elif burn_fast < spec.burn_threshold:
                state.firing = False
                state.alerts[-1].resolved_at = now
            gauges = self._gauges.get(spec.name)
            if gauges is not None:
                gauges[0].set(state.attainment())
                gauges[1].set(burn_fast)
                gauges[2].set(burn_slow)
                gauges[3].set(1.0 if state.firing else 0.0)

    # -- reporting ------------------------------------------------------------

    def alerts(self) -> list[SLOAlert]:
        """Every alert across all SLOs, ordered by fire time."""
        out = [a for s in self.states.values() for a in s.alerts]
        out.sort(key=lambda a: (a.fired_at, a.slo))
        return out

    def summary(self) -> dict[str, dict]:
        """Per-SLO attainment / budget / alert summary (JSON-friendly)."""
        out: dict[str, dict] = {}
        for name, state in self.states.items():
            spec = state.spec
            observed_s = state.observed_ticks * self.tick
            budget_s = (1.0 - spec.target) * observed_s
            spent_s = state.bad_ticks * self.tick
            out[name] = {
                "kind": spec.kind,
                "series": spec.series,
                "objective": spec.objective,
                "comparator": spec.comparator,
                "target": spec.target,
                "description": spec.description,
                "observed_s": observed_s,
                "attainment": state.attainment(),
                "good_ticks": state.good_ticks,
                "bad_ticks": state.bad_ticks,
                "missing_ticks": state.missing_ticks,
                "budget_s": budget_s,
                "budget_spent_s": spent_s,
                "budget_remaining_s": budget_s - spent_s,
                "burn_fast": state.burn(state.fast),
                "burn_slow": state.burn(state.slow),
                "first_bad_at": state.first_bad_at,
                "firing": state.firing,
                "alerts": [a.as_dict() for a in state.alerts],
            }
        return out
