"""Trace exporters: Chrome ``trace_event`` JSON and JSONL.

The Chrome format loads into ``chrome://tracing`` / Perfetto: spans
become complete (``"ph": "X"``) events on per-category tracks, causal
parent links become flow arrows (``"s"``/``"f"`` pairs), and FaultLog
episodes render as a dedicated ``faults`` track so an actuation can be
eyeballed against the outage that delayed it. Timestamps are simulated
seconds scaled to microseconds (the format's native unit).

JSONL is the machine-consumption format: one JSON object per line with a
``type`` discriminator (``span`` | ``provenance`` | ``fault``), which
streams into jq/pandas without loading the whole run.
"""

from __future__ import annotations

import json
from typing import IO

from repro.obs.tracing import Trace

#: Simulated seconds → exported microseconds.
TIME_SCALE = 1e6

#: Stable track (tid) assignment per span category.
_CATEGORY_TRACKS = {
    "metrics": 1,
    "control": 2,
    "actuation": 3,
    "api": 4,
    "ha": 5,
    "sched": 8,
    "dp": 9,
    "store": 10,
}
_FAULT_TRACK = 6
_DEFAULT_TRACK = 7

#: Minimum exported duration (µs) so zero-length sim spans stay visible.
_MIN_DUR_US = 1.0


def _json_safe(value):
    try:
        json.dumps(value)
        return value
    except TypeError:
        return repr(value)


def _span_args(span) -> dict:
    args = {k: _json_safe(v) for k, v in span.args.items()}
    args["span_id"] = span.id
    if span.parent_id is not None:
        args["parent_id"] = span.parent_id
    return args


def to_chrome_trace(trace: Trace, *, fault_log=None) -> dict:
    """Build the ``trace_event`` JSON object for a run."""
    events: list[dict] = []
    end_of_trace = max((s.end for s in trace.spans), default=0.0)
    for span in trace.spans:
        tid = _CATEGORY_TRACKS.get(span.cat, _DEFAULT_TRACK)
        ts = span.start * TIME_SCALE
        events.append({
            "name": span.name,
            "cat": span.cat or "misc",
            "ph": "X",
            "ts": ts,
            "dur": max(span.duration * TIME_SCALE, _MIN_DUR_US),
            "pid": 1,
            "tid": tid,
            "args": _span_args(span),
        })
        if span.parent_id is not None:
            parent = trace.get(span.parent_id)
            if parent is not None:
                # One flow arrow per causal edge, id'd by the child span.
                flow_cat = span.cat or "misc"
                events.append({
                    "name": "link",
                    "cat": flow_cat,
                    "ph": "s",
                    "id": span.id,
                    "ts": parent.start * TIME_SCALE,
                    "pid": 1,
                    "tid": _CATEGORY_TRACKS.get(parent.cat, _DEFAULT_TRACK),
                })
                events.append({
                    "name": "link",
                    "cat": flow_cat,
                    "ph": "f",
                    "bp": "e",
                    "id": span.id,
                    "ts": ts,
                    "pid": 1,
                    "tid": tid,
                })
    if fault_log is not None:
        for episode in fault_log.episodes:
            end = episode.end if episode.end is not None else end_of_trace
            events.append({
                "name": episode.kind,
                "cat": "fault",
                "ph": "X",
                "ts": episode.start * TIME_SCALE,
                "dur": max((end - episode.start) * TIME_SCALE, _MIN_DUR_US),
                "pid": 1,
                "tid": _FAULT_TRACK,
                "args": {
                    "eid": getattr(episode, "eid", -1),
                    "target": episode.target,
                    "detail": episode.detail,
                    "domain": getattr(episode, "domain", ""),
                },
            })
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "metadata": {
            "spans": len(trace.spans),
            "provenance_records": len(trace.provenance),
            "time_unit": "simulated seconds x 1e6",
        },
    }


def write_chrome_trace(trace: Trace, path: str, *, fault_log=None) -> int:
    """Write the Chrome trace file; returns the number of trace events."""
    doc = to_chrome_trace(trace, fault_log=fault_log)
    with open(path, "w") as handle:
        json.dump(doc, handle)
    return len(doc["traceEvents"])


def _write_jsonl(trace: Trace, handle: IO[str], *, fault_log=None) -> int:
    lines = 0
    for span in trace.spans:
        record = span.as_dict()
        record["type"] = "span"
        record["args"] = {k: _json_safe(v) for k, v in record["args"].items()}
        handle.write(json.dumps(record) + "\n")
        lines += 1
    for prov in trace.provenance:
        record = prov.as_dict()
        record["type"] = "provenance"
        record["target"] = _json_safe(record["target"])
        handle.write(json.dumps(record) + "\n")
        lines += 1
    if fault_log is not None:
        for episode in fault_log.episodes:
            handle.write(json.dumps({
                "type": "fault",
                "eid": getattr(episode, "eid", -1),
                "kind": episode.kind,
                "target": episode.target,
                "start": episode.start,
                "end": episode.end,
                "detail": episode.detail,
                "domain": getattr(episode, "domain", ""),
            }) + "\n")
            lines += 1
    return lines


def write_trace_jsonl(trace: Trace, path: str, *, fault_log=None) -> int:
    """Write spans + provenance (+ faults) as JSONL; returns line count."""
    with open(path, "w") as handle:
        return _write_jsonl(trace, handle, fault_log=fault_log)


def filter_trace(
    trace: Trace,
    *,
    name_prefix: str | None = None,
    since: float | None = None,
) -> Trace:
    """Slice a trace down for export: spans whose name starts with
    ``name_prefix`` (when given) and that start at or after ``since``
    (when given).

    Provenance records are kept when their decision span survives the
    filter, so a sliced JSONL stays internally consistent. Parent ids
    are preserved as-is — an ancestor outside the slice simply has no
    matching ``span`` line, which consumers already tolerate (the Chrome
    exporter guards every flow arrow with ``trace.get``).
    """
    spans = trace.spans
    if name_prefix is not None:
        spans = [s for s in spans if s.name.startswith(name_prefix)]
    if since is not None:
        spans = [s for s in spans if s.start >= since]
    kept_ids = {s.id for s in spans}
    out = Trace()
    for span in spans:
        out.add(span)
    out.provenance = [
        p for p in trace.provenance if p.span_id in kept_ids
    ]
    return out
