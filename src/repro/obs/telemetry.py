"""The telemetry facade: one tracer + one registry per run.

Components never construct their own tracing state; the platform builds
a single :class:`Telemetry` when ``PlatformConfig.telemetry`` is set and
hands it to every instrumented component (collector, control-loop
managers, cluster API, statestore, control plane, fault injectors). Each
instrumentation site guards with ``if self.telemetry is not None`` — one
attribute load and a None check — so a disabled run pays effectively
nothing and stays bit-identical to pre-telemetry behaviour.

The standard instrument set lives here so its names are linted in one
place (``python -m repro.obs.registry``).
"""

from __future__ import annotations

from repro.obs.registry import MetricsRegistry
from repro.obs.tracing import Tracer


#: Buckets for scrape→actuation reaction latency (seconds): sub-scrape
#: up to many control periods.
REACTION_BUCKETS = (1.0, 2.5, 5.0, 7.5, 10.0, 12.5, 15.0, 20.0, 30.0, 60.0)

#: Buckets for the pending age of shed pods (seconds): fresh arrivals up
#: to the default starvation timeout and beyond.
SHED_AGE_BUCKETS = (5.0, 15.0, 30.0, 60.0, 120.0, 300.0, 600.0)


class Telemetry:
    """Per-run observability bundle: causal tracer + self-metrics.

    All instruments are pre-registered so the ``ctrl/*`` series exist
    (at zero) from the first scrape, and so the CI name lint can
    enumerate the full standard set without running an experiment.
    """

    def __init__(self, engine):
        self.engine = engine
        self.tracer = Tracer(engine)
        self.registry = MetricsRegistry()
        r = self.registry
        # -- decision pipeline ------------------------------------------------
        self.decisions = r.counter("decisions_total")
        self.actuations = r.counter("actuations_total")
        self.safe_mode_entries = r.counter("safe_mode_entries_total")
        self.breaker_trips = r.counter("breaker_trips_total")
        self.actuation_failures = r.counter("actuation_failures_total")
        self.actuation_retries = r.counter("actuation_retries_total")
        self.reaction_latency = r.histogram(
            "reaction_latency", buckets=REACTION_BUCKETS
        )
        # -- metrics pipeline -------------------------------------------------
        self.scrapes = r.counter("scrapes_total")
        self.scrape_gaps = r.counter("scrape_gaps_total")
        self.samples_distorted = r.counter("samples_distorted_total")
        # -- HA plane ---------------------------------------------------------
        self.wal_appends = r.counter("wal_appends_total")
        self.snapshots = r.counter("snapshots_total")
        self.elections = r.counter("elections_total")
        self.step_downs = r.counter("step_downs_total")
        # -- engine -----------------------------------------------------------
        self.engine_events = r.counter("engine_events_total")
        # -- sched/* : overload-resilience layer ------------------------------
        # Counters the resilience components already maintain are synced
        # at scrape time from attached refs (below); instruments are
        # pre-registered unconditionally so the namespace lint covers
        # them and every series exists (at zero) from the first scrape.
        self.sched_pressure = r.gauge("sched/pressure")
        self.sched_latch = r.gauge("sched/latch_active")
        self.sched_activations = r.counter("sched/shed_activations_total")
        self.sched_shed_total = r.counter("sched/shed_total")
        # Per shed-class counters; dict keyed by the shed-class label
        # ("best-effort" → metric segment best_effort).
        self.sched_shed_class = {
            cls: r.counter(f"sched/shed/{cls.replace('-', '_')}")
            for cls in ("latency", "stream", "batch", "best-effort")
        }
        self.sched_rejected = r.counter("sched/rejected_pending_total")
        self.sched_evicted = r.counter("sched/evicted_running_total")
        self.sched_aged = r.counter("sched/aged_admissions_total")
        self.shed_pending_age = r.histogram(
            "sched/shed_pending_age", buckets=SHED_AGE_BUCKETS
        )
        self.bp_deferrals = r.counter("sched/backpressure/deferrals_total")
        self.bp_coalesced = r.counter("sched/backpressure/coalesced_total")
        self.bp_releases = r.counter("sched/backpressure/releases_total")
        self.bp_dropped = r.counter("sched/backpressure/dropped_total")
        self.bp_queued = r.gauge("sched/backpressure/queued")
        self.brownout_active = r.gauge("sched/brownout/active")
        self.brownout_entries = r.counter("sched/brownout/entries_total")
        self.brownout_exits = r.counter("sched/brownout/exits_total")
        # -- dp/* : data-plane FT engine --------------------------------------
        self.dp_retired = r.counter("dp/retired_work")
        self.dp_reopened = r.counter("dp/reopened_work")
        self.dp_wasted = r.counter("dp/wasted_work")
        self.dp_recomputes = r.counter("dp/lineage_recomputes_total")
        self.dp_executor_losses = r.counter("dp/executor_losses_total")
        self.dp_spec_launched = r.counter("dp/speculative_launched_total")
        self.dp_spec_wins = r.counter("dp/speculative_wins_total")
        self.dp_quarantined = r.gauge("dp/quarantined_stages")
        self.dp_checkpoints = r.counter("dp/stream/checkpoints_total")
        self.dp_restarts = r.counter("dp/stream/restarts_total")
        self.dp_replayed = r.counter("dp/stream/replayed_total")
        self.dp_lag_events = r.gauge("dp/stream/lag_events")
        # -- store/* : object-store repair loop -------------------------------
        self.store_scans = r.counter("store/repair_scans_total")
        self.store_backlog = r.gauge("store/repair_backlog")
        self.store_repaired = r.counter("store/repaired_objects_total")
        self.store_traffic = r.counter("store/repair_traffic_mb")
        self.store_dropped = r.counter("store/replicas_dropped_total")
        self.store_unplaceable = r.counter("store/unplaceable_total")
        # Attached component refs, synced per scrape when present. All
        # default empty/None: a run without the matching subsystem pays
        # only the truth-test per scrape (the overhead gate's scenario
        # enables none of them).
        self._admission = None
        self._managers: list = []
        self._dp_jobs: list = []
        self._dp_streams: list = []
        self._repair = None
        # Previous scrape's full export, for delta suppression (below).
        self._last_export: dict[str, float] | None = None

    @property
    def trace(self):
        return self.tracer.trace

    # -- component attachment (platform wiring) -------------------------------

    def attach_admission(self, admission) -> None:
        """Sync ``sched/*`` admission metrics from this controller."""
        self._admission = admission

    def attach_manager(self, manager) -> None:
        """Sync backpressure/brownout ``sched/*`` metrics from this
        control-loop manager. Attach only managers with at least one of
        the two features armed — unarmed managers have nothing to sync
        and would cost scrape-time work for nothing."""
        self._managers.append(manager)

    def attach_dataplane_job(self, job) -> None:
        """Sync ``dp/*`` task-engine metrics from this FT BigDataJob."""
        self._dp_jobs.append(job)

    def attach_stream(self, stream) -> None:
        """Sync ``dp/stream/*`` metrics from this FT StreamJob."""
        self._dp_streams.append(stream)

    def attach_repair(self, repair) -> None:
        """Sync ``store/*`` metrics from this StorageRepairService."""
        self._repair = repair

    def _sync_components(self) -> None:
        """Pull resilience / data-plane / storage counters into the
        registry. Sync-at-scrape, like ``engine_events``: the components
        maintain these counts anyway, so telemetry reads them instead of
        charging every occurrence an instrument call. Plain attribute
        arithmetic throughout — the overhead gate counts function calls.
        """
        adm = self._admission
        if adm is not None:
            self.sched_pressure.value = adm.last_pressure
            self.sched_latch.value = 1.0 if adm.shedding_active else 0.0
            self.sched_activations.value = float(adm.activations)
            self.sched_shed_total.value = float(adm.shed_total)
            by_class = adm.shed_by_class
            for cls, counter in self.sched_shed_class.items():
                counter.value = float(by_class[cls])
            self.sched_rejected.value = float(adm.rejected_pending)
            self.sched_evicted.value = float(adm.evicted_running)
            self.sched_aged.value = float(adm.aged_admissions)
        if self._managers:
            deferrals = coalesced = releases = dropped = queued = 0
            entries = exits = active = 0
            for manager in self._managers:
                bp = manager.backpressure
                if bp is not None:
                    deferrals += bp.deferrals
                    coalesced += bp.coalesced
                    releases += bp.releases
                    dropped += bp.dropped
                    queued += len(bp.deferred)
                entries += manager.brownout_entries_total
                exits += manager.brownout_exits_total
                active += manager.brownout_active_total
            self.bp_deferrals.value = float(deferrals)
            self.bp_coalesced.value = float(coalesced)
            self.bp_releases.value = float(releases)
            self.bp_dropped.value = float(dropped)
            self.bp_queued.value = float(queued)
            self.brownout_entries.value = float(entries)
            self.brownout_exits.value = float(exits)
            self.brownout_active.value = float(active)
        if self._dp_jobs:
            retired = reopened = wasted = 0.0
            recomputes = losses = launched = wins = quarantined = 0
            for job in self._dp_jobs:
                retired += job.ft_retired_work
                reopened += job.ft_reopened_work
                wasted += job.ft_wasted_work
                recomputes += job.lineage_recomputes
                losses += job.executor_losses
                launched += job.speculative_launched
                wins += job.speculative_wins
                if job.quarantined_stage is not None:
                    quarantined += 1
            self.dp_retired.value = retired
            self.dp_reopened.value = reopened
            self.dp_wasted.value = wasted
            self.dp_recomputes.value = float(recomputes)
            self.dp_executor_losses.value = float(losses)
            self.dp_spec_launched.value = float(launched)
            self.dp_spec_wins.value = float(wins)
            self.dp_quarantined.value = float(quarantined)
        if self._dp_streams:
            checkpoints = restarts = 0
            replayed = lag = 0.0
            for stream in self._dp_streams:
                checkpoints += stream.checkpoints
                restarts += stream.restarts
                replayed += stream.replayed_total
                lag += stream.lag_events
            self.dp_checkpoints.value = float(checkpoints)
            self.dp_restarts.value = float(restarts)
            self.dp_replayed.value = replayed
            self.dp_lag_events.value = lag
        repair = self._repair
        if repair is not None:
            self.store_scans.value = float(repair.scans)
            self.store_backlog.value = float(repair.backlog())
            self.store_repaired.value = float(repair.repaired_objects)
            self.store_traffic.value = repair.repair_traffic_mb
            self.store_dropped.value = float(repair.dropped_replicas)
            self.store_unplaceable.value = float(repair.unplaceable)

    # -- MetricsSource protocol (the collector scrapes the bundle) ------------

    def metric_prefix(self) -> str:
        return self.registry.metric_prefix()

    def sample_metrics(self, now: float) -> dict[str, float]:
        # Counters the simulation already maintains are synced at scrape
        # time rather than incremented per occurrence — observing every
        # engine event from telemetry would cost a call per event.
        self.engine_events.value = float(self.engine.events_executed)
        self._sync_components()
        full = self.registry.sample_metrics(now)
        last = self._last_export
        self._last_export = full
        if last is None:
            # First scrape exports everything so every ctrl/* series
            # exists (at zero) from the start of the run.
            return full
        # Delta suppression: a sample is appended only when the value
        # moved since the previous scrape. Idle instruments (most
        # counters, most of the time) cost nothing per scrape, which is
        # what keeps the enabled-telemetry call overhead inside its
        # budget; ``latest()`` reads are unaffected because step
        # interpolation carries the last value forward.
        #
        # Consumer contract: ctrl/* series are change-point encoded as a
        # result. Only latest()/step-interpolated reads are meaningful;
        # windowed aggregates (mean_over/sum_over/percentile_over) would
        # weight change-points instead of uniform scrape ticks and must
        # not be used on ctrl/* series (see docs/performance.md).
        return {
            k: v for k, v in full.items() if k not in last or last[k] != v
        }
