"""The telemetry facade: one tracer + one registry per run.

Components never construct their own tracing state; the platform builds
a single :class:`Telemetry` when ``PlatformConfig.telemetry`` is set and
hands it to every instrumented component (collector, control-loop
managers, cluster API, statestore, control plane, fault injectors). Each
instrumentation site guards with ``if self.telemetry is not None`` — one
attribute load and a None check — so a disabled run pays effectively
nothing and stays bit-identical to pre-telemetry behaviour.

The standard instrument set lives here so its names are linted in one
place (``python -m repro.obs.registry``).
"""

from __future__ import annotations

from repro.obs.registry import MetricsRegistry
from repro.obs.tracing import Tracer


#: Buckets for scrape→actuation reaction latency (seconds): sub-scrape
#: up to many control periods.
REACTION_BUCKETS = (1.0, 2.5, 5.0, 7.5, 10.0, 12.5, 15.0, 20.0, 30.0, 60.0)


class Telemetry:
    """Per-run observability bundle: causal tracer + self-metrics.

    All instruments are pre-registered so the ``ctrl/*`` series exist
    (at zero) from the first scrape, and so the CI name lint can
    enumerate the full standard set without running an experiment.
    """

    def __init__(self, engine):
        self.engine = engine
        self.tracer = Tracer(engine)
        self.registry = MetricsRegistry()
        r = self.registry
        # -- decision pipeline ------------------------------------------------
        self.decisions = r.counter("decisions_total")
        self.actuations = r.counter("actuations_total")
        self.safe_mode_entries = r.counter("safe_mode_entries_total")
        self.breaker_trips = r.counter("breaker_trips_total")
        self.actuation_failures = r.counter("actuation_failures_total")
        self.actuation_retries = r.counter("actuation_retries_total")
        self.reaction_latency = r.histogram(
            "reaction_latency", buckets=REACTION_BUCKETS
        )
        # -- metrics pipeline -------------------------------------------------
        self.scrapes = r.counter("scrapes_total")
        self.scrape_gaps = r.counter("scrape_gaps_total")
        self.samples_distorted = r.counter("samples_distorted_total")
        # -- HA plane ---------------------------------------------------------
        self.wal_appends = r.counter("wal_appends_total")
        self.snapshots = r.counter("snapshots_total")
        self.elections = r.counter("elections_total")
        self.step_downs = r.counter("step_downs_total")
        # -- engine -----------------------------------------------------------
        self.engine_events = r.counter("engine_events_total")
        # Previous scrape's full export, for delta suppression (below).
        self._last_export: dict[str, float] | None = None

    @property
    def trace(self):
        return self.tracer.trace

    # -- MetricsSource protocol (the collector scrapes the bundle) ------------

    def metric_prefix(self) -> str:
        return self.registry.metric_prefix()

    def sample_metrics(self, now: float) -> dict[str, float]:
        # Counters the simulation already maintains are synced at scrape
        # time rather than incremented per occurrence — observing every
        # engine event from telemetry would cost a call per event.
        self.engine_events.value = float(self.engine.events_executed)
        full = self.registry.sample_metrics(now)
        last = self._last_export
        self._last_export = full
        if last is None:
            # First scrape exports everything so every ctrl/* series
            # exists (at zero) from the start of the run.
            return full
        # Delta suppression: a sample is appended only when the value
        # moved since the previous scrape. Idle instruments (most
        # counters, most of the time) cost nothing per scrape, which is
        # what keeps the enabled-telemetry call overhead inside its
        # budget; ``latest()`` reads are unaffected because step
        # interpolation carries the last value forward.
        #
        # Consumer contract: ctrl/* series are change-point encoded as a
        # result. Only latest()/step-interpolated reads are meaningful;
        # windowed aggregates (mean_over/sum_over/percentile_over) would
        # weight change-points instead of uniform scrape ticks and must
        # not be used on ctrl/* series (see docs/performance.md).
        return {
            k: v for k, v in full.items() if k not in last or last[k] != v
        }
