"""The flight recorder: one ``RunReport`` artifact per run.

Where a ``BENCH_<exp>.json`` answers "how fast", the RunReport answers
"what happened": per-SLO attainment and error-budget burn, the merged
alert timeline (SLO burn-rate alerts interleaved with FaultLog episodes,
attributed to the chaos domain that injected them), the conservation
status of every ledger the resilience and data-plane layers maintain,
and the top-k slowest scrape→actuation critical paths from the causal
trace. It is assembled entirely from state the platform already holds —
building a report never perturbs the run.

Schema (``repro.run_report/v1``)::

    {
      "schema": "repro.run_report/v1",
      "meta":   {seed, duration, scheduler, policy, apps, slo_count},
      "slos":   {<name>: {attainment, budget_*, alerts, ...}},
      "slo_summary": {overall_attainment, total_alerts, unresolved_alerts,
                      total_budget_spent_s},
      "alert_timeline": [{type: "slo"|"fault", name, target, start, end,
                          domain?, burn_fast?, burn_slow?}, ...],
      "ledgers": {admission?, backpressure?, brownout?, dataplane?,
                  streams?, storage?},   # each with an "ok" verdict
      "critical_paths": [{app, latency, actuated_at, path}, ...],
    }

Produced by ``repro report`` and by the benchmark runner (written as
``REPORT_<exp>.json`` next to the bench payload).
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from repro.analysis.traces import top_reaction_paths

#: Schema identifier stamped into every report.
RUN_REPORT_SCHEMA = "repro.run_report/v1"

#: Absolute tolerance (cpu-seconds / events / MB) for float ledgers.
_LEDGER_TOL = 1e-6


@dataclass
class RunReport:
    """One run's observability artifact (see module docstring for the
    schema). ``data`` is the JSON-ready payload."""

    data: dict

    def as_dict(self) -> dict:
        return self.data

    def to_json(self, *, indent: int | None = 2) -> str:
        return json.dumps(self.data, indent=indent)

    # Convenience accessors used by the CLI / benchmark assertions.

    @property
    def slos(self) -> dict:
        return self.data["slos"]

    @property
    def alerts(self) -> list[dict]:
        return [
            e for e in self.data["alert_timeline"] if e["type"] == "slo"
        ]

    @property
    def ledgers(self) -> dict:
        return self.data["ledgers"]

    def overall_attainment(self) -> float:
        return self.data["slo_summary"]["overall_attainment"]

    def ledgers_ok(self) -> bool:
        return all(block["ok"] for block in self.data["ledgers"].values())


def _admission_ledger(admission) -> dict:
    stats = admission.stats()
    # Every shed decision is either a pending-queue rejection or a
    # running-pod eviction — nothing else increments shed_total.
    residual = stats["shed_total"] - (
        stats["rejected_pending"] + stats["evicted_running"]
    )
    stats["conservation"] = "shed_total == rejected_pending + evicted_running"
    stats["residual"] = residual
    stats["ok"] = residual == 0
    return stats


def _backpressure_ledger(managers) -> dict:
    totals = {
        "deferrals": 0, "coalesced": 0, "releases": 0,
        "dropped": 0, "queued": 0,
    }
    for manager in managers:
        bp = manager.backpressure
        if bp is None:
            continue
        stats = bp.stats()
        for key in totals:
            totals[key] += stats[key]
    residual = totals["deferrals"] - (
        totals["coalesced"] + totals["releases"]
        + totals["dropped"] + totals["queued"]
    )
    totals["conservation"] = (
        "deferrals == coalesced + releases + dropped + queued"
    )
    totals["residual"] = residual
    totals["ok"] = residual == 0
    return totals


def _brownout_ledger(managers) -> dict:
    entries = sum(m.brownout_entries_total for m in managers)
    exits = sum(m.brownout_exits_total for m in managers)
    active = sum(m.brownout_active_total for m in managers)
    residual = entries - (exits + active)
    return {
        "entries": entries,
        "exits": exits,
        "active": active,
        "conservation": "entries == exits + active",
        "residual": residual,
        "ok": residual == 0,
    }


def _dataplane_ledger(jobs) -> dict:
    per_job = {}
    ok = True
    for job in jobs:
        acct = job.ft_accounting()
        if acct is None:
            continue
        residual = acct["retired"] - (
            acct["useful"] + acct["spec_inflight"]
            + acct["wasted"] + acct["reopened"]
        )
        job_ok = abs(residual) <= max(_LEDGER_TOL, 1e-6 * acct["retired"])
        ok = ok and job_ok
        per_job[job.name] = {
            **acct, "residual": residual, "ok": job_ok,
            "quarantined_stage": job.quarantined_stage,
        }
    return {
        "conservation": (
            "retired == useful + spec_inflight + wasted + reopened"
        ),
        "jobs": per_job,
        "ok": ok,
    }


def _stream_ledger(streams) -> dict:
    per_stream = {}
    ok = True
    for stream in streams:
        arrived = stream.total_arrived
        processed = stream.total_processed
        lag = stream.lag_events
        replayed = getattr(stream, "replayed_total", 0.0)
        # On rollback ``total_processed`` rewinds to the checkpoint and
        # the replayed events re-enter the lag backlog, so arrivals stay
        # conserved: arrived == processed + lag (the same identity the
        # data-plane invariant audits).
        residual = arrived - (processed + lag)
        stream_ok = abs(residual) <= max(_LEDGER_TOL, 1e-6 * max(arrived, 1.0))
        ok = ok and stream_ok
        per_stream[stream.name] = {
            "arrived": arrived,
            "processed": processed,
            "lag_events": lag,
            "replayed": replayed,
            "checkpoints": getattr(stream, "checkpoints", 0),
            "restarts": getattr(stream, "restarts", 0),
            "residual": residual,
            "ok": stream_ok,
        }
    return {
        "conservation": "arrived == processed + lag",
        "streams": per_stream,
        "ok": ok,
    }


def _storage_ledger(repair) -> dict:
    residual = repair.repaired_mb - repair.repair_traffic_mb
    return {
        "scans": repair.scans,
        "replicas_dropped": repair.dropped_replicas,
        "repaired_objects": repair.repaired_objects,
        "repaired_mb": repair.repaired_mb,
        "repair_traffic_mb": repair.repair_traffic_mb,
        "backlog": repair.backlog(),
        "unplaceable": repair.unplaceable,
        "conservation": "repaired_mb == repair_traffic_mb",
        "residual": residual,
        "ok": abs(residual) <= _LEDGER_TOL,
    }


def _alert_timeline(slo_engine, fault_log) -> list[dict]:
    timeline: list[dict] = []
    if slo_engine is not None:
        for alert in slo_engine.alerts():
            timeline.append({
                "type": "slo",
                "name": alert.slo,
                "target": alert.slo,
                "start": alert.fired_at,
                "end": alert.resolved_at,
                "burn_fast": alert.burn_fast,
                "burn_slow": alert.burn_slow,
            })
    if fault_log is not None:
        for episode in fault_log.episodes:
            timeline.append({
                "type": "fault",
                "name": episode.kind,
                "target": episode.target,
                "start": episode.start,
                "end": episode.end,
                "detail": episode.detail,
                "domain": getattr(episode, "domain", ""),
            })
    timeline.sort(key=lambda e: (e["start"], e["type"], e["name"]))
    return timeline


def build_run_report(platform, *, top_k: int = 5) -> RunReport:
    """Assemble the RunReport from a finished (or running) platform.

    Read-only over platform state; safe to call mid-run, though budget
    numbers then cover only the simulated time so far.
    """
    config = platform.config
    slo_engine = platform.slo_engine
    telemetry = platform.telemetry

    slos = slo_engine.summary() if slo_engine is not None else {}
    total_good = sum(s["good_ticks"] for s in slos.values())
    total_ticks = sum(
        s["good_ticks"] + s["bad_ticks"] for s in slos.values()
    )
    all_alerts = [a for s in slos.values() for a in s["alerts"]]
    slo_summary = {
        "overall_attainment": (
            total_good / total_ticks if total_ticks else 1.0
        ),
        "total_alerts": len(all_alerts),
        "unresolved_alerts": sum(
            1 for a in all_alerts if a["resolved_at"] is None
        ),
        "total_budget_spent_s": sum(
            s["budget_spent_s"] for s in slos.values()
        ),
    }

    ledgers: dict[str, dict] = {}
    admission = getattr(platform, "admission", None)
    if admission is not None:
        ledgers["admission"] = _admission_ledger(admission)
    managers = [
        policy.manager
        for policy in getattr(platform, "replica_policies", [])
        if getattr(policy, "manager", None) is not None
    ]
    if any(m.backpressure is not None for m in managers):
        ledgers["backpressure"] = _backpressure_ledger(managers)
    if any(m.brownout_cfg is not None for m in managers):
        ledgers["brownout"] = _brownout_ledger(managers)
    dp_jobs = [
        app for app in platform.apps.values()
        if getattr(app, "ft", None) is not None
        and hasattr(app, "ft_accounting")
    ]
    if dp_jobs:
        ledgers["dataplane"] = _dataplane_ledger(dp_jobs)
    streams = [
        app for app in platform.apps.values()
        if hasattr(app, "lag_events") and hasattr(app, "total_arrived")
    ]
    if streams:
        ledgers["streams"] = _stream_ledger(streams)
    repair = getattr(platform, "repair", None)
    if repair is not None:
        ledgers["storage"] = _storage_ledger(repair)

    critical_paths: list[dict] = []
    if telemetry is not None:
        critical_paths = top_reaction_paths(telemetry.trace, top_k)

    data = {
        "schema": RUN_REPORT_SCHEMA,
        "meta": {
            "seed": config.seed,
            "duration": platform.engine.now,
            "scheduler": type(platform.scheduler).__name__,
            "policy": platform.policy_name,
            "telemetry": config.telemetry,
            "apps": sorted(platform.apps),
            "slo_count": len(slos),
        },
        "slos": slos,
        "slo_summary": slo_summary,
        "alert_timeline": _alert_timeline(slo_engine, platform.fault_log),
        "ledgers": ledgers,
        "critical_paths": critical_paths,
    }
    return RunReport(data)


def write_run_report(report: RunReport, path: str) -> None:
    """Write the report as pretty-printed JSON."""
    with open(path, "w") as handle:
        handle.write(report.to_json())
        handle.write("\n")
