"""Prometheus-style self-metrics for the control plane.

The controller that scales everyone else's workloads should expose its
own internals the same way: counters (decisions, WAL appends, election
churn), gauges, and fixed-bucket histograms with percentile estimation
by linear interpolation inside the matched bucket — the
``histogram_quantile`` estimator, so p50/p95/p99 are computable from
bucket counts alone without retaining observations.

A :class:`MetricsRegistry` implements the collector's ``MetricsSource``
protocol under the ``ctrl`` prefix, so registering it via
:meth:`~repro.metrics.collector.MetricsCollector.register_internal`
lands every instrument in the ordinary series store (``ctrl/...``),
queryable with the same window/percentile machinery as workload metrics.

Metric names must match ``^[a-z][a-z0-9_/]*$`` (enforced at creation;
``python -m repro.obs.registry`` lints the standard instrument set in
CI).
"""

from __future__ import annotations

import math
import re
from typing import Mapping, Sequence

#: The registry naming law, linted in CI.
NAME_PATTERN = r"^[a-z][a-z0-9_/]*$"
_NAME_RE = re.compile(NAME_PATTERN)

#: Default histogram buckets (seconds), sized for control-plane reaction
#: latencies: one scrape interval up to several control periods.
DEFAULT_BUCKETS = (1.0, 2.5, 5.0, 7.5, 10.0, 15.0, 20.0, 30.0, 60.0, 120.0)


def validate_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise ValueError(
            f"metric name {name!r} does not match {NAME_PATTERN}"
        )
    return name


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount


class Gauge:
    """A value that can go up and down."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """Fixed-bucket histogram with interpolated percentile estimation.

    ``buckets`` are inclusive upper bounds in increasing order; an
    implicit +inf bucket catches the overflow. Observations update only
    bucket counts (O(#buckets) memory regardless of run length).
    """

    __slots__ = ("name", "bounds", "counts", "count", "sum")

    def __init__(self, name: str, buckets: Sequence[float] = DEFAULT_BUCKETS):
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ValueError("need at least one bucket bound")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError("bucket bounds must be strictly increasing")
        if any(not math.isfinite(b) for b in bounds):
            raise ValueError("bucket bounds must be finite")
        self.name = name
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)  # +1 for the +inf bucket
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.sum += value
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.counts[i] += 1
                return
        self.counts[-1] += 1

    @property
    def mean(self) -> float | None:
        return self.sum / self.count if self.count else None

    def quantile(self, q: float) -> float | None:
        """q-th percentile (0–100) by linear interpolation in the bucket.

        The overflow bucket has no upper bound, so a rank landing there
        reports the highest finite bound (the Prometheus convention).
        None when the histogram is empty.
        """
        if not 0 <= q <= 100:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        if self.count == 0:
            return None
        rank = q / 100.0 * self.count
        cumulative = 0
        for i, bucket_count in enumerate(self.counts):
            previous = cumulative
            cumulative += bucket_count
            if cumulative >= rank and bucket_count > 0:
                if i >= len(self.bounds):
                    return self.bounds[-1]
                lower = self.bounds[i - 1] if i > 0 else 0.0
                upper = self.bounds[i]
                fraction = (rank - previous) / bucket_count
                if fraction < 0.0:
                    fraction = 0.0
                elif fraction > 1.0:
                    fraction = 1.0
                return lower + fraction * (upper - lower)
        return self.bounds[-1]  # pragma: no cover - rank <= count always


class MetricsRegistry:
    """Instrument store, scrapeable as a collector source.

    Implements the ``MetricsSource`` protocol: ``metric_prefix()`` is
    ``"ctrl"``, and ``sample_metrics`` flattens every instrument —
    histograms export ``<name>/count``, ``<name>/sum``, and
    interpolated ``<name>/p50|p95|p99``.
    """

    #: Percentiles exported per histogram on every scrape.
    EXPORTED_QUANTILES = (50, 95, 99)

    def __init__(self) -> None:
        self._instruments: dict[str, Counter | Gauge | Histogram] = {}
        # Split by shape at registration so the per-scrape flatten loop
        # needs no isinstance dispatch (it runs every scrape interval
        # for the whole run — the telemetry overhead gate counts every
        # call it makes).
        self._scalars: list[Counter | Gauge] = []
        self._histograms: list[Histogram] = []
        # name -> (count at export time, flattened quantile samples).
        # Quantiles depend only on bucket counts, so while ``count`` is
        # unchanged the cached export is exact.
        self._hist_export: dict[str, tuple[int, dict[str, float]]] = {}

    def _register(self, instrument):
        name = validate_name(instrument.name)
        if name in self._instruments:
            raise ValueError(f"metric {name!r} already registered")
        self._instruments[name] = instrument
        if isinstance(instrument, Histogram):
            self._histograms.append(instrument)
        else:
            self._scalars.append(instrument)
        return instrument

    def counter(self, name: str) -> Counter:
        return self._register(Counter(name))

    def gauge(self, name: str) -> Gauge:
        return self._register(Gauge(name))

    def histogram(
        self, name: str, buckets: Sequence[float] = DEFAULT_BUCKETS
    ) -> Histogram:
        return self._register(Histogram(name, buckets))

    def get(self, name: str):
        return self._instruments.get(name)

    def names(self) -> list[str]:
        return sorted(self._instruments)

    # -- MetricsSource protocol ----------------------------------------------

    def metric_prefix(self) -> str:
        return "ctrl"

    def sample_metrics(self, now: float) -> Mapping[str, float]:
        out: dict[str, float] = {}
        for inst in self._scalars:
            out[inst.name] = inst.value
        cache = self._hist_export
        for inst in self._histograms:
            name = inst.name
            count = inst.count
            out[f"{name}/count"] = count + 0.0
            out[f"{name}/sum"] = inst.sum
            if count:
                if name in cache and cache[name][0] == count:
                    quantiles = cache[name][1]
                else:
                    quantiles = {}
                    for q in self.EXPORTED_QUANTILES:
                        value = inst.quantile(q)
                        if value is not None:
                            quantiles[f"{name}/p{q}"] = value
                    cache[name] = (count, quantiles)
                out.update(quantiles)
        return out


def lint_names(names: Sequence[str]) -> list[str]:
    """Return the names violating :data:`NAME_PATTERN` (empty = clean)."""
    return [n for n in names if not _NAME_RE.match(n)]


#: Namespaces an instrument name may live under. A name with a ``/``
#: declares a namespace in its first segment: ``sched/*`` (admission /
#: backpressure / brownout), ``dp/*`` (data-plane FT engine), ``store/*``
#: (object-store repair), ``slo/*`` (SLO engine exports). Bare names
#: (``decisions_total``) are the legacy control-loop set and need no
#: namespace.
REGISTERED_NAMESPACES = ("sched", "dp", "store", "slo")


def lint_namespaces(names: Sequence[str]) -> list[str]:
    """Return *registered instrument* names under an unknown namespace.

    Applies to registered names only, never to sampled/exported names:
    histogram exports append ``/count``, ``/sum``, ``/p<q>`` segments to
    the instrument name, so a sampled name's first segment is not always
    a namespace (``reaction_latency/count``).
    """
    return [
        n for n in names
        if "/" in n and n.split("/", 1)[0] not in REGISTERED_NAMESPACES
    ]


def _lint_standard_instruments() -> int:  # pragma: no cover - CI entry point
    """CI lint: every standard Telemetry instrument obeys the naming law."""
    from repro.obs.telemetry import Telemetry
    from repro.sim.engine import Engine

    registry = Telemetry(Engine()).registry
    sampled = list(registry.sample_metrics(0.0))
    bad = lint_names(registry.names()) + lint_names(sampled)
    bad_ns = lint_namespaces(registry.names())
    if bad or bad_ns:
        if bad:
            print(f"metric names violating {NAME_PATTERN}: {bad}")
        if bad_ns:
            print(
                "instruments under unregistered namespaces "
                f"(known: {REGISTERED_NAMESPACES}): {bad_ns}"
            )
        return 1
    print(
        f"registry lint OK: {len(registry.names())} instruments, "
        f"{len(sampled)} exported series match {NAME_PATTERN}, "
        f"namespaces within {REGISTERED_NAMESPACES}"
    )
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised in CI
    raise SystemExit(_lint_standard_instruments())
