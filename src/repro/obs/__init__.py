"""Control-plane observability: causal tracing, self-metrics, exporters.

Opt-in via ``PlatformConfig.telemetry``; see ``docs/observability.md``.
"""

from repro.obs.export import (
    to_chrome_trace,
    write_chrome_trace,
    write_trace_jsonl,
)
from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NAME_PATTERN,
    lint_names,
)
from repro.obs.telemetry import Telemetry
from repro.obs.tracing import DecisionProvenance, Span, Trace, Tracer

__all__ = [
    "Counter",
    "DecisionProvenance",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NAME_PATTERN",
    "Span",
    "Telemetry",
    "Trace",
    "Tracer",
    "lint_names",
    "to_chrome_trace",
    "write_chrome_trace",
    "write_trace_jsonl",
]
