"""Control-plane observability: causal tracing, self-metrics, exporters,
declarative SLOs, and the per-run flight recorder.

Opt-in via ``PlatformConfig.telemetry`` (and ``PlatformConfig.slos`` for
the SLO engine); see ``docs/observability.md``.
"""

from repro.obs.export import (
    filter_trace,
    to_chrome_trace,
    write_chrome_trace,
    write_trace_jsonl,
)
from repro.obs.recorder import (
    RUN_REPORT_SCHEMA,
    RunReport,
    build_run_report,
    write_run_report,
)
from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NAME_PATTERN,
    REGISTERED_NAMESPACES,
    lint_names,
    lint_namespaces,
)
from repro.obs.slo import SLOAlert, SLOEngine, SLOSpec
from repro.obs.telemetry import Telemetry
from repro.obs.tracing import DecisionProvenance, Span, Trace, Tracer

__all__ = [
    "Counter",
    "DecisionProvenance",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NAME_PATTERN",
    "REGISTERED_NAMESPACES",
    "RUN_REPORT_SCHEMA",
    "RunReport",
    "SLOAlert",
    "SLOEngine",
    "SLOSpec",
    "Span",
    "Telemetry",
    "Trace",
    "Tracer",
    "build_run_report",
    "filter_trace",
    "lint_names",
    "lint_namespaces",
    "to_chrome_trace",
    "write_chrome_trace",
    "write_run_report",
    "write_trace_jsonl",
]
