"""Causal tracing for the simulated control plane.

A :class:`Trace` is the per-run record of *why* the control plane did
what it did: lightweight :class:`Span` objects with parent/child links
covering the scrape → evaluate → decide → actuate pipeline, plus one
:class:`DecisionProvenance` record per control-loop evaluation.

Spans are timestamped in **simulated seconds** (the engine clock), not
wall time: most spans are instantaneous in sim time (a decision executes
at one engine tick) and the interesting durations live *between* spans —
the scrape that produced a sample happened seconds before the decision
that consumed it. Causality is therefore carried by the parent links,
not by span nesting alone:

* an ``actuate`` span's parent is the ``decide`` span that ordered it
  (even for retries issued many seconds later), and
* a ``decide`` span's parent is the ``scrape`` span that stored the
  newest PLO sample the decision read.

Walking ``actuate → decide → scrape`` parents therefore reconstructs the
end-to-end reaction path of every allocation change; see
:mod:`repro.analysis.traces` for the analysis built on top.

The tracer is **observation-only**: it never schedules engine events and
never draws from an RNG, so enabling it cannot perturb a seeded run.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator, Mapping


class Span:
    """One traced operation, with a causal parent link.

    ``start``/``end`` are simulated seconds; most spans are zero-length
    (one engine tick) and carry their payload in ``args``.
    """

    __slots__ = ("id", "parent_id", "name", "cat", "start", "end", "args")

    def __init__(
        self,
        id: int,
        name: str,
        cat: str,
        start: float,
        *,
        parent_id: int | None = None,
        args: dict | None = None,
    ):
        self.id = id
        self.parent_id = parent_id
        self.name = name
        self.cat = cat
        self.start = start
        self.end = start
        self.args = args if args is not None else {}

    @property
    def duration(self) -> float:
        return self.end - self.start

    def as_dict(self) -> dict:
        """JSON-friendly view (the JSONL exporter writes exactly this)."""
        return {
            "id": self.id,
            "parent": self.parent_id,
            "name": self.name,
            "cat": self.cat,
            "start": self.start,
            "end": self.end,
            "args": dict(self.args),
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Span(#{self.id} {self.name!r} t={self.start:.6g}"
            f" parent={self.parent_id})"
        )


@dataclass(frozen=True)
class DecisionProvenance:
    """Why one control-loop evaluation did what it did.

    One record is emitted per managed application per control period when
    telemetry is enabled — including periods that did *not* actuate, so
    suppressed decisions (deadband, safe mode, open breaker) are just as
    auditable as applied ones.

    ``verdict`` is the pipeline outcome: ``actuated``, ``hold``,
    ``deadband``, ``reclaim-suppressed``, ``stale-skip``,
    ``safe-mode-entry``, ``safe-mode-hold``, ``breaker-skip``, or
    ``flap-breaker``. ``terms`` are the PID's (P, I, D) output
    contributions at this decision. ``scrape_span_id`` / ``span_id`` link
    back into the :class:`Trace`; ``active_faults`` holds the ``eid`` of
    every FaultLog episode active at decision time; ``lease_generation``
    is the HA fencing epoch under which the decision was taken (None for
    a non-replicated control plane).
    """

    app: str
    time: float
    verdict: str
    action: str
    error: float | None
    output: float | None
    gain_scale: float | None
    terms: tuple[float, float, float] | None
    inputs: Mapping[str, float]
    signal_age: float | None
    stale_periods: int
    safe_mode: bool
    deadband: float
    clamped: bool
    weights: Mapping[str, float]
    target: Mapping[str, float] | None
    replicas: int | None
    lease_generation: int | None
    scrape_span_id: int | None
    span_id: int | None
    active_faults: tuple[int, ...]
    tuner_event: str | None

    def as_dict(self) -> dict:
        return {
            "app": self.app,
            "time": self.time,
            "verdict": self.verdict,
            "action": self.action,
            "error": self.error,
            "output": self.output,
            "gain_scale": self.gain_scale,
            "terms": list(self.terms) if self.terms is not None else None,
            "inputs": dict(self.inputs),
            "signal_age": self.signal_age,
            "stale_periods": self.stale_periods,
            "safe_mode": self.safe_mode,
            "deadband": self.deadband,
            "clamped": self.clamped,
            "weights": dict(self.weights),
            "target": dict(self.target) if self.target is not None else None,
            "replicas": self.replicas,
            "lease_generation": self.lease_generation,
            "scrape_span_id": self.scrape_span_id,
            "span_id": self.span_id,
            "active_faults": list(self.active_faults),
            "tuner_event": self.tuner_event,
        }


@dataclass
class Trace:
    """The per-run span store with causal-graph queries."""

    spans: list[Span] = field(default_factory=list)
    provenance: list[DecisionProvenance] = field(default_factory=list)
    _by_id: dict[int, Span] = field(default_factory=dict, repr=False)

    def __len__(self) -> int:
        return len(self.spans)

    def add(self, span: Span) -> None:
        self.spans.append(span)
        self._by_id[span.id] = span

    def get(self, span_id: int) -> Span | None:
        return self._by_id.get(span_id)

    def by_name(self, name: str) -> list[Span]:
        return [s for s in self.spans if s.name == name]

    def children(self, span_id: int) -> list[Span]:
        return [s for s in self.spans if s.parent_id == span_id]

    def parent_chain(self, span: Span) -> list[Span]:
        """``span`` and its ancestors, innermost first, root last."""
        chain = [span]
        seen = {span.id}
        current = span
        while current.parent_id is not None:
            parent = self._by_id.get(current.parent_id)
            if parent is None or parent.id in seen:
                break
            chain.append(parent)
            seen.add(parent.id)
            current = parent
        return chain

    def roots(self) -> list[Span]:
        return [s for s in self.spans if s.parent_id is None]

    def provenance_for(self, app: str) -> list[DecisionProvenance]:
        return [p for p in self.provenance if p.app == app]


class Tracer:
    """Span factory bound to an engine clock, with a context stack.

    The simulation is single-threaded, so a plain stack gives automatic
    parenting: a span begun while another is open becomes its child
    unless an explicit ``parent`` is passed (the cross-event causal links
    — decide→scrape, retry-actuate→decide — are always explicit).
    """

    def __init__(self, engine):
        self.engine = engine
        self.trace = Trace()
        self._stack: list[Span] = []
        self._next_id = 1

    def current_id(self) -> int | None:
        """Id of the innermost open span, or None outside any span."""
        return self._stack[-1].id if self._stack else None

    # begin/instant inline parent resolution, span registration, and the
    # engine-clock read (``_now`` is the attribute behind ``Engine.now``):
    # span creation sits on the telemetry-enabled hot path and the
    # overhead gate counts every function call these methods make.

    def begin(self, name: str, cat: str = "", parent=None, **args) -> Span:
        """Open a span; pair with :meth:`end` (or use :meth:`span`)."""
        if parent is not None:
            parent_id = parent.id if isinstance(parent, Span) else int(parent)
        else:
            stack = self._stack
            parent_id = stack[-1].id if stack else None
        span = Span(
            self._next_id,
            name,
            cat,
            self.engine._now,
            parent_id=parent_id,
            args=args,
        )
        self._next_id += 1
        trace = self.trace
        trace.spans.append(span)
        trace._by_id[span.id] = span
        self._stack.append(span)
        return span

    def end(self, span: Span) -> None:
        span.end = self.engine._now
        if self._stack and self._stack[-1] is span:
            self._stack.pop()
        elif span in self._stack:  # pragma: no cover - defensive
            self._stack.remove(span)

    @contextmanager
    def span(self, name: str, cat: str = "", parent=None, **args) -> Iterator[Span]:
        sp = self.begin(name, cat, parent, **args)
        try:
            yield sp
        finally:
            self.end(sp)

    def instant(self, name: str, cat: str = "", parent=None, **args) -> Span:
        """Record a zero-length marker span (elections, fences, drops)."""
        if parent is not None:
            parent_id = parent.id if isinstance(parent, Span) else int(parent)
        else:
            stack = self._stack
            parent_id = stack[-1].id if stack else None
        span = Span(
            self._next_id,
            name,
            cat,
            self.engine._now,
            parent_id=parent_id,
            args=args,
        )
        self._next_id += 1
        trace = self.trace
        trace.spans.append(span)
        trace._by_id[span.id] = span
        return span
