"""Experiment configuration: cluster shapes and platform knobs."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.cluster.node import Node
from repro.cluster.resources import ResourceVector
from repro.dataplane import DataPlaneConfig
from repro.obs.slo import SLOSpec
from repro.scheduler.admission import OverloadConfig

__all__ = [
    "NodeGroup",
    "ClusterSpec",
    "build_nodes",
    "DataPlaneConfig",
    "OverloadConfig",
    "SLOSpec",
    "PlatformConfig",
]


@dataclass(frozen=True)
class NodeGroup:
    """A homogeneous slice of a heterogeneous cluster.

    EVOLVE's testbed mixes general-purpose workers with accelerated and
    storage-dense nodes; groups express that: each group contributes
    ``count`` nodes of one shape, labelled so selectors/preferences can
    target them (e.g. ``{"accelerator": "fpga"}``).
    """

    name: str
    count: int
    capacity: ResourceVector
    labels: Mapping[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ValueError(f"group {self.name!r}: count must be ≥ 1")
        if self.capacity.any_negative():
            raise ValueError(f"group {self.name!r}: negative capacity")


@dataclass(frozen=True)
class ClusterSpec:
    """Shape of the simulated cluster.

    Defaults approximate a small private-cloud rack: 8 nodes of 16 cores,
    64 GiB, 500 MB/s disk, 1.25 GB/s (10 GbE) network. For heterogeneous
    clusters pass ``groups``, which replaces the homogeneous
    ``node_count`` × ``node_capacity`` shape.
    """

    node_count: int = 8
    node_capacity: ResourceVector = field(
        default_factory=lambda: ResourceVector(
            cpu=16, memory=64, disk_bw=500, net_bw=1250
        )
    )
    system_reserved: ResourceVector = field(
        default_factory=lambda: ResourceVector(cpu=1, memory=2, disk_bw=20, net_bw=50)
    )
    groups: tuple[NodeGroup, ...] = ()
    #: Number of availability zones; nodes are labelled ``zone=z<i>``
    #: round-robin. 1 means a flat (zone-less) cluster.
    zones: int = 1

    def __post_init__(self) -> None:
        if self.node_count < 1:
            raise ValueError("node_count must be ≥ 1")
        if self.zones < 1:
            raise ValueError("zones must be ≥ 1")

    @property
    def total_nodes(self) -> int:
        if self.groups:
            return sum(g.count for g in self.groups)
        return self.node_count


def build_nodes(spec: ClusterSpec, *, name_prefix: str = "node") -> list[Node]:
    """Materialize the spec into node objects."""
    def zone_label(index: int) -> dict[str, str]:
        if spec.zones <= 1:
            return {}
        return {"zone": f"z{index % spec.zones}"}

    if not spec.groups:
        return [
            Node(
                f"{name_prefix}-{i:02d}",
                spec.node_capacity,
                system_reserved=spec.system_reserved,
                labels=zone_label(i),
            )
            for i in range(spec.node_count)
        ]
    nodes: list[Node] = []
    index = 0
    for group in spec.groups:
        for i in range(group.count):
            labels = dict(group.labels)
            labels.update(zone_label(index))
            nodes.append(
                Node(
                    f"{group.name}-{i:02d}",
                    group.capacity,
                    system_reserved=spec.system_reserved,
                    labels=labels,
                )
            )
            index += 1
    return nodes


@dataclass(frozen=True)
class PlatformConfig:
    """Cadences and defaults of the platform's control plane."""

    seed: int = 0
    scrape_interval: float = 5.0
    control_interval: float = 10.0
    schedule_interval: float = 1.0
    plo_eval_interval: float = 5.0
    #: Seconds before PLO violation accounting begins (cold-start grace).
    plo_warmup: float = 60.0
    startup_delay: float = 10.0
    resize_delay: float = 1.0
    min_allocation: ResourceVector = field(
        default_factory=lambda: ResourceVector(
            cpu=0.1, memory=0.25, disk_bw=5, net_bw=5
        )
    )
    max_allocation: ResourceVector = field(
        default_factory=lambda: ResourceVector(
            cpu=8, memory=32, disk_bw=400, net_bw=1000
        )
    )
    # -- control-plane fault tolerance (repro.control.ha) -------------------
    #: Control-loop replicas behind lease-based leader election. 1 keeps
    #: the legacy single-controller path (no plane, bit-identical runs).
    controller_replicas: int = 1
    #: Force the replicated plane even with one replica — the crash-visible
    #: baseline of R-T8 (a sole replica that can die and restart).
    controller_ha: bool = False
    #: Leader lease TTL in seconds; None derives 2 × control_interval.
    lease_ttl: float | None = None
    #: Seconds between controller-state snapshots; None disables them.
    snapshot_interval: float | None = 60.0
    #: Delay before a statestore write is durable (fsync analogue).
    fsync_latency: float = 0.005
    # -- overload resilience (repro.scheduler.admission) ----------------------
    #: Admission control / load shedding, control-loop backpressure, and
    #: brownout degradation. Every feature defaults off, keeping seeded
    #: runs byte-identical to the pre-resilience platform.
    overload: OverloadConfig = field(default_factory=OverloadConfig)
    # -- data-plane fault tolerance (repro.dataplane) --------------------------
    #: Big-data task engine (lineage recompute, speculation, retry
    #: budgets), stream checkpoint/replay, and the object-store repair
    #: loop. Defaults off; disabled runs are bit-identical to the seed.
    data_plane: DataPlaneConfig = field(default_factory=DataPlaneConfig)
    # -- observability (repro.obs) -------------------------------------------
    #: Enable causal decision tracing and the ``ctrl/*`` self-metrics
    #: registry. Observation-only: seeded runs are bit-identical with
    #: telemetry on or off.
    telemetry: bool = False
    #: Declarative SLOs evaluated by :class:`repro.obs.slo.SLOEngine`
    #: after each scrape round. Requires ``telemetry=True`` (the engine
    #: exports ``slo/*`` gauges and the RunReport needs the trace).
    #: Observation-only: seeded runs are bit-identical with SLOs on or
    #: off.
    slos: tuple[SLOSpec, ...] = ()
    # -- correctness harness (repro.verify) ----------------------------------
    #: Attach the cluster-wide invariant checker to the engine's cycle
    #: hook. Observation-only: seeded runs are bit-identical with the
    #: checker on or off; violations are recorded on
    #: ``platform.checker.violations``.
    verify: bool = False
    #: Check every N-th cycle boundary when ``verify`` is set. The
    #: registry's invariants detect *persistent* corruption (a
    #: double-bind or allocation drift stays wrong until released), so a
    #: stride trades detection latency for overhead; the default holds
    #: the checker within a ~5% profiled-call budget on the benchmark
    #: scenarios (tests/verify/test_checker.py gates this). The fuzzer
    #: overrides to 1 on its short episodes.
    verify_every: int = 32

    def __post_init__(self) -> None:
        for name in (
            "scrape_interval",
            "control_interval",
            "schedule_interval",
            "plo_eval_interval",
        ):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        if not self.min_allocation.fits_within(self.max_allocation):
            raise ValueError("min_allocation must fit within max_allocation")
        if self.controller_replicas < 1:
            raise ValueError("controller_replicas must be ≥ 1")
        if self.lease_ttl is not None and self.lease_ttl <= 0:
            raise ValueError("lease_ttl must be positive")
        if self.snapshot_interval is not None and self.snapshot_interval <= 0:
            raise ValueError("snapshot_interval must be positive")
        if self.fsync_latency < 0:
            raise ValueError("fsync_latency must be non-negative")
        if self.verify_every < 1:
            raise ValueError("verify_every must be ≥ 1")
        if self.slos and not self.telemetry:
            raise ValueError("slos require telemetry=True")
