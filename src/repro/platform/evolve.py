"""EvolvePlatform: the end-to-end converged platform.

Typical experiment::

    platform = EvolvePlatform(policy="adaptive", scheduler="converged")
    svc = platform.deploy_microservice(
        "frontend", trace=DiurnalTrace(300, 200), demands=DEMANDS,
        plo=LatencyPLO(0.1), allocation=ResourceVector(cpu=1, memory=1),
    )
    platform.run(6 * 3600)
    result = platform.result()
    print(result.violation_fraction("frontend"), result.utilization.overall_usage)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.analysis.stats import PLOMonitor, UtilizationSummary, utilization_summary
from repro.autoscaler.adaptive import AdaptiveAutoscaler
from repro.cluster.chaos import (
    ActuationFaultInjector,
    ChaosMonkey,
    ControllerCrashDomain,
    DataLossDomain,
    DegradationInjector,
    ExecutorKillDomain,
    FailureInjector,
    FaultDomain,
    FaultLog,
    NodeCrashDomain,
    NodeDegradationDomain,
    PartitionDomain,
    PartitionInjector,
    StragglerDomain,
    ZoneOutageDomain,
)
from repro.cluster.quota import QuotaManager
from repro.autoscaler.registry import (
    PolicyContext,
    build_policy,
    registered_policies,
)
from repro.cluster.api import ClusterAPI
from repro.cluster.cluster import Cluster, ClusterConfig
from repro.cluster.pod import WorkloadClass
from repro.cluster.resources import ResourceVector
from repro.control.ha import ReplicatedControlPlane
from repro.control.multiresource import AllocationBounds
from repro.control.statestore import ControllerStateStore
from repro.metrics.collector import MetricsCollector
from repro.metrics.faults import MetricsFaultInjector
from repro.obs.slo import SLOEngine
from repro.obs.telemetry import Telemetry
from repro.platform.config import ClusterSpec, PlatformConfig, build_nodes
from repro.scheduler.admission import AdmissionController
from repro.scheduler.converged import ConvergedScheduler, SiloedScheduler
from repro.scheduler.kube import KubeScheduler
from repro.sim.engine import Engine
from repro.sim.rng import RngRegistry
from repro.storage.objectstore import ObjectStore
from repro.storage.repair import StorageRepairService
from repro.workloads.base import Application
from repro.workloads.bigdata import BigDataJob, Stage
from repro.workloads.hpc import HPCJob
from repro.workloads.microservice import DemandPhase, Microservice, ServiceDemands
from repro.workloads.plo import DeadlinePLO, LatencyPLO, ThroughputPLO, ViolationTracker
from repro.workloads.traces import LoadTrace

#: Autoscaling policies selectable by name (snapshot of the registry at
#: import time; the platform itself consults the live registry, so
#: policies registered later are selectable even if absent here).
POLICIES = registered_policies()

#: Schedulers selectable by name.
SCHEDULERS = ("kube", "converged", "siloed")


@dataclass
class ExperimentResult:
    """Everything the benchmark harness reads after a run."""

    duration: float
    trackers: dict[str, ViolationTracker]
    utilization: UtilizationSummary
    makespans: dict[str, float | None]
    hpc_waits: dict[str, float | None]
    scale_events: dict[str, int] = field(default_factory=dict)

    def violation_fraction(self, app: str) -> float:
        return self.trackers[app].violation_fraction

    def total_violation_fraction(self) -> float:
        """Observation-weighted violation fraction across tracked apps."""
        total_observed = sum(t.observed_seconds for t in self.trackers.values())
        total_violation = sum(t.violation_seconds for t in self.trackers.values())
        return total_violation / total_observed if total_observed > 0 else 0.0


class EvolvePlatform:
    """The converged platform: construction + deployment verbs + run.

    Parameters
    ----------
    cluster_spec / config:
        Cluster shape and control-plane cadences.
    scheduler:
        ``"kube"``, ``"converged"``, or ``"siloed"`` (the latter requires
        ``silo_pools``).
    policy:
        Autoscaling policy for *managed* microservices: ``"static"``,
        ``"hpa"``, ``"vpa"``, or ``"adaptive"``.
    policy_kwargs:
        Extra keyword arguments forwarded to the policy constructor
        (e.g. ``adaptive=False`` or ``dimensions=("cpu",)`` for ablations).
    """

    def __init__(
        self,
        *,
        cluster_spec: ClusterSpec | None = None,
        config: PlatformConfig | None = None,
        scheduler: str = "converged",
        policy: str = "adaptive",
        policy_kwargs: dict | None = None,
        scheduler_kwargs: dict | None = None,
        silo_pools: dict[WorkloadClass, list[str]] | None = None,
    ):
        self._scheduler_kwargs = dict(scheduler_kwargs or {})
        self.config = config or PlatformConfig()
        self.cluster_spec = cluster_spec or ClusterSpec()
        self.engine = Engine()
        self.rng = RngRegistry(self.config.seed)
        self.store = ObjectStore()
        nodes = build_nodes(self.cluster_spec)
        self.cluster = Cluster(
            self.engine,
            nodes,
            config=ClusterConfig(
                startup_delay=self.config.startup_delay,
                resize_delay=self.config.resize_delay,
            ),
        )
        self.api = ClusterAPI(self.cluster)
        # Shared fault bookkeeping: every injector logs episodes here so
        # repro.analysis.recovery can compute MTTR across fault classes.
        self.fault_log = FaultLog()
        self.metrics_faults = MetricsFaultInjector(
            self.rng.stream("faults/metrics"), log=self.fault_log
        )
        self.actuation_faults = ActuationFaultInjector(
            self.rng.stream("faults/actuation"), log=self.fault_log
        )
        self.api.actuation_faults = self.actuation_faults
        self.partition_faults = PartitionInjector(log=self.fault_log)
        self.api.partitions = self.partition_faults
        self.collector = MetricsCollector(
            self.engine,
            self.api,
            scrape_interval=self.config.scrape_interval,
            faults=self.metrics_faults,
        )
        self.monitor = PLOMonitor(
            self.engine, self.collector, interval=self.config.plo_eval_interval
        )
        self.scheduler = self._build_scheduler(scheduler, silo_pools)
        # -- overload resilience (ISSUE 6) -----------------------------------
        # Admission control attaches to the scheduler's pending queue; it
        # is only built when asked for, so default configs keep the
        # scheduling path byte-identical.
        self.admission: AdmissionController | None = None
        if self.config.overload.admission:
            if isinstance(self.scheduler, SiloedScheduler):
                raise ValueError(
                    "admission control is not supported by the siloed "
                    "comparator scheduler"
                )
            self.admission = AdmissionController(
                self.engine, self.api, self.config.overload
            )
            self.scheduler.admission = self.admission
        self.bounds = AllocationBounds(
            self.config.min_allocation, self.config.max_allocation
        )
        self.policy_name = policy
        self.policy = self._build_policy(policy, dict(policy_kwargs or {}))
        # -- replicated control plane (R-T8) ---------------------------------
        # Only built when asked for: the legacy single-controller path stays
        # byte-identical (same components, same RNG draw order) otherwise.
        self.statestore: ControllerStateStore | None = None
        self.control_plane: ReplicatedControlPlane | None = None
        self.replica_policies = [self.policy]
        if self.config.controller_replicas > 1 or self.config.controller_ha:
            if policy != "adaptive":
                raise ValueError(
                    "the replicated control plane requires the adaptive policy"
                )
            for _ in range(self.config.controller_replicas - 1):
                self.replica_policies.append(
                    self._build_policy(policy, dict(policy_kwargs or {}))
                )
            self.statestore = ControllerStateStore(
                self.engine,
                snapshot_interval=self.config.snapshot_interval,
                fsync_latency=self.config.fsync_latency,
                log=self.fault_log,
            )
            self.control_plane = ReplicatedControlPlane(
                self.engine,
                self.api,
                self.replica_policies,
                lease_ttl=self.config.lease_ttl,
                store=self.statestore,
                rng=self.rng.stream("ha/election"),
                fault_log=self.fault_log,
            )
        self.apps: dict[str, Application] = {}
        self.quotas = QuotaManager()
        self.cluster.quotas = self.quotas
        self.injector = FailureInjector(self.cluster, log=self.fault_log)
        self.degrader = DegradationInjector(self.cluster, log=self.fault_log)
        self.chaos: ChaosMonkey | None = None
        # -- data-plane fault tolerance (ISSUE 7) -----------------------------
        # Only built when enabled: default runs keep the store liveness-
        # blind and schedule no repair events, staying byte-identical.
        self.repair: StorageRepairService | None = None
        if self.config.data_plane.enabled:
            self.store.node_liveness = self._node_live
            if self.config.data_plane.repair:
                self.repair = StorageRepairService(
                    self.engine,
                    self.store,
                    self.api,
                    config=self.config.data_plane,
                    log=self.fault_log,
                )
        self.telemetry: Telemetry | None = None
        if self.config.telemetry:
            self._enable_telemetry()
        # -- SLO engine (ISSUE 8) ---------------------------------------------
        # Evaluates declarative SLOs after every completed scrape round.
        # Observation-only (no events, no RNG): seeded runs are
        # bit-identical with SLOs on or off. Config validation guarantees
        # telemetry is enabled whenever SLOs are declared.
        self.slo_engine: SLOEngine | None = None
        if self.config.slos:
            self.slo_engine = SLOEngine(
                self.collector,
                self.config.slos,
                registry=self.telemetry.registry,
            )
            self.collector.add_scrape_hook(self.slo_engine.on_scrape)
        self.checker = None
        if self.config.verify:
            # Imported lazily: repro.verify imports cluster/control/sim
            # modules, and a module-level import would be cyclic.
            from repro.verify.invariants import InvariantChecker

            self.checker = InvariantChecker.attach(
                self, every=self.config.verify_every
            )
        self._started = False
        self._run_until = 0.0

    def _enable_telemetry(self) -> None:
        """Build the per-run Telemetry bundle and hand it to every
        instrumented component.

        Observation-only by construction: the tracer never schedules
        events or draws RNG, and the registry is scraped through
        ``register_internal`` (no fault filter, hence no extra RNG
        draws), so a seeded run is bit-identical with telemetry on or
        off.
        """
        tel = Telemetry(self.engine)
        self.telemetry = tel
        self.api.telemetry = tel
        self.collector.telemetry = tel
        self.collector.register_internal(tel)
        self.metrics_faults.telemetry = tel
        if self.statestore is not None:
            self.statestore.telemetry = tel
        if self.control_plane is not None:
            self.control_plane.telemetry = tel
        for policy in self.replica_policies:
            manager = getattr(policy, "manager", None)
            if manager is not None:
                manager.telemetry = tel
                # Only managers with backpressure or brownout armed have
                # sched/* state to sync; attaching unarmed ones would
                # add scrape-time work for nothing.
                if (
                    manager.backpressure is not None
                    or manager.brownout_cfg is not None
                ):
                    tel.attach_manager(manager)
        if self.admission is not None:
            self.admission.telemetry = tel
            self.admission.scrape_span_at = self.collector.scrape_span_at
            tel.attach_admission(self.admission)
        if self.repair is not None:
            self.repair.telemetry = tel
            tel.attach_repair(self.repair)

    def _node_live(self, name: str) -> bool:
        """Store liveness predicate: a dark node serves no replicas."""
        return not self.cluster.get_node(name).allocatable.is_zero()

    def set_tenant_quota(self, tenant: str, limit: ResourceVector) -> None:
        """Cap the total resources ``tenant``-labelled pods may hold.

        Deployments join a tenant by passing ``labels={"tenant": name}``.
        """
        self.quotas.set_quota(tenant, limit)

    def enable_chaos(
        self,
        *,
        mtbf: float = 3600.0,
        repair_time: float = 300.0,
        max_concurrent_failures: int = 1,
        domains: Sequence[str | FaultDomain] | None = None,
        degrade_factor: float = 0.5,
    ) -> ChaosMonkey:
        """Arm random faults for the rest of the run.

        ``domains`` selects the fault classes the monkey draws from:
        names ``"crash"`` / ``"degrade"`` — plus ``"controller-crash"`` /
        ``"partition"`` when the replicated control plane is enabled, and
        ``"zone-outage"`` when the cluster spans multiple zones — or
        pre-built :class:`~repro.cluster.chaos.FaultDomain` objects.
        Defaults to crash-only (the legacy behaviour).
        """
        if self.chaos is not None:
            raise RuntimeError("chaos already enabled")
        rng = self.rng.stream("chaos")
        built: list[FaultDomain] | None = None
        if domains is not None:
            built = []
            for dom in domains:
                if dom == "crash":
                    built.append(NodeCrashDomain(self.injector, rng))
                elif dom == "degrade":
                    built.append(
                        NodeDegradationDomain(
                            self.degrader, rng, factor=degrade_factor
                        )
                    )
                elif dom in ("controller-crash", "partition"):
                    if self.control_plane is None:
                        raise ValueError(
                            f"fault domain {dom!r} needs the replicated "
                            "control plane (set controller_replicas > 1 or "
                            "controller_ha in PlatformConfig)"
                        )
                    if dom == "controller-crash":
                        built.append(
                            ControllerCrashDomain(
                                self.control_plane, rng, log=self.fault_log
                            )
                        )
                    else:
                        built.append(
                            PartitionDomain(
                                self.control_plane, self.partition_faults, rng
                            )
                        )
                elif dom == "zone-outage":
                    if self.cluster_spec.zones <= 1:
                        raise ValueError(
                            "fault domain 'zone-outage' needs a multi-zone "
                            "cluster (set ClusterSpec.zones > 1)"
                        )
                    built.append(
                        ZoneOutageDomain(self.injector, rng, log=self.fault_log)
                    )
                elif dom == "executor-kill":
                    built.append(
                        ExecutorKillDomain(self.cluster, rng, log=self.fault_log)
                    )
                elif dom == "straggler":
                    built.append(
                        StragglerDomain(self.cluster, rng, log=self.fault_log)
                    )
                elif dom == "data-loss":
                    built.append(
                        DataLossDomain(
                            self.store, self.cluster, rng, log=self.fault_log
                        )
                    )
                elif isinstance(dom, str):
                    raise ValueError(
                        f"unknown fault domain {dom!r}; choose 'crash', "
                        "'degrade', 'controller-crash', 'partition', "
                        "'zone-outage', 'executor-kill', 'straggler', "
                        "'data-loss', or pass a FaultDomain"
                    )
                else:
                    built.append(dom)
        self.chaos = ChaosMonkey(
            self.engine,
            self.injector,
            rng,
            mtbf=mtbf,
            repair_time=repair_time,
            max_concurrent_failures=max_concurrent_failures,
            domains=built,
        )
        self.chaos.start()
        return self.chaos

    # -- construction helpers -------------------------------------------------

    def _build_scheduler(self, name: str, silo_pools):
        if name == "kube":
            return KubeScheduler(
                self.engine, self.api, interval=self.config.schedule_interval,
                **self._scheduler_kwargs,
            )
        if name == "converged":
            return ConvergedScheduler(
                self.engine,
                self.api,
                store=self.store,
                interval=self.config.schedule_interval,
                **self._scheduler_kwargs,
            )
        if name == "siloed":
            if silo_pools is None:
                silo_pools = self._default_silos()
            return SiloedScheduler(
                self.engine,
                self.api,
                pools=silo_pools,
                interval=self.config.schedule_interval,
                **self._scheduler_kwargs,
            )
        raise ValueError(f"unknown scheduler {name!r}; choose from {SCHEDULERS}")

    def _default_silos(self) -> dict[WorkloadClass, list[str]]:
        """Split nodes one-third per world (rounded), FIFO by name."""
        names = sorted(self.cluster.nodes)
        third = max(1, len(names) // 3)
        return {
            WorkloadClass.MICROSERVICE: names[:third],
            WorkloadClass.BIGDATA: names[third : 2 * third],
            WorkloadClass.HPC: names[2 * third :],
        }

    def _build_policy(self, name: str, kwargs: dict):
        """Build a registered policy against this platform's context.

        Unknown names raise
        :class:`~repro.autoscaler.registry.UnknownPolicyError` listing
        every registered policy, so misconfiguration is caught here —
        at construction — rather than surfacing as an attribute error
        deep in the control loop.
        """
        ctx = PolicyContext(
            engine=self.engine,
            collector=self.collector,
            bounds=self.bounds,
            control_interval=self.config.control_interval,
            rng_stream=self.rng.stream,
            fault_log=self.fault_log,
            overload=self.config.overload,
        )
        return build_policy(name, ctx, **kwargs)

    # -- deployment verbs ----------------------------------------------------------

    def deploy_microservice(
        self,
        name: str,
        *,
        trace: LoadTrace,
        demands: ServiceDemands | Sequence[DemandPhase],
        allocation: ResourceVector,
        plo: LatencyPLO | ThroughputPLO | None = None,
        replicas: int = 1,
        managed: bool = True,
        **kwargs,
    ) -> Microservice:
        """Deploy a latency-sensitive service, optionally PLO-managed."""
        app = Microservice(
            name,
            self.engine,
            self.api,
            trace=trace,
            demands=demands,
            initial_allocation=allocation,
            initial_replicas=replicas,
            **kwargs,
        )
        self._register(app, plo, managed)
        return app

    def submit_bigdata(
        self,
        name: str,
        *,
        stages: Sequence[Stage],
        allocation: ResourceVector,
        executors: int = 2,
        dataset: str | None = None,
        deadline: float | None = None,
        delay: float = 0.0,
        managed: bool = False,
        **kwargs,
    ) -> BigDataJob:
        """Submit an analytics job, optionally after ``delay`` seconds."""
        kwargs.setdefault("ft", self.config.data_plane)
        job = BigDataJob(
            name,
            self.engine,
            self.api,
            stages=stages,
            initial_allocation=allocation,
            initial_executors=executors,
            store=self.store if dataset is not None else None,
            dataset=dataset,
            deadline=deadline,
            **kwargs,
        )
        plo = None
        if deadline is not None:
            plo = DeadlinePLO(deadline, start_time=delay)
        self._register(job, plo, managed, start_delay=delay)
        return job

    def submit_recurring_pipeline(
        self,
        name: str,
        *,
        stages_factory,
        allocation: ResourceVector,
        period: float,
        runs: int,
        executors: int = 2,
        deadline: float | None = None,
        start: float = 0.0,
        managed: bool = False,
        **kwargs,
    ) -> "RecurringPipeline":
        """Submit a recurring DAG pipeline: one job every ``period`` s.

        ``stages_factory(run_index)`` builds each run's stage list; a
        ``deadline`` (seconds, relative to each run's start) attaches a
        DeadlinePLO per run. Run *i* starts at ``start + i · period``.
        """
        from repro.workloads.bigdata import RecurringPipeline

        def submit(run_name: str, stages: Sequence[Stage], index: int) -> BigDataJob:
            delay = start + index * period
            return self.submit_bigdata(
                run_name,
                stages=stages,
                allocation=allocation,
                executors=executors,
                deadline=None if deadline is None else delay + deadline,
                delay=delay,
                managed=managed,
                **kwargs,
            )

        return RecurringPipeline(
            submit,
            name=name,
            stages_factory=stages_factory,
            period=period,
            runs=runs,
            start=start,
        )

    def deploy_stream(
        self,
        name: str,
        *,
        trace: LoadTrace,
        operators,
        allocation: ResourceVector,
        plo: LatencyPLO | ThroughputPLO | None = None,
        workers: int = 1,
        managed: bool = True,
        **kwargs,
    ) -> "StreamJob":
        """Deploy a continuous stream pipeline, optionally PLO-managed.

        A LatencyPLO on a stream job targets the watermark delay
        (seconds of lag), which the job exports as its ``latency``
        metric.
        """
        from repro.workloads.stream import StreamJob

        kwargs.setdefault("ft", self.config.data_plane)
        app = StreamJob(
            name,
            self.engine,
            self.api,
            trace=trace,
            operators=operators,
            initial_allocation=allocation,
            initial_workers=workers,
            **kwargs,
        )
        self._register(app, plo, managed)
        return app

    def submit_hpc(
        self,
        name: str,
        *,
        ranks: int,
        duration: float,
        allocation: ResourceVector,
        delay: float = 0.0,
        **kwargs,
    ) -> HPCJob:
        """Submit a gang job after ``delay`` seconds."""
        job = HPCJob(
            name,
            self.engine,
            self.api,
            ranks=ranks,
            duration=duration,
            allocation=allocation,
            **kwargs,
        )
        self._register(job, None, managed=False, start_delay=delay)
        return job

    def _register(
        self,
        app: Application,
        plo,
        managed: bool,
        *,
        start_delay: float = 0.0,
    ) -> None:
        if app.name in self.apps:
            raise ValueError(f"application {app.name!r} already deployed")
        self.apps[app.name] = app
        app.maintain_replicas = True  # survive preemption and node failure
        self.collector.register(app)
        tel = self.telemetry
        if tel is not None and getattr(app, "ft", None) is not None:
            # FT-enabled data-plane workloads trace their recovery events
            # and feed the dp/* aggregate instruments.
            app.telemetry = tel
            if isinstance(app, BigDataJob):
                tel.attach_dataplane_job(app)
            else:
                tel.attach_stream(app)
        if plo is not None:
            app.plo = plo
            self.monitor.track(app)
        if managed:
            if plo is None and getattr(self.policy, "requires_plo", False):
                raise ValueError(
                    f"application {app.name!r}: the {self.policy_name} "
                    "policy needs a PLO"
                )
            # Every control-plane replica needs its own controller for the
            # app: standbys must be ready to decide the moment they win
            # the lease (their controller state comes from the statestore).
            for replica in self.replica_policies:
                replica.attach(app)
        if start_delay > 0:
            self.engine.schedule(start_delay, app.start)
        else:
            app.start()

    # -- run --------------------------------------------------------------------------

    def start_control_plane(self) -> None:
        """Start collector, scheduler, policy, and monitor loops."""
        if self._started:
            return
        self._started = True
        self.collector.start()
        self.scheduler.start()
        if self.repair is not None:
            self.repair.start()
        if self.control_plane is not None:
            self.control_plane.start()
        else:
            self.policy.start()
        if self.config.plo_warmup > 0:
            self.engine.schedule(self.config.plo_warmup, self.monitor.start)
        else:
            self.monitor.start()

    def run(self, duration: float) -> None:
        """Advance the simulation by ``duration`` seconds."""
        self.start_control_plane()
        self._run_until = self.engine.now + duration
        self.engine.run_until(self._run_until)

    # -- results --------------------------------------------------------------

    def result(self) -> ExperimentResult:
        """Summarize the run so far."""
        end = self.engine.now
        # Episodes never healed before the horizon (a zone still dark, a
        # brownout still in force) get closed at the end time so the
        # recovery analysis sees real durations, not dangling opens.
        self.fault_log.close_open(end)
        start = 0.0
        util = utilization_summary(self.collector, start, max(end, 1e-9))
        makespans: dict[str, float | None] = {}
        waits: dict[str, float | None] = {}
        scale_events: dict[str, int] = {}
        for name, app in self.apps.items():
            if isinstance(app, (BigDataJob, HPCJob)):
                makespans[name] = app.makespan()
            if isinstance(app, HPCJob):
                waits[name] = app.wait_time()
        if isinstance(self.policy, AdaptiveAutoscaler) and self.policy.escape:
            # Sum across control-plane replicas: each one has its own
            # escape policy and only ever counts while it held the lease.
            scale_events["scale_outs"] = sum(
                p.escape.scale_outs for p in self.replica_policies
            )
            scale_events["scale_ins"] = sum(
                p.escape.scale_ins for p in self.replica_policies
            )
        return ExperimentResult(
            duration=end,
            trackers=dict(self.monitor.trackers),
            utilization=util,
            makespans=makespans,
            hpc_waits=waits,
            scale_events=scale_events,
        )
