"""Declarative experiment configs (JSON/dict) → a wired platform.

Lets users describe an experiment — cluster shape, scheduler, policy,
services/jobs with traces and PLOs, optional chaos — as plain data and
run it from the CLI without writing Python. Every ``kind`` value maps
1:1 onto a library class, so the schema is a thin veneer over the API.
"""

from __future__ import annotations

import json
from typing import Any, Mapping

import numpy as np

from repro.cluster.resources import ResourceVector
from repro.platform.config import ClusterSpec, NodeGroup, PlatformConfig
from repro.platform.evolve import EvolvePlatform
from repro.workloads.bigdata import Stage
from repro.workloads.microservice import DemandPhase, ServiceDemands
from repro.workloads.plo import LatencyPLO, ThroughputPLO
from repro.workloads.traces import (
    BurstyTrace,
    CompositeTrace,
    ConstantTrace,
    DiurnalTrace,
    FlashCrowdTrace,
    LoadTrace,
    NoisyTrace,
    OUTrace,
    RampTrace,
    ReplayTrace,
    StepTrace,
)


class ConfigError(ValueError):
    """Raised for malformed experiment configs."""


def _require(data: Mapping[str, Any], key: str, context: str) -> Any:
    if key not in data:
        raise ConfigError(f"{context}: missing required key {key!r}")
    return data[key]


def resources_from_dict(data: Mapping[str, float]) -> ResourceVector:
    try:
        return ResourceVector.from_dict(data)
    except KeyError as exc:
        raise ConfigError(f"bad resource vector: {exc}") from exc


def trace_from_dict(
    data: Mapping[str, Any], rng: np.random.Generator
) -> LoadTrace:
    """Build a load trace from its ``kind`` + parameters."""
    kind = _require(data, "kind", "trace")
    params = {k: v for k, v in data.items() if k != "kind"}
    try:
        if kind == "constant":
            return ConstantTrace(**params)
        if kind == "step":
            steps = [tuple(s) for s in _require(params, "steps", "step trace")]
            return StepTrace(steps, initial=params.get("initial", 0.0))
        if kind == "ramp":
            return RampTrace(**params)
        if kind == "diurnal":
            return DiurnalTrace(**params)
        if kind == "flash_crowd":
            return FlashCrowdTrace(**params)
        if kind == "bursty":
            return BurstyTrace(**params, rng=rng)
        if kind == "ou":
            return OUTrace(**params, rng=rng)
        if kind == "noisy":
            base = trace_from_dict(_require(params, "base", "noisy trace"), rng)
            rest = {k: v for k, v in params.items() if k != "base"}
            return NoisyTrace(base, **rest, rng=rng)
        if kind == "composite":
            components = [
                trace_from_dict(c, rng)
                for c in _require(params, "components", "composite trace")
            ]
            return CompositeTrace(components)
        if kind == "replay":
            path = params.pop("path", None)
            if path is not None:
                return ReplayTrace.from_csv(path, **params)
            samples = [tuple(s) for s in _require(params, "samples", "replay")]
            rest = {k: v for k, v in params.items() if k != "samples"}
            return ReplayTrace(samples, **rest)
    except ConfigError:
        raise
    except (TypeError, ValueError) as exc:
        raise ConfigError(f"trace kind {kind!r}: {exc}") from exc
    raise ConfigError(f"unknown trace kind {kind!r}")


def demands_from_dict(data: Any):
    """A single demand profile, or a list of phased profiles."""
    try:
        if isinstance(data, Mapping):
            return ServiceDemands(**data)
        phases = []
        for entry in data:
            start = _require(entry, "start_time", "demand phase")
            profile = {k: v for k, v in entry.items() if k != "start_time"}
            phases.append(DemandPhase(start, ServiceDemands(**profile)))
        return phases
    except (TypeError, ValueError) as exc:
        raise ConfigError(f"bad demands: {exc}") from exc


def plo_from_dict(data: Mapping[str, Any]):
    kind = _require(data, "kind", "plo")
    params = {k: v for k, v in data.items() if k != "kind"}
    try:
        if kind == "latency":
            return LatencyPLO(**params)
        if kind == "throughput":
            return ThroughputPLO(**params)
    except (TypeError, ValueError) as exc:
        raise ConfigError(f"plo kind {kind!r}: {exc}") from exc
    raise ConfigError(f"unknown plo kind {kind!r}")


def cluster_spec_from_dict(data: Mapping[str, Any]) -> ClusterSpec:
    kwargs: dict[str, Any] = {}
    if "nodes" in data:
        kwargs["node_count"] = data["nodes"]
    if "capacity" in data:
        kwargs["node_capacity"] = resources_from_dict(data["capacity"])
    if "system_reserved" in data:
        kwargs["system_reserved"] = resources_from_dict(data["system_reserved"])
    if "zones" in data:
        kwargs["zones"] = int(data["zones"])
    if "groups" in data:
        groups = []
        for g in data["groups"]:
            groups.append(
                NodeGroup(
                    name=_require(g, "name", "node group"),
                    count=_require(g, "count", "node group"),
                    capacity=resources_from_dict(_require(g, "capacity", "group")),
                    labels=g.get("labels", {}),
                )
            )
        kwargs["groups"] = tuple(groups)
    try:
        return ClusterSpec(**kwargs)
    except (TypeError, ValueError) as exc:
        raise ConfigError(f"bad cluster spec: {exc}") from exc


def platform_from_dict(config: Mapping[str, Any]) -> tuple[EvolvePlatform, float]:
    """Wire a platform from a config dict; returns (platform, duration)."""
    duration = float(config.get("duration", 3600.0))
    if duration <= 0:
        raise ConfigError("duration must be positive")
    platform_config = PlatformConfig(seed=int(config.get("seed", 0)))
    platform = EvolvePlatform(
        cluster_spec=cluster_spec_from_dict(config.get("cluster", {})),
        config=platform_config,
        scheduler=config.get("scheduler", "converged"),
        policy=config.get("policy", "adaptive"),
        policy_kwargs=config.get("policy_kwargs"),
        scheduler_kwargs=config.get("scheduler_kwargs"),
    )

    for i, svc in enumerate(config.get("services", [])):
        name = _require(svc, "name", f"services[{i}]")
        plo = plo_from_dict(svc["plo"]) if "plo" in svc else None
        platform.deploy_microservice(
            name,
            trace=trace_from_dict(
                _require(svc, "trace", name), platform.rng.stream(f"trace/{name}")
            ),
            demands=demands_from_dict(_require(svc, "demands", name)),
            allocation=resources_from_dict(_require(svc, "allocation", name)),
            plo=plo,
            replicas=int(svc.get("replicas", 1)),
            managed=bool(svc.get("managed", plo is not None)),
            labels=svc.get("labels", {}),
            node_selector=svc.get("node_selector", {}),
        )

    for i, job in enumerate(config.get("bigdata", [])):
        name = _require(job, "name", f"bigdata[{i}]")
        stages = [
            Stage(
                name=_require(s, "name", f"{name} stage"),
                work_cpu_seconds=_require(s, "work", f"{name} stage"),
                input_mb=s.get("input_mb", 0.0),
                deps=tuple(s.get("deps", ())),
                max_parallelism=s.get("max_parallelism", 64),
                accel_speedup=s.get("accel_speedup", 1.0),
            )
            for s in _require(job, "stages", name)
        ]
        platform.submit_bigdata(
            name,
            stages=stages,
            allocation=resources_from_dict(_require(job, "allocation", name)),
            executors=int(job.get("executors", 2)),
            dataset=job.get("dataset"),
            deadline=job.get("deadline"),
            delay=float(job.get("delay", 0.0)),
            accelerator=job.get("accelerator"),
            labels=job.get("labels", {}),
        )

    for i, job in enumerate(config.get("streams", [])):
        name = _require(job, "name", f"streams[{i}]")
        from repro.workloads.stream import Operator
        try:
            operators = [
                Operator(
                    name=_require(op, "name", f"{name} operator"),
                    cpu_seconds=_require(op, "cpu_seconds", f"{name} operator"),
                    selectivity=op.get("selectivity", 1.0),
                    state_mb_per_eps=op.get("state_mb_per_eps", 0.0),
                )
                for op in _require(job, "operators", name)
            ]
        except ValueError as exc:
            raise ConfigError(f"stream {name!r}: {exc}") from exc
        plo = plo_from_dict(job["plo"]) if "plo" in job else None
        platform.deploy_stream(
            name,
            trace=trace_from_dict(
                _require(job, "trace", name), platform.rng.stream(f"trace/{name}")
            ),
            operators=operators,
            allocation=resources_from_dict(_require(job, "allocation", name)),
            plo=plo,
            workers=int(job.get("workers", 1)),
            managed=bool(job.get("managed", plo is not None)),
            event_mb=float(job.get("event_mb", 0.01)),
            labels=job.get("labels", {}),
        )

    for i, job in enumerate(config.get("hpc", [])):
        name = _require(job, "name", f"hpc[{i}]")
        platform.submit_hpc(
            name,
            ranks=int(_require(job, "ranks", name)),
            duration=float(_require(job, "job_duration", name)),
            allocation=resources_from_dict(_require(job, "allocation", name)),
            delay=float(job.get("delay", 0.0)),
            comm_fraction=float(job.get("comm_fraction", 0.2)),
            zone_penalty=float(job.get("zone_penalty", 0.0)),
            checkpoint_interval=job.get("checkpoint_interval"),
            labels=job.get("labels", {}),
        )

    for tenant, limit in config.get("quotas", {}).items():
        platform.set_tenant_quota(tenant, resources_from_dict(limit))

    if "chaos" in config:
        chaos = config["chaos"]
        platform.enable_chaos(
            mtbf=float(chaos.get("mtbf", 3600.0)),
            repair_time=float(chaos.get("repair_time", 300.0)),
            max_concurrent_failures=int(chaos.get("max_concurrent_failures", 1)),
        )
    return platform, duration


def platform_from_json(path: str) -> tuple[EvolvePlatform, float]:
    """Load a config file and wire the platform."""
    with open(path) as handle:
        try:
            config = json.load(handle)
        except json.JSONDecodeError as exc:
            raise ConfigError(f"{path}: invalid JSON: {exc}") from exc
    if not isinstance(config, dict):
        raise ConfigError(f"{path}: top level must be an object")
    return platform_from_dict(config)
