"""The EVOLVE platform facade: one object wiring every subsystem.

:class:`~repro.platform.evolve.EvolvePlatform` assembles the simulation
engine, cluster, metrics pipeline, a scheduler, an autoscaling policy, and
the PLO monitor, and exposes the three deployment verbs the converged
platform offers its users: deploy a service, submit an analytics job,
submit an HPC job.
"""

from repro.platform.config import (
    ClusterSpec,
    DataPlaneConfig,
    PlatformConfig,
    build_nodes,
)
from repro.platform.evolve import EvolvePlatform, ExperimentResult

__all__ = [
    "ClusterSpec",
    "DataPlaneConfig",
    "PlatformConfig",
    "build_nodes",
    "EvolvePlatform",
    "ExperimentResult",
]
