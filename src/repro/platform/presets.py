"""Canonical SLO scenarios: calm, overload, and data-fault presets.

The flight-recorder surfaces (``repro report`` and the R-T12 benchmark)
need seeded scenarios with SLOs attached. Defining them once here —
under ``repro`` rather than ``benchmarks`` — keeps the CLI usable from
an installed distribution (the ``benchmarks/`` package only exists in a
source checkout) and guarantees both surfaces exercise bit-identical
platforms.

Three presets, each mirroring an EXPERIMENTS.md scenario:

* ``calm`` — the R-F5 control-plane mix at four services: diurnal load,
  no faults, no overload. Every SLO should attain 100 % and no
  burn-rate alert should fire; this is the recorder's null baseline.
* ``overload`` — the R-T10 resilient build at 4× offered load: the
  admission latch, shedding, and brownout all engage, burning the
  shed/brownout error budgets and driving at least one firing→resolved
  web-latency alert as the degradation machinery catches up.
* ``data-fault`` — the R-T11 ft build under the harsh deterministic
  fault schedule: stream-lag and repair-backlog SLOs burn while
  checkpoint replay and the repair loop recover.

Every preset enables telemetry (SLOs require it) — which stays
decision-invisible, so these runs remain bit-identical to their
telemetry-off counterparts in the source benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.cluster.pod import PodPhase, WorkloadClass
from repro.cluster.resources import ResourceVector
from repro.dataplane import DataPlaneConfig
from repro.obs.slo import SLOSpec
from repro.platform.config import ClusterSpec, PlatformConfig
from repro.platform.evolve import EvolvePlatform
from repro.scheduler.admission import OverloadConfig
from repro.storage.placement import spread_blocks
from repro.workloads.bigdata import Stage
from repro.workloads.microservice import ServiceDemands
from repro.workloads.plo import LatencyPLO
from repro.workloads.stream import Operator
from repro.workloads.traces import ConstantTrace, DiurnalTrace, ScaledTrace


@dataclass(frozen=True)
class ScenarioPreset:
    """One named scenario: a builder plus its default horizon."""

    name: str
    description: str
    duration: float
    seed: int
    #: ``build(duration, seed) -> platform`` with SLOs attached and any
    #: fault schedule already on the engine calendar.
    build: Callable[[float, int], EvolvePlatform]


# -- calm: the R-F5 service mix, no faults -----------------------------------

_CALM_SEED = 3
_CALM_SLOS = (
    SLOSpec(
        name="svc_latency",
        series="app/svc-0/latency",
        # The PLO is 60 ms; the SLO adds headroom for the adaptive
        # policy's small diurnal-peak excursions (~62 ms), which the
        # PLO tracker owns — the SLO watches for real degradation.
        objective=0.07,
        comparator="le",
        target=0.99,
        warmup=120.0,
        kind="latency",
        description="svc-0 latency within 70 ms (PLO + margin)",
    ),
)


def _build_calm(duration: float, seed: int) -> EvolvePlatform:
    platform = EvolvePlatform(
        cluster_spec=ClusterSpec(node_count=4),
        config=PlatformConfig(seed=seed, telemetry=True, slos=_CALM_SLOS),
        scheduler="converged",
        policy="adaptive",
    )
    for i in range(4):
        platform.deploy_microservice(
            f"svc-{i}",
            trace=DiurnalTrace(base=60, amplitude=40, period=3600.0,
                               phase=i * 120.0),
            demands=ServiceDemands(cpu_seconds=0.008, disk_mb=0.1,
                                   net_mb=0.05, base_latency=0.01),
            allocation=ResourceVector(cpu=0.6, memory=1, disk_bw=15,
                                      net_bw=15),
            plo=LatencyPLO(0.06, window=30),
        )
    return platform


# -- overload: the R-T10 resilient build at 4x -------------------------------

_OVERLOAD_SEED = 42
_OVERLOAD_FACTOR = 4.0
_OVERLOAD_BASE_RATE = 600.0
_OVERLOAD_SLOS = (
    SLOSpec(
        name="web_latency",
        series="app/web/latency",
        objective=0.05,
        comparator="le",
        target=0.95,
        warmup=120.0,
        kind="latency",
        description="web latency at or under the 50 ms PLO",
    ),
    SLOSpec(
        name="shed_free",
        series="ctrl/sched/latch_active",
        objective=0.0,
        comparator="le",
        target=0.9,
        warmup=120.0,
        kind="goodput",
        description="admission latch disengaged (no load shedding)",
    ),
    SLOSpec(
        name="brownout_free",
        series="ctrl/sched/brownout/active",
        objective=0.0,
        comparator="le",
        target=0.9,
        warmup=120.0,
        kind="goodput",
        description="no service running in a browned-out tier",
    ),
)


def _build_overload(duration: float, seed: int) -> EvolvePlatform:
    web_demands = ServiceDemands(cpu_seconds=0.01, disk_mb=0.02,
                                 net_mb=0.05, base_latency=0.008)
    filler = ServiceDemands(cpu_seconds=0.01, base_latency=0.01)
    platform = EvolvePlatform(
        cluster_spec=ClusterSpec(node_count=6, zones=3),
        config=PlatformConfig(
            seed=seed,
            telemetry=True,
            slos=_OVERLOAD_SLOS,
            overload=OverloadConfig(
                admission=True, backpressure=True, brownout=True,
                high_watermark=0.8, low_watermark=0.65, pending_high=12,
            ),
            max_allocation=ResourceVector(cpu=4, memory=16, disk_bw=200,
                                          net_bw=500),
        ),
        scheduler="converged",
        policy="adaptive",
    )
    platform.deploy_microservice(
        "web",
        trace=ScaledTrace(ConstantTrace(_OVERLOAD_BASE_RATE),
                          _OVERLOAD_FACTOR),
        demands=web_demands,
        allocation=ResourceVector(cpu=4, memory=4, disk_bw=20, net_bw=40),
        plo=LatencyPLO(0.05, window=30),
        replicas=2,
    )
    platform.deploy_microservice(
        "stream",
        trace=ConstantTrace(300.0),
        demands=filler,
        allocation=ResourceVector(cpu=1.5, memory=2, disk_bw=10, net_bw=40),
        plo=LatencyPLO(0.08, window=30),
        labels={"shed-class": "stream"},
    )
    for i in range(3):
        platform.deploy_microservice(
            f"batch-{i}",
            trace=ConstantTrace(200.0),
            demands=filler,
            allocation=ResourceVector(cpu=4, memory=4, disk_bw=10, net_bw=20),
            replicas=3,
            managed=False,
            labels={"shed-class": "batch"},
        )
    for i in range(3):
        platform.deploy_microservice(
            f"be-{i}",
            trace=ConstantTrace(150.0),
            demands=filler,
            allocation=ResourceVector(cpu=4, memory=4, disk_bw=10, net_bw=20),
            replicas=3,
            managed=False,
            labels={"shed-class": "best-effort"},
        )
    return platform


# -- data-fault: the R-T11 ft build under the harsh schedule -----------------

_DATAFAULT_SEED = 47
_DATAFAULT_PERIOD = 120.0
_DATAFAULT_DATASET = "t11-data"
_DATAFAULT_DATASET_MB = 2400.0
_DATAFAULT_STREAM_RATE = 150.0
_FAULT_CYCLE = ("executor-kill", "crash", "data-loss", "straggler")
_CRASH_OUTAGE = 60.0
_STRAGGLER_WINDOW = 120.0
_STRAGGLER_FACTOR = 0.5
_DATAFAULT_SLOS = (
    SLOSpec(
        name="stream_lag",
        series="ctrl/dp/stream/lag_events",
        # A checkpoint restart replays ~750-1000 events before the
        # backlog drains; anything over ~3 s of arrivals counts as burn.
        objective=500.0,
        comparator="le",
        target=0.9,
        warmup=120.0,
        kind="lag",
        description="stream backlog under ~3 s of arrivals (500 events)",
    ),
    SLOSpec(
        name="repair_backlog",
        series="ctrl/store/repair_backlog",
        objective=0.0,
        comparator="le",
        target=0.9,
        warmup=120.0,
        kind="repair_backlog",
        description="no under-replicated objects awaiting repair",
    ),
)


def _schedule_datafault_faults(
    platform: EvolvePlatform, period: float, duration: float
) -> None:
    """The R-T11 deterministic fault schedule: one fault per ``period``
    seconds cycling executor kills, node crashes, data loss, and
    stragglers. Targets come from a running strike counter over sorted
    candidates — a pure function of the scenario, no RNG draws.
    """
    engine = platform.engine
    strikes = iter(range(10_000))

    def executor_kill() -> None:
        victims = sorted(
            pod.name
            for pod in platform.cluster.pods.values()
            if pod.phase is PodPhase.RUNNING
            and pod.spec.workload_class is WorkloadClass.BIGDATA
        )
        if victims:
            k = next(strikes)
            platform.cluster.evict(
                victims[k % len(victims)], reason="executor-kill"
            )

    def crash() -> None:
        healthy = [n.name for n in platform.injector.healthy_nodes()]
        if len(healthy) <= 2:
            return
        name = healthy[next(strikes) % len(healthy)]
        platform.injector.fail_node(name)
        engine.schedule(_CRASH_OUTAGE, lambda: _recover(name))

    def _recover(name: str) -> None:
        if platform.injector.is_failed(name):
            platform.injector.recover_node(name)

    def data_loss() -> None:
        bearing = sorted(platform.store.nodes_with_data())
        if bearing:
            platform.store.drop_node(bearing[next(strikes) % len(bearing)])

    def straggler() -> None:
        nodes = [
            n
            for n in platform.cluster.nodes.values()
            if n.speed_factor >= 1.0 and not n.allocatable.is_zero()
        ]
        if not nodes:
            return
        node = nodes[next(strikes) % len(nodes)]
        node.speed_factor = _STRAGGLER_FACTOR
        engine.schedule(_STRAGGLER_WINDOW, lambda: _heal(node.name))

    def _heal(name: str) -> None:
        platform.cluster.get_node(name).speed_factor = 1.0

    kinds = {
        "executor-kill": executor_kill,
        "crash": crash,
        "data-loss": data_loss,
        "straggler": straggler,
    }
    at = 60.0
    i = 0
    while at < duration - _CRASH_OUTAGE:
        engine.schedule_at(at, kinds[_FAULT_CYCLE[i % len(_FAULT_CYCLE)]])
        at += period
        i += 1


def _build_datafault(duration: float, seed: int) -> EvolvePlatform:
    platform = EvolvePlatform(
        cluster_spec=ClusterSpec(node_count=6),
        config=PlatformConfig(
            seed=seed,
            telemetry=True,
            slos=_DATAFAULT_SLOS,
            data_plane=DataPlaneConfig(enabled=True),
        ),
        scheduler="converged",
        policy="adaptive",
    )
    nodes = sorted(platform.cluster.nodes)
    spread_blocks(
        platform.store,
        _DATAFAULT_DATASET,
        total_mb=_DATAFAULT_DATASET_MB,
        block_mb=100.0,
        nodes=nodes[:3],
        replication=2,
    )
    platform.submit_bigdata(
        "t11-job",
        stages=[
            Stage("scan", 360.0, input_mb=_DATAFAULT_DATASET_MB),
            Stage("agg", 240.0, input_mb=_DATAFAULT_DATASET_MB / 10,
                  deps=("scan",)),
        ],
        allocation=ResourceVector(cpu=2, memory=4, disk_bw=100, net_bw=100),
        executors=3,
        dataset=_DATAFAULT_DATASET,
    )
    platform.deploy_stream(
        "t11-stream",
        trace=ConstantTrace(_DATAFAULT_STREAM_RATE),
        operators=[Operator("parse", 0.004), Operator("agg", 0.002)],
        allocation=ResourceVector(cpu=1.5, memory=2, disk_bw=10, net_bw=40),
        plo=LatencyPLO(5.0, window=30),
        workers=2,
    )
    _schedule_datafault_faults(platform, _DATAFAULT_PERIOD, duration)
    return platform


PRESETS: dict[str, ScenarioPreset] = {
    "calm": ScenarioPreset(
        name="calm",
        description="R-F5 service mix, no faults: 100% attainment baseline",
        duration=1800.0,
        seed=_CALM_SEED,
        build=_build_calm,
    ),
    "overload": ScenarioPreset(
        name="overload",
        description="R-T10 resilient build at 4x load: shed/brownout burn",
        duration=900.0,
        seed=_OVERLOAD_SEED,
        build=_build_overload,
    ),
    "data-fault": ScenarioPreset(
        name="data-fault",
        description="R-T11 ft build, harsh fault schedule: lag/repair burn",
        duration=900.0,
        seed=_DATAFAULT_SEED,
        build=_build_datafault,
    ),
}


def build_scenario(
    name: str,
    *,
    duration: float | None = None,
    seed: int | None = None,
) -> tuple[EvolvePlatform, float]:
    """Build a preset's platform (SLOs attached, faults scheduled).

    Returns ``(platform, duration)`` where ``duration`` is the preset's
    default horizon unless overridden. The platform has not been run.
    """
    try:
        preset = PRESETS[name]
    except KeyError:
        raise ValueError(
            f"unknown scenario {name!r} (choose from "
            f"{', '.join(sorted(PRESETS))})"
        ) from None
    horizon = preset.duration if duration is None else duration
    run_seed = preset.seed if seed is None else seed
    return preset.build(horizon, run_seed), horizon
