"""Command-line interface.

Run declarative experiments without writing Python::

    python -m repro run experiment.json
    python -m repro demo --policy adaptive --duration 7200
    python -m repro trace --format chrome out.json
    python -m repro report overload --output report.json
    python -m repro policies

``run`` executes a JSON experiment config (see
:mod:`repro.platform.loader` for the schema) and prints the standard
summary: per-app PLO violations, utilization, makespans, and costs.
``trace`` runs the demo scenario with telemetry enabled and exports the
causal run timeline (Chrome ``trace_event`` JSON or JSONL); ``--filter``
and ``--since`` slice the export to a span-name prefix and a start
time. ``report`` runs one of the canonical SLO scenarios
(:mod:`repro.platform.presets`) and prints the flight recorder's
``RunReport``: per-SLO attainment and error-budget burn, the merged
alert/fault timeline, ledger conservation verdicts, and the slowest
scrape-to-actuation critical paths.
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.cost import PriceSheet, app_cost
from repro.analysis.report import format_table
from repro.cluster.resources import ResourceVector
from repro.platform.config import PlatformConfig
from repro.platform.evolve import POLICIES, SCHEDULERS, EvolvePlatform
from repro.platform.loader import ConfigError, platform_from_json
from repro.workloads.bigdata import BigDataJob
from repro.workloads.hpc import HPCJob
from repro.workloads.microservice import ServiceDemands
from repro.workloads.plo import LatencyPLO
from repro.workloads.traces import DiurnalTrace


def summarize(platform: EvolvePlatform) -> str:
    """Human-readable end-of-run report."""
    result = platform.result()
    lines = [
        f"simulated {result.duration / 3600:.2f} h on "
        f"{len(platform.cluster.nodes)} nodes "
        f"(scheduler={platform.scheduler.policy_name}, "
        f"policy={getattr(platform.policy, 'policy_name', '?')})",
        "",
    ]
    rows = []
    prices = PriceSheet()
    for name, app in sorted(platform.apps.items()):
        tracker = result.trackers.get(name)
        violation = (
            f"{tracker.violation_fraction:.1%}" if tracker is not None else "-"
        )
        if isinstance(app, (BigDataJob, HPCJob)):
            makespan = result.makespans.get(name)
            status = f"{makespan:.0f} s" if makespan is not None else "running"
        else:
            status = f"{app.replica_count} replicas"
        cost = app_cost(platform.collector, name, prices=prices)
        rows.append([name, type(app).__name__, status, violation,
                     f"${cost.total:.2f}"])
    lines.append(format_table(
        ["app", "kind", "status", "PLO violations", "alloc cost"], rows
    ))
    util = result.utilization
    lines.append("")
    lines.append(
        f"cluster: mean usage {util.overall_usage:.1%}, "
        f"mean allocated {util.overall_alloc:.1%}"
    )
    if platform.injector.failures:
        lines.append(f"node failures injected: {len(platform.injector.failures)}")
    return "\n".join(lines)


def cmd_run(args: argparse.Namespace) -> int:
    try:
        platform, duration = platform_from_json(args.config)
    except (ConfigError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.duration is not None:
        duration = args.duration
    platform.run(duration)
    print(summarize(platform))
    return 0


def _deploy_demo_service(platform: EvolvePlatform, policy: str) -> None:
    """The built-in demo workload (shared by ``demo`` and ``trace``)."""
    platform.deploy_microservice(
        "demo",
        trace=DiurnalTrace(base=150, amplitude=120, period=3600),
        demands=ServiceDemands(cpu_seconds=0.01, disk_mb=0.05,
                               base_latency=0.01),
        allocation=ResourceVector(cpu=0.5, memory=1, disk_bw=25, net_bw=25),
        plo=LatencyPLO(0.05, window=30),
        managed=policy != "static",
    )


def cmd_demo(args: argparse.Namespace) -> int:
    platform = EvolvePlatform(policy=args.policy, scheduler=args.scheduler)
    _deploy_demo_service(platform, args.policy)
    platform.run(args.duration)
    print(summarize(platform))
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    from repro.analysis.traces import latency_quantiles, reaction_latencies
    from repro.obs.export import (
        filter_trace,
        write_chrome_trace,
        write_trace_jsonl,
    )

    platform = EvolvePlatform(
        policy=args.policy,
        scheduler=args.scheduler,
        config=PlatformConfig(telemetry=True),
    )
    _deploy_demo_service(platform, args.policy)
    platform.run(args.duration)
    trace = platform.telemetry.trace
    if args.filter is not None or args.since is not None:
        trace = filter_trace(
            trace, name_prefix=args.filter, since=args.since
        )
    if args.format == "chrome":
        count = write_chrome_trace(
            trace, args.output, fault_log=platform.fault_log
        )
        what = "trace events"
    else:
        count = write_trace_jsonl(
            trace, args.output, fault_log=platform.fault_log
        )
        what = "JSONL lines"
    applied = [
        s for s in trace.by_name("actuate")
        if s.args.get("outcome") == "applied"
    ]
    print(
        f"wrote {count} {what} to {args.output} "
        f"({len(trace)} spans, {len(trace.provenance)} provenance records, "
        f"{len(applied)} applied actuations)"
    )
    latencies = reaction_latencies(trace)
    if latencies:
        q = latency_quantiles(latencies)
        print(
            f"scrape-to-actuation reaction latency: "
            f"p50={q['p50']:.2f}s p95={q['p95']:.2f}s p99={q['p99']:.2f}s "
            f"over {len(latencies)} actuations"
        )
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    from repro.obs.recorder import build_run_report, write_run_report
    from repro.platform.presets import build_scenario

    platform, duration = build_scenario(
        args.scenario, duration=args.duration, seed=args.seed
    )
    platform.run(duration)
    report = build_run_report(platform, top_k=args.top_k)

    meta = report.as_dict()["meta"]
    print(
        f"scenario {args.scenario!r}: {meta['duration']:.0f} s simulated, "
        f"seed {meta['seed']}, {len(meta['apps'])} apps"
    )
    print()
    rows = []
    for name, slo in sorted(report.slos.items()):
        rows.append([
            name,
            slo["kind"],
            f"{slo['attainment']:.2%}",
            f"{slo['budget_spent_s']:.0f}s / {slo['budget_s']:.0f}s",
            str(len(slo["alerts"])),
        ])
    print(format_table(
        ["SLO", "kind", "attainment", "budget spent", "alerts"], rows
    ))
    print()
    summary = report.as_dict()["slo_summary"]
    print(
        f"overall attainment {summary['overall_attainment']:.2%}, "
        f"{summary['total_alerts']} alert(s) "
        f"({summary['unresolved_alerts']} unresolved)"
    )
    timeline = report.as_dict()["alert_timeline"]
    if timeline:
        print()
        print("timeline:")
        for entry in timeline:
            end = (
                f"{entry['end']:.0f}s" if entry["end"] is not None
                else "unresolved"
            )
            extra = (
                f" [{entry['domain']}]" if entry.get("domain") else ""
            )
            print(
                f"  {entry['start']:7.0f}s  {entry['type']:<5s} "
                f"{entry['name']} -> {end}{extra}"
            )
    if report.ledgers:
        print()
        verdicts = ", ".join(
            f"{name}={'ok' if block['ok'] else 'IMBALANCED'}"
            for name, block in sorted(report.ledgers.items())
        )
        print(f"ledgers: {verdicts}")
    paths = report.as_dict()["critical_paths"]
    if paths:
        print()
        print("slowest scrape-to-actuation paths:")
        for p in paths:
            chain = " -> ".join(hop["name"] for hop in p["path"])
            print(
                f"  {p['latency']:6.2f}s  {p['app']} @ "
                f"{p['actuated_at']:.0f}s  ({chain})"
            )
    if args.output is not None:
        write_run_report(report, args.output)
        print()
        print(f"wrote RunReport to {args.output}")
    return 0 if report.ledgers_ok() else 1


def cmd_policies(_args: argparse.Namespace) -> int:
    print("policies  :", ", ".join(POLICIES))
    print("schedulers:", ", ".join(SCHEDULERS))
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    # ``benchmarks`` is a repo-level package (not installed with repro),
    # so the unified runner is only importable from a source checkout.
    try:
        from benchmarks import runner
    except ImportError:
        print(
            "error: the benchmark registry is not importable — run "
            "`repro bench` from the repository root (the `benchmarks/` "
            "package is not part of the installed distribution)",
            file=sys.stderr,
        )
        return 2
    argv: list[str] = []
    if args.full:
        argv.append("--full")
    elif args.smoke:
        argv.append("--smoke")
    if args.json is not None:
        argv.extend(["--json", args.json])
    if args.only is not None:
        argv.extend(["--only", args.only])
    if args.list:
        argv.append("--list")
    if args.seed is not None:
        argv.extend(["--seed", str(args.seed)])
    return runner.main(argv)


def cmd_arena(args: argparse.Namespace) -> int:
    import json as _json

    from repro import arena
    from repro.scenarios import UnknownScenarioError, scenario_names

    if args.list:
        from repro.scenarios import load_pack

        print("policies :", ", ".join(POLICIES))
        for entry in load_pack():
            print(f"{entry.name:>15s}  {entry.description}")
        return 0

    policies = None
    if args.policies is not None:
        policies = tuple(
            p.strip() for p in args.policies.split(",") if p.strip()
        )
        unknown = [p for p in policies if p not in POLICIES]
        if unknown:
            print(
                f"error: unknown policies: {', '.join(unknown)} "
                f"(registered: {', '.join(POLICIES)})",
                file=sys.stderr,
            )
            return 2
    scenarios = None
    if args.scenarios is not None:
        scenarios = tuple(
            s.strip() for s in args.scenarios.split(",") if s.strip()
        )
        unknown = [s for s in scenarios if s not in scenario_names()]
        if unknown:
            print(
                f"error: unknown scenarios: {', '.join(unknown)} "
                f"(pack: {', '.join(scenario_names())})",
                file=sys.stderr,
            )
            return 2
    try:
        payload = arena.run_arena(
            policies=policies, scenarios=scenarios, seed=args.seed
        )
    except UnknownScenarioError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(arena.leaderboard_text(payload))
    if args.json is not None:
        from pathlib import Path

        outdir = Path(args.json)
        outdir.mkdir(parents=True, exist_ok=True)
        path = outdir / "BENCH_arena.json"
        body = dict(payload)
        body["experiment"] = "arena"
        path.write_text(
            _json.dumps(body, indent=2, sort_keys=True) + "\n"
        )
        print(f"\nwrote {path}")
    if args.markdown is not None:
        from pathlib import Path

        Path(args.markdown).write_text(
            arena.leaderboard_markdown(payload) + "\n"
        )
        print(f"wrote {args.markdown}")
    return 0


def cmd_fuzz(args: argparse.Namespace) -> int:
    from repro.verify import fuzzer

    if args.replay is not None:
        result = fuzzer.replay(
            args.replay, seed=args.seed, every=args.every
        )
        spec = result.spec
        print(
            f"replayed {args.replay}: seed={spec.seed} "
            f"horizon={spec.horizon:g}s nodes={spec.nodes} "
            f"workloads={len(spec.workloads)} chaos={len(spec.chaos)} — "
            f"{result.events_executed} events, {result.checks_run} checks"
        )
        if result.ok:
            print("no invariant violations")
            return 0
        for violation in result.violations:
            print(f"VIOLATION {violation}")
        return 1

    summary = fuzzer.fuzz(
        args.episodes,
        args.seed if args.seed is not None else 0,
        every=args.every,
        out_dir=args.out,
        differential=args.differential,
        log=print,
    )
    print(
        f"fuzz: {summary.episodes} episodes, "
        f"{len(summary.failures)} failure(s) "
        f"(run seed {summary.run_seed})"
    )
    return 0 if summary.ok else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="EVOLVE reproduction: converged-platform experiments",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run a JSON experiment config")
    run.add_argument("config", help="path to the experiment config")
    run.add_argument("--duration", type=float, default=None,
                     help="override the config's duration (seconds)")
    run.set_defaults(func=cmd_run)

    demo = sub.add_parser("demo", help="run the built-in demo scenario")
    demo.add_argument("--policy", choices=POLICIES, default="adaptive")
    demo.add_argument("--scheduler", choices=SCHEDULERS, default="converged")
    demo.add_argument("--duration", type=float, default=7200.0)
    demo.set_defaults(func=cmd_demo)

    trace = sub.add_parser(
        "trace",
        help="run the demo with telemetry and export the causal timeline",
    )
    trace.add_argument("output", help="output file path")
    trace.add_argument("--format", choices=("chrome", "jsonl"),
                       default="chrome",
                       help="chrome trace_event JSON (load in Perfetto) "
                            "or JSONL (one span/provenance/fault per line)")
    trace.add_argument("--policy", choices=POLICIES, default="adaptive")
    trace.add_argument("--scheduler", choices=SCHEDULERS, default="converged")
    trace.add_argument("--duration", type=float, default=3600.0)
    trace.add_argument("--filter", metavar="PREFIX", default=None,
                       help="export only spans whose name starts with "
                            "this prefix (e.g. 'shed', 'actuate')")
    trace.add_argument("--since", type=float, metavar="T", default=None,
                       help="export only spans starting at or after this "
                            "simulated time (seconds)")
    trace.set_defaults(func=cmd_trace)

    from repro.platform.presets import PRESETS

    rep = sub.add_parser(
        "report",
        help="run a canonical SLO scenario and print the flight-recorder "
             "RunReport (attainment, burn, alerts, ledgers, critical paths)",
    )
    rep.add_argument("scenario", choices=sorted(PRESETS),
                     help="which preset scenario to run "
                          "(see repro.platform.presets)")
    rep.add_argument("--duration", type=float, default=None,
                     help="override the preset's horizon (seconds)")
    rep.add_argument("--seed", type=int, default=None,
                     help="override the preset's seed")
    rep.add_argument("--output", metavar="FILE", default=None,
                     help="also write the RunReport JSON here")
    rep.add_argument("--top-k", type=int, default=5,
                     help="how many critical paths to include")
    rep.set_defaults(func=cmd_report)

    policies = sub.add_parser("policies", help="list policies and schedulers")
    policies.set_defaults(func=cmd_policies)

    bench = sub.add_parser(
        "bench",
        help="run the unified benchmark registry (BENCH_<exp>.json per "
             "experiment, deterministic smoke budgets)",
    )
    mode = bench.add_mutually_exclusive_group()
    mode.add_argument("--smoke", action="store_true",
                      help="CI-sized variants with deterministic budget "
                           "gates (default)")
    mode.add_argument("--full", action="store_true",
                      help="paper-scale grids behind EXPERIMENTS.md")
    bench.add_argument("--json", metavar="DIR", default=None,
                       help="write one BENCH_<exp>.json per experiment")
    bench.add_argument("--only", default=None,
                       help="comma-separated experiment names (default: all)")
    bench.add_argument("--list", action="store_true",
                       help="list registered experiments and exit")
    bench.add_argument("--seed", type=int, default=None,
                       help="override every experiment's run seed (budget "
                            "gates are skipped: they are calibrated at the "
                            "default seeds; see docs/testing.md)")
    bench.set_defaults(func=cmd_bench)

    ar = sub.add_parser(
        "arena",
        help="score every registered autoscaler policy on the scenario "
             "pack and print the leaderboard (see docs/arena.md)",
    )
    ar.add_argument("--policies", default=None,
                    help="comma-separated policy names "
                         "(default: every registered policy)")
    ar.add_argument("--scenarios", default=None,
                    help="comma-separated pack scenario names "
                         "(default: the whole pack)")
    ar.add_argument("--seed", type=int, default=None,
                    help="override every scenario's episode seed")
    ar.add_argument("--json", metavar="DIR", default=None,
                    help="write the BENCH_arena.json artifact here")
    ar.add_argument("--markdown", metavar="FILE", default=None,
                    help="write the leaderboard as a markdown table "
                         "(for $GITHUB_STEP_SUMMARY)")
    ar.add_argument("--list", action="store_true",
                    help="list registered policies and pack scenarios")
    ar.set_defaults(func=cmd_arena)

    fuzz = sub.add_parser(
        "fuzz",
        help="run seeded fuzz episodes under the invariant checker; "
             "violations shrink to a minimal JSON repro (see docs/testing.md)",
    )
    fuzz.add_argument("--episodes", type=int, default=25,
                      help="number of scenarios to generate and run")
    fuzz.add_argument("--seed", type=int, default=None,
                      help="run seed (scenario stream root); with --replay, "
                           "overrides the repro file's episode seed")
    fuzz.add_argument("--out", default="fuzz-repros",
                      help="directory for shrunken repro JSON files")
    fuzz.add_argument("--every", type=int, default=1,
                      help="check invariants every N-th cycle boundary")
    fuzz.add_argument("--replay", metavar="FILE", default=None,
                      help="re-run one repro JSON file instead of fuzzing")
    fuzz.add_argument("--differential", action="store_true",
                      help="also run each clean episode twice to assert "
                           "telemetry-on/off decision bit-identity")
    fuzz.set_defaults(func=cmd_fuzz)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
