"""Application driver base: replica management + periodic dynamics tick.

An :class:`Application` owns a set of replica pods, advances its
performance model on a fixed tick, writes measured usage into its pods,
and exposes metrics to the collector. Autoscalers actuate applications
through two verbs only — :meth:`Application.scale_to` (horizontal) and
:meth:`Application.set_target_allocation` (vertical) — mirroring the
Deployment-replicas / pod-resize surface of the real system.
"""

from __future__ import annotations

from collections import deque
from typing import Mapping

from repro.cluster.api import ActuationError, ClusterAPI
from repro.cluster.pod import Pod, PodPhase, PodSpec, WorkloadClass
from repro.cluster.resources import ResourceVector
from repro.sim.engine import Engine, PeriodicHandle


class Application:
    """Base class for all workload drivers.

    Parameters
    ----------
    name:
        Application name; pod names are ``{name}-{index}``.
    engine, api:
        Simulation engine and cluster API.
    workload_class:
        Which world the app belongs to (drives scheduler policy).
    initial_allocation:
        Per-replica resource grant at submission.
    initial_replicas:
        Pods submitted by :meth:`start`.
    tick_interval:
        Seconds between model updates.
    priority:
        Pod priority for preemption ordering.
    maintain_replicas:
        Self-healing: when pods are lost to preemption or node failure,
        resubmit replacements on the next tick until the desired count is
        restored. Off by default so unit tests observe raw lifecycle;
        the platform enables it for all deployments.
    """

    def __init__(
        self,
        name: str,
        engine: Engine,
        api: ClusterAPI,
        *,
        workload_class: WorkloadClass,
        initial_allocation: ResourceVector,
        initial_replicas: int = 1,
        tick_interval: float = 1.0,
        priority: int = 0,
        labels: Mapping[str, str] | None = None,
        node_selector: Mapping[str, str] | None = None,
        node_preference: Mapping[str, str] | None = None,
        maintain_replicas: bool = False,
    ):
        if initial_replicas < 0:
            raise ValueError("initial_replicas must be ≥ 0")
        if tick_interval <= 0:
            raise ValueError("tick_interval must be positive")
        self.name = name
        self.engine = engine
        self.api = api
        self.workload_class = workload_class
        self.target_allocation = initial_allocation
        self.initial_replicas = initial_replicas
        self.tick_interval = tick_interval
        self.priority = priority
        self.labels = dict(labels or {})
        self.node_selector = dict(node_selector or {})
        self.node_preference = dict(node_preference or {})
        self.plo = None  # set by callers that attach an objective
        self.gang_id: str | None = None  # set by gang workloads (HPC)
        self.maintain_replicas = maintain_replicas
        self._desired_replicas = initial_replicas
        self.replacements = 0
        # Crash-loop backoff for self-healing: repeated replacement rounds
        # within `restart_window` delay the next round exponentially
        # instead of resubmitting hot (CrashLoopBackOff analogue).
        self.restart_backoff_base = 5.0
        self.restart_backoff_cap = 300.0
        self.restart_window = 600.0
        self.restart_round_threshold = 3
        self.crash_loop_backoffs = 0
        self._replacement_rounds: deque[float] = deque(maxlen=32)
        self._resubmit_backoff_until = 0.0
        self._next_index = 0
        self._pod_names: list[str] = []
        self._tick_handle: PeriodicHandle | None = None
        self._last_tick: float | None = None
        self.started = False
        self.finished = False

    # -- MetricsSource protocol ------------------------------------------------

    def metric_prefix(self) -> str:
        return f"app/{self.name}"

    def sample_metrics(self, now: float) -> Mapping[str, float]:
        """Default gauges every app exports; subclasses extend.

        Allocation totals accumulate per-dimension scalars in the same
        left-to-right order the vector sum used, so seeded metric streams
        are unchanged while skipping per-pod vector allocations.
        """
        running = self.running_pods()
        a_cpu = a_mem = a_disk = a_net = 0.0
        u_cpu = u_mem = u_disk = u_net = 0.0
        for pod in running:
            alloc = pod.allocation
            a_cpu += alloc.cpu
            a_mem += alloc.memory
            a_disk += alloc.disk_bw
            a_net += alloc.net_bw
            usage = pod.usage
            u_cpu += usage.cpu
            u_mem += usage.memory
            u_disk += usage.disk_bw
            u_net += usage.net_bw
        return {
            "replicas": float(len(self._pod_names)),
            "running_replicas": float(len(running)),
            "alloc/cpu": a_cpu,
            "alloc/memory": a_mem,
            "alloc/disk_bw": a_disk,
            "alloc/net_bw": a_net,
            "usage/cpu": u_cpu,
            "usage/memory": u_mem,
            "usage/disk_bw": u_disk,
            "usage/net_bw": u_net,
        }

    # -- lifecycle -----------------------------------------------------------------

    def start(self) -> None:
        """Submit initial replicas and begin ticking."""
        if self.started:
            raise RuntimeError(f"application {self.name!r} already started")
        self.started = True
        self._last_tick = self.engine.now
        for _ in range(self.initial_replicas):
            self._submit_replica()
        self._tick_handle = self.engine.every(
            self.tick_interval, self._on_tick, priority=-5
        )

    def stop(self) -> None:
        """Stop ticking and delete all non-terminal pods."""
        if self._tick_handle is not None:
            self._tick_handle.cancel()
            self._tick_handle = None
        for name in list(self._pod_names):
            pod = self.api.get_pod(name)
            if not pod.terminal:
                self.api.delete_pod(name, reason="app-stopped")
        self._pod_names.clear()
        self.finished = True

    def _on_tick(self) -> None:
        now = self.engine.now
        dt = now - (self._last_tick if self._last_tick is not None else now)
        self._last_tick = now
        self._prune_terminal_pods()
        if self.maintain_replicas and not self.finished:
            self._heal_replicas(now)
        if dt > 0:
            self.tick(dt, now)

    def _heal_replicas(self, now: float) -> None:
        """Resubmit lost replicas, with crash-loop backoff.

        One tick that resubmits (however many pods) counts as one
        *replacement round*. Once ``restart_round_threshold`` rounds land
        inside ``restart_window`` — pods dying as fast as they are
        replaced — the next round is delayed exponentially up to
        ``restart_backoff_cap`` instead of resubmitting immediately.
        Transient actuation faults on the resubmit path are absorbed and
        retried on a later tick.
        """
        if len(self._pod_names) >= self._desired_replicas:
            return
        if now < self._resubmit_backoff_until:
            return
        resubmitted = 0
        try:
            while len(self._pod_names) < self._desired_replicas:
                self._submit_replica()
                self.replacements += 1
                resubmitted += 1
        except ActuationError:
            pass  # the next tick (or backoff expiry) retries
        if resubmitted == 0:
            return
        self._replacement_rounds.append(now)
        recent = [
            t for t in self._replacement_rounds if now - t <= self.restart_window
        ]
        excess = len(recent) - self.restart_round_threshold
        if excess >= 0:
            backoff = min(
                self.restart_backoff_cap,
                self.restart_backoff_base * (2.0 ** excess),
            )
            self._resubmit_backoff_until = now + backoff
            self.crash_loop_backoffs += 1

    def tick(self, dt: float, now: float) -> None:
        """Advance the performance model by ``dt`` seconds. Override."""
        raise NotImplementedError

    def _prune_terminal_pods(self) -> None:
        """Drop externally-evicted/finished pods from the replica list."""
        kept = []
        for name in self._pod_names:
            pod = self.api.get_pod(name)
            if not pod.terminal:
                kept.append(name)
        self._pod_names = kept

    # -- replica management ----------------------------------------------------------

    def _submit_replica(self) -> Pod:
        spec = PodSpec(
            name=f"{self.name}-{self._next_index}",
            app=self.name,
            workload_class=self.workload_class,
            requests=self.target_allocation,
            gang_id=self.gang_id,
            priority=self.priority,
            labels=self.labels,
            node_selector=self.node_selector,
            node_preference=self.node_preference,
        )
        self._next_index += 1
        pod = self.api.create_pod(spec)
        self._pod_names.append(pod.name)
        return pod

    def pods(self) -> list[Pod]:
        """All live (non-terminal) pods of this app, oldest first."""
        return [self.api.get_pod(name) for name in self._pod_names]

    def running_pods(self) -> list[Pod]:
        return [p for p in self.pods() if p.phase == PodPhase.RUNNING]

    @property
    def replica_count(self) -> int:
        """Desired replica count (live pods, running or pending)."""
        return len(self._pod_names)

    def scale_to(self, replicas: int) -> None:
        """Horizontal scaling verb: grow by submitting, shrink newest-first."""
        if replicas < 0:
            raise ValueError("replicas must be ≥ 0")
        self._desired_replicas = replicas
        self._prune_terminal_pods()
        while len(self._pod_names) < replicas:
            self._submit_replica()
        while len(self._pod_names) > replicas:
            victim = self._pod_names.pop()
            pod = self.api.get_pod(victim)
            if not pod.terminal:
                self.api.delete_pod(victim, reason="scaled-down")

    def set_target_allocation(self, allocation: ResourceVector) -> int:
        """Vertical scaling verb: resize every live pod toward ``allocation``.

        New replicas will be submitted with this allocation. Returns the
        number of pods whose resize was accepted by the cluster.
        """
        if allocation.any_negative():
            raise ValueError("allocation must be non-negative")
        self.target_allocation = allocation
        accepted = 0
        for pod in self.pods():
            if pod.active and self.api.patch_pod_allocation(pod.name, allocation):
                accepted += 1
        return accepted

    def current_allocation(self) -> ResourceVector:
        """Allocation of one running replica (they converge to the target).

        Falls back to the target when nothing is running yet.
        """
        running = self.running_pods()
        if not running:
            return self.target_allocation
        return running[0].allocation

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"{type(self).__name__}({self.name!r}, replicas={self.replica_count}, "
            f"class={self.workload_class.value})"
        )
