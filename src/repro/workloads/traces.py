"""Synthetic load traces.

Stand-ins for the production request traces the original evaluation used.
A trace maps simulated time to an offered request rate (requests/second).
All stochastic traces draw from named RNG streams so experiments are
deterministic given the experiment seed.
"""

from __future__ import annotations

import bisect
import math
from typing import Protocol, Sequence

import numpy as np


class LoadTrace(Protocol):
    """Offered load as a function of time."""

    def rate(self, t: float) -> float:
        """Request rate (req/s) at time ``t``; never negative."""
        ...


class ConstantTrace:
    """Fixed request rate."""

    def __init__(self, value: float):
        if value < 0:
            raise ValueError("rate must be non-negative")
        self.value = float(value)

    def rate(self, t: float) -> float:
        return self.value


class StepTrace:
    """Piecewise-constant rate defined by ``(start_time, rate)`` steps.

    Before the first step the rate is ``initial``. Steps must be sorted by
    time.
    """

    def __init__(self, steps: Sequence[tuple[float, float]], *, initial: float = 0.0):
        times = [s[0] for s in steps]
        if not all(math.isfinite(t) for t in times):
            raise ValueError("step times must be finite")
        if any(a > b for a, b in zip(times, times[1:])):
            raise ValueError("steps must be sorted by time")
        if any(not math.isfinite(r) or r < 0 for _t, r in steps) or initial < 0:
            raise ValueError("rates must be non-negative")
        self.steps = list(steps)
        self.initial = float(initial)
        self._times = [float(t) for t in times]
        # Duplicate step times: the last one wins, matching the linear
        # scan this replaced.
        self._rates = [float(r) for _t, r in steps]

    def rate(self, t: float) -> float:
        idx = bisect.bisect_right(self._times, t) - 1
        if idx < 0:
            return self.initial
        return self._rates[idx]


class RampTrace:
    """Linear ramp from ``start_rate`` to ``end_rate`` over a window."""

    def __init__(
        self, start_time: float, end_time: float, start_rate: float, end_rate: float
    ):
        if end_time <= start_time:
            raise ValueError("end_time must be after start_time")
        self.start_time = start_time
        self.end_time = end_time
        self.start_rate = float(start_rate)
        self.end_rate = float(end_rate)

    def rate(self, t: float) -> float:
        if t <= self.start_time:
            return self.start_rate
        if t >= self.end_time:
            return self.end_rate
        frac = (t - self.start_time) / (self.end_time - self.start_time)
        return self.start_rate + frac * (self.end_rate - self.start_rate)


class DiurnalTrace:
    """Sinusoidal day/night pattern.

    ``rate(t) = base + amplitude * sin(2π (t - phase) / period)``, clipped
    at zero. Default period is 24 simulated hours.
    """

    def __init__(
        self,
        base: float,
        amplitude: float,
        *,
        period: float = 86_400.0,
        phase: float = 0.0,
    ):
        if base < 0 or amplitude < 0 or period <= 0:
            raise ValueError("base/amplitude must be ≥ 0 and period > 0")
        self.base = float(base)
        self.amplitude = float(amplitude)
        self.period = float(period)
        self.phase = float(phase)

    def rate(self, t: float) -> float:
        value = self.base + self.amplitude * math.sin(
            2 * math.pi * (t - self.phase) / self.period
        )
        return max(0.0, value)


class FlashCrowdTrace:
    """A sudden spike: fast exponential rise, slower exponential decay.

    Models flash-crowd events (news link, sale start) layered on zero
    baseline; combine with :class:`CompositeTrace` for a realistic mix.
    """

    def __init__(
        self,
        start_time: float,
        peak_rate: float,
        *,
        rise: float = 30.0,
        decay: float = 600.0,
    ):
        if peak_rate < 0 or rise <= 0 or decay <= 0:
            raise ValueError("peak_rate ≥ 0 and rise/decay > 0 required")
        self.start_time = start_time
        self.peak_rate = float(peak_rate)
        self.rise = float(rise)
        self.decay = float(decay)

    def rate(self, t: float) -> float:
        if t < self.start_time:
            return 0.0
        dt = t - self.start_time
        return self.peak_rate * (1 - math.exp(-dt / self.rise)) * math.exp(
            -dt / self.decay
        )


class BurstyTrace:
    """Base rate with random bursts.

    Bursts arrive as a Poisson process (``burst_rate`` per second), each
    multiplying load by ``burst_factor`` for ``burst_duration`` seconds.
    Burst times are pre-drawn over ``horizon`` so rate() is a pure function
    of time.
    """

    def __init__(
        self,
        base: float,
        *,
        burst_factor: float = 3.0,
        burst_rate: float = 1 / 1800.0,
        burst_duration: float = 120.0,
        horizon: float = 86_400.0,
        rng: np.random.Generator | None = None,
    ):
        if base < 0 or burst_factor < 1 or burst_rate <= 0 or burst_duration <= 0:
            raise ValueError("invalid burst parameters")
        self.base = float(base)
        self.burst_factor = float(burst_factor)
        self.burst_duration = float(burst_duration)
        rng = rng or np.random.default_rng(0)
        expected = max(1, int(burst_rate * horizon * 3))
        gaps = rng.exponential(1 / burst_rate, size=expected)
        times = np.cumsum(gaps)
        self.burst_times: list[float] = [float(t) for t in times if t < horizon]

    def rate(self, t: float) -> float:
        in_burst = any(
            start <= t < start + self.burst_duration for start in self.burst_times
        )
        return self.base * (self.burst_factor if in_burst else 1.0)


class NoisyTrace:
    """Multiplicative lognormal noise over another trace.

    Noise is drawn per fixed-width time bucket at construction, so the
    trace stays a deterministic function of time.
    """

    def __init__(
        self,
        base: LoadTrace,
        *,
        rel_std: float = 0.1,
        bucket: float = 60.0,
        horizon: float = 86_400.0,
        rng: np.random.Generator | None = None,
    ):
        if rel_std < 0 or bucket <= 0 or horizon <= 0:
            raise ValueError("invalid noise parameters")
        self.base = base
        self.bucket = float(bucket)
        rng = rng or np.random.default_rng(0)
        n = int(math.ceil(horizon / bucket)) + 1
        sigma = math.sqrt(math.log(1 + rel_std**2))
        self._noise = rng.lognormal(mean=-sigma**2 / 2, sigma=sigma, size=n)

    def rate(self, t: float) -> float:
        idx = int(t // self.bucket)
        noise = self._noise[idx] if 0 <= idx < len(self._noise) else 1.0
        return max(0.0, self.base.rate(t) * float(noise))


class CompositeTrace:
    """Sum of component traces."""

    def __init__(self, components: Sequence[LoadTrace]):
        if not components:
            raise ValueError("need at least one component")
        self.components = list(components)

    def rate(self, t: float) -> float:
        return sum(c.rate(t) for c in self.components)


class ScaledTrace:
    """A trace multiplied by a constant factor."""

    def __init__(self, base: LoadTrace, factor: float):
        if factor < 0:
            raise ValueError("factor must be non-negative")
        self.base = base
        self.factor = float(factor)

    def rate(self, t: float) -> float:
        return self.base.rate(t) * self.factor


class OUTrace:
    """Mean-reverting (Ornstein–Uhlenbeck) load.

    Real request traces are autocorrelated: load drifts rather than
    jumping independently per interval. The OU process gives exactly
    that — a mean level, a relaxation time, and a volatility — and is the
    standard synthetic stand-in when production traces are unavailable.

    The path is pre-simulated at ``step`` resolution over ``horizon`` so
    ``rate()`` stays a pure function of time.

    Parameters
    ----------
    mean:
        Long-run request rate the process reverts to.
    relaxation:
        Time constant (s) of mean reversion; larger = slower drift.
    volatility:
        Instantaneous standard deviation of the noise (req/s per √s).
    """

    def __init__(
        self,
        mean: float,
        *,
        relaxation: float = 600.0,
        volatility: float = 2.0,
        step: float = 10.0,
        horizon: float = 86_400.0,
        rng: np.random.Generator | None = None,
    ):
        if mean < 0 or relaxation <= 0 or volatility < 0 or step <= 0:
            raise ValueError("invalid OU parameters")
        self.mean = float(mean)
        self.step = float(step)
        rng = rng or np.random.default_rng(0)
        n = int(math.ceil(horizon / step)) + 1
        theta = 1.0 / relaxation
        path = np.empty(n)
        path[0] = mean
        noise = rng.normal(size=n - 1)
        sqrt_dt = math.sqrt(step)
        for i in range(1, n):
            drift = theta * (mean - path[i - 1]) * step
            path[i] = path[i - 1] + drift + volatility * sqrt_dt * noise[i - 1]
        self._path = np.maximum(path, 0.0)

    def rate(self, t: float) -> float:
        idx = int(t // self.step)
        if idx < 0:
            return self._path[0]
        if idx >= len(self._path):
            return float(self._path[-1])
        return float(self._path[idx])


class ReplayTrace:
    """Replay a recorded trace of ``(time, rate)`` samples.

    The substitute for production traces: export request rates from any
    monitoring system as rows and replay them with step interpolation.
    Times must be sorted; before the first sample the first rate holds,
    after the last the last rate holds. ``time_scale`` stretches the
    recording (e.g. replay a day in an hour) and ``rate_scale`` rescales
    amplitude to the simulated service's capacity range.
    """

    def __init__(
        self,
        samples: Sequence[tuple[float, float]],
        *,
        time_scale: float = 1.0,
        rate_scale: float = 1.0,
    ):
        if not samples:
            raise ValueError("need at least one sample")
        times = [s[0] for s in samples]
        if not all(math.isfinite(t) for t in times):
            raise ValueError("sample times must be finite")
        if any(a > b for a, b in zip(times, times[1:])):
            raise ValueError("samples must be sorted by time")
        if any(not math.isfinite(r) or r < 0 for _t, r in samples):
            raise ValueError("rates must be non-negative")
        if time_scale <= 0 or rate_scale < 0:
            raise ValueError("invalid scales")
        self._times = [t * time_scale for t in times]
        self._rates = [r * rate_scale for _t, r in samples]

    @classmethod
    def from_csv(
        cls,
        path: str,
        *,
        time_column: int = 0,
        rate_column: int = 1,
        delimiter: str = ",",
        skip_header: bool = True,
        **kwargs,
    ) -> "ReplayTrace":
        """Load ``time,rate`` rows from a CSV file."""
        samples: list[tuple[float, float]] = []
        with open(path) as handle:
            for i, line in enumerate(handle):
                if skip_header and i == 0:
                    continue
                line = line.strip()
                if not line:
                    continue
                fields = line.split(delimiter)
                samples.append(
                    (float(fields[time_column]), float(fields[rate_column]))
                )
        return cls(samples, **kwargs)

    def rate(self, t: float) -> float:
        idx = bisect.bisect_right(self._times, t) - 1
        if idx < 0:
            return self._rates[0]
        return self._rates[idx]
