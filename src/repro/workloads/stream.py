"""Continuous stream-processing jobs (Flink-like operator chains).

The fourth workload flavour in the converged platform: a pipeline of
operators applied to an unbounded event stream. Unlike a request/response
microservice, a stream job never refuses work — falling behind shows up
as *lag* (events buffered upstream) and the user-facing measure is the
**watermark delay**: how far behind real time the pipeline's output is.

The model per tick:

* events arrive at ``trace.rate(t)`` and are split across workers;
* each worker runs the fused operator chain; the per-event CPU cost of
  operator *i* is discounted by the product of upstream selectivities
  (a filter that drops 90% of events makes everything after it 10× cheaper);
* worker capacity is the min of the CPU ceiling and the ingest-bandwidth
  ceiling (events/s × bytes/event over network);
* state memory grows with event rate (keyed windows), pressuring the
  memory dimension exactly like the microservice model.

A :class:`~repro.workloads.plo.LatencyPLO` attached to a stream job
targets the watermark delay (exported as the ``latency`` metric), so the
standard controller manages stream jobs unmodified.

Fault tolerance (opt-in via :class:`~repro.dataplane.DataPlaneConfig`):
with ``ft.enabled`` the job takes periodic checkpoint barriers. Losing a
worker pod rolls processing back to the last checkpoint — everything
processed since is replayed, accounted as extra backlog demand — and the
restarted pipeline spends ``restore_delay`` seconds rebuilding operator
state before it processes again. With ``ft`` unset the model is
untouched and seeded runs are bit-identical to the seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.cluster.api import ClusterAPI
from repro.cluster.cluster import NodeNotFound
from repro.cluster.pod import Pod, WorkloadClass
from repro.cluster.resources import ResourceVector
from repro.dataplane import DataPlaneConfig
from repro.sim.engine import Engine
from repro.workloads.base import Application
from repro.workloads.traces import LoadTrace


@dataclass(frozen=True)
class Operator:
    """One stage of the fused operator chain.

    Parameters
    ----------
    name:
        Operator name (unique within the job).
    cpu_seconds:
        CPU time per event *reaching this operator*.
    selectivity:
        Fraction of events passed downstream (1.0 = map, 0.1 = strong
        filter, >1 would be a flat-map and is capped at 10).
    state_mb_per_eps:
        Keyed-window state (MB) held per event/second of throughput at
        this operator.
    """

    name: str
    cpu_seconds: float
    selectivity: float = 1.0
    state_mb_per_eps: float = 0.0

    def __post_init__(self) -> None:
        if self.cpu_seconds < 0:
            raise ValueError(f"operator {self.name!r}: negative cpu_seconds")
        if not 0 < self.selectivity <= 10:
            raise ValueError(f"operator {self.name!r}: selectivity in (0, 10]")
        if self.state_mb_per_eps < 0:
            raise ValueError(f"operator {self.name!r}: negative state")


class StreamJob(Application):
    """A long-running stream pipeline with elastic workers.

    Parameters
    ----------
    trace:
        Input event rate (events/s).
    operators:
        The chain, source side first.
    event_mb:
        Network bytes (MB) ingested per source event.
    mem_base:
        Fixed per-worker memory (GiB).
    max_lag_seconds:
        Reported watermark-delay ceiling.
    """

    def __init__(
        self,
        name: str,
        engine: Engine,
        api: ClusterAPI,
        *,
        trace: LoadTrace,
        operators: Sequence[Operator],
        initial_allocation: ResourceVector,
        initial_workers: int = 1,
        event_mb: float = 0.01,
        mem_base: float = 0.5,
        max_lag_seconds: float = 600.0,
        ft: DataPlaneConfig | None = None,
        tick_interval: float = 1.0,
        priority: int = 8,
        labels: Mapping[str, str] | None = None,
        **kwargs,
    ):
        super().__init__(
            name,
            engine,
            api,
            workload_class=WorkloadClass.BIGDATA,
            initial_allocation=initial_allocation,
            initial_replicas=initial_workers,
            tick_interval=tick_interval,
            priority=priority,
            labels=labels,
            **kwargs,
        )
        ops = list(operators)
        if not ops:
            raise ValueError("need at least one operator")
        names = [op.name for op in ops]
        if len(set(names)) != len(names):
            raise ValueError("duplicate operator names")
        if event_mb < 0 or mem_base < 0 or max_lag_seconds <= 0:
            raise ValueError("invalid stream parameters")
        self.trace = trace
        self.operators = ops
        self.event_mb = event_mb
        self.mem_base = mem_base
        self.max_lag_seconds = max_lag_seconds
        # Fused-chain cost per *source* event, and state per event/s.
        reach = 1.0
        cpu = 0.0
        state = 0.0
        for op in ops:
            cpu += reach * op.cpu_seconds
            state += reach * op.state_mb_per_eps
            reach *= op.selectivity
        self.cpu_per_event = cpu
        self.state_mb_per_eps = state
        self.output_selectivity = reach
        # Runtime state.
        self.lag_events = 0.0
        self.current_rate = 0.0          # processed source events/s
        self.current_lag_seconds = 0.0
        self.current_offered = 0.0
        self.total_processed = 0.0
        self.total_arrived = 0.0
        #: Optional :class:`~repro.obs.telemetry.Telemetry` bundle; when
        #: set, checkpoint barriers and rollback/replay restarts are
        #: traced under the ``dp`` category.
        self.telemetry = None
        # -- checkpoint/replay state (None → seed behaviour) --
        self.ft = ft if ft is not None and ft.enabled else None
        if self.ft is not None:
            self.checkpoints = 0
            self.restarts = 0
            self.replayed_total = 0.0
            self.last_checkpoint_at = 0.0
            self._ckpt_processed = 0.0
            self._restore_until = 0.0
            self._prev_worker_names: set[str] = set()

    # -- model ------------------------------------------------------------------

    def _worker_capacity(self, pod: Pod) -> float:
        """Max source events/s one worker can sustain."""
        caps = []
        if self.cpu_per_event > 0:
            caps.append(pod.allocation.cpu / self.cpu_per_event)
        if self.event_mb > 0:
            caps.append(pod.allocation.net_bw / self.event_mb)
        capacity = min(caps) if caps else float("inf")
        # Memory pressure: state for the throughput this worker handles.
        needed = self.mem_base + self.state_mb_per_eps * capacity / 1024.0
        mem = max(pod.allocation.memory, 1e-9)
        if needed > mem:
            capacity *= mem / needed
        return capacity

    def _node_speed(self, pod: Pod) -> float:
        if pod.node_name is None:
            return 1.0
        try:
            return self.api.get_node(pod.node_name).speed_factor
        except NodeNotFound:  # pragma: no cover - nodes are never removed
            return 1.0

    def _ft_pre_tick(self, now: float) -> bool:
        """Checkpoint/rollback bookkeeping; True while restoring state."""
        assert self.ft is not None
        current = set(self._pod_names)
        lost = self._prev_worker_names - current
        self._prev_worker_names = current
        if lost:
            # Restart from the last checkpoint barrier: everything
            # processed since is replayed as fresh backlog.
            self.restarts += 1
            replayed = self.total_processed - self._ckpt_processed
            if replayed > 0:
                self.lag_events += replayed
                self.replayed_total += replayed
                self.total_processed = self._ckpt_processed
            self._restore_until = now + self.ft.restore_delay
            if self.telemetry is not None:
                self.telemetry.tracer.instant(
                    "stream_restart", "dp", job=self.name,
                    lost=len(lost), replayed=replayed,
                )
        restoring = now < self._restore_until
        if (
            not restoring
            and now - self.last_checkpoint_at >= self.ft.checkpoint_interval
        ):
            self._ckpt_processed = self.total_processed
            self.last_checkpoint_at = now
            self.checkpoints += 1
            if self.telemetry is not None:
                self.telemetry.tracer.instant(
                    "stream_checkpoint", "dp", job=self.name,
                    processed=self.total_processed,
                )
        return restoring

    def tick(self, dt: float, now: float) -> None:
        offered = max(0.0, self.trace.rate(now))
        self.current_offered = offered
        workers = self.running_pods()
        arrivals = offered * dt
        self.total_arrived += arrivals
        restoring = self._ft_pre_tick(now) if self.ft is not None else False
        if not workers or restoring:
            self.lag_events += arrivals
            self.current_rate = 0.0
            if workers:
                # Workers are up but rebuilding operator state: backlog
                # accrues while the watermark estimate goes stale.
                for pod in workers:
                    pod.record_usage(
                        ResourceVector(
                            memory=min(pod.allocation.memory, self.mem_base)
                        )
                    )
            else:
                self.current_lag_seconds = self.max_lag_seconds
            return

        total_capacity = 0.0
        share = (self.lag_events + arrivals) / len(workers)
        for pod in workers:
            capacity = self._worker_capacity(pod)
            if self.ft is not None:
                capacity *= self._node_speed(pod)
            total_capacity += capacity
            processed_rate = min(capacity, share / dt)
            state_mem = (
                self.mem_base
                + self.state_mb_per_eps * processed_rate / 1024.0
            )
            pod.record_usage(
                ResourceVector(
                    cpu=processed_rate * self.cpu_per_event,
                    memory=min(pod.allocation.memory, state_mem),
                    disk_bw=0.0,
                    net_bw=processed_rate * self.event_mb,
                )
            )
        processed = min(self.lag_events + arrivals, total_capacity * dt)
        self.lag_events = max(0.0, self.lag_events + arrivals - processed)
        self.total_processed += processed
        self.current_rate = processed / dt
        if total_capacity > 0:
            self.current_lag_seconds = min(
                self.max_lag_seconds, self.lag_events / total_capacity
            )
        else:
            self.current_lag_seconds = self.max_lag_seconds

    # -- metrics ---------------------------------------------------------------------

    def sample_metrics(self, now: float) -> Mapping[str, float]:
        metrics = dict(super().sample_metrics(now))
        metrics.update(
            {
                # Watermark delay doubles as the controller's latency signal.
                "latency": self.current_lag_seconds,
                "lag_seconds": self.current_lag_seconds,
                "lag_events": self.lag_events,
                "throughput": self.current_rate,
                "offered": self.current_offered,
                "processed_total": self.total_processed,
                "output_rate": self.current_rate * self.output_selectivity,
            }
        )
        if self.ft is not None:
            metrics.update(
                {
                    "checkpoints": float(self.checkpoints),
                    "restarts": float(self.restarts),
                    "replayed_total": self.replayed_total,
                    "checkpoint_age": now - self.last_checkpoint_at,
                }
            )
        return metrics
