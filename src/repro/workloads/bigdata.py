"""Elastic big-data analytics jobs (Spark-like stage DAGs).

A job is a DAG of stages; each stage has a CPU work volume and an input
volume read from the shared object store. Executors (the job's pods)
process the current stage with a fluid model: per-executor progress is
limited by whichever is scarcer — CPU or input bandwidth — and input
bandwidth depends on data locality (local blocks stream over disk
bandwidth, remote ones over penalized network bandwidth).

Stages execute in topological order, one at a time (the common Spark
shape where a shuffle barrier separates stages); parallelism within a
stage is capped by its task count.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Mapping, Sequence

import networkx as nx

from repro.cluster.api import ClusterAPI
from repro.cluster.pod import Pod, WorkloadClass
from repro.cluster.resources import ResourceVector
from repro.sim.engine import Engine
from repro.storage.objectstore import ObjectStore
from repro.workloads.base import Application


@dataclass
class Stage:
    """One stage of the job DAG.

    Parameters
    ----------
    name:
        Stage name, unique within the job.
    work_cpu_seconds:
        Total CPU work of the stage.
    input_mb:
        Total bytes read (from the dataset for source stages, shuffle
        data otherwise).
    deps:
        Names of stages that must complete first.
    max_parallelism:
        Task count: at most this many executors contribute concurrently.
    accel_speedup:
        CPU-work speedup an executor enjoys on an accelerator node (the
        EVOLVE FPGA path); 1.0 means the stage is not accelerable.
    """

    name: str
    work_cpu_seconds: float
    input_mb: float = 0.0
    deps: tuple[str, ...] = ()
    max_parallelism: int = 64
    accel_speedup: float = 1.0
    remaining_work: float = field(init=False)
    remaining_input: float = field(init=False)

    def __post_init__(self) -> None:
        if self.work_cpu_seconds <= 0:
            raise ValueError(f"stage {self.name!r}: work must be positive")
        if self.input_mb < 0:
            raise ValueError(f"stage {self.name!r}: input must be non-negative")
        if self.max_parallelism < 1:
            raise ValueError(f"stage {self.name!r}: max_parallelism must be ≥ 1")
        if self.accel_speedup < 1:
            raise ValueError(f"stage {self.name!r}: accel_speedup must be ≥ 1")
        self.remaining_work = self.work_cpu_seconds
        self.remaining_input = self.input_mb

    @property
    def complete(self) -> bool:
        return self.remaining_work <= 1e-9 and self.remaining_input <= 1e-9

    @property
    def progress(self) -> float:
        done_work = self.work_cpu_seconds - self.remaining_work
        return done_work / self.work_cpu_seconds


def _validate_dag(stages: Sequence[Stage]) -> list[Stage]:
    """Check the stage graph is a DAG and return topological order."""
    by_name = {s.name: s for s in stages}
    if len(by_name) != len(stages):
        raise ValueError("duplicate stage names")
    graph = nx.DiGraph()
    graph.add_nodes_from(by_name)
    for stage in stages:
        for dep in stage.deps:
            if dep not in by_name:
                raise ValueError(f"stage {stage.name!r} depends on unknown {dep!r}")
            graph.add_edge(dep, stage.name)
    if not nx.is_directed_acyclic_graph(graph):
        raise ValueError("stage dependencies contain a cycle")
    # Stable topological order: break ties by submission order.
    order = list(nx.lexicographical_topological_sort(
        graph, key=lambda n: list(by_name).index(n)
    ))
    return [by_name[name] for name in order]


class BigDataJob(Application):
    """An elastic analytics job whose executors are cluster pods.

    Parameters
    ----------
    stages:
        The stage DAG.
    store / dataset:
        Object store and bucket holding the job's input; source stages
        (no deps) read it with locality-dependent bandwidth. Jobs without
        a dataset read everything at disk bandwidth.
    deadline:
        Optional absolute completion deadline, used by DeadlinePLO.
    accelerator:
        Accelerator class this job's stages can use (matched against the
        node label ``accelerator``). Sets a soft scheduling preference on
        the executors; stages with ``accel_speedup > 1`` retire CPU work
        faster on matching nodes.
    """

    def __init__(
        self,
        name: str,
        engine: Engine,
        api: ClusterAPI,
        *,
        stages: Sequence[Stage],
        initial_allocation: ResourceVector,
        initial_executors: int = 2,
        store: ObjectStore | None = None,
        dataset: str | None = None,
        deadline: float | None = None,
        accelerator: str | None = None,
        tick_interval: float = 1.0,
        priority: int = 5,
        labels: Mapping[str, str] | None = None,
        **kwargs,
    ):
        if accelerator:
            kwargs.setdefault("node_preference", {"accelerator": accelerator})
        super().__init__(
            name,
            engine,
            api,
            workload_class=WorkloadClass.BIGDATA,
            initial_allocation=initial_allocation,
            initial_replicas=initial_executors,
            tick_interval=tick_interval,
            priority=priority,
            labels=labels,
            **kwargs,
        )
        self.accelerator = accelerator
        self.stages = _validate_dag(stages)
        self.store = store
        self.dataset = dataset
        self.deadline = deadline
        if dataset is not None and store is None:
            raise ValueError("dataset requires a store")
        if dataset is not None:
            self.labels.setdefault("dataset", dataset)
        self.submitted_at: float | None = None
        self.completed_at: float | None = None
        self.current_throughput = 0.0  # cpu-seconds of work retired per second
        self._total_work = sum(s.work_cpu_seconds for s in self.stages)

    # -- lifecycle --------------------------------------------------------------

    def start(self) -> None:
        self.submitted_at = self.engine.now
        super().start()

    @property
    def done(self) -> bool:
        return self.completed_at is not None

    def makespan(self) -> float | None:
        """Submission-to-completion time, if finished."""
        if self.completed_at is None or self.submitted_at is None:
            return None
        return self.completed_at - self.submitted_at

    # -- dynamics ------------------------------------------------------------------

    def runnable_stages(self) -> list[Stage]:
        """Incomplete stages whose dependencies are all complete, in
        topological order. Independent DAG branches run concurrently."""
        done = {s.name for s in self.stages if s.complete}
        return [
            stage
            for stage in self.stages
            if not stage.complete and all(d in done for d in stage.deps)
        ]

    def current_stage(self) -> Stage | None:
        """First runnable stage (kept for single-branch DAGs and tests)."""
        runnable = self.runnable_stages()
        return runnable[0] if runnable else None

    def progress(self) -> float:
        """Work-weighted completion fraction across all stages."""
        if self._total_work <= 0:
            return 1.0
        done = sum(s.work_cpu_seconds - s.remaining_work for s in self.stages)
        return min(1.0, done / self._total_work)

    def _input_bandwidth(self, pod: Pod, stage: Stage) -> float:
        """Effective MB/s this executor can read for ``stage``."""
        is_source = not stage.deps
        if is_source and self.dataset is not None and self.store is not None:
            assert pod.node_name is not None
            local = self.store.locality_fraction(self.dataset, pod.node_name)
            remote_bw = pod.allocation.net_bw * self.store.remote_penalty
            return local * pod.allocation.disk_bw + (1 - local) * remote_bw
        # Shuffle input / no dataset: charged against disk bandwidth.
        return pod.allocation.disk_bw

    def _assign_executors(
        self, stages: list[Stage], executors: list[Pod]
    ) -> dict[str, Stage]:
        """Distribute executors over runnable stages.

        Round-robin in topological order, honoring each stage's
        ``max_parallelism``; leftover executors idle. Returns a map from
        pod name to its stage.
        """
        assignment: dict[str, Stage] = {}
        counts = {stage.name: 0 for stage in stages}
        pending = list(executors)
        while pending:
            open_stages = [
                s for s in stages if counts[s.name] < s.max_parallelism
            ]
            if not open_stages:
                break
            # Fill the emptiest open stage first (topo order breaks ties).
            target = min(open_stages, key=lambda s: counts[s.name])
            pod = pending.pop(0)
            assignment[pod.name] = target
            counts[target.name] += 1
        return assignment

    def _advance_executor(self, pod: Pod, stage: Stage, dt: float) -> float:
        """Run one executor on one stage for ``dt``; returns retired work.

        Input and work drain proportionally: an executor that has read
        fraction f of its input share can have completed at most f of its
        work share; the fluid model couples them via the min() below.
        """
        cpu_rate = pod.allocation.cpu  # cpu-seconds per second
        if (
            stage.accel_speedup > 1.0
            and self.accelerator is not None
            and pod.node_name is not None
            and self.api.get_node(pod.node_name).labels.get("accelerator")
            == self.accelerator
        ):
            cpu_rate *= stage.accel_speedup
        if stage.input_mb > 0 and stage.remaining_input > 0:
            in_bw = self._input_bandwidth(pod, stage)
            work_frac_rate = cpu_rate / stage.work_cpu_seconds
            input_frac_rate = (
                in_bw / stage.input_mb if stage.input_mb > 0 else math.inf
            )
            frac_rate = min(work_frac_rate, input_frac_rate)
            stage_work = frac_rate * stage.work_cpu_seconds * dt
            stage_input = frac_rate * stage.input_mb * dt
            cpu_used = stage_work / dt
            io_used = min(in_bw, stage_input / dt)
        else:
            stage_work = cpu_rate * dt
            stage_input = 0.0
            cpu_used = cpu_rate
            io_used = 0.0
        stage_work = min(stage_work, stage.remaining_work)
        stage_input = min(stage_input, stage.remaining_input)
        stage.remaining_work = max(0.0, stage.remaining_work - stage_work)
        stage.remaining_input = max(0.0, stage.remaining_input - stage_input)

        is_source = not stage.deps
        local_frac = 1.0
        if is_source and self.dataset is not None and self.store is not None:
            assert pod.node_name is not None
            local_frac = self.store.locality_fraction(self.dataset, pod.node_name)
        pod.record_usage(
            ResourceVector(
                cpu=min(cpu_used, pod.allocation.cpu),
                memory=min(pod.allocation.memory, 0.5 + 0.1 * pod.allocation.cpu),
                disk_bw=io_used * local_frac,
                net_bw=io_used * (1 - local_frac),
            )
        )
        return stage_work

    def tick(self, dt: float, now: float) -> None:
        if self.done:
            return
        runnable = self.runnable_stages()
        if not runnable:
            self._complete(now)
            return
        executors = self.running_pods()
        assignment = self._assign_executors(runnable, executors)
        work_retired = 0.0
        for pod in executors:
            stage = assignment.get(pod.name)
            if stage is None:
                pod.record_usage(
                    ResourceVector(memory=min(0.25, pod.allocation.memory))
                )
                continue
            work_retired += self._advance_executor(pod, stage, dt)
        self.current_throughput = work_retired / dt
        if all(s.complete for s in self.stages):
            self._complete(now)

    def _complete(self, now: float) -> None:
        if self.completed_at is not None:
            return
        self.completed_at = now
        self.current_throughput = 0.0
        for pod in self.pods():
            if not pod.terminal:
                self.api.mark_finished(pod.name, succeeded=True)
        self._pod_names.clear()
        if self._tick_handle is not None:
            self._tick_handle.cancel()
            self._tick_handle = None
        self.finished = True

    # -- metrics -------------------------------------------------------------------

    def sample_metrics(self, now: float) -> Mapping[str, float]:
        metrics = dict(super().sample_metrics(now))
        metrics.update(
            {
                "progress": self.progress(),
                "throughput": self.current_throughput,
                "stages_done": float(sum(1 for s in self.stages if s.complete)),
            }
        )
        return metrics
