"""Elastic big-data analytics jobs (Spark-like stage DAGs).

A job is a DAG of stages; each stage has a CPU work volume and an input
volume read from the shared object store. Executors (the job's pods)
process the current stage with a fluid model: per-executor progress is
limited by whichever is scarcer — CPU or input bandwidth — and input
bandwidth depends on data locality (local blocks stream over disk
bandwidth, remote ones over penalized network bandwidth).

Stages execute in topological order, one at a time (the common Spark
shape where a shuffle barrier separates stages); parallelism within a
stage is capped by its task count.

Fault tolerance (opt-in via :class:`~repro.dataplane.DataPlaneConfig`):
with ``ft.enabled`` the fluid model is replaced by a task-granular
engine — each stage splits into ``max_parallelism`` tasks, in-flight
task progress is lost when its executor dies (only that share re-opens),
completed tasks remember which node holds their shuffle output so losing
that node re-opens exactly the upstream work (lineage recompute),
stragglers get speculative duplicate copies (first finish wins), and
each stage carries a retry budget with exponential backoff before the
job is failed with a poison-stage quarantine. With ``ft`` unset the
fluid path runs untouched and seeded results are bit-identical to
builds without any of this.
"""

from __future__ import annotations

import math
import statistics
from dataclasses import dataclass, field
from typing import Mapping, Sequence

import networkx as nx

from repro.cluster.api import ClusterAPI
from repro.cluster.cluster import NodeNotFound
from repro.cluster.pod import Pod, WorkloadClass
from repro.cluster.resources import ResourceVector
from repro.dataplane import DataPlaneConfig
from repro.sim.engine import Engine
from repro.storage.objectstore import ObjectStore
from repro.workloads.base import Application


@dataclass
class Stage:
    """One stage of the job DAG.

    Parameters
    ----------
    name:
        Stage name, unique within the job.
    work_cpu_seconds:
        Total CPU work of the stage.
    input_mb:
        Total bytes read (from the dataset for source stages, shuffle
        data otherwise).
    deps:
        Names of stages that must complete first.
    max_parallelism:
        Task count: at most this many executors contribute concurrently.
    accel_speedup:
        CPU-work speedup an executor enjoys on an accelerator node (the
        EVOLVE FPGA path); 1.0 means the stage is not accelerable.
    """

    name: str
    work_cpu_seconds: float
    input_mb: float = 0.0
    deps: tuple[str, ...] = ()
    max_parallelism: int = 64
    accel_speedup: float = 1.0
    remaining_work: float = field(init=False)
    remaining_input: float = field(init=False)

    def __post_init__(self) -> None:
        if self.work_cpu_seconds <= 0:
            raise ValueError(f"stage {self.name!r}: work must be positive")
        if self.input_mb < 0:
            raise ValueError(f"stage {self.name!r}: input must be non-negative")
        if self.max_parallelism < 1:
            raise ValueError(f"stage {self.name!r}: max_parallelism must be ≥ 1")
        if self.accel_speedup < 1:
            raise ValueError(f"stage {self.name!r}: accel_speedup must be ≥ 1")
        self.remaining_work = self.work_cpu_seconds
        self.remaining_input = self.input_mb

    @property
    def complete(self) -> bool:
        return self.remaining_work <= 1e-9 and self.remaining_input <= 1e-9

    @property
    def progress(self) -> float:
        done_work = self.work_cpu_seconds - self.remaining_work
        return done_work / self.work_cpu_seconds


def _validate_dag(stages: Sequence[Stage]) -> list[Stage]:
    """Check the stage graph is a DAG and return topological order."""
    by_name = {s.name: s for s in stages}
    if len(by_name) != len(stages):
        raise ValueError("duplicate stage names")
    graph = nx.DiGraph()
    graph.add_nodes_from(by_name)
    for stage in stages:
        for dep in stage.deps:
            if dep not in by_name:
                raise ValueError(f"stage {stage.name!r} depends on unknown {dep!r}")
            graph.add_edge(dep, stage.name)
    if not nx.is_directed_acyclic_graph(graph):
        raise ValueError("stage dependencies contain a cycle")
    # Stable topological order: break ties by submission order.
    order = list(nx.lexicographical_topological_sort(
        graph, key=lambda n: list(by_name).index(n)
    ))
    return [by_name[name] for name in order]


_TASK_EPS = 1e-9


@dataclass
class _Task:
    """One task of a stage under the fault-tolerant engine.

    A task runs on at most one primary executor plus, optionally, one
    speculative copy. Work/input drain independently per copy; the first
    copy to finish retires the task and the loser's progress is wasted.
    """

    index: int
    work: float
    input_mb: float
    work_left: float = field(init=False)
    input_left: float = field(init=False)
    runner: str | None = None
    started_at: float | None = None
    spec_runner: str | None = None
    spec_started_at: float | None = None
    spec_work_left: float = 0.0
    spec_input_left: float = 0.0
    done: bool = False
    #: Node holding this task's (shuffle) output once done, and the
    #: wipe-epoch of that node at completion time — outputs written
    #: before a node went dark are gone even after it recovers.
    output_node: str | None = None
    output_epoch: int = 0
    #: Earliest time the task may be (re-)dispatched (retry backoff).
    dispatch_after: float = 0.0

    def __post_init__(self) -> None:
        self.work_left = self.work
        self.input_left = self.input_mb

    @property
    def speculating(self) -> bool:
        return self.spec_runner is not None

    def progress(self) -> float:
        """Primary-copy retired work (cpu-seconds)."""
        return 0.0 if self.done else self.work - self.work_left

    def spec_progress(self) -> float:
        return (self.work - self.spec_work_left) if self.speculating else 0.0


class _StageTasks:
    """Task-granular runtime state for one stage."""

    def __init__(self, stage: Stage):
        self.stage = stage
        n = stage.max_parallelism
        work = stage.work_cpu_seconds / n
        input_mb = stage.input_mb / n
        self.tasks = [_Task(i, work, input_mb) for i in range(n)]
        #: Fault-driven re-open batches this stage has absorbed.
        self.attempts = 0

    def done_count(self) -> int:
        return sum(1 for t in self.tasks if t.done)

    def useful_work(self) -> float:
        return sum(t.work if t.done else t.work - t.work_left for t in self.tasks)

    def spec_inflight(self) -> float:
        return sum(t.spec_progress() for t in self.tasks if not t.done)

    def sync_stage(self) -> None:
        """Mirror task state into the stage's fluid counters so
        ``Stage.complete`` / ``progress`` / metrics work unchanged."""
        self.stage.remaining_work = sum(
            t.work_left for t in self.tasks if not t.done
        )
        self.stage.remaining_input = sum(
            t.input_left for t in self.tasks if not t.done
        )


class BigDataJob(Application):
    """An elastic analytics job whose executors are cluster pods.

    Parameters
    ----------
    stages:
        The stage DAG.
    store / dataset:
        Object store and bucket holding the job's input; source stages
        (no deps) read it with locality-dependent bandwidth. Jobs without
        a dataset read everything at disk bandwidth.
    deadline:
        Optional absolute completion deadline, used by DeadlinePLO.
    accelerator:
        Accelerator class this job's stages can use (matched against the
        node label ``accelerator``). Sets a soft scheduling preference on
        the executors; stages with ``accel_speedup > 1`` retire CPU work
        faster on matching nodes.
    """

    def __init__(
        self,
        name: str,
        engine: Engine,
        api: ClusterAPI,
        *,
        stages: Sequence[Stage],
        initial_allocation: ResourceVector,
        initial_executors: int = 2,
        store: ObjectStore | None = None,
        dataset: str | None = None,
        deadline: float | None = None,
        accelerator: str | None = None,
        ft: DataPlaneConfig | None = None,
        tick_interval: float = 1.0,
        priority: int = 5,
        labels: Mapping[str, str] | None = None,
        **kwargs,
    ):
        if accelerator:
            kwargs.setdefault("node_preference", {"accelerator": accelerator})
        super().__init__(
            name,
            engine,
            api,
            workload_class=WorkloadClass.BIGDATA,
            initial_allocation=initial_allocation,
            initial_replicas=initial_executors,
            tick_interval=tick_interval,
            priority=priority,
            labels=labels,
            **kwargs,
        )
        self.accelerator = accelerator
        self.stages = _validate_dag(stages)
        self.store = store
        self.dataset = dataset
        self.deadline = deadline
        if dataset is not None and store is None:
            raise ValueError("dataset requires a store")
        if dataset is not None:
            self.labels.setdefault("dataset", dataset)
        self.submitted_at: float | None = None
        self.completed_at: float | None = None
        self.current_throughput = 0.0  # cpu-seconds of work retired per second
        self._total_work = sum(s.work_cpu_seconds for s in self.stages)
        # -- fault-tolerant task engine (None → fluid model, seed behaviour) --
        self.ft = ft if ft is not None and ft.enabled else None
        self.quarantined_stage: str | None = None
        self.failed_at: float | None = None
        #: Optional :class:`~repro.obs.telemetry.Telemetry` bundle; when
        #: set, FT events (executor loss, lineage recompute, speculation,
        #: quarantine) are traced under the ``dp`` category.
        self.telemetry = None
        if self.ft is not None:
            self._runtime = {s.name: _StageTasks(s) for s in self.stages}
            self._dependents: dict[str, list[Stage]] = {s.name: [] for s in self.stages}
            for stage in self.stages:
                for dep in stage.deps:
                    self._dependents[dep].append(stage)
            self._prev_executor_names: set[str] = set()
            self._dark_nodes: set[str] = set()
            self._node_wipes: dict[str, int] = {}
            self._slow_ticks: dict[str, int] = {}
            # Work-conservation ledger (cpu-seconds), audited by the
            # data-plane invariant: every unit an executor retires lands
            # in exactly one of useful / speculative-in-flight / wasted /
            # reopened.
            self.ft_retired_work = 0.0
            self.ft_reopened_work = 0.0
            self.ft_wasted_work = 0.0
            self.lineage_recomputes = 0
            self.executor_losses = 0
            self.speculative_launched = 0
            self.speculative_wins = 0

    # -- lifecycle --------------------------------------------------------------

    def start(self) -> None:
        self.submitted_at = self.engine.now
        super().start()

    @property
    def done(self) -> bool:
        return self.completed_at is not None

    @property
    def failed(self) -> bool:
        """True once a poison stage exhausted its retry budget."""
        return self.failed_at is not None

    def makespan(self) -> float | None:
        """Submission-to-completion time, if finished."""
        if self.completed_at is None or self.submitted_at is None:
            return None
        return self.completed_at - self.submitted_at

    # -- dynamics ------------------------------------------------------------------

    def runnable_stages(self) -> list[Stage]:
        """Incomplete stages whose dependencies are all complete, in
        topological order. Independent DAG branches run concurrently."""
        done = {s.name for s in self.stages if s.complete}
        return [
            stage
            for stage in self.stages
            if not stage.complete and all(d in done for d in stage.deps)
        ]

    def current_stage(self) -> Stage | None:
        """First runnable stage (kept for single-branch DAGs and tests)."""
        runnable = self.runnable_stages()
        return runnable[0] if runnable else None

    def progress(self) -> float:
        """Work-weighted completion fraction across all stages."""
        if self._total_work <= 0:
            return 1.0
        done = sum(s.work_cpu_seconds - s.remaining_work for s in self.stages)
        return min(1.0, done / self._total_work)

    def _input_bandwidth(self, pod: Pod, stage: Stage) -> float:
        """Effective MB/s this executor can read for ``stage``."""
        is_source = not stage.deps
        if is_source and self.dataset is not None and self.store is not None:
            assert pod.node_name is not None
            local = self.store.locality_fraction(self.dataset, pod.node_name)
            remote_bw = pod.allocation.net_bw * self.store.remote_penalty
            return local * pod.allocation.disk_bw + (1 - local) * remote_bw
        # Shuffle input / no dataset: charged against disk bandwidth.
        return pod.allocation.disk_bw

    def _assign_executors(
        self, stages: list[Stage], executors: list[Pod]
    ) -> dict[str, Stage]:
        """Distribute executors over runnable stages.

        Round-robin in topological order, honoring each stage's
        ``max_parallelism``; leftover executors idle. Returns a map from
        pod name to its stage.
        """
        assignment: dict[str, Stage] = {}
        counts = {stage.name: 0 for stage in stages}
        pending = list(executors)
        while pending:
            open_stages = [
                s for s in stages if counts[s.name] < s.max_parallelism
            ]
            if not open_stages:
                break
            # Fill the emptiest open stage first (topo order breaks ties).
            target = min(open_stages, key=lambda s: counts[s.name])
            pod = pending.pop(0)
            assignment[pod.name] = target
            counts[target.name] += 1
        return assignment

    def _advance_executor(self, pod: Pod, stage: Stage, dt: float) -> float:
        """Run one executor on one stage for ``dt``; returns retired work.

        Input and work drain proportionally: an executor that has read
        fraction f of its input share can have completed at most f of its
        work share; the fluid model couples them via the min() below.
        """
        cpu_rate = pod.allocation.cpu  # cpu-seconds per second
        if (
            stage.accel_speedup > 1.0
            and self.accelerator is not None
            and pod.node_name is not None
            and self.api.get_node(pod.node_name).labels.get("accelerator")
            == self.accelerator
        ):
            cpu_rate *= stage.accel_speedup
        if stage.input_mb > 0 and stage.remaining_input > 0:
            in_bw = self._input_bandwidth(pod, stage)
            work_frac_rate = cpu_rate / stage.work_cpu_seconds
            input_frac_rate = (
                in_bw / stage.input_mb if stage.input_mb > 0 else math.inf
            )
            frac_rate = min(work_frac_rate, input_frac_rate)
            stage_work = frac_rate * stage.work_cpu_seconds * dt
            stage_input = frac_rate * stage.input_mb * dt
            cpu_used = stage_work / dt
            io_used = min(in_bw, stage_input / dt)
        else:
            stage_work = cpu_rate * dt
            stage_input = 0.0
            cpu_used = cpu_rate
            io_used = 0.0
        stage_work = min(stage_work, stage.remaining_work)
        stage_input = min(stage_input, stage.remaining_input)
        stage.remaining_work = max(0.0, stage.remaining_work - stage_work)
        stage.remaining_input = max(0.0, stage.remaining_input - stage_input)

        is_source = not stage.deps
        local_frac = 1.0
        if is_source and self.dataset is not None and self.store is not None:
            assert pod.node_name is not None
            local_frac = self.store.locality_fraction(self.dataset, pod.node_name)
        pod.record_usage(
            ResourceVector(
                cpu=min(cpu_used, pod.allocation.cpu),
                memory=min(pod.allocation.memory, 0.5 + 0.1 * pod.allocation.cpu),
                disk_bw=io_used * local_frac,
                net_bw=io_used * (1 - local_frac),
            )
        )
        return stage_work

    def tick(self, dt: float, now: float) -> None:
        if self.ft is not None:
            self._tick_ft(dt, now)
            return
        if self.done:
            return
        runnable = self.runnable_stages()
        if not runnable:
            self._complete(now)
            return
        executors = self.running_pods()
        assignment = self._assign_executors(runnable, executors)
        work_retired = 0.0
        for pod in executors:
            stage = assignment.get(pod.name)
            if stage is None:
                pod.record_usage(
                    ResourceVector(memory=min(0.25, pod.allocation.memory))
                )
                continue
            work_retired += self._advance_executor(pod, stage, dt)
        self.current_throughput = work_retired / dt
        if all(s.complete for s in self.stages):
            self._complete(now)

    def _complete(self, now: float) -> None:
        if self.completed_at is not None:
            return
        self.completed_at = now
        self.current_throughput = 0.0
        for pod in self.pods():
            if not pod.terminal:
                self.api.mark_finished(pod.name, succeeded=True)
        self._pod_names.clear()
        if self._tick_handle is not None:
            self._tick_handle.cancel()
            self._tick_handle = None
        self.finished = True

    # -- fault-tolerant task engine --------------------------------------------

    def _tick_ft(self, dt: float, now: float) -> None:
        assert self.ft is not None
        if self.done or self.failed:
            return
        self._detect_executor_loss(now)
        if self.ft.lineage:
            self._reopen_lost_outputs(now)
        if self._check_quarantine(now):
            return
        runnable = self.runnable_stages()
        if not runnable:
            self._complete(now)
            return
        executors = self.running_pods()
        assignment = self._assign_executors(runnable, executors)
        self._release_moved_tasks(assignment)
        work_retired = 0.0
        stage_rates: dict[str, dict[str, float]] = {}
        for pod in executors:
            stage = assignment.get(pod.name)
            if stage is None:
                pod.record_usage(
                    ResourceVector(memory=min(0.25, pod.allocation.memory))
                )
                continue
            retired = self._advance_pod_ft(pod, self._runtime[stage.name], dt, now)
            work_retired += retired
            stage_rates.setdefault(stage.name, {})[pod.name] = retired / dt
        self._update_stragglers(stage_rates)
        for rt in self._runtime.values():
            rt.sync_stage()
        self.current_throughput = work_retired / dt
        self._prev_executor_names = set(self._pod_names)
        if all(s.complete for s in self.stages):
            self._complete(now)

    # -- fault detection -------------------------------------------------------

    def _detect_executor_loss(self, now: float) -> None:
        """Re-open the in-flight share of executors that disappeared."""
        current = set(self._pod_names)
        lost = self._prev_executor_names - current
        if not lost:
            return
        self.executor_losses += len(lost)
        if self.telemetry is not None:
            self.telemetry.tracer.instant(
                "executor_loss", "dp", job=self.name,
                lost=len(lost), executors=sorted(lost),
            )
        for name in lost:
            self._slow_ticks.pop(name, None)
        for rt in self._runtime.values():
            struck = False
            for t in rt.tasks:
                if t.done:
                    continue
                if t.spec_runner in lost:
                    self.ft_reopened_work += t.spec_progress()
                    self._clear_spec(t)
                    struck = True
                if t.runner in lost:
                    struck = True
                    self.ft_reopened_work += t.work - t.work_left
                    if t.speculating:
                        # Promote the surviving copy to primary.
                        t.runner = t.spec_runner
                        t.started_at = t.spec_started_at
                        t.work_left = t.spec_work_left
                        t.input_left = t.spec_input_left
                        self._clear_spec(t)
                    else:
                        t.runner = None
                        t.started_at = None
                        t.work_left = t.work
                        t.input_left = t.input_mb
                        t.dispatch_after = now  # backoff applied below
            if struck:
                self._charge_attempt(rt, now)
            rt.sync_stage()

    def _charge_attempt(self, rt: _StageTasks, now: float) -> None:
        """One fault batch on a stage: bump attempts, back off re-dispatch."""
        rt.attempts += 1
        backoff_until = now + self.ft.backoff(rt.attempts)
        for t in rt.tasks:
            if not t.done and t.runner is None:
                t.dispatch_after = max(t.dispatch_after, backoff_until)

    def _check_quarantine(self, now: float) -> bool:
        """Fail the job once any stage exhausts its retry budget."""
        if self.failed:
            return True
        for stage in self.stages:
            rt = self._runtime[stage.name]
            if rt.attempts > self.ft.stage_max_attempts:
                self.quarantined_stage = stage.name
                self.failed_at = now
                if self.telemetry is not None:
                    self.telemetry.tracer.instant(
                        "stage_quarantine", "dp", job=self.name,
                        stage=stage.name, attempts=rt.attempts,
                    )
                self.current_throughput = 0.0
                for pod in self.pods():
                    if not pod.terminal:
                        self.api.mark_finished(pod.name, succeeded=False)
                self._pod_names.clear()
                if self._tick_handle is not None:
                    self._tick_handle.cancel()
                    self._tick_handle = None
                self.finished = True
                return True
        return False

    # -- lineage recompute -----------------------------------------------------

    def _refresh_dark_nodes(self) -> None:
        referenced = {
            t.output_node
            for rt in self._runtime.values()
            for t in rt.tasks
            if t.done and t.output_node is not None
        }
        for name in sorted(referenced):
            try:
                dark = self.api.get_node(name).allocatable.is_zero()
            except NodeNotFound:
                dark = True
            if dark and name not in self._dark_nodes:
                self._dark_nodes.add(name)
                self._node_wipes[name] = self._node_wipes.get(name, 0) + 1
            elif not dark and name in self._dark_nodes:
                self._dark_nodes.discard(name)

    def _output_lost(self, t: _Task) -> bool:
        if t.output_node is None:
            return False
        if t.output_node in self._dark_nodes:
            return True
        return self._node_wipes.get(t.output_node, 0) != t.output_epoch

    def _reopen_lost_outputs(self, now: float) -> None:
        """Re-open completed tasks whose shuffle output is gone and still
        needed by an incomplete dependent, cascading into upstream stages
        until a fixpoint (recomputing a stage needs *its* inputs too)."""
        self._refresh_dark_nodes()
        changed = True
        while changed:
            changed = False
            for stage in self.stages:
                if not any(not d.complete for d in self._dependents[stage.name]):
                    continue  # output not needed (terminal results are durable)
                rt = self._runtime[stage.name]
                lost = [t for t in rt.tasks if t.done and self._output_lost(t)]
                if not lost:
                    continue
                for t in lost:
                    t.done = False
                    t.work_left = t.work
                    t.input_left = t.input_mb
                    t.output_node = None
                    t.runner = None
                    t.started_at = None
                    self._clear_spec(t)
                    self.ft_reopened_work += t.work
                self.lineage_recomputes += len(lost)
                if self.telemetry is not None:
                    self.telemetry.tracer.instant(
                        "lineage_recompute", "dp", job=self.name,
                        stage=stage.name, tasks=len(lost),
                    )
                self._charge_attempt(rt, now)
                rt.sync_stage()
                changed = True

    # -- task execution --------------------------------------------------------

    def _clear_spec(self, t: _Task) -> None:
        t.spec_runner = None
        t.spec_started_at = None
        t.spec_work_left = 0.0
        t.spec_input_left = 0.0

    def _release_moved_tasks(self, assignment: Mapping[str, Stage]) -> None:
        """Drop task claims of pods now assigned elsewhere (or idled).

        A moved primary keeps its partial progress (the share stays
        attributable as useful work); a moved speculative copy is
        abandoned and its progress counted as waste. Releasing idle
        pods' claims matters for liveness: an unreleased claim would
        block every other executor from ever picking the task up."""
        for stage_name, rt in self._runtime.items():
            for t in rt.tasks:
                if t.done:
                    continue
                if t.runner is not None:
                    target = assignment.get(t.runner)
                    if target is None or target.name != stage_name:
                        t.runner = None
                        t.started_at = None
                if t.spec_runner is not None:
                    target = assignment.get(t.spec_runner)
                    if target is None or target.name != stage_name:
                        self.ft_wasted_work += t.spec_progress()
                        self._clear_spec(t)

    def _held_task(self, rt: _StageTasks, pod_name: str) -> tuple[_Task, bool] | None:
        """The (task, is_primary) this pod currently runs in ``rt``."""
        for t in rt.tasks:
            if t.done:
                continue
            if t.runner == pod_name:
                return t, True
            if t.spec_runner == pod_name:
                return t, False
        return None

    def _claim_task(
        self, rt: _StageTasks, pod_name: str, now: float
    ) -> tuple[_Task, bool] | None:
        for t in rt.tasks:
            if not t.done and t.runner is None and t.dispatch_after <= now:
                t.runner = pod_name
                t.started_at = now
                return t, True
        if (
            self.ft.speculation
            and rt.done_count() >= self.ft.speculation_quantile * len(rt.tasks)
        ):
            candidates = [
                t
                for t in rt.tasks
                if not t.done
                and t.runner is not None
                and t.runner != pod_name
                and not t.speculating
                and self._slow_ticks.get(t.runner, 0) >= self.ft.straggler_patience
            ]
            if candidates:
                t = min(candidates, key=lambda t: (t.started_at, t.index))
                t.spec_runner = pod_name
                t.spec_started_at = now
                t.spec_work_left = t.work
                t.spec_input_left = t.input_mb
                self.speculative_launched += 1
                if self.telemetry is not None:
                    self.telemetry.tracer.instant(
                        "speculation_launch", "dp", job=self.name,
                        stage=rt.stage.name, task=t.index,
                        straggler=t.runner, duplicate=pod_name,
                    )
                return t, False
        return None

    def _advance_pod_ft(
        self, pod: Pod, rt: _StageTasks, dt: float, now: float
    ) -> float:
        """Run one executor inside one stage for ``dt``; returns retired work.

        The executor drains its claimed task and, with leftover tick
        budget, pulls further pending tasks — so task granularity does
        not throttle throughput below the fluid model's."""
        stage = rt.stage
        cpu_rate = pod.allocation.cpu
        node = None
        if pod.node_name is not None:
            try:
                node = self.api.get_node(pod.node_name)
            except NodeNotFound:  # pragma: no cover - nodes are never removed
                node = None
        if node is not None:
            cpu_rate *= node.speed_factor
            if (
                stage.accel_speedup > 1.0
                and self.accelerator is not None
                and node.labels.get("accelerator") == self.accelerator
            ):
                cpu_rate *= stage.accel_speedup
        if cpu_rate <= 0:
            pod.record_usage(ResourceVector(memory=min(0.25, pod.allocation.memory)))
            return 0.0
        in_bw = self._input_bandwidth(pod, stage)
        budget = dt
        retired = 0.0
        io_mb = 0.0
        while budget > _TASK_EPS:
            held = self._held_task(rt, pod.name)
            if held is None:
                held = self._claim_task(rt, pod.name, now)
            if held is None:
                break
            t, primary = held
            work_left = t.work_left if primary else t.spec_work_left
            input_left = t.input_left if primary else t.spec_input_left
            if t.input_mb > 0 and input_left > _TASK_EPS:
                frac_rate = min(cpu_rate / t.work, in_bw / t.input_mb)
            else:
                frac_rate = cpu_rate / t.work
            if frac_rate <= 0:
                break
            time_to_finish = (work_left / t.work) / frac_rate
            step = min(budget, time_to_finish)
            dw = min(frac_rate * t.work * step, work_left)
            di = (
                min(frac_rate * t.input_mb * step, input_left)
                if input_left > 0
                else 0.0
            )
            if primary:
                t.work_left = max(0.0, t.work_left - dw)
                t.input_left = max(0.0, t.input_left - di)
                finished = t.work_left <= _TASK_EPS and t.input_left <= _TASK_EPS
            else:
                t.spec_work_left = max(0.0, t.spec_work_left - dw)
                t.spec_input_left = max(0.0, t.spec_input_left - di)
                finished = (
                    t.spec_work_left <= _TASK_EPS
                    and t.spec_input_left <= _TASK_EPS
                )
            retired += dw
            io_mb += di
            budget -= max(step, _TASK_EPS)
            self.ft_retired_work += dw
            if finished:
                self._finish_task(t, primary, pod)
        is_source = not stage.deps
        local_frac = 1.0
        if is_source and self.dataset is not None and self.store is not None:
            assert pod.node_name is not None
            local_frac = self.store.locality_fraction(self.dataset, pod.node_name)
        io_rate = io_mb / dt
        pod.record_usage(
            ResourceVector(
                cpu=min(retired / dt, pod.allocation.cpu),
                memory=min(pod.allocation.memory, 0.5 + 0.1 * pod.allocation.cpu),
                disk_bw=io_rate * local_frac,
                net_bw=io_rate * (1 - local_frac),
            )
        )
        return retired

    def _finish_task(self, t: _Task, primary: bool, pod: Pod) -> None:
        """Retire a task copy; the losing duplicate's progress is waste."""
        if primary:
            if t.speculating:
                self.ft_wasted_work += t.spec_progress()
                self._clear_spec(t)
        else:
            self.ft_wasted_work += t.work - t.work_left
            self.speculative_wins += 1
            if self.telemetry is not None:
                self.telemetry.tracer.instant(
                    "speculation_win", "dp", job=self.name,
                    task=t.index, winner=pod.name, loser=t.runner,
                )
            t.runner = pod.name
            self._clear_spec(t)
        t.done = True
        t.work_left = 0.0
        t.input_left = 0.0
        t.output_node = pod.node_name
        t.output_epoch = (
            self._node_wipes.get(pod.node_name, 0) if pod.node_name else 0
        )

    def _update_stragglers(self, stage_rates: dict[str, dict[str, float]]) -> None:
        """Track executors persistently below their stage's median rate."""
        active: set[str] = set()
        for rates in stage_rates.values():
            active |= set(rates)
            if len(rates) < 3:
                continue  # median is meaningless for tiny pools
            median = statistics.median(rates.values())
            if median <= 0:
                continue
            threshold = self.ft.straggler_factor * median
            for pod_name, rate in rates.items():
                if rate < threshold:
                    self._slow_ticks[pod_name] = self._slow_ticks.get(pod_name, 0) + 1
                else:
                    self._slow_ticks.pop(pod_name, None)
        for pod_name in list(self._slow_ticks):
            if pod_name not in active:
                self._slow_ticks.pop(pod_name)

    # -- conservation ledger ---------------------------------------------------

    def ft_accounting(self) -> dict[str, float] | None:
        """Work-conservation ledger: retired = useful + spec + waste + reopened."""
        if self.ft is None:
            return None
        useful = sum(rt.useful_work() for rt in self._runtime.values())
        spec_inflight = sum(rt.spec_inflight() for rt in self._runtime.values())
        return {
            "retired": self.ft_retired_work,
            "useful": useful,
            "spec_inflight": spec_inflight,
            "wasted": self.ft_wasted_work,
            "reopened": self.ft_reopened_work,
        }

    # -- metrics -------------------------------------------------------------------

    def sample_metrics(self, now: float) -> Mapping[str, float]:
        metrics = dict(super().sample_metrics(now))
        metrics.update(
            {
                "progress": self.progress(),
                "throughput": self.current_throughput,
                "stages_done": float(sum(1 for s in self.stages if s.complete)),
            }
        )
        if self.ft is not None:
            metrics.update(
                {
                    "ft_reopened_work": self.ft_reopened_work,
                    "ft_wasted_work": self.ft_wasted_work,
                    "lineage_recomputes": float(self.lineage_recomputes),
                    "speculative_wins": float(self.speculative_wins),
                    "executor_losses": float(self.executor_losses),
                    "job_failed": 1.0 if self.failed else 0.0,
                }
            )
        return metrics


# -- BatchBench-style batch mixes -----------------------------------------------
#
# Builders for the workload-aware batch shapes BatchBench argues autoscaler
# evaluation needs: deadline-bearing fork-join DAGs, skewed fan-outs with
# stragglers, and recurring pipelines. They produce plain ``Stage`` lists /
# submissions, so every engine feature above (FT, speculation, lineage)
# applies unchanged.


def fork_join_stages(
    *,
    width: int = 4,
    source_work: float = 300.0,
    branch_work: float = 600.0,
    join_work: float = 200.0,
    input_mb: float = 512.0,
    branch_parallelism: int = 16,
    accel_speedup: float = 1.0,
) -> list[Stage]:
    """A deterministic fork-join DAG: source → ``width`` branches → join.

    The canonical deadline-job shape — submit with
    ``platform.submit_bigdata(..., deadline=...)`` to get a
    deadline-bearing DAG job whose critical path is one branch.
    """
    if width < 1:
        raise ValueError("width must be ≥ 1")
    stages = [Stage("source", source_work, input_mb=input_mb)]
    for i in range(width):
        stages.append(
            Stage(
                f"branch-{i}",
                branch_work,
                input_mb=input_mb / width,
                deps=("source",),
                max_parallelism=branch_parallelism,
                accel_speedup=accel_speedup,
            )
        )
    stages.append(
        Stage(
            "join",
            join_work,
            input_mb=input_mb / 4,
            deps=tuple(f"branch-{i}" for i in range(width)),
        )
    )
    return stages


def skewed_fanout_stages(
    rng,
    *,
    fanout: int = 8,
    base_work: float = 400.0,
    skew_alpha: float = 1.3,
    straggler_factor: float = 4.0,
    source_work: float = 200.0,
    input_mb: float = 256.0,
    join_work: float = 150.0,
    branch_parallelism: int = 8,
) -> list[Stage]:
    """A fan-out whose branch work is Pareto-skewed, with one straggler.

    Per-branch work is ``base_work · (1 + Pareto(skew_alpha))`` — a few
    branches dominate, as skewed shuffle partitions do — and one branch
    (chosen by ``rng``) is further multiplied by ``straggler_factor``.
    Draws come from ``rng`` (use a named stream, e.g.
    ``workload/<job>/mix``) so the mix is seed-deterministic.
    """
    if fanout < 1:
        raise ValueError("fanout must be ≥ 1")
    if skew_alpha <= 0 or straggler_factor < 1:
        raise ValueError("skew_alpha must be > 0 and straggler_factor ≥ 1")
    multipliers = 1.0 + rng.pareto(skew_alpha, size=fanout)
    straggler = int(rng.integers(fanout))
    stages = [Stage("source", source_work, input_mb=input_mb)]
    for i in range(fanout):
        work = base_work * float(multipliers[i])
        if i == straggler:
            work *= straggler_factor
        stages.append(
            Stage(
                f"part-{i}",
                work,
                input_mb=input_mb / fanout,
                deps=("source",),
                max_parallelism=branch_parallelism,
            )
        )
    stages.append(
        Stage(
            "merge",
            join_work,
            input_mb=input_mb / 4,
            deps=tuple(f"part-{i}" for i in range(fanout)),
        )
    )
    return stages


class RecurringPipeline:
    """Periodic re-submission of a DAG job (the nightly-ETL shape).

    ``runs`` jobs are created up front, one per period:
    ``submit(name, stages, run_index)`` is called for each and must
    arrange the actual start at ``start + run_index · period`` (the
    platform's deferred-start submission does exactly that — see
    :meth:`repro.platform.evolve.EvolvePlatform.submit_recurring_pipeline`).
    ``stages_factory(run_index)`` builds each run's DAG, so runs may
    vary (e.g. a seeded skewed fan-out per run).
    """

    def __init__(
        self,
        submit,
        *,
        name: str,
        stages_factory,
        period: float,
        runs: int,
        start: float = 0.0,
    ):
        if period <= 0:
            raise ValueError("period must be positive")
        if runs < 1:
            raise ValueError("runs must be ≥ 1")
        if start < 0:
            raise ValueError("start must be non-negative")
        self.name = name
        self.period = float(period)
        self.runs = int(runs)
        self.start = float(start)
        self.jobs: list[BigDataJob] = [
            submit(f"{name}-r{i}", stages_factory(i), i) for i in range(runs)
        ]

    @property
    def completed_runs(self) -> int:
        return sum(1 for j in self.jobs if j.done)

    @property
    def failed_runs(self) -> int:
        return sum(1 for j in self.jobs if j.failed)

    def makespans(self) -> list[float]:
        """Per-run submission-to-completion times for finished runs."""
        return [s for s in (job.makespan() for job in self.jobs) if s is not None]
