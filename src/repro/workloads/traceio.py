"""Versioned trace files and the event-level replayer.

The drop-in path for real cluster traces: export ``(time, rate)``
samples from any monitoring system into the schema below, then replay
them — as a :class:`~repro.workloads.traces.ReplayTrace` rate curve,
or as a discrete event stream through :class:`TraceReplayer`.

## File schema (``repro.trace/v1``)

JSON::

    {
      "schema": "repro.trace/v1",
      "name": "frontend-week",
      "unit": "rps",
      "description": "optional free text",
      "samples": [[0.0, 120.0], [60.0, 180.5], ...]
    }

CSV: a ``time,rate`` header row followed by numeric rows (the header is
required — it is the version marker for CSV files). Samples must be
sorted by time, finite, and non-negative; violations are load errors,
never silent clamps. ``SCHEMA_VERSIONS`` lists the formats this build
reads; bump :data:`SCHEMA` when the layout changes incompatibly.

## Replay modes

``TraceReplayer`` turns the rate curve into arrival events two ways:

* ``deterministic`` — inverts the cumulative rate integral Λ(t): one
  event each time Λ crosses an integer. No RNG, so a given file always
  produces byte-identical events; the golden-replay test pins a
  fingerprint of exactly this stream to catch silent schema or
  integration drift.
* ``poisson`` — a non-homogeneous Poisson draw
  (:class:`~repro.workloads.arrivals.PoissonArrivals`) driven by the
  replayed curve, for statistically-realistic jitter.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

import numpy as np

from repro.workloads.arrivals import PoissonArrivals
from repro.workloads.traces import LoadTrace, ReplayTrace

__all__ = [
    "SCHEMA",
    "SCHEMA_VERSIONS",
    "TraceSchemaError",
    "LoadedTrace",
    "load_trace",
    "TraceReplayer",
    "event_fingerprint",
]

#: Current trace-file schema identifier.
SCHEMA = "repro.trace/v1"
#: Schemas this build reads.
SCHEMA_VERSIONS = (SCHEMA,)


class TraceSchemaError(ValueError):
    """A trace file that does not conform to a supported schema."""


def _validate_samples(
    samples: Sequence[Sequence[float]], origin: str
) -> tuple[tuple[float, float], ...]:
    cleaned: list[tuple[float, float]] = []
    last_t = -math.inf
    for i, row in enumerate(samples):
        if len(row) != 2:
            raise TraceSchemaError(
                f"{origin}: sample {i} has {len(row)} fields, expected 2"
            )
        t, r = float(row[0]), float(row[1])
        if not (math.isfinite(t) and math.isfinite(r)):
            raise TraceSchemaError(
                f"{origin}: sample {i} is not finite ({t}, {r})"
            )
        if r < 0:
            raise TraceSchemaError(f"{origin}: sample {i} rate is negative")
        if t < last_t:
            raise TraceSchemaError(
                f"{origin}: samples not sorted by time at index {i}"
            )
        last_t = t
        cleaned.append((t, r))
    if not cleaned:
        raise TraceSchemaError(f"{origin}: no samples")
    return tuple(cleaned)


@dataclass(frozen=True)
class LoadedTrace:
    """A parsed trace file: metadata plus the validated samples."""

    name: str
    samples: tuple[tuple[float, float], ...]
    unit: str = "rps"
    description: str = ""
    schema: str = SCHEMA
    meta: dict = field(default_factory=dict)

    def trace(
        self, *, time_scale: float = 1.0, rate_scale: float = 1.0
    ) -> ReplayTrace:
        """The samples as a step-interpolated rate curve."""
        return ReplayTrace(
            list(self.samples), time_scale=time_scale, rate_scale=rate_scale
        )

    @property
    def duration(self) -> float:
        return self.samples[-1][0] - self.samples[0][0]


def load_trace(path: str | Path) -> LoadedTrace:
    """Load a versioned trace file (``.json`` or ``.csv``).

    Raises :class:`TraceSchemaError` for unknown schemas, malformed
    rows, unsorted times, or negative/non-finite values.
    """
    path = Path(path)
    if path.suffix.lower() == ".json":
        try:
            data = json.loads(path.read_text())
        except json.JSONDecodeError as err:
            raise TraceSchemaError(f"{path.name}: invalid JSON: {err}")
        schema = data.get("schema")
        if schema not in SCHEMA_VERSIONS:
            raise TraceSchemaError(
                f"{path.name}: schema {schema!r} not supported "
                f"(this build reads {SCHEMA_VERSIONS})"
            )
        samples = _validate_samples(data.get("samples", ()), path.name)
        meta = {
            k: v
            for k, v in data.items()
            if k not in ("schema", "name", "unit", "description", "samples")
        }
        return LoadedTrace(
            name=str(data.get("name", path.stem)),
            samples=samples,
            unit=str(data.get("unit", "rps")),
            description=str(data.get("description", "")),
            schema=schema,
            meta=meta,
        )
    if path.suffix.lower() == ".csv":
        rows: list[tuple[float, float]] = []
        with open(path) as handle:
            header = handle.readline().strip().lower().replace(" ", "")
            if header != "time,rate":
                raise TraceSchemaError(
                    f"{path.name}: CSV traces need a 'time,rate' header "
                    f"(got {header!r})"
                )
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                fields = line.split(",")
                if len(fields) != 2:
                    raise TraceSchemaError(
                        f"{path.name}: malformed row {line!r}"
                    )
                rows.append((float(fields[0]), float(fields[1])))
        samples = _validate_samples(rows, path.name)
        return LoadedTrace(name=path.stem, samples=samples)
    raise TraceSchemaError(
        f"{path.name}: unknown trace extension (want .json or .csv)"
    )


def event_fingerprint(times: Sequence[float], *, digits: int = 6) -> str:
    """Stable fingerprint of an event stream.

    Times are rounded to ``digits`` decimals and hashed, so the value
    is independent of container type and float formatting quirks; the
    golden-replay test pins one of these.
    """
    canon = ",".join(f"{round(float(t), digits):.{digits}f}" for t in times)
    return hashlib.sha256(canon.encode("utf-8")).hexdigest()


class TraceReplayer:
    """Replay a rate curve as discrete arrival events.

    Parameters
    ----------
    source:
        A :class:`LoadedTrace` (file contents) or any
        :class:`~repro.workloads.traces.LoadTrace`.
    time_scale / rate_scale:
        Stretch the recording and rescale its amplitude (only applied
        when ``source`` is a :class:`LoadedTrace`; a raw trace is
        replayed as-is).
    mode:
        ``"deterministic"`` (integral inversion, no RNG) or
        ``"poisson"`` (NHPP thinning; requires ``rng``).
    step:
        Integration resolution for the deterministic mode when the
        driving curve is not piecewise-constant.
    """

    def __init__(
        self,
        source: "LoadedTrace | LoadTrace",
        *,
        time_scale: float = 1.0,
        rate_scale: float = 1.0,
        mode: str = "deterministic",
        rng: np.random.Generator | None = None,
        step: float = 1.0,
    ):
        if mode not in ("deterministic", "poisson"):
            raise ValueError("mode must be 'deterministic' or 'poisson'")
        if mode == "poisson" and rng is None:
            raise ValueError("poisson mode needs an rng")
        if step <= 0:
            raise ValueError("step must be positive")
        if isinstance(source, LoadedTrace):
            self.trace: LoadTrace = source.trace(
                time_scale=time_scale, rate_scale=rate_scale
            )
        else:
            self.trace = source
        self.mode = mode
        self.step = float(step)
        self._poisson = (
            PoissonArrivals(self.trace, rng) if mode == "poisson" else None
        )
        # Deterministic mode carries the integral's fractional phase
        # across windows so contiguous windows stitch into one stream.
        self._det_t: float | None = None
        self._det_phase = 0.0

    # -- segment walk ----------------------------------------------------------

    def _segments(self, t0: float, t1: float):
        """Yield ``(a, b, rate)`` pieces covering ``[t0, t1)``.

        Exact for :class:`ReplayTrace` step curves; a ``step``-grid
        left-constant approximation otherwise. The rate within each
        yielded piece is constant.
        """
        trace = self.trace
        if isinstance(trace, ReplayTrace):
            times = trace._times
            cuts = [t for t in times if t0 < t < t1]
            bounds = [t0, *cuts, t1]
            for a, b in zip(bounds, bounds[1:]):
                yield a, b, max(0.0, trace.rate(a))
            return
        a = t0
        while a < t1:
            b = min(a + self.step, t1)
            yield a, b, max(0.0, trace.rate(a))
            a = b

    def window(self, t0: float, t1: float) -> np.ndarray:
        """Sorted event times in ``[t0, t1)``.

        In deterministic mode, calling with contiguous windows yields
        the same stream as one big window (the integral phase carries
        over); a non-contiguous call resets the phase at ``t0``.
        """
        if t1 <= t0:
            return np.empty(0)
        if self._poisson is not None:
            return self._poisson.window(t0, t1)
        if self._det_t is None or not math.isclose(
            self._det_t, t0, rel_tol=0.0, abs_tol=1e-9
        ):
            self._det_phase = 0.0
        events: list[float] = []
        phase = self._det_phase
        for a, b, rate in self._segments(t0, t1):
            if rate <= 0:
                continue
            # Λ grows by rate·(b−a) across the piece; one event per
            # integer crossing, then carry the fractional remainder.
            grown = phase + rate * (b - a)
            k = 1
            t = a + (k - phase) / rate
            while t < b - 1e-12:
                events.append(t)
                k += 1
                t = a + (k - phase) / rate
            phase = grown - (k - 1)
        self._det_phase = phase
        self._det_t = t1
        return np.asarray(events)

    def events(self, t0: float, t1: float) -> np.ndarray:
        """One-shot replay of ``[t0, t1)`` from a fresh phase."""
        self._det_t = None
        self._det_phase = 0.0
        return self.window(t0, t1)

    def fingerprint(self, t0: float, t1: float, *, digits: int = 6) -> str:
        """Fingerprint of the one-shot event stream over ``[t0, t1)``."""
        return event_fingerprint(self.events(t0, t1), digits=digits)
