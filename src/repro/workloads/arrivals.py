"""Open-loop arrival processes and load modulators.

:mod:`repro.workloads.traces` models *offered rate* as a function of
time; this module models the **arrival process** itself — the discrete,
randomly-timed request stream a web-scale service actually sees. The
distinction matters for realism: an open-loop process keeps arriving
regardless of how the service performs (no accidental back-pressure
from the load model), and its short-window statistics (burstiness,
inter-arrival variability, heavy-tailed request sizes) are what make
autoscalers earn their keep.

The pieces compose:

* :class:`PoissonArrivals` — a non-homogeneous Poisson process (NHPP)
  driven by any :class:`~repro.workloads.traces.LoadTrace` via Lewis &
  Shedler thinning.
* :class:`MMPPArrivals` — a Markov-modulated Poisson process: a hidden
  continuous-time Markov chain multiplies the driving trace's rate by a
  per-state factor, producing the over-dispersed (CV > 1) arrival
  streams real front-ends exhibit.
* :class:`ParetoSizes` / :class:`LognormalSizes` — heavy-tailed
  request-size marks; :class:`MarkedArrivals` staples them onto any
  arrival process.
* :class:`DiurnalModulator` / :class:`SpikeModulator` — multiplicative
  rate modulators (day/night cycles, flash-crowd spikes) that wrap an
  existing trace instead of replacing it.
* :class:`CorrelatedSurge` — a coordinator that couples surge windows
  across *many* apps: one shared, seeded surge schedule, per-app lags
  and factors, so a "front page links everything" event hits the whole
  fleet at once.

Every stochastic object takes an explicit numpy ``Generator``. Use the
platform registry's named streams (``workload/<app>/arrivals``,
``workload/<app>/sizes``, ``workload/surge``) so experiments stay
deterministic under one seed — see docs/workloads.md for the naming
scheme.
"""

from __future__ import annotations

import bisect
import math
from typing import Protocol, Sequence

import numpy as np

from repro.workloads.traces import LoadTrace

__all__ = [
    "ArrivalProcess",
    "PoissonArrivals",
    "MMPPArrivals",
    "SizeDistribution",
    "ParetoSizes",
    "LognormalSizes",
    "MarkedArrivals",
    "DiurnalModulator",
    "SpikeModulator",
    "CorrelatedSurge",
    "trace_integral",
]


def trace_integral(
    trace: LoadTrace, t0: float, t1: float, *, step: float = 1.0
) -> float:
    """Numerically integrate ``trace.rate`` over ``[t0, t1)``.

    Left-Riemann at ``step`` resolution — exact for the piecewise-
    constant traces (Step/Replay) when ``step`` divides their segment
    boundaries, and the reference the statistical-validation tests
    compare empirical arrival counts against.
    """
    if t1 <= t0:
        return 0.0
    n = int(math.ceil((t1 - t0) / step))
    total = 0.0
    for i in range(n):
        a = t0 + i * step
        b = min(t0 + (i + 1) * step, t1)
        total += trace.rate(a) * (b - a)
    return total


class ArrivalProcess(Protocol):
    """Open-loop request arrivals.

    ``window(t0, t1)`` returns the sorted event times in ``[t0, t1)``.
    Simulation consumers call it with contiguous, non-overlapping
    windows (one per model tick); statistical consumers may ask for one
    large window. Either way the draw sequence is a pure function of
    the generator's seed and the sequence of windows requested.
    """

    def window(self, t0: float, t1: float) -> np.ndarray: ...


def _estimate_bound(
    trace: LoadTrace, t0: float, t1: float, *, samples: int, margin: float
) -> float:
    """Upper bound on ``trace.rate`` over ``[t0, t1]`` from a grid scan."""
    if samples < 2:
        samples = 2
    grid = np.linspace(t0, t1, samples)
    peak = max(trace.rate(float(t)) for t in grid)
    return peak * margin


class PoissonArrivals:
    """Non-homogeneous Poisson arrivals driven by a :class:`LoadTrace`.

    Thinning: candidates arrive homogeneously at an upper bound
    ``rate_bound`` and are accepted with probability
    ``rate(t) / rate_bound``. When ``rate_bound`` is ``None`` the bound
    is estimated per window from a grid scan with a safety margin —
    exact for traces whose within-window peak the grid sees (constant,
    monotone, or slowly-varying over a tick); pass an explicit bound
    for spiky traces.

    Parameters
    ----------
    trace:
        Driving rate function (req/s).
    rng:
        Named numpy generator (``workload/<app>/arrivals``).
    rate_bound:
        Known global upper bound on the rate, or ``None`` to estimate
        per window.
    """

    def __init__(
        self,
        trace: LoadTrace,
        rng: np.random.Generator,
        *,
        rate_bound: float | None = None,
        bound_samples: int = 9,
        bound_margin: float = 1.25,
    ):
        if rate_bound is not None and rate_bound <= 0:
            raise ValueError("rate_bound must be positive")
        if bound_margin < 1.0:
            raise ValueError("bound_margin must be ≥ 1")
        self.trace = trace
        self.rng = rng
        self.rate_bound = rate_bound
        self.bound_samples = int(bound_samples)
        self.bound_margin = float(bound_margin)

    def _bound(self, t0: float, t1: float) -> float:
        if self.rate_bound is not None:
            return self.rate_bound
        return _estimate_bound(
            self.trace, t0, t1,
            samples=self.bound_samples, margin=self.bound_margin,
        )

    def _rate(self, t: float) -> float:
        return max(0.0, self.trace.rate(t))

    def window(self, t0: float, t1: float) -> np.ndarray:
        if t1 <= t0:
            return np.empty(0)
        bound = self._bound(t0, t1)
        if bound <= 0:
            return np.empty(0)
        n = int(self.rng.poisson(bound * (t1 - t0)))
        if n == 0:
            return np.empty(0)
        times = np.sort(self.rng.uniform(t0, t1, size=n))
        accept_u = self.rng.uniform(0.0, 1.0, size=n)
        rates = np.fromiter(
            (self._rate(float(t)) for t in times), dtype=float, count=n
        )
        return times[accept_u * bound < rates]


class MMPPArrivals:
    """Markov-modulated Poisson arrivals.

    A hidden continuous-time Markov chain with exponentially-distributed
    dwell times multiplies the driving trace's rate by the current
    state's ``factor``. With factors above and below 1 the resulting
    stream is over-dispersed (inter-arrival CV > 1): calm stretches and
    bursts, which is what production request logs look like and what
    plain Poisson cannot express.

    The state path is pre-drawn over ``horizon`` at construction, so
    the modulation is a pure function of time and the process stays
    deterministic under any window query pattern.
    """

    def __init__(
        self,
        trace: LoadTrace,
        rng: np.random.Generator,
        *,
        factors: Sequence[float] = (0.4, 1.0, 2.4),
        mean_dwell: float = 60.0,
        horizon: float = 86_400.0,
        rate_bound: float | None = None,
    ):
        if len(factors) < 2:
            raise ValueError("need at least two MMPP states")
        if any(f < 0 for f in factors):
            raise ValueError("state factors must be non-negative")
        if mean_dwell <= 0 or horizon <= 0:
            raise ValueError("mean_dwell and horizon must be positive")
        self.trace = trace
        self.rng = rng
        self.factors = tuple(float(f) for f in factors)
        self.mean_dwell = float(mean_dwell)
        self.horizon = float(horizon)
        # Pre-draw the state path: (switch_times, state_index_after).
        switch_times = [0.0]
        states = [int(rng.integers(len(self.factors)))]
        t = 0.0
        while t < horizon:
            t += float(rng.exponential(mean_dwell))
            # Jump to a uniformly-chosen *other* state.
            step = 1 + int(rng.integers(len(self.factors) - 1))
            states.append((states[-1] + step) % len(self.factors))
            switch_times.append(t)
        self._switch_times = switch_times
        self._states = states
        self._thin = PoissonArrivals(
            _ModulatedView(self), rng, rate_bound=rate_bound,
            bound_samples=17,
        )

    def factor_at(self, t: float) -> float:
        """State multiplier in effect at time ``t`` (last state holds
        beyond the pre-drawn horizon)."""
        idx = bisect.bisect_right(self._switch_times, t) - 1
        if idx < 0:
            idx = 0
        return self.factors[self._states[idx]]

    def rate(self, t: float) -> float:
        """Effective (modulated) arrival rate at ``t``."""
        return max(0.0, self.trace.rate(t)) * self.factor_at(t)

    def window(self, t0: float, t1: float) -> np.ndarray:
        return self._thin.window(t0, t1)


class _ModulatedView:
    """Adapter exposing an MMPP's effective rate as a LoadTrace."""

    def __init__(self, mmpp: MMPPArrivals):
        self._mmpp = mmpp

    def rate(self, t: float) -> float:
        return self._mmpp.rate(t)


# -- request-size marks ---------------------------------------------------------


class SizeDistribution(Protocol):
    """Per-request size marks (work multipliers, mean-normalizable)."""

    def sample(self, rng: np.random.Generator, n: int) -> np.ndarray: ...

    def mean(self) -> float: ...


class ParetoSizes:
    """Pareto(α, x_min) request sizes — the heavy tail of the web.

    ``alpha`` is the tail index (smaller = heavier; α ≤ 1 has infinite
    mean and is rejected). ``x_min`` is the scale. The statistical
    suite recovers ``alpha`` from samples with a Hill estimator.
    """

    def __init__(self, alpha: float = 1.6, x_min: float = 1.0):
        if alpha <= 1.0:
            raise ValueError("alpha must exceed 1 (finite mean)")
        if x_min <= 0:
            raise ValueError("x_min must be positive")
        self.alpha = float(alpha)
        self.x_min = float(x_min)

    def sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return self.x_min * (1.0 + rng.pareto(self.alpha, size=n))

    def mean(self) -> float:
        return self.alpha * self.x_min / (self.alpha - 1.0)


class LognormalSizes:
    """Lognormal request sizes parametrized by mean and coefficient of
    variation — the moderate-tail alternative to Pareto."""

    def __init__(self, mean: float = 1.0, cv: float = 1.0):
        if mean <= 0 or cv <= 0:
            raise ValueError("mean and cv must be positive")
        self._mean = float(mean)
        self.cv = float(cv)
        self.sigma = math.sqrt(math.log(1.0 + cv * cv))
        self.mu = math.log(mean) - self.sigma**2 / 2.0

    def sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return rng.lognormal(mean=self.mu, sigma=self.sigma, size=n)

    def mean(self) -> float:
        return self._mean


class MarkedArrivals:
    """An arrival process with a size mark stapled to every event.

    ``window_marked`` returns ``(times, sizes)``; ``window`` delegates
    to the underlying process so a marked process still satisfies the
    plain :class:`ArrivalProcess` protocol. Sizes draw from their own
    generator (``workload/<app>/sizes``) so arming marks never shifts
    the arrival-time stream.
    """

    def __init__(
        self,
        process: ArrivalProcess,
        sizes: SizeDistribution,
        rng: np.random.Generator,
    ):
        self.process = process
        self.sizes = sizes
        self.rng = rng

    def window(self, t0: float, t1: float) -> np.ndarray:
        return self.process.window(t0, t1)

    def window_marked(
        self, t0: float, t1: float
    ) -> tuple[np.ndarray, np.ndarray]:
        times = self.process.window(t0, t1)
        return times, self.sizes.sample(self.rng, len(times))

    def mean_size(self) -> float:
        return self.sizes.mean()


# -- compositional modulators ---------------------------------------------------


class DiurnalModulator:
    """Multiplicative day/night cycle over another trace.

    ``rate(t) = base.rate(t) · max(0, 1 + amplitude·sin(2π(t−phase)/period))``

    Unlike :class:`~repro.workloads.traces.DiurnalTrace` (an *additive*
    standalone shape), this modulates an arbitrary base — a replayed
    production trace keeps its fine structure while gaining a cycle.
    """

    def __init__(
        self,
        base: LoadTrace,
        *,
        amplitude: float = 0.5,
        period: float = 86_400.0,
        phase: float = 0.0,
    ):
        if not 0.0 <= amplitude:
            raise ValueError("amplitude must be non-negative")
        if period <= 0:
            raise ValueError("period must be positive")
        self.base = base
        self.amplitude = float(amplitude)
        self.period = float(period)
        self.phase = float(phase)

    def rate(self, t: float) -> float:
        cycle = 1.0 + self.amplitude * math.sin(
            2.0 * math.pi * (t - self.phase) / self.period
        )
        return max(0.0, self.base.rate(t) * max(0.0, cycle))


class SpikeModulator:
    """Flash-crowd spikes layered multiplicatively on another trace.

    Each spike is ``(start, peak_factor, rise, decay)``: the base rate
    is multiplied by ``1 + (peak_factor − 1)·shape(t)`` with the same
    fast-rise / slow-decay shape as
    :class:`~repro.workloads.traces.FlashCrowdTrace`. Spikes sum, so
    overlapping crowds compound.
    """

    def __init__(
        self,
        base: LoadTrace,
        spikes: Sequence[tuple[float, float, float, float]],
    ):
        for start, factor, rise, decay in spikes:
            if factor < 1.0 or rise <= 0 or decay <= 0:
                raise ValueError(
                    "spikes need peak_factor ≥ 1 and rise/decay > 0"
                )
        self.base = base
        self.spikes = [tuple(map(float, s)) for s in spikes]

    def multiplier(self, t: float) -> float:
        m = 1.0
        for start, factor, rise, decay in self.spikes:
            if t < start:
                continue
            dt = t - start
            shape = (1.0 - math.exp(-dt / rise)) * math.exp(-dt / decay)
            m += (factor - 1.0) * shape
        return m

    def rate(self, t: float) -> float:
        return max(0.0, self.base.rate(t) * self.multiplier(t))


# -- correlated multi-app surges ------------------------------------------------


class CorrelatedSurge:
    """Couples surge windows across many applications.

    One shared schedule of surge windows is drawn at construction
    (Poisson starts over ``horizon``, fixed ``duration``); every trace
    attached via :meth:`attach` is multiplied by its ``factor`` during
    those windows, optionally shifted by a per-app ``lag`` (drawn
    uniformly from ``[0, max_lag]`` when not given). Because all apps
    share the schedule, surges are *correlated* — the cluster-level
    demand spike an autoscaler cannot absorb by borrowing from idle
    neighbours, which is exactly what per-app rate curves fail to model.
    """

    def __init__(
        self,
        rng: np.random.Generator,
        *,
        horizon: float,
        mean_interval: float = 600.0,
        duration: float = 90.0,
        factor: float = 3.0,
        max_lag: float = 0.0,
    ):
        if horizon <= 0 or mean_interval <= 0 or duration <= 0:
            raise ValueError("horizon/mean_interval/duration must be positive")
        if factor < 1.0:
            raise ValueError("surge factor must be ≥ 1")
        if max_lag < 0:
            raise ValueError("max_lag must be non-negative")
        self.rng = rng
        self.duration = float(duration)
        self.factor = float(factor)
        self.max_lag = float(max_lag)
        starts: list[float] = []
        t = float(rng.exponential(mean_interval))
        while t < horizon:
            starts.append(t)
            t += float(rng.exponential(mean_interval))
        self.starts = starts
        self.attached: list[str] = []

    def windows(self) -> list[tuple[float, float]]:
        """The shared surge windows ``[(start, end), ...]``."""
        return [(s, s + self.duration) for s in self.starts]

    def active(self, t: float, *, lag: float = 0.0) -> bool:
        idx = bisect.bisect_right(self.starts, t - lag) - 1
        if idx < 0:
            return False
        return t - lag < self.starts[idx] + self.duration

    def attach(
        self,
        trace: LoadTrace,
        *,
        name: str = "",
        factor: float | None = None,
        lag: float | None = None,
    ) -> "LoadTrace":
        """Wrap ``trace`` so it surges on the shared schedule.

        ``lag`` defaults to a uniform draw from ``[0, max_lag]`` (one
        draw per attach, in attach order — attach apps in a stable
        order for reproducibility).
        """
        if lag is None:
            lag = (
                float(self.rng.uniform(0.0, self.max_lag))
                if self.max_lag > 0
                else 0.0
            )
        self.attached.append(name)
        return _SurgedTrace(
            trace,
            self,
            factor=self.factor if factor is None else float(factor),
            lag=float(lag),
        )


class _SurgedTrace:
    """A trace multiplied by the coordinator's factor during surges."""

    def __init__(
        self,
        base: LoadTrace,
        surge: CorrelatedSurge,
        *,
        factor: float,
        lag: float,
    ):
        self.base = base
        self.surge = surge
        self.factor = factor
        self.lag = lag

    def rate(self, t: float) -> float:
        value = self.base.rate(t)
        if self.surge.active(t, lag=self.lag):
            value *= self.factor
        return value
