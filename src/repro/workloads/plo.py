"""Performance Level Objectives (PLOs) and violation accounting.

A PLO captures the user's performance intent — the contract the controller
manages to — replacing per-resource requests as the user-facing knob.
``evaluate`` turns collected metrics into a normalized
:class:`PLOStatus`; the controller acts on ``status.error`` and the
evaluation harness integrates violations over time with
:class:`ViolationTracker`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.metrics.collector import MetricsCollector


@dataclass(frozen=True)
class PLOStatus:
    """Snapshot of an objective at one evaluation instant.

    Attributes
    ----------
    measured / target:
        Measured metric value and its objective, in the PLO's native unit.
    ratio:
        measured / target for "lower is better" objectives, target /
        measured for "higher is better" — so ratio > 1 always means
        *violating* and ratio < 1 means *overachieving*.
    error:
        ``ratio - 1``: positive when violating, negative when overachieving.
        This signed, normalized error is the controller input.
    violated:
        Whether the objective is currently breached.
    """

    measured: float | None
    target: float
    ratio: float | None
    error: float | None
    violated: bool

    @staticmethod
    def unknown(target: float) -> "PLOStatus":
        """Status when no measurement is available yet."""
        return PLOStatus(None, target, None, None, False)


class LatencyPLO:
    """Tail-latency objective: ``p<percentile> latency ≤ target`` seconds.

    Parameters
    ----------
    target:
        Latency bound in seconds.
    percentile:
        Which tail to control (default p99).
    window:
        Trailing window (s) over which the tail is computed.
    """

    kind = "latency"

    def __init__(
        self, target: float, *, percentile: float = 99.0, window: float = 30.0
    ):
        if target <= 0:
            raise ValueError("latency target must be positive")
        self.target = float(target)
        self.percentile = float(percentile)
        self.window = float(window)

    def metric_name(self, app: str) -> str:
        return f"app/{app}/latency"

    def evaluate(self, collector: MetricsCollector, app: str, now: float) -> PLOStatus:
        series_name = self.metric_name(app)
        if not collector.has_series(series_name):
            return PLOStatus.unknown(self.target)
        measured = collector.series(series_name).percentile_over(
            now, self.window, self.percentile
        )
        if measured is None:
            return PLOStatus.unknown(self.target)
        ratio = measured / self.target
        return PLOStatus(measured, self.target, ratio, ratio - 1.0, ratio > 1.0)


class ThroughputPLO:
    """Throughput objective: served rate ≥ target (req/s or tasks/s)."""

    kind = "throughput"

    def __init__(self, target: float, *, window: float = 30.0):
        if target <= 0:
            raise ValueError("throughput target must be positive")
        self.target = float(target)
        self.window = float(window)

    def metric_name(self, app: str) -> str:
        return f"app/{app}/throughput"

    def evaluate(self, collector: MetricsCollector, app: str, now: float) -> PLOStatus:
        series_name = self.metric_name(app)
        if not collector.has_series(series_name):
            return PLOStatus.unknown(self.target)
        measured = collector.series(series_name).mean_over(now, self.window)
        if measured is None:
            return PLOStatus.unknown(self.target)
        # Higher is better: ratio > 1 means under-delivering.
        ratio = self.target / measured if measured > 0 else float("inf")
        return PLOStatus(measured, self.target, ratio, ratio - 1.0, ratio > 1.0)


class DeadlinePLO:
    """Batch-job objective: finish by an absolute deadline.

    ``evaluate`` compares projected completion (from the job's reported
    ``progress`` and elapsed runtime) against the deadline, so the
    controller can react *before* the deadline is actually missed.
    """

    kind = "deadline"

    def __init__(self, deadline: float, *, start_time: float = 0.0):
        if deadline <= start_time:
            raise ValueError("deadline must be after start_time")
        self.deadline = float(deadline)
        self.start_time = float(start_time)

    @property
    def target(self) -> float:
        return self.deadline

    def metric_name(self, app: str) -> str:
        return f"app/{app}/progress"

    def evaluate(self, collector: MetricsCollector, app: str, now: float) -> PLOStatus:
        series_name = self.metric_name(app)
        if not collector.has_series(series_name):
            return PLOStatus.unknown(self.deadline)
        progress = collector.series(series_name).last()
        if progress is None:
            return PLOStatus.unknown(self.deadline)
        elapsed = max(1e-9, now - self.start_time)
        budget = self.deadline - self.start_time
        if progress >= 1.0:
            # Finished: violated only if it finished late (now past deadline
            # is fine once complete — completion time was recorded earlier).
            ratio = elapsed / budget if elapsed > budget else 1.0
            return PLOStatus(elapsed, budget, ratio, ratio - 1.0, False)
        if progress <= 0.0:
            projected = float("inf")
        else:
            projected = elapsed / progress
        ratio = projected / budget
        return PLOStatus(projected, budget, ratio, ratio - 1.0, ratio > 1.0)


class ViolationTracker:
    """Integrates PLO violations over time for the evaluation harness.

    Call :meth:`observe` at a fixed cadence; the tracker accumulates
    violation time, total observed time, and the worst/mean violation
    ratio — the quantities reconstructed tables R-T1/R-T3 report.
    """

    def __init__(self) -> None:
        self.observations = 0
        self.violations = 0
        self.violation_seconds = 0.0
        self.observed_seconds = 0.0
        self.worst_ratio = 0.0
        self._ratio_sum = 0.0
        self._ratio_count = 0
        self._last_time: float | None = None

    def observe(self, now: float, status: PLOStatus) -> None:
        """Record one evaluation instant."""
        dt = 0.0
        if self._last_time is not None:
            dt = max(0.0, now - self._last_time)
        self._last_time = now
        self.observed_seconds += dt
        self.observations += 1
        if status.ratio is not None:
            self._ratio_sum += status.ratio
            self._ratio_count += 1
            self.worst_ratio = max(self.worst_ratio, status.ratio)
        if status.violated:
            self.violations += 1
            self.violation_seconds += dt

    @property
    def violation_fraction(self) -> float:
        """Fraction of observed time spent in violation."""
        if self.observed_seconds <= 0:
            return 0.0
        return self.violation_seconds / self.observed_seconds

    @property
    def mean_ratio(self) -> float | None:
        if self._ratio_count == 0:
            return None
        return self._ratio_sum / self._ratio_count
