"""Workload models for the three converging worlds.

* :mod:`repro.workloads.microservice` — latency-sensitive cloud services
  (queueing model with multi-resource service demands).
* :mod:`repro.workloads.bigdata` — elastic DAG-structured analytics jobs,
  plus BatchBench-style batch-mix builders and recurring pipelines.
* :mod:`repro.workloads.hpc` — rigid gang-scheduled tightly-coupled jobs.

Plus the pieces they share: load-trace generators
(:mod:`repro.workloads.traces`), open-loop arrival processes and
modulators (:mod:`repro.workloads.arrivals`), versioned trace files and
the event replayer (:mod:`repro.workloads.traceio`), performance-level
objectives (:mod:`repro.workloads.plo`), and the replica-managing
application driver base (:mod:`repro.workloads.base`).
"""

from repro.workloads.arrivals import (
    ArrivalProcess,
    CorrelatedSurge,
    DiurnalModulator,
    LognormalSizes,
    MarkedArrivals,
    MMPPArrivals,
    ParetoSizes,
    PoissonArrivals,
    SizeDistribution,
    SpikeModulator,
    trace_integral,
)
from repro.workloads.base import Application
from repro.workloads.bigdata import (
    BigDataJob,
    RecurringPipeline,
    Stage,
    fork_join_stages,
    skewed_fanout_stages,
)
from repro.workloads.hpc import HPCJob
from repro.workloads.stream import Operator, StreamJob
from repro.workloads.microservice import DemandPhase, Microservice, ServiceDemands
from repro.workloads.plo import (
    DeadlinePLO,
    LatencyPLO,
    PLOStatus,
    ThroughputPLO,
    ViolationTracker,
)
from repro.workloads.traceio import (
    LoadedTrace,
    TraceReplayer,
    TraceSchemaError,
    event_fingerprint,
    load_trace,
)
from repro.workloads.traces import (
    BurstyTrace,
    CompositeTrace,
    ConstantTrace,
    DiurnalTrace,
    FlashCrowdTrace,
    LoadTrace,
    NoisyTrace,
    OUTrace,
    RampTrace,
    ReplayTrace,
    ScaledTrace,
    StepTrace,
)

__all__ = [
    "Application",
    "Microservice",
    "ServiceDemands",
    "DemandPhase",
    "BigDataJob",
    "Stage",
    "RecurringPipeline",
    "fork_join_stages",
    "skewed_fanout_stages",
    "HPCJob",
    "StreamJob",
    "Operator",
    "PLOStatus",
    "LatencyPLO",
    "ThroughputPLO",
    "DeadlinePLO",
    "ViolationTracker",
    "LoadTrace",
    "ConstantTrace",
    "StepTrace",
    "DiurnalTrace",
    "BurstyTrace",
    "FlashCrowdTrace",
    "RampTrace",
    "NoisyTrace",
    "OUTrace",
    "ReplayTrace",
    "ScaledTrace",
    "CompositeTrace",
    "ArrivalProcess",
    "PoissonArrivals",
    "MMPPArrivals",
    "SizeDistribution",
    "ParetoSizes",
    "LognormalSizes",
    "MarkedArrivals",
    "DiurnalModulator",
    "SpikeModulator",
    "CorrelatedSurge",
    "trace_integral",
    "LoadedTrace",
    "load_trace",
    "TraceReplayer",
    "TraceSchemaError",
    "event_fingerprint",
]
