"""Workload models for the three converging worlds.

* :mod:`repro.workloads.microservice` — latency-sensitive cloud services
  (queueing model with multi-resource service demands).
* :mod:`repro.workloads.bigdata` — elastic DAG-structured analytics jobs.
* :mod:`repro.workloads.hpc` — rigid gang-scheduled tightly-coupled jobs.

Plus the pieces they share: load-trace generators
(:mod:`repro.workloads.traces`), performance-level objectives
(:mod:`repro.workloads.plo`), and the replica-managing application driver
base (:mod:`repro.workloads.base`).
"""

from repro.workloads.base import Application
from repro.workloads.bigdata import BigDataJob, Stage
from repro.workloads.hpc import HPCJob
from repro.workloads.stream import Operator, StreamJob
from repro.workloads.microservice import DemandPhase, Microservice, ServiceDemands
from repro.workloads.plo import (
    DeadlinePLO,
    LatencyPLO,
    PLOStatus,
    ThroughputPLO,
    ViolationTracker,
)
from repro.workloads.traces import (
    BurstyTrace,
    CompositeTrace,
    ConstantTrace,
    DiurnalTrace,
    FlashCrowdTrace,
    LoadTrace,
    NoisyTrace,
    OUTrace,
    RampTrace,
    ReplayTrace,
    ScaledTrace,
    StepTrace,
)

__all__ = [
    "Application",
    "Microservice",
    "ServiceDemands",
    "DemandPhase",
    "BigDataJob",
    "Stage",
    "HPCJob",
    "StreamJob",
    "Operator",
    "PLOStatus",
    "LatencyPLO",
    "ThroughputPLO",
    "DeadlinePLO",
    "ViolationTracker",
    "LoadTrace",
    "ConstantTrace",
    "StepTrace",
    "DiurnalTrace",
    "BurstyTrace",
    "FlashCrowdTrace",
    "RampTrace",
    "NoisyTrace",
    "OUTrace",
    "ReplayTrace",
    "ScaledTrace",
    "CompositeTrace",
]
