"""Latency-sensitive microservice model.

Each replica is an M/M/1-style queueing station whose service rate is the
*minimum* over per-resource capacities — CPU, disk bandwidth, and network
bandwidth each impose their own request-rate ceiling, and insufficient
memory inflates service time (thrashing). This multi-resource coupling is
deliberately what makes single-resource (CPU-only) autoscalers fail: when
the bottleneck is I/O, adding CPU does not move latency.

The model advances in discrete ticks with explicit backlog, so transients
(load spikes before the controller reacts) produce realistic latency
excursions rather than instantaneous equilibria.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.cluster.api import ClusterAPI
from repro.cluster.pod import Pod, WorkloadClass
from repro.cluster.resources import ResourceVector
from repro.sim.engine import Engine
from repro.workloads.arrivals import ArrivalProcess
from repro.workloads.base import Application
from repro.workloads.traces import LoadTrace


@dataclass(frozen=True)
class ServiceDemands:
    """Per-request resource demands of a service.

    Parameters
    ----------
    cpu_seconds:
        CPU-seconds consumed per request.
    disk_mb / net_mb:
        Disk and network bytes (MB) moved per request.
    mem_base:
        Fixed per-replica memory footprint (GiB).
    mem_per_inflight:
        Additional memory per in-flight request (GiB).
    base_latency:
        Service time (s) at zero load with ample resources.
    """

    cpu_seconds: float
    disk_mb: float = 0.0
    net_mb: float = 0.0
    mem_base: float = 0.25
    mem_per_inflight: float = 0.001
    base_latency: float = 0.01

    def __post_init__(self) -> None:
        if self.cpu_seconds <= 0:
            raise ValueError("cpu_seconds must be positive")
        if min(self.disk_mb, self.net_mb, self.mem_base, self.mem_per_inflight) < 0:
            raise ValueError("demands must be non-negative")
        if self.base_latency <= 0:
            raise ValueError("base_latency must be positive")

    def capacity(self, allocation: ResourceVector) -> tuple[float, str]:
        """Max sustainable request rate under ``allocation``, and which
        resource imposes it (ignoring memory, handled via pressure).

        Strict ``<`` comparisons keep first-wins tie-breaking in the
        cpu → disk_bw → net_bw order without building candidate lists —
        this runs once per replica per model tick.
        """
        cap = allocation.cpu / self.cpu_seconds
        which = "cpu"
        if self.disk_mb > 0:
            disk_cap = allocation.disk_bw / self.disk_mb
            if disk_cap < cap:
                cap, which = disk_cap, "disk_bw"
        if self.net_mb > 0:
            net_cap = allocation.net_bw / self.net_mb
            if net_cap < cap:
                cap, which = net_cap, "net_bw"
        return cap, which


@dataclass(frozen=True)
class DemandPhase:
    """A demand profile taking effect at ``start_time`` (phase shifts)."""

    start_time: float
    demands: ServiceDemands


class _ReplicaState:
    """Mutable queueing state of one replica."""

    __slots__ = ("backlog", "last_wait")

    def __init__(self) -> None:
        self.backlog = 0.0       # queued requests
        self.last_wait = 0.0     # previous-tick response time (s)


class Microservice(Application):
    """A horizontally- and vertically-scalable user-facing service.

    Parameters
    ----------
    trace:
        Offered load over time (req/s), split evenly across running
        replicas by an ideal load balancer.
    arrivals:
        Optional open-loop arrival process
        (:class:`~repro.workloads.arrivals.ArrivalProcess`). When set,
        offered load comes from counting its events over each tick
        window instead of sampling ``trace.rate`` — the discrete stream
        carries the burstiness a rate curve averages away. A
        :class:`~repro.workloads.arrivals.MarkedArrivals` process also
        scales per-request demand by the tick's mean size mark
        (normalized by the distribution mean), modelling heavy-tailed
        request sizes. ``trace`` is still required: it is what the
        forecasters and scenario specs describe, and what arrival
        processes are driven by.
    demands:
        Per-request demand profile, or a sequence of :class:`DemandPhase`
        for workloads whose bottleneck shifts over time.
    tail_factor:
        Multiplier turning mean response time into the reported latency
        sample (≈ p99/mean for the modelled service).
    max_latency:
        Reported-latency ceiling (s); stands in for client timeouts.
    queue_limit_seconds:
        Admission control: each replica sheds arrivals beyond
        ``capacity × queue_limit_seconds`` of backlog, as client timeouts
        and load shedders do — so an overloaded service recovers once
        load drops instead of draining an unbounded queue forever.
    """

    def __init__(
        self,
        name: str,
        engine: Engine,
        api: ClusterAPI,
        *,
        trace: LoadTrace,
        arrivals: ArrivalProcess | None = None,
        demands: ServiceDemands | Sequence[DemandPhase],
        initial_allocation: ResourceVector,
        initial_replicas: int = 1,
        tick_interval: float = 1.0,
        tail_factor: float = 1.0,
        max_latency: float = 30.0,
        queue_limit_seconds: float = 60.0,
        priority: int = 10,
        labels: Mapping[str, str] | None = None,
        **kwargs,
    ):
        super().__init__(
            name,
            engine,
            api,
            workload_class=WorkloadClass.MICROSERVICE,
            initial_allocation=initial_allocation,
            initial_replicas=initial_replicas,
            tick_interval=tick_interval,
            priority=priority,
            labels=labels,
            **kwargs,
        )
        self.trace = trace
        self.arrivals = arrivals
        self._marked = arrivals is not None and hasattr(arrivals, "window_marked")
        self.current_size_factor = 1.0
        if isinstance(demands, ServiceDemands):
            self._phases = [DemandPhase(0.0, demands)]
        else:
            phases = sorted(demands, key=lambda p: p.start_time)
            if not phases:
                raise ValueError("need at least one demand phase")
            self._phases = phases
        if tail_factor < 1.0:
            raise ValueError("tail_factor must be ≥ 1")
        if queue_limit_seconds <= 0:
            raise ValueError("queue_limit_seconds must be positive")
        self.tail_factor = tail_factor
        self.max_latency = max_latency
        self.queue_limit_seconds = queue_limit_seconds
        # -- brownout: the degraded PLO tier -------------------------------
        # While browned out, per-request demand is multiplied by
        # ``brownout_factor`` (serving a cheaper response) and the reported
        # latency carries a fixed penalty — the price users pay for the
        # degraded tier. The control loop drives enter/exit.
        self.brownout_capable = True
        self.brownout_active = False
        self.brownout_factor = 1.0
        self.brownout_penalty = 0.0
        self.brownout_seconds = 0.0
        self.brownouts_entered = 0
        self._brownout_cache: tuple | None = None
        self.total_dropped = 0.0
        self.current_drop_rate = 0.0
        self._replica_state: dict[str, _ReplicaState] = {}
        # Last-tick aggregates, exported on scrape.
        self.current_latency = self._phases[0].demands.base_latency
        self.current_throughput = 0.0
        self.current_offered = 0.0
        self.current_backlog = 0.0
        self.current_bottleneck = "cpu"
        self.total_served = 0.0

    # -- demand schedule ------------------------------------------------------

    def demands_at(self, t: float) -> ServiceDemands:
        """Demand profile in effect at time ``t``."""
        current = self._phases[0].demands
        for phase in self._phases:
            if t >= phase.start_time:
                current = phase.demands
            else:
                break
        return current

    # -- brownout ------------------------------------------------------------

    def enter_brownout(self, *, factor: float, latency_penalty: float) -> None:
        """Enter the degraded tier: per-request demand × ``factor`` at a
        ``latency_penalty``-second cost on reported latency."""
        if not 0.0 < factor <= 1.0:
            raise ValueError("brownout factor must be in (0, 1]")
        if latency_penalty < 0:
            raise ValueError("latency_penalty must be non-negative")
        self.brownout_active = True
        self.brownout_factor = float(factor)
        self.brownout_penalty = float(latency_penalty)
        self.brownouts_entered += 1

    def exit_brownout(self) -> None:
        """Restore the full-fidelity tier."""
        self.brownout_active = False

    def _degraded_demands(self, demands: ServiceDemands) -> ServiceDemands:
        cached = self._brownout_cache
        if (
            cached is not None
            and cached[0] is demands
            and cached[1] == self.brownout_factor
        ):
            return cached[2]
        factor = self.brownout_factor
        degraded = ServiceDemands(
            cpu_seconds=demands.cpu_seconds * factor,
            disk_mb=demands.disk_mb * factor,
            net_mb=demands.net_mb * factor,
            mem_base=demands.mem_base,
            mem_per_inflight=demands.mem_per_inflight,
            base_latency=demands.base_latency,
        )
        self._brownout_cache = (demands, factor, degraded)
        return degraded

    # -- open-loop arrivals ---------------------------------------------------

    def _offered_from_arrivals(self, dt: float, now: float) -> tuple[float, float]:
        """Offered rate and mean-size factor for the tick window.

        The tick at ``now`` covers ``[now - dt, now)``; counting events
        there keeps the event stream and the rate estimate aligned.
        """
        if self._marked:
            times, sizes = self.arrivals.window_marked(now - dt, now)
            if len(times) == 0:
                return 0.0, 1.0
            mean = self.arrivals.mean_size()
            factor = float(np.mean(sizes)) / mean if mean > 0 else 1.0
            return len(times) / dt, max(factor, 1e-6)
        events = self.arrivals.window(now - dt, now)
        return len(events) / dt, 1.0

    def _sized_demands(
        self, demands: ServiceDemands, factor: float
    ) -> ServiceDemands:
        return ServiceDemands(
            cpu_seconds=demands.cpu_seconds * factor,
            disk_mb=demands.disk_mb * factor,
            net_mb=demands.net_mb * factor,
            mem_base=demands.mem_base,
            mem_per_inflight=demands.mem_per_inflight,
            base_latency=demands.base_latency,
        )

    # -- dynamics -----------------------------------------------------------------

    def tick(self, dt: float, now: float) -> None:
        demands = self.demands_at(now)
        if self.brownout_active:
            demands = self._degraded_demands(demands)
            self.brownout_seconds += dt
        if self.arrivals is not None:
            offered, size_factor = self._offered_from_arrivals(dt, now)
            self.current_size_factor = size_factor
            if size_factor != 1.0:
                demands = self._sized_demands(demands, size_factor)
        else:
            offered = max(0.0, self.trace.rate(now))
        running = self.running_pods()
        self.current_offered = offered

        # Drop state of replicas that went away.
        live = {p.name for p in running}
        for name in list(self._replica_state):
            if name not in live:
                del self._replica_state[name]

        if not running:
            # Nothing serving: queue at the front door, report timeout-level
            # latency whenever there is load.
            self.current_throughput = 0.0
            self.current_latency = (
                self.max_latency if offered > 0 else demands.base_latency
            )
            self.current_backlog = 0.0
            return

        per_replica = offered / len(running)
        served_total = 0.0
        dropped_total = 0.0
        wait_sum = 0.0
        backlog_total = 0.0
        bottleneck_votes: dict[str, int] = {}

        for pod in running:
            state = self._replica_state.setdefault(pod.name, _ReplicaState())
            wait, served, dropped, bottleneck = self._step_replica(
                state, pod, per_replica, demands, dt
            )
            served_total += served
            dropped_total += dropped
            wait_sum += wait
            backlog_total += state.backlog
            bottleneck_votes[bottleneck] = bottleneck_votes.get(bottleneck, 0) + 1

        self.total_dropped += dropped_total
        self.current_drop_rate = dropped_total / dt
        self.current_throughput = served_total / dt
        self.current_latency = min(
            self.max_latency, (wait_sum / len(running)) * self.tail_factor
        )
        self.current_backlog = backlog_total
        self.current_bottleneck = max(bottleneck_votes, key=bottleneck_votes.get)
        self.total_served += served_total
        if self.brownout_active and self.brownout_penalty > 0:
            self.current_latency = min(
                self.max_latency, self.current_latency + self.brownout_penalty
            )

    def _step_replica(
        self,
        state: _ReplicaState,
        pod: Pod,
        arrival_rate: float,
        demands: ServiceDemands,
        dt: float,
    ) -> tuple[float, float, float, str]:
        """Advance one replica; returns (wait, served, dropped, bottleneck)."""
        mu_raw, bottleneck = demands.capacity(pod.allocation)
        if mu_raw <= 0:
            dropped = state.backlog + arrival_rate * dt
            state.backlog = 0.0
            state.last_wait = self.max_latency
            pod.record_usage(ResourceVector.zero())
            return self.max_latency, 0.0, dropped, bottleneck

        # Memory pressure from in-flight requests (Little's law on the
        # previous tick's wait, bounded to keep the fixed point stable).
        inflight = arrival_rate * min(state.last_wait, 5.0)
        required_mem = demands.mem_base + demands.mem_per_inflight * inflight
        mem = max(pod.allocation.memory, 1e-9)
        pressure = max(1.0, required_mem / mem)
        if pressure > 1.0:
            bottleneck = "memory"
        mu = mu_raw / pressure

        arrivals = arrival_rate * dt
        served = min(state.backlog + arrivals, mu * dt)
        state.backlog = max(0.0, state.backlog + arrivals - served)
        # Shed whatever exceeds the admission-control window.
        backlog_cap = mu * self.queue_limit_seconds
        dropped = max(0.0, state.backlog - backlog_cap)
        state.backlog -= dropped

        rho = min(arrival_rate / mu, 0.995)
        service_time = demands.base_latency * pressure
        wait = service_time / (1.0 - rho) + (state.backlog / mu if mu > 0 else 0.0)
        wait = min(wait, self.max_latency)
        state.last_wait = wait

        served_rate = served / dt
        pod.record_usage(
            ResourceVector._from_fields(
                served_rate * demands.cpu_seconds,
                min(required_mem, pod.allocation.memory),
                served_rate * demands.disk_mb,
                served_rate * demands.net_mb,
            )
        )
        return wait, served, dropped, bottleneck

    # -- metrics --------------------------------------------------------------------

    def sample_metrics(self, now: float) -> Mapping[str, float]:
        metrics = dict(super().sample_metrics(now))
        metrics.update(
            {
                "latency": self.current_latency,
                "throughput": self.current_throughput,
                "offered": self.current_offered,
                "backlog": self.current_backlog,
                "served_total": self.total_served,
                "drop_rate": self.current_drop_rate,
                "dropped_total": self.total_dropped,
            }
        )
        # Brownout gauges appear only once the service has ever browned
        # out, so the exported series set — and with it the per-sample
        # fault-filter draw order — is untouched in runs with the
        # feature disabled.
        if self.brownouts_entered:
            metrics["brownout"] = 1.0 if self.brownout_active else 0.0
            metrics["brownout_seconds"] = self.brownout_seconds
        # Same series-set discipline: the size-factor gauge exists only
        # when a marked arrival process is wired in.
        if self._marked:
            metrics["size_factor"] = self.current_size_factor
        return metrics
