"""Rigid gang-scheduled HPC jobs (MPI-like).

An HPC job consists of a fixed number of ranks that must all run
simultaneously (gang semantics) and synchronize continuously: the gang
advances at the pace of its *slowest* rank, so a single under-provisioned
or unstarted rank stalls the whole job. This rigidity is exactly what
traditional batch queues serve and what a converged scheduler must respect
when co-locating HPC with elastic workloads.
"""

from __future__ import annotations

from typing import Mapping

from repro.cluster.api import ClusterAPI
from repro.cluster.pod import PodPhase, WorkloadClass
from repro.cluster.resources import ResourceVector
from repro.sim.engine import Engine
from repro.workloads.base import Application


class HPCJob(Application):
    """A tightly-coupled job of ``ranks`` co-scheduled pods.

    Parameters
    ----------
    ranks:
        Number of pods in the gang (fixed; HPC jobs are not elastic).
    duration:
        Nominal runtime (s) when every rank runs at full allocation.
    allocation:
        Per-rank resource grant. CPU and network scale the synchronous
        compute/communication phases: a rank granted half its nominal CPU
        runs at half speed and drags the gang with it.
    comm_fraction:
        Fraction of each iteration spent in communication; weights how
        much a network squeeze (vs a CPU squeeze) slows the gang.
    checkpoint_interval:
        Nominal seconds of progress between checkpoints. Losing any rank
        (preemption, node failure) rolls the whole job back to its last
        checkpoint; ``None`` means no checkpointing — a rank loss restarts
        the job from zero, the cost the checkpointing ablation measures.
    zone_penalty:
        Relative communication slowdown per *additional* zone the gang
        spans (cross-zone links are slower than in-rack ones). 0 disables
        topology sensitivity; a gang spread over z zones has its
        communication phase stretched by ``1 + zone_penalty × (z − 1)``.
    """

    def __init__(
        self,
        name: str,
        engine: Engine,
        api: ClusterAPI,
        *,
        ranks: int,
        duration: float,
        allocation: ResourceVector,
        comm_fraction: float = 0.2,
        zone_penalty: float = 0.0,
        checkpoint_interval: float | None = None,
        tick_interval: float = 1.0,
        priority: int = 20,
        labels: Mapping[str, str] | None = None,
        **kwargs,
    ):
        if ranks < 1:
            raise ValueError("ranks must be ≥ 1")
        if duration <= 0:
            raise ValueError("duration must be positive")
        if not 0 <= comm_fraction < 1:
            raise ValueError("comm_fraction must be in [0, 1)")
        if checkpoint_interval is not None and checkpoint_interval <= 0:
            raise ValueError("checkpoint_interval must be positive")
        if zone_penalty < 0:
            raise ValueError("zone_penalty must be non-negative")
        super().__init__(
            name,
            engine,
            api,
            workload_class=WorkloadClass.HPC,
            initial_allocation=allocation,
            initial_replicas=ranks,
            tick_interval=tick_interval,
            priority=priority,
            labels=labels,
            **kwargs,
        )
        self.gang_id = name
        self.ranks = ranks
        self.duration = duration
        self.nominal_allocation = allocation
        self.comm_fraction = comm_fraction
        self.zone_penalty = zone_penalty
        self.checkpoint_interval = checkpoint_interval
        self.progress = 0.0
        self.last_checkpoint = 0.0
        self.rollbacks = 0
        self._prev_rank_names: set[str] = set()
        self.submitted_at: float | None = None
        self.gang_started_at: float | None = None
        self.completed_at: float | None = None
        self.current_rate = 0.0

    # -- lifecycle --------------------------------------------------------------

    def start(self) -> None:
        self.submitted_at = self.engine.now
        super().start()

    @property
    def done(self) -> bool:
        return self.completed_at is not None

    def wait_time(self) -> float | None:
        """Queue wait: submission until the whole gang is running."""
        if self.gang_started_at is None or self.submitted_at is None:
            return None
        return self.gang_started_at - self.submitted_at

    def makespan(self) -> float | None:
        if self.completed_at is None or self.submitted_at is None:
            return None
        return self.completed_at - self.submitted_at

    # -- dynamics ------------------------------------------------------------------

    def _rank_speed(
        self, allocation: ResourceVector, *, comm_stretch: float = 1.0
    ) -> float:
        """Relative speed of one rank under ``allocation`` (1.0 = nominal).

        ``comm_stretch`` ≥ 1 inflates the communication phase (topology
        penalty for gangs spanning multiple zones).
        """
        nominal = self.nominal_allocation
        cpu_speed = (
            allocation.cpu / nominal.cpu if nominal.cpu > 0 else 1.0
        )
        net_speed = (
            allocation.net_bw / nominal.net_bw if nominal.net_bw > 0 else 1.0
        )
        cpu_speed = min(1.0, cpu_speed)
        net_speed = min(1.0, net_speed)
        # Compute and communication phases alternate; total iteration time
        # is the weighted sum of slowed-down phases.
        compute = (1 - self.comm_fraction) / max(cpu_speed, 1e-9)
        comm = self.comm_fraction * comm_stretch / max(net_speed, 1e-9)
        return 1.0 / (compute + comm)

    def _comm_stretch(self, running) -> float:
        """Topology factor from the zones the gang currently spans."""
        if self.zone_penalty <= 0:
            return 1.0
        zones = set()
        for pod in running:
            if pod.node_name is not None:
                node = self.api.get_node(pod.node_name)
                zones.add(node.labels.get("zone", ""))
        return 1.0 + self.zone_penalty * max(0, len(zones) - 1)

    def _detect_rank_loss(self) -> None:
        """Roll back to the last checkpoint when a rank disappeared."""
        current = {p.name for p in self.pods()}
        lost = self._prev_rank_names - current
        self._prev_rank_names = current
        if not lost or self.progress <= 0.0:
            return
        restore = self.last_checkpoint if self.checkpoint_interval else 0.0
        if restore < self.progress:
            self.progress = restore
            self.rollbacks += 1

    def tick(self, dt: float, now: float) -> None:
        if self.done:
            return
        self._detect_rank_loss()
        pods = self.pods()
        running = [p for p in pods if p.phase == PodPhase.RUNNING]
        if len(running) < self.ranks:
            # Gang incomplete: ranks that are up spin at the barrier,
            # burning a trickle of CPU but making no progress.
            self.current_rate = 0.0
            for pod in running:
                pod.record_usage(
                    ResourceVector(
                        cpu=min(0.05, pod.allocation.cpu),
                        memory=min(0.1, pod.allocation.memory),
                    )
                )
            return
        if self.gang_started_at is None:
            self.gang_started_at = now
        # Synchronous execution: slowest rank gates everyone.
        stretch = self._comm_stretch(running)
        gang_rate = min(
            self._rank_speed(p.allocation, comm_stretch=stretch)
            for p in running
        )
        self.current_rate = gang_rate
        self.progress = min(1.0, self.progress + gang_rate * dt / self.duration)
        if self.checkpoint_interval is not None:
            step = self.checkpoint_interval / self.duration
            # Tolerance so a checkpoint boundary reached up to float
            # rounding (progress = n·step − ε) still counts as taken;
            # plain truncation would silently roll a whole interval back.
            self.last_checkpoint = int(self.progress / step + 1e-9) * step
        nominal = self.nominal_allocation
        for pod in running:
            pod.record_usage(
                ResourceVector(
                    cpu=min(pod.allocation.cpu, nominal.cpu * gang_rate),
                    memory=min(pod.allocation.memory, nominal.memory),
                    disk_bw=0.0,
                    net_bw=min(pod.allocation.net_bw, nominal.net_bw * gang_rate),
                )
            )
        if self.progress >= 1.0:
            self._complete(now)

    def _complete(self, now: float) -> None:
        if self.completed_at is not None:
            return
        self.completed_at = now
        self.current_rate = 0.0
        for pod in self.pods():
            if not pod.terminal:
                self.api.mark_finished(pod.name, succeeded=True)
        self._pod_names.clear()
        if self._tick_handle is not None:
            self._tick_handle.cancel()
            self._tick_handle = None
        self.finished = True

    # -- metrics -------------------------------------------------------------------

    def sample_metrics(self, now: float) -> Mapping[str, float]:
        metrics = dict(super().sample_metrics(now))
        metrics.update(
            {
                "progress": self.progress,
                "gang_rate": self.current_rate,
                "gang_complete": float(
                    len(self.running_pods()) >= self.ranks
                ),
            }
        )
        return metrics
