"""Autoscaler arena: every registered policy scored on every pack scenario.

The arena closes the evaluation loop the ScalerEval line of work asks
for: instead of ad-hoc "contribution vs 3 baselines" scripts, every
policy in :mod:`repro.autoscaler.registry` is replayed over every entry
of the curated scenario pack (:mod:`repro.scenarios`) and scored on one
standardized card per (policy, scenario) cell:

``plo_violation_rate``
    Observation-weighted fraction of tracked time in PLO violation
    (:meth:`ExperimentResult.total_violation_fraction`). Lower is better.
``slo_attainment``
    Overall good-tick fraction from the flight recorder, over SLOs
    derived from each workload's PLO with headroom margin. Higher is
    better.
``cost_dollars``
    The run's total allocation bill (:func:`repro.analysis.cost.app_cost`
    summed over apps). Lower is better at equal attainment.
``slack_frac``
    ``1 - usage/allocation`` cluster-wide: the over-provisioning a
    policy carries. Lower is tighter packing.
``convergence_s``
    Worst-case settling: for every PLO-tracked app, measured from run
    start and from every chaos strike, the time until the PLO ratio
    holds at or under 1.0 for 60 s. Cells that never settle before the
    horizon score the full horizon (a penalty, so "never converged"
    cannot beat "converged slowly").
``flap_count``
    Direction reversals in the policy's own actuation stream (per app,
    per verb: replica counts and vertical resizes), counted by wrapping
    the two actuation verbs — grow-then-shrink-then-grow churn that
    destabilizes placement.
``mttr_s``
    Max mean-time-to-repair across logged fault episodes
    (:mod:`repro.analysis.recovery`); ``None`` for fault-free scenarios.
``events_executed``
    Engine events — the determinism anchor and budget-gate input.

Determinism: metrics derive only from the seeded simulation (the SLO
engine and telemetry are observation-only), so two same-seed arena runs
emit byte-identical ``metrics`` blocks; wall-clock numbers live under
``timing`` exactly like the benchmark runner's split.

The leaderboard ranks policies by mean PLO-violation rate (primary),
then total cost (tie-break), then name (stability); ``wins`` counts
scenarios where the policy had the strictly lowest violation rate.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace

from repro.analysis.cost import app_cost
from repro.analysis.recovery import fault_recovery_report, summarize
from repro.analysis.report import format_table
from repro.analysis.stats import recovery_time
from repro.autoscaler.registry import registered_policies
from repro.obs.recorder import build_run_report
from repro.obs.slo import SLOSpec
from repro.scenarios import (
    PACK_VERSION,
    PackEntry,
    UnknownScenarioError,
    load_scenario,
    scenario_names,
)
from repro.verify.fuzzer import ScenarioSpec, build_platform

#: Headroom multiplier between a workload's PLO and its derived SLO
#: objective: the PLO tracker owns marginal excursions, the SLO watches
#: for real degradation (same idea as the presets' calm scenario).
SLO_MARGIN = 1.4

#: Required good-tick fraction for derived SLOs.
SLO_TARGET = 0.99

#: Hold time for the convergence metric: the PLO ratio must stay at or
#: under 1.0 this long to count as settled.
CONVERGE_HOLD = 60.0

#: The scorecard metric names, in display order.
METRICS = (
    "plo_violation_rate",
    "slo_attainment",
    "cost_dollars",
    "slack_frac",
    "convergence_s",
    "flap_count",
    "mttr_s",
    "events_executed",
)


@dataclass(frozen=True)
class Scorecard:
    """One (policy, scenario) cell of the arena."""

    policy: str
    scenario: str
    plo_violation_rate: float
    slo_attainment: float
    cost_dollars: float
    slack_frac: float
    convergence_s: float
    flap_count: int
    mttr_s: float | None
    events_executed: int

    def to_dict(self) -> dict:
        return {name: getattr(self, name) for name in METRICS}


def derive_slos(spec: ScenarioSpec) -> tuple[SLOSpec, ...]:
    """Latency/lag SLOs for every PLO-carrying workload in ``spec``.

    Micro and stream workloads always carry a latency PLO in the pack
    format; the SLO watches the same series with :data:`SLO_MARGIN`
    headroom so attainment measures degradation, not controller jitter.
    """
    slos = []
    for workload in spec.workloads:
        if workload.kind not in ("micro", "stream"):
            continue
        plo = float(workload.params["plo"])
        kind = "latency" if workload.kind == "micro" else "lag"
        slug = workload.name.replace("-", "_")
        slos.append(
            SLOSpec(
                name=f"{slug}_latency",
                series=f"app/{workload.name}/latency",
                objective=plo * SLO_MARGIN,
                comparator="le",
                target=SLO_TARGET,
                warmup=60.0,
                kind=kind,
                description=(
                    f"{workload.name} latency within "
                    f"{SLO_MARGIN:g}x its {plo:g}s PLO"
                ),
            )
        )
    return tuple(slos)


class _ActuationLedger:
    """Record the policy's actuation stream by wrapping the two verbs.

    Pure observation: the wrappers forward unchanged and draw no RNG,
    so instrumented runs stay bit-identical. Direction sequences are
    kept per (app, verb); a flap is any adjacent direction reversal.
    """

    def __init__(self):
        self._directions: dict[tuple[str, str], list[int]] = {}

    def _push(self, app_name: str, verb: str, direction: int) -> None:
        if direction:
            self._directions.setdefault((app_name, verb), []).append(
                direction
            )

    def instrument(self, app) -> None:
        orig_scale = app.scale_to
        orig_resize = app.set_target_allocation
        ledger = self

        def scale_to(replicas: int) -> None:
            ledger._push(
                app.name,
                "replicas",
                (replicas > app.replica_count)
                - (replicas < app.replica_count),
            )
            return orig_scale(replicas)

        def set_target_allocation(allocation):
            prev = app.target_allocation
            diff = (
                (allocation.cpu - prev.cpu)
                + (allocation.memory - prev.memory)
                + (allocation.disk_bw - prev.disk_bw)
                + (allocation.net_bw - prev.net_bw)
            )
            ledger._push(app.name, "resize", (diff > 0) - (diff < 0))
            return orig_resize(allocation)

        app.scale_to = scale_to
        app.set_target_allocation = set_target_allocation

    def flap_count(self) -> int:
        flaps = 0
        for directions in self._directions.values():
            flaps += sum(
                1
                for a, b in zip(directions, directions[1:])
                if a != b
            )
        return flaps


def _convergence(platform, spec: ScenarioSpec) -> float:
    """Worst settling time over apps x reference points (see module doc)."""
    anchors = [0.0] + sorted(
        {event.at for event in spec.chaos if event.at < spec.horizon}
    )
    worst = 0.0
    for name in sorted(platform.monitor.trackers):
        try:
            series = platform.collector.series(f"plo/{name}/ratio")
        except KeyError:
            continue
        for anchor in anchors:
            settled = recovery_time(
                series, after=anchor, threshold=1.0, hold=CONVERGE_HOLD
            )
            worst = max(
                worst, spec.horizon - anchor if settled is None else settled
            )
    return worst


def run_cell(
    policy: str,
    entry: PackEntry,
    *,
    seed: int | None = None,
    horizon: float | None = None,
) -> Scorecard:
    """Run one (policy, scenario) cell and score it."""
    spec = entry.spec
    if seed is not None:
        spec = replace(spec, seed=seed)
    if horizon is not None:
        spec = replace(spec, horizon=horizon)
    platform = build_platform(
        spec, telemetry=True, policy=policy, slos=derive_slos(spec)
    )
    ledger = _ActuationLedger()
    for app in platform.apps.values():
        ledger.instrument(app)
    platform.run(spec.horizon)
    result = platform.result()
    util = result.utilization
    slack = (
        1.0 - util.overall_usage / util.overall_alloc
        if util.overall_alloc > 0
        else 0.0
    )
    cost = sum(
        app_cost(platform.collector, name).total
        for name in sorted(platform.apps)
    )
    stats = summarize(
        fault_recovery_report(
            platform.fault_log, platform.collector, sorted(platform.apps)
        )
    )
    attainment = build_run_report(platform).overall_attainment()
    return Scorecard(
        policy=policy,
        scenario=entry.name,
        plo_violation_rate=result.total_violation_fraction(),
        slo_attainment=attainment,
        cost_dollars=cost,
        slack_frac=slack,
        convergence_s=_convergence(platform, spec),
        flap_count=ledger.flap_count(),
        mttr_s=stats.max_mttr,
        events_executed=platform.engine.events_executed,
    )


def _leaderboard(cards: list[Scorecard]) -> list[dict]:
    """Aggregate cells into ranked per-policy standings."""
    policies = sorted({c.policy for c in cards})
    scenarios = sorted({c.scenario for c in cards})
    wins = {p: 0 for p in policies}
    for scenario in scenarios:
        cell = {c.policy: c for c in cards if c.scenario == scenario}
        best = min(c.plo_violation_rate for c in cell.values())
        leaders = [
            p for p, c in cell.items() if c.plo_violation_rate == best
        ]
        if len(leaders) == 1:
            wins[leaders[0]] += 1
    rows = []
    for policy in policies:
        own = [c for c in cards if c.policy == policy]
        mttrs = [c.mttr_s for c in own if c.mttr_s is not None]
        rows.append(
            {
                "policy": policy,
                "scenarios": len(own),
                "wins": wins[policy],
                "mean_violation_rate": (
                    sum(c.plo_violation_rate for c in own) / len(own)
                ),
                "mean_attainment": (
                    sum(c.slo_attainment for c in own) / len(own)
                ),
                "total_cost_dollars": sum(c.cost_dollars for c in own),
                "mean_slack_frac": (
                    sum(c.slack_frac for c in own) / len(own)
                ),
                "mean_convergence_s": (
                    sum(c.convergence_s for c in own) / len(own)
                ),
                "total_flaps": sum(c.flap_count for c in own),
                "mean_mttr_s": (
                    sum(mttrs) / len(mttrs) if mttrs else None
                ),
            }
        )
    rows.sort(
        key=lambda r: (
            r["mean_violation_rate"],
            r["total_cost_dollars"],
            r["policy"],
        )
    )
    for rank, row in enumerate(rows, start=1):
        row["rank"] = rank
    return rows


def run_arena(
    *,
    policies: tuple[str, ...] | None = None,
    scenarios: tuple[str, ...] | None = None,
    seed: int | None = None,
    horizon: float | None = None,
) -> dict:
    """Run the full sweep; returns the ``BENCH_arena.json`` payload body.

    The return dict follows the benchmark-runner contract: every value
    under ``metrics`` is a pure function of the seeded simulations,
    wall-clock numbers live under ``timing``.
    """
    policies = tuple(policies) if policies else registered_policies()
    names = tuple(scenarios) if scenarios else scenario_names()
    entries = [load_scenario(name) for name in names]
    cards: list[Scorecard] = []
    wall: dict[str, float] = {}
    for entry in entries:
        for policy in policies:
            start = time.perf_counter()
            card = run_cell(policy, entry, seed=seed, horizon=horizon)
            wall[f"wall_s/{policy}/{entry.name}"] = round(
                time.perf_counter() - start, 3
            )
            cards.append(card)
    metrics = {
        "pack_version": PACK_VERSION,
        "policies": list(policies),
        "scenarios": list(names),
        "cells": {
            f"{c.policy}/{c.scenario}": c.to_dict() for c in cards
        },
        "leaderboard": _leaderboard(cards),
    }
    return {
        "seed": seed if seed is not None else 0,
        "events_executed": sum(c.events_executed for c in cards),
        "metrics": metrics,
        "timing": wall,
    }


# -- rendering ----------------------------------------------------------------

_BOARD_COLUMNS = (
    ("rank", "rank"),
    ("policy", "policy"),
    ("wins", "wins"),
    ("mean_violation_rate", "viol-rate"),
    ("mean_attainment", "slo-attain"),
    ("total_cost_dollars", "cost-$"),
    ("mean_slack_frac", "slack"),
    ("mean_convergence_s", "conv-s"),
    ("total_flaps", "flaps"),
    ("mean_mttr_s", "mttr-s"),
)


def _cell_text(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def leaderboard_rows(payload: dict) -> tuple[list[str], list[list[str]]]:
    """(headers, rows) for the leaderboard in ``payload``."""
    headers = [label for _key, label in _BOARD_COLUMNS]
    rows = [
        [_cell_text(row[key]) for key, _label in _BOARD_COLUMNS]
        for row in payload["metrics"]["leaderboard"]
    ]
    return headers, rows


def leaderboard_text(payload: dict) -> str:
    """The leaderboard as an aligned text table (CLI output)."""
    headers, rows = leaderboard_rows(payload)
    return format_table(headers, rows)


def leaderboard_markdown(payload: dict) -> str:
    """The leaderboard as a GitHub-flavoured markdown table."""
    headers, rows = leaderboard_rows(payload)
    lines = [
        "| " + " | ".join(headers) + " |",
        "| " + " | ".join("---" for _ in headers) + " |",
    ]
    lines += ["| " + " | ".join(row) + " |" for row in rows]
    meta = payload["metrics"]
    lines.append("")
    lines.append(
        f"Scenario pack v{meta['pack_version']}: "
        + ", ".join(meta["scenarios"])
        + f" · seed {payload['seed']}"
        + f" · {payload['events_executed']} events"
    )
    return "\n".join(lines)


__all__ = [
    "METRICS",
    "Scorecard",
    "UnknownScenarioError",
    "derive_slos",
    "leaderboard_markdown",
    "leaderboard_text",
    "run_arena",
    "run_cell",
]
