"""Cluster nodes: capacity accounting and bind/release bookkeeping.

A node enforces the scheduler invariant that the sum of pod *allocations*
never exceeds allocatable capacity. Measured *usage* is aggregated
separately so utilization experiments can compare what was reserved with
what was actually consumed — the gap is exactly the over-provisioning the
adaptive controller reclaims.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.cluster.pod import Pod
from repro.cluster.resources import RESOURCES, ResourceVector


class NodeError(RuntimeError):
    """Raised on invalid bind/release operations."""


class Node:
    """A schedulable machine.

    Parameters
    ----------
    name:
        Unique node name.
    capacity:
        Physical capacity vector.
    system_reserved:
        Slice withheld from scheduling (kubelet/daemons). Allocatable is
        ``capacity - system_reserved``.
    labels:
        Topology / capability metadata (zone, world-affinity, ...).
    """

    def __init__(
        self,
        name: str,
        capacity: ResourceVector,
        *,
        system_reserved: ResourceVector | None = None,
        labels: Mapping[str, str] | None = None,
    ):
        if capacity.any_negative():
            raise ValueError(f"node {name!r}: negative capacity")
        self.name = name
        self.capacity = capacity
        self.system_reserved = system_reserved or ResourceVector.zero()
        self.allocatable = (capacity - self.system_reserved).clamp_nonnegative()
        self.labels: dict[str, str] = dict(labels or {})
        self.pods: dict[str, Pod] = {}
        self._allocated = ResourceVector.zero()
        #: Monotonic counter bumped on every bind/release/resize (and by
        #: chaos capacity changes). Schedulers key score caches on it:
        #: a cached score for (node, generation) is valid as long as the
        #: node's membership and capacity accounting are unchanged.
        self.generation = 0
        #: Execution-speed multiplier in (0, 1]. 1.0 = nominal; chaos
        #: (:class:`~repro.cluster.chaos.StragglerDomain`) lowers it to
        #: model a sick-but-alive machine. Only fault-tolerance-aware
        #: workload models consult it, so default runs are unaffected.
        self.speed_factor = 1.0

    # -- accounting -----------------------------------------------------------

    @property
    def allocated(self) -> ResourceVector:
        """Sum of allocations of pods bound here."""
        return self._allocated

    @property
    def free(self) -> ResourceVector:
        """Allocatable headroom remaining for new pods or resizes."""
        return (self.allocatable - self._allocated).clamp_nonnegative()

    def usage(self) -> ResourceVector:
        """Sum of measured usage of pods bound here."""
        total = ResourceVector.zero()
        for pod in self.pods.values():
            total = total + pod.usage
        return total

    def allocation_fraction(self) -> dict[str, float]:
        """Per-resource allocated / allocatable."""
        return self._allocated.total_fraction_of(self.allocatable)

    def usage_fraction(self) -> dict[str, float]:
        """Per-resource usage / allocatable."""
        return self.usage().total_fraction_of(self.allocatable)

    def can_fit(self, request: ResourceVector) -> bool:
        """Whether a pod with this request can bind here right now."""
        return (self._allocated + request).fits_within(self.allocatable)

    def headroom_for_resize(self, pod: Pod, new_allocation: ResourceVector) -> bool:
        """Whether ``pod`` (already bound here) can grow to ``new_allocation``."""
        if pod.name not in self.pods:
            raise NodeError(f"pod {pod.name!r} is not bound to node {self.name!r}")
        without = self._allocated - pod.allocation
        return (without + new_allocation).fits_within(self.allocatable)

    # -- mutation ---------------------------------------------------------------

    def bind(self, pod: Pod) -> None:
        """Account for a pod's allocation on this node."""
        if pod.name in self.pods:
            raise NodeError(f"pod {pod.name!r} already bound to node {self.name!r}")
        if not self.can_fit(pod.allocation):
            raise NodeError(
                f"pod {pod.name!r} does not fit on node {self.name!r}: "
                f"needs {pod.allocation!r}, free {self.free!r}"
            )
        self.pods[pod.name] = pod
        self._allocated = self._allocated + pod.allocation
        self.generation += 1

    def release(self, pod: Pod) -> None:
        """Remove a pod's allocation from this node."""
        if pod.name not in self.pods:
            raise NodeError(f"pod {pod.name!r} is not bound to node {self.name!r}")
        del self.pods[pod.name]
        self._allocated = (self._allocated - pod.allocation).clamp_nonnegative()
        self.generation += 1

    def apply_resize(self, pod: Pod, new_allocation: ResourceVector) -> None:
        """Atomically swap a bound pod's allocation (checked for fit)."""
        if not self.headroom_for_resize(pod, new_allocation):
            raise NodeError(
                f"resize of pod {pod.name!r} on node {self.name!r} does not fit"
            )
        self._allocated = (
            self._allocated - pod.allocation + new_allocation
        ).clamp_nonnegative()
        pod.allocation = new_allocation
        self.generation += 1

    # -- introspection --------------------------------------------------------

    def pods_by_priority(self) -> list[Pod]:
        """Bound pods, lowest priority first (preemption order)."""
        return sorted(self.pods.values(), key=lambda p: (p.spec.priority, p.created_at))

    def verify_invariants(self) -> None:
        """Assert accounting consistency; used by tests and debug runs."""
        total = ResourceVector.zero()
        for pod in self.pods.values():
            total = total + pod.allocation
        if not total.approx_equal(self._allocated, tolerance=1e-6):
            raise NodeError(
                f"node {self.name!r}: allocation drift "
                f"(tracked {self._allocated!r}, actual {total!r})"
            )
        if not self._allocated.fits_within(self.allocatable, tolerance=1e-6):
            raise NodeError(f"node {self.name!r}: over-allocated")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        used = ", ".join(
            f"{n}={self.allocation_fraction()[n]:.0%}" for n in RESOURCES
        )
        return f"Node({self.name!r}, pods={len(self.pods)}, alloc: {used})"


def total_capacity(nodes: Iterable[Node]) -> ResourceVector:
    """Sum of allocatable capacity over ``nodes``."""
    total = ResourceVector.zero()
    for node in nodes:
        total = total + node.allocatable
    return total
