"""Failure injection: node crashes and recoveries.

Real-cluster evaluations survive machine loss; the simulator models it so
the control plane's recovery path (pod eviction → self-healing resubmit →
rescheduling → controller re-convergence) can be exercised and tested.

A failed node evicts every resident pod and refuses new bindings until it
recovers. The :class:`ChaosMonkey` drives random failures from a seeded
RNG stream for soak experiments.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.cluster import Cluster, ClusterError
from repro.cluster.node import Node
from repro.cluster.resources import ResourceVector
from repro.sim.engine import Engine, PeriodicHandle


@dataclass(frozen=True)
class NodeFailure:
    """Record of one injected failure."""

    time: float
    node_name: str
    evicted_pods: tuple[str, ...]


class FailureInjector:
    """Deterministic fail/recover verbs on a cluster.

    Failing a node zeroes its allocatable capacity (so schedulers'
    ``can_fit`` rejects it naturally) and evicts its pods with reason
    ``node-failure``. Recovery restores the original allocatable.
    """

    def __init__(self, cluster: Cluster):
        self.cluster = cluster
        self._saved_allocatable: dict[str, ResourceVector] = {}
        self.failures: list[NodeFailure] = []
        self.recoveries = 0

    def is_failed(self, node_name: str) -> bool:
        return node_name in self._saved_allocatable

    def failed_nodes(self) -> list[str]:
        return sorted(self._saved_allocatable)

    def fail_node(self, node_name: str) -> NodeFailure:
        """Crash a node, evicting everything on it."""
        if self.is_failed(node_name):
            raise ClusterError(f"node {node_name!r} is already failed")
        node = self.cluster.get_node(node_name)
        evicted = tuple(sorted(node.pods))
        for pod_name in evicted:
            self.cluster.evict(pod_name, reason="node-failure")
        self._saved_allocatable[node_name] = node.allocatable
        node.allocatable = ResourceVector.zero()
        failure = NodeFailure(self.cluster.now, node_name, evicted)
        self.failures.append(failure)
        return failure

    def recover_node(self, node_name: str) -> None:
        """Bring a failed node back with its full capacity."""
        if not self.is_failed(node_name):
            raise ClusterError(f"node {node_name!r} is not failed")
        node = self.cluster.get_node(node_name)
        node.allocatable = self._saved_allocatable.pop(node_name)
        self.recoveries += 1

    def healthy_nodes(self) -> list[Node]:
        return [
            n for n in self.cluster.nodes.values() if not self.is_failed(n.name)
        ]


class ChaosMonkey:
    """Random node failures on a Poisson clock, with fixed repair time.

    Parameters
    ----------
    mtbf:
        Cluster-wide mean time between failures (s).
    repair_time:
        Seconds a failed node stays down.
    max_concurrent_failures:
        Never take down more than this many nodes at once (keeps soak
        runs from killing the whole cluster).
    """

    def __init__(
        self,
        engine: Engine,
        injector: FailureInjector,
        rng: np.random.Generator,
        *,
        mtbf: float = 3600.0,
        repair_time: float = 300.0,
        max_concurrent_failures: int = 1,
    ):
        if mtbf <= 0 or repair_time <= 0:
            raise ValueError("mtbf and repair_time must be positive")
        if max_concurrent_failures < 1:
            raise ValueError("max_concurrent_failures must be ≥ 1")
        self.engine = engine
        self.injector = injector
        self.rng = rng
        self.mtbf = mtbf
        self.repair_time = repair_time
        self.max_concurrent_failures = max_concurrent_failures
        self._armed = False

    def start(self) -> None:
        if self._armed:
            raise RuntimeError("chaos monkey already started")
        self._armed = True
        self._arm_next()

    def stop(self) -> None:
        self._armed = False

    def _arm_next(self) -> None:
        delay = float(self.rng.exponential(self.mtbf))
        self.engine.schedule(max(1.0, delay), self._strike)

    def _strike(self) -> None:
        if not self._armed:
            return
        down = self.injector.failed_nodes()
        candidates = [
            n.name for n in self.injector.healthy_nodes()
        ]
        if candidates and len(down) < self.max_concurrent_failures:
            victim = candidates[int(self.rng.integers(len(candidates)))]
            self.injector.fail_node(victim)
            self.engine.schedule(
                self.repair_time, lambda: self._repair(victim)
            )
        self._arm_next()

    def _repair(self, node_name: str) -> None:
        if self.injector.is_failed(node_name):
            self.injector.recover_node(node_name)
