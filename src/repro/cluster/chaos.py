"""Fault injection: the cluster-side fault taxonomy.

Real-cluster evaluations survive more than clean machine loss: nodes slow
down or shed capacity without dying, metric scrapes drop or freeze, and
actuations (resizes, replica changes) transiently fail. This module holds
the cluster-facing fault domains so the control plane's recovery paths
(pod eviction → self-healing resubmit → rescheduling → controller
re-convergence, plus safe mode / retry / circuit breaking in the control
loop) can be exercised and tested:

* :class:`FailureInjector` — binary node crash/recover (the classic).
* :class:`DegradationInjector` — partial capacity loss: a node keeps
  running but loses a fraction of its allocatable, evicting the
  lowest-priority pods that no longer fit.
* :class:`ActuationFaultInjector` — transient actuation failures; wired
  into :class:`~repro.cluster.api.ClusterAPI` so resizes and pod
  submissions raise :class:`~repro.cluster.api.ActuationError`.
* :class:`PartitionInjector` — per-controller API-server unreachability;
  wired into :class:`~repro.cluster.api.ClusterAPI` so every verb of a
  partitioned controller's :class:`~repro.cluster.api.ScopedClusterAPI`
  raises :class:`~repro.cluster.api.PartitionError`.
* :class:`ControllerCrashDomain` / :class:`PartitionDomain` — strike the
  *control plane itself* (kill or partition the leader replica of a
  :class:`~repro.control.ha.ReplicatedControlPlane`), exercising leader
  failover, snapshot restore, and WAL replay.
* :class:`ZoneOutageDomain` — correlated failure: every node in one
  availability zone crashes together as a single logged episode.
* :class:`ChaosMonkey` — random strikes from a seeded RNG over a
  pluggable set of :class:`FaultDomain` verbs for soak experiments.

Metrics-pipeline faults (dropped scrapes, frozen series, outliers) live
in :mod:`repro.metrics.faults`; every injector records its episodes into
a shared :class:`FaultLog` so :mod:`repro.analysis.recovery` can compute
per-episode MTTR and re-convergence time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

import numpy as np

from repro.cluster.cluster import Cluster, ClusterError
from repro.cluster.node import Node
from repro.cluster.pod import PodPhase, WorkloadClass
from repro.cluster.resources import ResourceVector
from repro.sim.engine import Engine


# -- episode bookkeeping ---------------------------------------------------------


@dataclass
class FaultEpisode:
    """One injected fault, from strike to heal.

    ``end`` is None while the fault is still active. Episodes whose end is
    known at injection time (e.g. a scrape blackout window) are recorded
    closed immediately.
    """

    kind: str
    target: str
    start: float
    end: float | None = None
    detail: str = ""
    #: Name of the chaos domain that injected the episode ("" for faults
    #: not raised by a domain, e.g. brownout or actuation-retry records).
    #: The flight recorder's alert timeline attributes episodes by it.
    domain: str = ""
    #: Stable index within the owning FaultLog (-1 until logged); decision
    #: provenance references episodes by this id.
    eid: int = -1

    @property
    def active(self) -> bool:
        return self.end is None

    def duration(self) -> float | None:
        return None if self.end is None else self.end - self.start


class FaultLog:
    """Append-only record of fault episodes across all injectors.

    The recovery analysis (:mod:`repro.analysis.recovery`) joins these
    episodes against the controller's metric series to compute MTTR.
    """

    def __init__(self) -> None:
        self.episodes: list[FaultEpisode] = []

    def open(self, kind: str, target: str, start: float, *,
             detail: str = "", domain: str = "") -> FaultEpisode:
        episode = FaultEpisode(kind, target, start, detail=detail,
                               domain=domain)
        episode.eid = len(self.episodes)
        self.episodes.append(episode)
        return episode

    def close(self, episode: FaultEpisode, end: float) -> None:
        if episode.end is None:
            episode.end = end

    def record(self, kind: str, target: str, start: float, end: float, *,
               detail: str = "", domain: str = "") -> FaultEpisode:
        """Record an episode whose end is already known (window faults)."""
        episode = FaultEpisode(kind, target, start, end, detail, domain)
        episode.eid = len(self.episodes)
        self.episodes.append(episode)
        return episode

    def active(self) -> list[FaultEpisode]:
        return [e for e in self.episodes if e.active]

    def active_at(self, now: float) -> list[FaultEpisode]:
        """Episodes overlapping ``now`` (open episodes included)."""
        return [
            e for e in self.episodes
            if e.start <= now and (e.end is None or now < e.end)
        ]

    def by_kind(self, kind: str) -> list[FaultEpisode]:
        return [e for e in self.episodes if e.kind == kind]

    def close_open(self, end: float) -> int:
        """Close every still-open episode at ``end``; returns the count.

        Called when a simulation finishes so episodes that were never
        healed (a zone still dark at the horizon, a brownout still in
        force) get a definite duration instead of silently dropping out
        of — or worse, skewing — the MTTR / re-convergence statistics.
        """
        closed = 0
        for episode in self.episodes:
            if episode.end is None:
                episode.end = end
                closed += 1
        return closed


@dataclass(frozen=True)
class NodeFailure:
    """Record of one injected crash (kept for the legacy reporting path)."""

    time: float
    node_name: str
    evicted_pods: tuple[str, ...]


def _nominal_allocatable(node: Node) -> ResourceVector:
    """The node's healthy allocatable ceiling (capacity − reserved)."""
    return (node.capacity - node.system_reserved).clamp_nonnegative()


class FailureInjector:
    """Deterministic fail/recover verbs on a cluster.

    Failing a node zeroes its allocatable capacity (so schedulers'
    ``can_fit`` rejects it naturally) and evicts its pods with reason
    ``node-failure``. Recovery restores the capacity *delta* removed at
    failure time rather than blindly re-imposing a snapshot: if the
    node's capacity legitimately changed while it was down (an operator
    resize, a degradation healed elsewhere), that change survives the
    recovery, clamped to the node's nominal allocatable ceiling.
    """

    def __init__(self, cluster: Cluster, *, log: FaultLog | None = None):
        self.cluster = cluster
        self.log = log if log is not None else FaultLog()
        self._down: dict[str, tuple[ResourceVector, FaultEpisode]] = {}
        self.failures: list[NodeFailure] = []
        self.recoveries = 0

    def is_failed(self, node_name: str) -> bool:
        return node_name in self._down

    def failed_nodes(self) -> list[str]:
        return sorted(self._down)

    def fail_node(self, node_name: str) -> NodeFailure:
        """Crash a node, evicting everything on it."""
        if self.is_failed(node_name):
            raise ClusterError(f"node {node_name!r} is already failed")
        node = self.cluster.get_node(node_name)
        evicted = tuple(sorted(node.pods))
        for pod_name in evicted:
            self.cluster.evict(pod_name, reason="node-failure")
        episode = self.log.open("node-crash", node_name, self.cluster.now)
        self._down[node_name] = (node.allocatable, episode)
        node.allocatable = ResourceVector.zero()
        node.generation += 1
        failure = NodeFailure(self.cluster.now, node_name, evicted)
        self.failures.append(failure)
        return failure

    def recover_node(self, node_name: str) -> None:
        """Bring a failed node back by restoring the removed capacity."""
        if not self.is_failed(node_name):
            raise ClusterError(f"node {node_name!r} is not failed")
        node = self.cluster.get_node(node_name)
        removed, episode = self._down.pop(node_name)
        node.allocatable = (node.allocatable + removed).elementwise_min(
            _nominal_allocatable(node)
        )
        node.generation += 1
        self.recoveries += 1
        self.log.close(episode, self.cluster.now)

    def healthy_nodes(self) -> list[Node]:
        return [
            n for n in self.cluster.nodes.values() if not self.is_failed(n.name)
        ]


class DegradationInjector:
    """Partial node degradation: capacity loss without death.

    Degrading a node by ``factor`` keeps only that fraction of its current
    allocatable. Pods that no longer fit are evicted lowest-priority-first
    with reason ``node-degraded`` — the kubelet-pressure analogue — while
    the rest keep running (and keep their metrics flowing, unlike a
    crash). Restoring adds the removed slice back, clamped to the node's
    nominal ceiling so it composes with crashes and operator resizes.
    """

    def __init__(self, cluster: Cluster, *, log: FaultLog | None = None):
        self.cluster = cluster
        self.log = log if log is not None else FaultLog()
        self._degraded: dict[str, tuple[ResourceVector, FaultEpisode]] = {}
        self.degradations = 0
        self.restorations = 0
        self.evictions = 0

    def is_degraded(self, node_name: str) -> bool:
        return node_name in self._degraded

    def degraded_nodes(self) -> list[str]:
        return sorted(self._degraded)

    def degrade_node(self, node_name: str, factor: float) -> FaultEpisode:
        """Shrink a node's allocatable to ``factor`` of its current value."""
        if not 0.0 < factor < 1.0:
            raise ValueError("degradation factor must be in (0, 1)")
        if self.is_degraded(node_name):
            raise ClusterError(f"node {node_name!r} is already degraded")
        node = self.cluster.get_node(node_name)
        before = node.allocatable
        node.allocatable = before * factor
        node.generation += 1
        removed = before - node.allocatable
        # Shed load until the survivors fit the reduced capacity.
        while not node.allocated.fits_within(node.allocatable):
            victims = node.pods_by_priority()
            if not victims:
                break
            self.cluster.evict(victims[0].name, reason="node-degraded")
            self.evictions += 1
        episode = self.log.open(
            "node-degradation", node_name, self.cluster.now,
            detail=f"factor={factor:g}",
        )
        self._degraded[node_name] = (removed, episode)
        self.degradations += 1
        return episode

    def restore_node(self, node_name: str) -> None:
        """Return the degraded slice of capacity to the node."""
        if not self.is_degraded(node_name):
            raise ClusterError(f"node {node_name!r} is not degraded")
        node = self.cluster.get_node(node_name)
        removed, episode = self._degraded.pop(node_name)
        node.allocatable = (node.allocatable + removed).elementwise_min(
            _nominal_allocatable(node)
        )
        node.generation += 1
        self.restorations += 1
        self.log.close(episode, self.cluster.now)


class ActuationFaultInjector:
    """Transient actuation failures (resize / pod-creation verbs).

    Wired into :class:`~repro.cluster.api.ClusterAPI`; when a gated verb
    is attempted the API asks :meth:`should_fail` and raises
    :class:`~repro.cluster.api.ActuationError` on True. Two modes:

    * ``failure_probability`` — each actuation independently fails with
      this probability (flaky kubelet).
    * :meth:`outage` — every actuation inside the window fails (API-server
      brown-out). Outage episodes are recorded in the fault log.
    """

    def __init__(
        self,
        rng: np.random.Generator | None = None,
        *,
        log: FaultLog | None = None,
    ):
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self.log = log if log is not None else FaultLog()
        self.failure_probability = 0.0
        self._outage_until = 0.0
        self.attempts = 0
        self.injected_failures = 0

    def outage(self, now: float, duration: float) -> FaultEpisode:
        """Fail every actuation for ``duration`` seconds from ``now``."""
        if duration <= 0:
            raise ValueError("outage duration must be positive")
        self._outage_until = max(self._outage_until, now + duration)
        return self.log.record(
            "actuation-outage", "cluster-api", now, now + duration
        )

    def in_outage(self, now: float) -> bool:
        return now < self._outage_until

    def should_fail(self, now: float, verb: str = "") -> bool:
        """One actuation attempt; True means the API must reject it."""
        self.attempts += 1
        if self.in_outage(now):
            self.injected_failures += 1
            return True
        if (
            self.failure_probability > 0.0
            and float(self.rng.random()) < self.failure_probability
        ):
            self.injected_failures += 1
            return True
        return False


class PartitionInjector:
    """Per-controller API-server partitions.

    Wired into :class:`~repro.cluster.api.ClusterAPI` (``api.partitions``);
    a partitioned identity's :class:`~repro.cluster.api.ScopedClusterAPI`
    raises :class:`~repro.cluster.api.PartitionError` from every verb.
    Windows may be bounded (``duration``) or open-ended (healed
    explicitly by a chaos domain).
    """

    def __init__(self, *, log: FaultLog | None = None):
        self.log = log if log is not None else FaultLog()
        #: identity → (until-time or None for open-ended, episode)
        self._partitioned: dict[str, tuple[float | None, FaultEpisode]] = {}
        self.partitions_injected = 0

    def partition(
        self, identity: str, now: float, duration: float | None = None
    ) -> FaultEpisode:
        """Cut ``identity`` off from the API server.

        With ``duration`` the window closes by itself (episode recorded
        closed immediately); without, it stays open until :meth:`heal`.
        """
        if identity in self._partitioned and self.is_partitioned(identity, now):
            raise ClusterError(f"controller {identity!r} is already partitioned")
        if duration is not None:
            if duration <= 0:
                raise ValueError("partition duration must be positive")
            episode = self.log.record(
                "controller-partition", identity, now, now + duration
            )
            self._partitioned[identity] = (now + duration, episode)
        else:
            episode = self.log.open("controller-partition", identity, now)
            self._partitioned[identity] = (None, episode)
        self.partitions_injected += 1
        return episode

    def is_partitioned(self, identity: str, now: float) -> bool:
        entry = self._partitioned.get(identity)
        if entry is None:
            return False
        until, _episode = entry
        if until is not None and now >= until:
            del self._partitioned[identity]
            return False
        return True

    def heal(self, identity: str, now: float) -> None:
        """Reconnect ``identity``; closes an open-ended episode."""
        entry = self._partitioned.pop(identity, None)
        if entry is not None:
            _until, episode = entry
            self.log.close(episode, now)


# -- random fault scheduling ----------------------------------------------------


class FaultDomain(Protocol):
    """One class of injectable fault the :class:`ChaosMonkey` can drive.

    ``strike`` applies a fault and returns an opaque token (or None when
    no viable target exists); ``heal`` undoes it. Domains must tolerate
    ``heal`` racing with external recovery.
    """

    name: str

    def strike(self) -> object | None: ...

    def heal(self, token: object) -> None: ...


class NodeCrashDomain:
    """Crash a random healthy node."""

    name = "crash"

    def __init__(self, injector: FailureInjector, rng: np.random.Generator):
        self.injector = injector
        self.rng = rng

    def strike(self) -> str | None:
        candidates = [n.name for n in self.injector.healthy_nodes()]
        if not candidates:
            return None
        victim = candidates[int(self.rng.integers(len(candidates)))]
        self.injector.fail_node(victim)
        return victim

    def heal(self, token: object) -> None:
        if self.injector.is_failed(str(token)):
            self.injector.recover_node(str(token))


class NodeDegradationDomain:
    """Degrade a random node that is neither failed nor already degraded."""

    name = "degrade"

    def __init__(
        self,
        degrader: DegradationInjector,
        rng: np.random.Generator,
        *,
        factor: float = 0.5,
    ):
        if not 0.0 < factor < 1.0:
            raise ValueError("degradation factor must be in (0, 1)")
        self.degrader = degrader
        self.rng = rng
        self.factor = factor

    def strike(self) -> str | None:
        candidates = [
            n.name
            for n in self.degrader.cluster.nodes.values()
            if not self.degrader.is_degraded(n.name)
            and not n.allocatable.is_zero()
        ]
        if not candidates:
            return None
        victim = candidates[int(self.rng.integers(len(candidates)))]
        self.degrader.degrade_node(victim, self.factor)
        return victim

    def heal(self, token: object) -> None:
        if self.degrader.is_degraded(str(token)):
            self.degrader.restore_node(str(token))


class ZoneOutageDomain:
    """Take out a whole availability zone at once.

    Node crashes are independent by construction; real incidents are not —
    a power feed or top-of-rack switch takes a correlated slice of the
    cluster down together. This domain fails every healthy node carrying
    the same ``zone`` label in one strike, recording a *single*
    ``zone-outage`` episode (the unit the containment accounting and MTTR
    analysis care about) with the blast radius — node and displaced-pod
    counts — in its detail. Healing recovers the nodes that are still
    down; nodes recovered externally in the meantime are skipped.
    """

    name = "zone-outage"

    def __init__(
        self,
        injector: FailureInjector,
        rng: np.random.Generator | None = None,
        *,
        log: FaultLog | None = None,
    ):
        self.injector = injector
        self.rng = rng  # only needed for random strike(); strike_zone is RNG-free
        self.log = log if log is not None else injector.log
        self.outages = 0
        self.pods_displaced = 0

    def zones(self) -> list[str]:
        """Zones that still have at least one healthy labelled node."""
        return sorted(
            {
                zone
                for node in self.injector.healthy_nodes()
                if (zone := node.labels.get("zone")) is not None
            }
        )

    def strike_zone(self, zone: str) -> object:
        """Deterministically fail every healthy node in ``zone``."""
        victims = [
            node.name
            for node in self.injector.healthy_nodes()
            if node.labels.get("zone") == zone
        ]
        if not victims:
            raise ClusterError(f"zone {zone!r} has no healthy nodes")
        episode = self.log.open(
            "zone-outage", zone, self.injector.cluster.now
        )
        displaced = 0
        for name in victims:
            displaced += len(self.injector.fail_node(name).evicted_pods)
        episode.detail = f"nodes={len(victims)} pods_displaced={displaced}"
        self.outages += 1
        self.pods_displaced += displaced
        return (zone, tuple(victims), episode)

    def strike(self) -> object | None:
        if self.rng is None:
            raise ClusterError("random strike() needs an rng; use strike_zone")
        candidates = self.zones()
        if not candidates:
            return None
        zone = candidates[int(self.rng.integers(len(candidates)))]
        return self.strike_zone(zone)

    def heal(self, token: object) -> None:
        _zone, victims, episode = token
        for name in victims:
            if self.injector.is_failed(name):
                self.injector.recover_node(name)
        self.log.close(episode, self.injector.cluster.now)


class ControllerCrashDomain:
    """Kill the control plane's current leader replica.

    ``plane`` is any object with the :class:`~repro.control.ha.ReplicatedControlPlane`
    surface (``engine``, ``leader_index()``, ``identity(i)``,
    ``crash_replica(i)``, ``restart_replica(i)``, ``store``). With
    ``corrupt_snapshot_probability`` > 0 the strike may also corrupt the
    newest durable snapshot, forcing the successor to restore from an
    older one and replay a longer WAL suffix — the torn-write case.
    """

    name = "controller-crash"

    def __init__(
        self,
        plane,
        rng: np.random.Generator,
        *,
        corrupt_snapshot_probability: float = 0.0,
        log: FaultLog | None = None,
    ):
        if not 0.0 <= corrupt_snapshot_probability <= 1.0:
            raise ValueError("corrupt_snapshot_probability must be in [0, 1]")
        self.plane = plane
        self.rng = rng
        self.corrupt_snapshot_probability = corrupt_snapshot_probability
        self.log = log if log is not None else FaultLog()
        self.crashes = 0
        self.snapshot_corruptions = 0

    def strike(self) -> object | None:
        leader = self.plane.leader_index()
        if leader is None:
            return None
        now = self.plane.engine.now
        if (
            self.corrupt_snapshot_probability > 0
            and self.plane.store is not None
            and float(self.rng.random()) < self.corrupt_snapshot_probability
            and self.plane.store.corrupt_latest(now)
        ):
            self.snapshot_corruptions += 1
        episode = self.log.open(
            "controller-crash", self.plane.identity(leader), now
        )
        self.plane.crash_replica(leader)
        self.crashes += 1
        return (leader, episode)

    def heal(self, token: object) -> None:
        index, episode = token
        if not self.plane.is_alive(index):
            self.plane.restart_replica(index)
        self.log.close(episode, self.plane.engine.now)


class PartitionDomain:
    """Partition a controller replica from the API server.

    Targets the current leader by default (``target="leader"``) — the
    interesting case, since a partitioned leader must stop actuating and
    hand over without split-brain — or a uniformly random live replica
    (``target="random"``). The partition stays open until healed by the
    monkey's repair clock.
    """

    name = "partition"

    def __init__(
        self,
        plane,
        injector: PartitionInjector,
        rng: np.random.Generator,
        *,
        target: str = "leader",
    ):
        if target not in ("leader", "random"):
            raise ValueError("target must be 'leader' or 'random'")
        self.plane = plane
        self.injector = injector
        self.rng = rng
        self.target = target
        self.strikes = 0

    def _pick(self) -> int | None:
        if self.target == "leader":
            return self.plane.leader_index()
        candidates = self.plane.alive_indices()
        if not candidates:
            return None
        return candidates[int(self.rng.integers(len(candidates)))]

    def strike(self) -> str | None:
        index = self._pick()
        if index is None:
            return None
        identity = self.plane.identity(index)
        now = self.plane.engine.now
        if self.injector.is_partitioned(identity, now):
            return None
        self.injector.partition(identity, now)
        self.strikes += 1
        return identity

    def heal(self, token: object) -> None:
        self.injector.heal(str(token), self.plane.engine.now)


class ExecutorKillDomain:
    """Kill one running executor pod of a data-parallel job.

    A much smaller blast radius than a node crash: the node stays up,
    only the pod dies. With data-plane fault tolerance enabled the job
    re-opens exactly the lost in-flight task share; without it, the
    fluid model's global progress is untouched and only the executor
    slot is lost until self-healing resubmits it.
    """

    name = "executor-kill"

    def __init__(
        self,
        cluster: Cluster,
        rng: np.random.Generator,
        *,
        workload_class: WorkloadClass = WorkloadClass.BIGDATA,
        log: FaultLog | None = None,
    ):
        self.cluster = cluster
        self.rng = rng
        self.workload_class = workload_class
        self.log = log
        self.kills = 0

    def strike(self) -> str | None:
        candidates = sorted(
            pod.name
            for pod in self.cluster.pods.values()
            if pod.phase is PodPhase.RUNNING
            and pod.spec.workload_class is self.workload_class
        )
        if not candidates:
            return None
        victim = candidates[int(self.rng.integers(len(candidates)))]
        self.cluster.evict(victim, reason="executor-kill")
        self.kills += 1
        if self.log is not None:
            now = self.cluster.now
            self.log.record("executor-kill", victim, now, now,
                            domain=self.name)
        return victim

    def heal(self, token: object) -> None:
        """No-op: application self-healing resubmits the replica."""


class StragglerDomain:
    """Slow a healthy node down without killing it.

    Models the sick-but-alive machine (failing disk, thermal throttling,
    noisy neighbour) that motivates speculative execution: pods keep
    their binds and report progress, just slowly. Sets
    :attr:`Node.speed_factor`; only fault-tolerance-aware workload
    models read it, so the domain is inert for default workloads.
    """

    name = "straggler"

    def __init__(
        self,
        cluster: Cluster,
        rng: np.random.Generator,
        *,
        factor: float = 0.3,
        log: FaultLog | None = None,
    ):
        if not 0.0 < factor < 1.0:
            raise ValueError("straggler factor must be in (0, 1)")
        self.cluster = cluster
        self.rng = rng
        self.factor = factor
        self.log = log
        self.strikes = 0

    def strike(self) -> object | None:
        candidates = [
            node
            for node in self.cluster.nodes.values()
            if node.speed_factor >= 1.0 and not node.allocatable.is_zero()
        ]
        if not candidates:
            return None
        victim = candidates[int(self.rng.integers(len(candidates)))]
        victim.speed_factor = self.factor
        self.strikes += 1
        episode = None
        if self.log is not None:
            episode = self.log.open(
                "node-straggler",
                victim.name,
                self.cluster.now,
                detail=f"speed_factor={self.factor}",
                domain=self.name,
            )
        return (victim.name, episode)

    def heal(self, token: object) -> None:
        name, episode = token
        self.cluster.get_node(name).speed_factor = 1.0
        if episode is not None:
            self.log.close(episode, self.cluster.now)


class DataLossDomain:
    """Wipe every object-store replica held on one data-bearing node.

    The disk dies but the node keeps computing — the failure mode that
    exercises lineage recompute (a completed stage's shuffle output
    vanishes) and the storage repair loop (objects drop below their
    replication target) without any scheduler-visible capacity change.
    """

    name = "data-loss"

    def __init__(
        self,
        store,
        cluster: Cluster,
        rng: np.random.Generator,
        *,
        log: FaultLog | None = None,
    ):
        self.store = store
        self.cluster = cluster
        self.rng = rng
        self.log = log
        self.strikes = 0
        self.replicas_dropped = 0

    def strike(self) -> str | None:
        candidates = sorted(self.store.nodes_with_data())
        if not candidates:
            return None
        victim = candidates[int(self.rng.integers(len(candidates)))]
        dropped = self.store.drop_node(victim)
        self.strikes += 1
        self.replicas_dropped += dropped
        if self.log is not None:
            now = self.cluster.now
            self.log.record(
                "data-loss", victim, now, now,
                detail=f"replicas_dropped={dropped}", domain=self.name,
            )
        return victim

    def heal(self, token: object) -> None:
        """No-op: wiped data does not come back; repair re-replicates."""


class ChaosMonkey:
    """Random faults on a Poisson clock, with fixed repair time.

    Parameters
    ----------
    mtbf:
        Cluster-wide mean time between strikes (s).
    repair_time:
        Seconds a fault stays active before the monkey heals it.
    max_concurrent_failures:
        Never keep more than this many faults active at once (keeps soak
        runs from killing the whole cluster).
    domains:
        Fault domains to draw from; defaults to crash-only against
        ``injector`` (the legacy behaviour). With several domains the
        monkey picks one uniformly per strike.
    """

    def __init__(
        self,
        engine: Engine,
        injector: FailureInjector,
        rng: np.random.Generator,
        *,
        mtbf: float = 3600.0,
        repair_time: float = 300.0,
        max_concurrent_failures: int = 1,
        domains: list[FaultDomain] | None = None,
    ):
        if mtbf <= 0 or repair_time <= 0:
            raise ValueError("mtbf and repair_time must be positive")
        if max_concurrent_failures < 1:
            raise ValueError("max_concurrent_failures must be ≥ 1")
        self.engine = engine
        self.injector = injector
        self.rng = rng
        self.mtbf = mtbf
        self.repair_time = repair_time
        self.max_concurrent_failures = max_concurrent_failures
        self.domains: list[FaultDomain] = (
            list(domains) if domains else [NodeCrashDomain(injector, rng)]
        )
        if not self.domains:
            raise ValueError("need at least one fault domain")
        self.strikes = 0
        self._active: set[object] = set()
        self._armed = False

    def start(self) -> None:
        if self._armed:
            raise RuntimeError("chaos monkey already started")
        self._armed = True
        self._arm_next()

    def stop(self) -> None:
        """Stop future strikes; already-scheduled heals still run."""
        self._armed = False

    def active_faults(self) -> int:
        return len(self._active)

    def _arm_next(self) -> None:
        delay = float(self.rng.exponential(self.mtbf))
        self.engine.schedule(max(1.0, delay), self._strike)

    def _strike(self) -> None:
        if not self._armed:
            return
        if len(self._active) < self.max_concurrent_failures:
            if len(self.domains) == 1:
                domain = self.domains[0]
            else:
                domain = self.domains[int(self.rng.integers(len(self.domains)))]
            token = domain.strike()
            if token is not None:
                self.strikes += 1
                key = (domain.name, token, self.engine.now)
                self._active.add(key)
                self.engine.schedule(
                    self.repair_time, lambda: self._heal(domain, token, key)
                )
        self._arm_next()

    def _heal(self, domain: FaultDomain, token: object, key: object) -> None:
        self._active.discard(key)
        domain.heal(token)
