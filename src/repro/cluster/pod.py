"""Pod objects: the unit of scheduling and resource allocation.

A :class:`PodSpec` is what a workload submits (immutable intent); a
:class:`Pod` is the live object the cluster tracks (phase, node binding,
current allocation and usage). Pods follow Guaranteed-QoS semantics: the
allocation granted by the control plane is both the request and the limit,
so an application can only obtain more of a resource through an explicit
vertical resize or by adding replicas — exactly the actuation surface the
autoscaler controls.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Mapping

from repro.cluster.resources import ResourceVector


class WorkloadClass(enum.Enum):
    """The three converging worlds, plus system daemons."""

    MICROSERVICE = "microservice"
    BIGDATA = "bigdata"
    HPC = "hpc"
    SYSTEM = "system"


class PodPhase(enum.Enum):
    """Lifecycle phases, a simplified kube pod phase machine."""

    PENDING = "pending"        # submitted, awaiting scheduling
    SCHEDULED = "scheduled"    # bound to a node, container starting
    RUNNING = "running"        # started, consuming resources
    SUCCEEDED = "succeeded"    # finished normally
    FAILED = "failed"          # crashed / gang aborted
    EVICTED = "evicted"        # preempted or vertically resized via restart


#: Phases in which a pod occupies node resources.
ACTIVE_PHASES = frozenset({PodPhase.SCHEDULED, PodPhase.RUNNING})


@dataclass(frozen=True)
class PodSpec:
    """Immutable submission intent for one pod.

    Parameters
    ----------
    name:
        Unique pod name within the cluster.
    app:
        Application (deployment/job) this pod belongs to; the controller
        operates per-app.
    workload_class:
        Which world the pod belongs to; drives scheduler policy.
    requests:
        Initial resource request (also the limit; Guaranteed QoS).
    gang_id:
        HPC jobs set this: all pods sharing a gang_id must be co-scheduled
        atomically.
    priority:
        Larger values are more important; used for preemption ordering.
    labels:
        Free-form metadata (zone affinity, dataset hints, ...).
    node_selector:
        Hard placement constraint: the pod may only run on nodes whose
        labels include every entry (kube nodeSelector semantics).
    node_preference:
        Soft constraint: schedulers award a scoring bonus on nodes whose
        labels match (used e.g. to steer accelerable executors toward
        FPGA nodes without making them unschedulable elsewhere).
    """

    name: str
    app: str
    workload_class: WorkloadClass
    requests: ResourceVector
    gang_id: str | None = None
    priority: int = 0
    labels: Mapping[str, str] = field(default_factory=dict)
    node_selector: Mapping[str, str] = field(default_factory=dict)
    node_preference: Mapping[str, str] = field(default_factory=dict)

    def selector_matches(self, node_labels: Mapping[str, str]) -> bool:
        """Whether a node's labels satisfy the hard selector."""
        return all(node_labels.get(k) == v for k, v in self.node_selector.items())

    def preference_matches(self, node_labels: Mapping[str, str]) -> bool:
        """Whether a node's labels satisfy the soft preference."""
        if not self.node_preference:
            return False
        return all(
            node_labels.get(k) == v for k, v in self.node_preference.items()
        )

    def __post_init__(self) -> None:
        if self.requests.any_negative():
            raise ValueError(f"pod {self.name!r}: negative resource request")


class Pod:
    """Live pod object tracked by the cluster.

    Attributes
    ----------
    allocation:
        Resources currently granted (request == limit). Changed only by
        :meth:`repro.cluster.cluster.Cluster.resize_pod`.
    usage:
        Most recent measured consumption, written by the workload model
        each metrics tick; always ≤ allocation (enforcement).
    """

    __slots__ = (
        "spec",
        "phase",
        "node_name",
        "allocation",
        "usage",
        "created_at",
        "scheduled_at",
        "started_at",
        "finished_at",
        "restarts",
    )

    def __init__(self, spec: PodSpec, created_at: float):
        self.spec = spec
        self.phase = PodPhase.PENDING
        self.node_name: str | None = None
        self.allocation: ResourceVector = spec.requests
        self.usage: ResourceVector = ResourceVector.zero()
        self.created_at = created_at
        self.scheduled_at: float | None = None
        self.started_at: float | None = None
        self.finished_at: float | None = None
        self.restarts = 0

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def app(self) -> str:
        return self.spec.app

    @property
    def active(self) -> bool:
        """True while the pod holds resources on a node."""
        return self.phase in ACTIVE_PHASES

    @property
    def terminal(self) -> bool:
        return self.phase in (PodPhase.SUCCEEDED, PodPhase.FAILED, PodPhase.EVICTED)

    def record_usage(self, usage: ResourceVector) -> None:
        """Record measured usage, enforced at the current allocation.

        Fused elementwise ``min`` + nonnegative clamp: this runs once per
        replica per model tick, making it one of the hottest call sites
        in long simulations.
        """
        alloc = self.allocation
        self.usage = ResourceVector._from_fields(
            max(0.0, min(usage.cpu, alloc.cpu)),
            max(0.0, min(usage.memory, alloc.memory)),
            max(0.0, min(usage.disk_bw, alloc.disk_bw)),
            max(0.0, min(usage.net_bw, alloc.net_bw)),
        )

    def scheduling_latency(self) -> float | None:
        """Seconds from submission to binding, if scheduled."""
        if self.scheduled_at is None:
            return None
        return self.scheduled_at - self.created_at

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Pod({self.name!r}, app={self.app!r}, phase={self.phase.value}, "
            f"node={self.node_name!r})"
        )
