"""Kube-client-style facade over the simulated cluster.

Control-plane components (schedulers, autoscalers, workload drivers) are
written against this API only — the same narrow surface a real deployment
would get from the Kubernetes API server — so they would port to a real
client with mechanical changes.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Type, TypeVar

from repro.cluster.cluster import Cluster, ClusterError
from repro.cluster.events import ClusterEvent, LeaderDeposed, LeaderElected
from repro.cluster.node import Node
from repro.cluster.pod import Pod, PodPhase, PodSpec, WorkloadClass
from repro.cluster.resources import ResourceVector

E = TypeVar("E", bound=ClusterEvent)


class ActuationError(ClusterError):
    """A control-plane actuation transiently failed (injected fault).

    Raised by the gated verbs (:meth:`ClusterAPI.create_pod`,
    :meth:`ClusterAPI.patch_pod_allocation`) when an attached
    :class:`~repro.cluster.chaos.ActuationFaultInjector` decides the
    attempt fails — the kubelet-timeout / API-server-brown-out analogue.
    Callers are expected to retry with backoff, not crash.
    """


class PartitionError(ActuationError):
    """The calling controller is partitioned from the API server.

    Raised by every verb of a :class:`ScopedClusterAPI` whose identity is
    inside an injected partition window — lease renewals and actuations
    fail alike, which is what forces a partitioned leader to stop
    actuating and lets a standby take over without split-brain.
    Subclasses :class:`ActuationError` so existing retry/backoff paths
    absorb it.
    """


@dataclass(frozen=True)
class Lease:
    """A TTL lease stored in the API server (leader-election primitive).

    ``generation`` increments every time the holder *changes*; it doubles
    as a fencing token — a deposed leader can detect that leadership
    moved even if it was partitioned through the whole handover.
    """

    name: str
    holder: str
    ttl: float
    acquired_at: float
    renewed_at: float
    generation: int

    def expires_at(self) -> float:
        return self.renewed_at + self.ttl

    def expired(self, now: float) -> bool:
        return now >= self.expires_at()


class ClusterAPI:
    """Narrow, kube-like verbs over a :class:`~repro.cluster.cluster.Cluster`.

    ``actuation_faults`` (optional) injects transient failures into the
    mutating verbs so consumers' retry paths can be exercised.
    """

    def __init__(self, cluster: Cluster):
        self._cluster = cluster
        self.actuation_faults = None  # optional ActuationFaultInjector
        self.partitions = None  # optional PartitionInjector
        self.telemetry = None  # optional repro.obs Telemetry bundle
        self._leases: dict[str, Lease] = {}

    def _check_actuation(self, verb: str) -> None:
        faults = self.actuation_faults
        if faults is not None and faults.should_fail(self._cluster.now, verb):
            raise ActuationError(f"injected actuation failure: {verb}")

    # -- time ----------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current cluster (simulated) time in seconds."""
        return self._cluster.now

    # -- pods -------------------------------------------------------------------

    def create_pod(self, spec: PodSpec) -> Pod:
        """Submit a pod for scheduling."""
        tel = self.telemetry
        if tel is None:
            self._check_actuation("create_pod")
            return self._cluster.submit(spec)
        # Nests under an open actuate span via the tracer stack.
        sp = tel.tracer.begin("api/create_pod", "api", app=spec.app)
        try:
            self._check_actuation("create_pod")
            pod = self._cluster.submit(spec)
            sp.args["outcome"] = "ok"
            sp.args["pod"] = pod.name
            return pod
        except ActuationError:
            sp.args["outcome"] = "actuation-error"
            raise
        finally:
            tel.tracer.end(sp)

    def delete_pod(self, name: str, *, reason: str = "deleted") -> None:
        """Evict/terminate a pod regardless of phase."""
        self._cluster.evict(name, reason=reason)

    def get_pod(self, name: str) -> Pod:
        return self._cluster.get_pod(name)

    def list_pods(
        self,
        *,
        app: str | None = None,
        phase: PodPhase | None = None,
        workload_class: WorkloadClass | None = None,
    ) -> list[Pod]:
        """List pods with optional field selectors."""
        pods = list(self._cluster.pods.values())
        if app is not None:
            pods = [p for p in pods if p.app == app]
        if phase is not None:
            pods = [p for p in pods if p.phase == phase]
        if workload_class is not None:
            pods = [p for p in pods if p.spec.workload_class == workload_class]
        return pods

    def pending_pods(self) -> list[Pod]:
        return self._cluster.pending_pods()

    def running_pods(self, app: str) -> list[Pod]:
        return self._cluster.running_pods_of_app(app)

    # -- scheduling & scaling verbs ----------------------------------------------

    def bind_pod(self, pod_name: str, node_name: str) -> None:
        """Bind a pending pod to a node (scheduler verb)."""
        self._cluster.bind(pod_name, node_name)

    def quota_allows_bind(self, pod_name: str) -> bool:
        """Whether tenant quota permits binding this pod now."""
        return self._cluster.quota_allows_bind(pod_name)

    def quota_allows_gang(self, pod_names: list[str]) -> bool:
        """Whether tenant quota permits binding all these pods together."""
        return self._cluster.quota_allows_bind_all(pod_names)

    def set_quotas(self, manager) -> None:
        """Install a :class:`~repro.cluster.quota.QuotaManager`."""
        self._cluster.quotas = manager

    def patch_pod_allocation(self, pod_name: str, allocation: ResourceVector) -> bool:
        """Request an in-place vertical resize; False if it cannot fit.

        Raises :class:`ActuationError` when an injected actuation fault
        rejects the patch (distinct from the fit-based False return).
        """
        tel = self.telemetry
        if tel is None:
            self._check_actuation("patch_pod_allocation")
            return self._cluster.resize_pod(pod_name, allocation)
        sp = tel.tracer.begin("api/patch_pod_allocation", "api", pod=pod_name)
        try:
            self._check_actuation("patch_pod_allocation")
            fitted = self._cluster.resize_pod(pod_name, allocation)
            sp.args["outcome"] = "ok" if fitted else "no-fit"
            return fitted
        except ActuationError:
            sp.args["outcome"] = "actuation-error"
            raise
        finally:
            tel.tracer.end(sp)

    def can_resize(self, pod_name: str, allocation: ResourceVector) -> bool:
        return self._cluster.can_resize(pod_name, allocation)

    def mark_finished(self, pod_name: str, *, succeeded: bool = True) -> None:
        """Workload-driver verb: report pod completion."""
        self._cluster.finish(pod_name, succeeded=succeeded)

    # -- nodes ---------------------------------------------------------------------

    def list_nodes(self) -> list[Node]:
        return list(self._cluster.nodes.values())

    def get_node(self, name: str) -> Node:
        return self._cluster.get_node(name)

    def total_allocatable(self) -> ResourceVector:
        return self._cluster.total_allocatable()

    def total_allocated(self) -> ResourceVector:
        return self._cluster.total_allocated()

    def total_usage(self) -> ResourceVector:
        return self._cluster.total_usage()

    # -- leases (leader-election primitive) -------------------------------------

    def get_lease(self, name: str) -> Lease | None:
        """Current lease record, expired or not; None if never acquired."""
        return self._leases.get(name)

    def try_acquire_lease(self, name: str, holder: str, ttl: float) -> Lease | None:
        """Acquire (or renew, when already held) a TTL lease.

        Succeeds when the lease is free, expired, or already held by
        ``holder``; returns None when another holder's lease is still
        live. A holder change increments the generation and publishes
        :class:`~repro.cluster.events.LeaderElected` (and
        :class:`~repro.cluster.events.LeaderDeposed` for the previous
        holder when one expired underneath).
        """
        if ttl <= 0:
            raise ClusterError("lease ttl must be positive")
        now = self._cluster.now
        current = self._leases.get(name)
        if current is not None and current.holder == holder:
            lease = replace(current, renewed_at=now, ttl=ttl)
            self._leases[name] = lease
            return lease
        if current is not None and not current.expired(now):
            return None
        generation = 1 if current is None else current.generation + 1
        lease = Lease(name, holder, ttl, now, now, generation)
        self._leases[name] = lease
        if self.telemetry is not None:
            self.telemetry.tracer.instant(
                "lease/acquired", "ha",
                lease=name, holder=holder, generation=generation,
            )
        if current is not None:
            self._cluster.events.publish(
                LeaderDeposed(now, name, current.holder, "lease-expired")
            )
        self._cluster.events.publish(LeaderElected(now, name, holder, generation))
        return lease

    def renew_lease(self, name: str, holder: str) -> Lease | None:
        """Heartbeat an owned lease; None when it was lost (expired or
        taken over) — the caller must step down, not keep actuating."""
        current = self._leases.get(name)
        now = self._cluster.now
        if current is None or current.holder != holder or current.expired(now):
            return None
        lease = replace(current, renewed_at=now)
        self._leases[name] = lease
        return lease

    def release_lease(self, name: str, holder: str) -> bool:
        """Voluntarily give up a lease (clean shutdown/step-down)."""
        current = self._leases.get(name)
        if current is None or current.holder != holder:
            return False
        del self._leases[name]
        self._cluster.events.publish(
            LeaderDeposed(self._cluster.now, name, holder, "released")
        )
        return True

    def for_controller(self, identity: str) -> "ScopedClusterAPI":
        """A per-controller view whose verbs fail while partitioned."""
        return ScopedClusterAPI(self, identity)

    # -- watch -----------------------------------------------------------------------

    def watch(
        self, event_type: Type[E], handler: Callable[[E], None]
    ) -> Callable[[], None]:
        """Subscribe to cluster events; returns an unsubscribe callable."""
        return self._cluster.events.subscribe(event_type, handler)


class ScopedClusterAPI:
    """A :class:`ClusterAPI` view bound to one controller identity.

    Every verb first checks whether the identity is inside an injected
    API-server partition window (:class:`~repro.cluster.chaos.PartitionInjector`)
    and raises :class:`PartitionError` if so. Control-plane replicas do
    their lease traffic — and gate their actuations — through this view,
    so a partition makes the *whole* API unreachable for that replica,
    exactly like losing the API server: renewals fail, actuations fail,
    and the only safe behaviour left is to stop.
    """

    def __init__(self, base: ClusterAPI, identity: str):
        self._base = base
        self.identity = identity

    @property
    def now(self) -> float:
        """Local clock — readable even while partitioned."""
        return self._base.now

    def is_partitioned(self) -> bool:
        injector = self._base.partitions
        return injector is not None and injector.is_partitioned(
            self.identity, self._base.now
        )

    def check_partition(self) -> None:
        """Raise :class:`PartitionError` while this identity is cut off."""
        if self.is_partitioned():
            raise PartitionError(
                f"controller {self.identity!r} cannot reach the API server"
            )

    # -- lease verbs (the scoped surface the control plane uses) ------------

    def get_lease(self, name: str) -> Lease | None:
        self.check_partition()
        return self._base.get_lease(name)

    def try_acquire_lease(self, name: str, holder: str, ttl: float) -> Lease | None:
        self.check_partition()
        return self._base.try_acquire_lease(name, holder, ttl)

    def renew_lease(self, name: str, holder: str) -> Lease | None:
        self.check_partition()
        return self._base.renew_lease(name, holder)

    def release_lease(self, name: str, holder: str) -> bool:
        self.check_partition()
        return self._base.release_lease(name, holder)

    # -- pass-through reads (partition-gated like everything else) ----------

    def list_pods(self, **kwargs) -> list[Pod]:
        self.check_partition()
        return self._base.list_pods(**kwargs)

    def running_pods(self, app: str) -> list[Pod]:
        self.check_partition()
        return self._base.running_pods(app)
