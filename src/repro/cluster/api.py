"""Kube-client-style facade over the simulated cluster.

Control-plane components (schedulers, autoscalers, workload drivers) are
written against this API only — the same narrow surface a real deployment
would get from the Kubernetes API server — so they would port to a real
client with mechanical changes.
"""

from __future__ import annotations

from typing import Callable, Type, TypeVar

from repro.cluster.cluster import Cluster, ClusterError
from repro.cluster.events import ClusterEvent
from repro.cluster.node import Node
from repro.cluster.pod import Pod, PodPhase, PodSpec, WorkloadClass
from repro.cluster.resources import ResourceVector

E = TypeVar("E", bound=ClusterEvent)


class ActuationError(ClusterError):
    """A control-plane actuation transiently failed (injected fault).

    Raised by the gated verbs (:meth:`ClusterAPI.create_pod`,
    :meth:`ClusterAPI.patch_pod_allocation`) when an attached
    :class:`~repro.cluster.chaos.ActuationFaultInjector` decides the
    attempt fails — the kubelet-timeout / API-server-brown-out analogue.
    Callers are expected to retry with backoff, not crash.
    """


class ClusterAPI:
    """Narrow, kube-like verbs over a :class:`~repro.cluster.cluster.Cluster`.

    ``actuation_faults`` (optional) injects transient failures into the
    mutating verbs so consumers' retry paths can be exercised.
    """

    def __init__(self, cluster: Cluster):
        self._cluster = cluster
        self.actuation_faults = None  # optional ActuationFaultInjector

    def _check_actuation(self, verb: str) -> None:
        faults = self.actuation_faults
        if faults is not None and faults.should_fail(self._cluster.now, verb):
            raise ActuationError(f"injected actuation failure: {verb}")

    # -- time ----------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current cluster (simulated) time in seconds."""
        return self._cluster.now

    # -- pods -------------------------------------------------------------------

    def create_pod(self, spec: PodSpec) -> Pod:
        """Submit a pod for scheduling."""
        self._check_actuation("create_pod")
        return self._cluster.submit(spec)

    def delete_pod(self, name: str, *, reason: str = "deleted") -> None:
        """Evict/terminate a pod regardless of phase."""
        self._cluster.evict(name, reason=reason)

    def get_pod(self, name: str) -> Pod:
        return self._cluster.get_pod(name)

    def list_pods(
        self,
        *,
        app: str | None = None,
        phase: PodPhase | None = None,
        workload_class: WorkloadClass | None = None,
    ) -> list[Pod]:
        """List pods with optional field selectors."""
        pods = list(self._cluster.pods.values())
        if app is not None:
            pods = [p for p in pods if p.app == app]
        if phase is not None:
            pods = [p for p in pods if p.phase == phase]
        if workload_class is not None:
            pods = [p for p in pods if p.spec.workload_class == workload_class]
        return pods

    def pending_pods(self) -> list[Pod]:
        return self._cluster.pending_pods()

    def running_pods(self, app: str) -> list[Pod]:
        return self._cluster.running_pods_of_app(app)

    # -- scheduling & scaling verbs ----------------------------------------------

    def bind_pod(self, pod_name: str, node_name: str) -> None:
        """Bind a pending pod to a node (scheduler verb)."""
        self._cluster.bind(pod_name, node_name)

    def quota_allows_bind(self, pod_name: str) -> bool:
        """Whether tenant quota permits binding this pod now."""
        return self._cluster.quota_allows_bind(pod_name)

    def quota_allows_gang(self, pod_names: list[str]) -> bool:
        """Whether tenant quota permits binding all these pods together."""
        return self._cluster.quota_allows_bind_all(pod_names)

    def set_quotas(self, manager) -> None:
        """Install a :class:`~repro.cluster.quota.QuotaManager`."""
        self._cluster.quotas = manager

    def patch_pod_allocation(self, pod_name: str, allocation: ResourceVector) -> bool:
        """Request an in-place vertical resize; False if it cannot fit.

        Raises :class:`ActuationError` when an injected actuation fault
        rejects the patch (distinct from the fit-based False return).
        """
        self._check_actuation("patch_pod_allocation")
        return self._cluster.resize_pod(pod_name, allocation)

    def can_resize(self, pod_name: str, allocation: ResourceVector) -> bool:
        return self._cluster.can_resize(pod_name, allocation)

    def mark_finished(self, pod_name: str, *, succeeded: bool = True) -> None:
        """Workload-driver verb: report pod completion."""
        self._cluster.finish(pod_name, succeeded=succeeded)

    # -- nodes ---------------------------------------------------------------------

    def list_nodes(self) -> list[Node]:
        return list(self._cluster.nodes.values())

    def get_node(self, name: str) -> Node:
        return self._cluster.get_node(name)

    def total_allocatable(self) -> ResourceVector:
        return self._cluster.total_allocatable()

    def total_allocated(self) -> ResourceVector:
        return self._cluster.total_allocated()

    def total_usage(self) -> ResourceVector:
        return self._cluster.total_usage()

    # -- watch -----------------------------------------------------------------------

    def watch(
        self, event_type: Type[E], handler: Callable[[E], None]
    ) -> Callable[[], None]:
        """Subscribe to cluster events; returns an unsubscribe callable."""
        return self._cluster.events.subscribe(event_type, handler)
