"""Tenant resource quotas.

A converged cluster is shared by tenants (departments, projects); quotas
cap the total resources each tenant's live pods may hold, Kubernetes
ResourceQuota style. Pods declare their tenant through the ``tenant``
label; unlabelled pods are exempt. Enforcement happens at bind and
resize time — a tenant at its cap keeps its pods pending (or its resize
denied) no matter how much physical headroom exists.
"""

from __future__ import annotations

from repro.cluster.pod import Pod
from repro.cluster.resources import ResourceVector


class QuotaExceededError(RuntimeError):
    """Raised when an operation would push a tenant past its quota."""


#: Pod label carrying the tenant name.
TENANT_LABEL = "tenant"


class QuotaManager:
    """Per-tenant allocation caps.

    The manager is attached to a cluster (``cluster.quotas = manager``);
    the cluster consults it inside :meth:`~repro.cluster.cluster.Cluster.bind`
    and :meth:`~repro.cluster.cluster.Cluster.resize_pod`. Usage is
    computed from live pod allocations on demand, so it is always
    consistent with the cluster's own accounting.
    """

    def __init__(self) -> None:
        self._limits: dict[str, ResourceVector] = {}
        self.denials = 0

    # -- configuration -------------------------------------------------------

    def set_quota(self, tenant: str, limit: ResourceVector) -> None:
        """Create or replace a tenant's cap."""
        if limit.any_negative():
            raise ValueError(f"tenant {tenant!r}: negative quota")
        self._limits[tenant] = limit

    def remove_quota(self, tenant: str) -> None:
        self._limits.pop(tenant, None)

    def limit(self, tenant: str) -> ResourceVector | None:
        return self._limits.get(tenant)

    def tenants(self) -> list[str]:
        return sorted(self._limits)

    # -- queries ----------------------------------------------------------------

    @staticmethod
    def tenant_of(pod: Pod) -> str | None:
        return pod.spec.labels.get(TENANT_LABEL)

    def usage(self, tenant: str, pods) -> ResourceVector:
        """Total allocation held by ``tenant``'s active pods."""
        total = ResourceVector.zero()
        for pod in pods:
            if pod.active and self.tenant_of(pod) == tenant:
                total = total + pod.allocation
        return total

    def headroom(self, tenant: str, pods) -> ResourceVector | None:
        """Remaining quota, or None when the tenant is uncapped."""
        limit = self._limits.get(tenant)
        if limit is None:
            return None
        return (limit - self.usage(tenant, pods)).clamp_nonnegative()

    # -- enforcement ---------------------------------------------------------------

    def allows_bind(self, pod: Pod, pods) -> bool:
        """Whether binding ``pod`` keeps its tenant within quota."""
        tenant = self.tenant_of(pod)
        if tenant is None:
            return True
        limit = self._limits.get(tenant)
        if limit is None:
            return True
        projected = self.usage(tenant, pods) + pod.allocation
        if projected.fits_within(limit):
            return True
        self.denials += 1
        return False

    def allows_resize(
        self, pod: Pod, new_allocation: ResourceVector, pods
    ) -> bool:
        """Whether resizing ``pod`` keeps its tenant within quota."""
        tenant = self.tenant_of(pod)
        if tenant is None:
            return True
        limit = self._limits.get(tenant)
        if limit is None:
            return True
        projected = (
            self.usage(tenant, pods) - pod.allocation + new_allocation
        )
        if projected.fits_within(limit):
            return True
        self.denials += 1
        return False
