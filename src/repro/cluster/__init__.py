"""Simulated Kubernetes-like cluster substrate.

Provides the objects a real control plane would expose — nodes, pods,
resource vectors, an API facade with watch events — backed by the
discrete-event engine instead of real machines. The controller and
scheduler subsystems interact with the cluster only through
:class:`~repro.cluster.api.ClusterAPI`, mirroring how the original system
talks to the Kubernetes API server.
"""

from repro.cluster.resources import RESOURCES, ResourceVector
from repro.cluster.pod import Pod, PodPhase, PodSpec, WorkloadClass
from repro.cluster.node import Node
from repro.cluster.events import (
    ClusterEvent,
    LeaderDeposed,
    LeaderElected,
    PodEvicted,
    PodFinished,
    PodResized,
    PodScheduled,
    PodStarted,
    PodSubmitted,
)
from repro.cluster.cluster import Cluster, ClusterError, NodeNotFound, PodNotFound
from repro.cluster.api import (
    ActuationError,
    ClusterAPI,
    Lease,
    PartitionError,
    ScopedClusterAPI,
)
from repro.cluster.chaos import (
    ActuationFaultInjector,
    ChaosMonkey,
    ControllerCrashDomain,
    DataLossDomain,
    DegradationInjector,
    ExecutorKillDomain,
    FailureInjector,
    FaultEpisode,
    FaultLog,
    NodeCrashDomain,
    NodeDegradationDomain,
    PartitionDomain,
    PartitionInjector,
    StragglerDomain,
)
from repro.cluster.quota import QuotaManager

__all__ = [
    "ActuationError",
    "ControllerCrashDomain",
    "Lease",
    "LeaderDeposed",
    "LeaderElected",
    "NodeNotFound",
    "PartitionDomain",
    "PartitionError",
    "PartitionInjector",
    "PodNotFound",
    "ScopedClusterAPI",
    "ActuationFaultInjector",
    "ChaosMonkey",
    "DegradationInjector",
    "FailureInjector",
    "FaultEpisode",
    "FaultLog",
    "NodeCrashDomain",
    "NodeDegradationDomain",
    "ExecutorKillDomain",
    "StragglerDomain",
    "DataLossDomain",
    "QuotaManager",
    "RESOURCES",
    "ResourceVector",
    "Pod",
    "PodPhase",
    "PodSpec",
    "WorkloadClass",
    "Node",
    "Cluster",
    "ClusterError",
    "ClusterAPI",
    "ClusterEvent",
    "PodSubmitted",
    "PodScheduled",
    "PodStarted",
    "PodFinished",
    "PodEvicted",
    "PodResized",
]
