"""Cluster state machine: pending queue, bindings, resizes, evictions.

The cluster owns pod lifecycle transitions and node accounting, and
publishes watch events for every transition. It deliberately contains no
placement policy — schedulers decide *where*, the cluster enforces *whether
it fits* and models actuation latency (container start delay, in-place
resize delay), which is what makes the control loop's job non-trivial.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.cluster.events import (
    EventBus,
    PodEvicted,
    PodFinished,
    PodResized,
    PodScheduled,
    PodStarted,
    PodSubmitted,
)
from repro.cluster.node import Node, total_capacity
from repro.cluster.pod import Pod, PodPhase, PodSpec
from repro.cluster.resources import ResourceVector
from repro.sim.engine import Engine


class ClusterError(RuntimeError):
    """Raised on invalid cluster operations."""


class PodNotFound(ClusterError, KeyError):
    """Lookup of a pod name the cluster has never seen.

    Subclasses ``KeyError`` too so legacy ``except KeyError`` callers
    keep working while new code catches the typed error.
    """

    def __str__(self) -> str:  # KeyError would repr() the message
        return self.args[0] if self.args else ""


class NodeNotFound(ClusterError, KeyError):
    """Lookup of a node name that is not part of the cluster."""

    def __str__(self) -> str:
        return self.args[0] if self.args else ""


@dataclass(frozen=True)
class ClusterConfig:
    """Actuation-latency knobs, mirroring real-cluster behaviour.

    Parameters
    ----------
    startup_delay:
        Seconds from binding to RUNNING (image pull + container start).
    resize_delay:
        Seconds for an in-place vertical resize to take effect.
    """

    startup_delay: float = 10.0
    resize_delay: float = 1.0


class Cluster:
    """The simulated cluster: nodes + pods + lifecycle transitions."""

    def __init__(
        self,
        engine: Engine,
        nodes: Iterable[Node],
        *,
        config: ClusterConfig | None = None,
    ):
        self.engine = engine
        self.config = config or ClusterConfig()
        self.nodes: dict[str, Node] = {}
        for node in nodes:
            if node.name in self.nodes:
                raise ClusterError(f"duplicate node name {node.name!r}")
            self.nodes[node.name] = node
        self.pods: dict[str, Pod] = {}
        self.events = EventBus()
        self.quotas = None  # optional QuotaManager, set by the operator
        self._pending: dict[str, Pod] = {}  # insertion-ordered queue

    # -- queries ----------------------------------------------------------------

    @property
    def now(self) -> float:
        return self.engine.now

    def pending_pods(self) -> list[Pod]:
        """Pods awaiting scheduling, in submission order."""
        return list(self._pending.values())

    def get_pod(self, name: str) -> Pod:
        try:
            return self.pods[name]
        except KeyError:
            raise PodNotFound(f"unknown pod {name!r}") from None

    def get_node(self, name: str) -> Node:
        try:
            return self.nodes[name]
        except KeyError:
            raise NodeNotFound(f"unknown node {name!r}") from None

    def pods_of_app(self, app: str) -> list[Pod]:
        return [p for p in self.pods.values() if p.app == app]

    def running_pods_of_app(self, app: str) -> list[Pod]:
        return [
            p
            for p in self.pods.values()
            if p.app == app and p.phase == PodPhase.RUNNING
        ]

    def pods_of_gang(self, gang_id: str) -> list[Pod]:
        return [p for p in self.pods.values() if p.spec.gang_id == gang_id]

    def total_allocatable(self) -> ResourceVector:
        return total_capacity(self.nodes.values())

    def total_allocated(self) -> ResourceVector:
        total = ResourceVector.zero()
        for node in self.nodes.values():
            total = total + node.allocated
        return total

    def total_usage(self) -> ResourceVector:
        total = ResourceVector.zero()
        for node in self.nodes.values():
            total = total + node.usage()
        return total

    # -- lifecycle: submit / bind / start ---------------------------------------

    def submit(self, spec: PodSpec) -> Pod:
        """Add a pod to the pending queue."""
        if spec.name in self.pods:
            raise ClusterError(f"duplicate pod name {spec.name!r}")
        pod = Pod(spec, created_at=self.now)
        self.pods[spec.name] = pod
        self._pending[spec.name] = pod
        self.events.publish(PodSubmitted(self.now, spec.name, spec.app))
        return pod

    def quota_allows_bind(self, pod_name: str) -> bool:
        """Whether binding the pod would keep its tenant within quota."""
        if self.quotas is None:
            return True
        pod = self.get_pod(pod_name)
        return self.quotas.allows_bind(pod, self.pods.values())

    def quota_allows_bind_all(self, pod_names: list[str]) -> bool:
        """Whether binding all of ``pod_names`` together respects quotas.

        Aggregates per tenant before checking, so a gang cannot sneak past
        its cap one rank at a time.
        """
        if self.quotas is None:
            return True
        by_tenant: dict[str, ResourceVector] = {}
        for name in pod_names:
            pod = self.get_pod(name)
            tenant = self.quotas.tenant_of(pod)
            if tenant is None:
                continue
            by_tenant[tenant] = (
                by_tenant.get(tenant, ResourceVector.zero()) + pod.allocation
            )
        for tenant, demand in by_tenant.items():
            limit = self.quotas.limit(tenant)
            if limit is None:
                continue
            projected = self.quotas.usage(tenant, self.pods.values()) + demand
            if not projected.fits_within(limit):
                self.quotas.denials += 1
                return False
        return True

    def bind(self, pod_name: str, node_name: str) -> None:
        """Bind a pending pod to a node; it starts after ``startup_delay``."""
        pod = self.get_pod(pod_name)
        node = self.get_node(node_name)
        if pod.phase != PodPhase.PENDING:
            raise ClusterError(
                f"pod {pod_name!r} is {pod.phase.value}, cannot bind"
            )
        if not self.quota_allows_bind(pod_name):
            raise ClusterError(
                f"pod {pod_name!r}: tenant quota exceeded"
            )
        node.bind(pod)  # raises NodeError if it does not fit
        del self._pending[pod_name]
        pod.phase = PodPhase.SCHEDULED
        pod.node_name = node_name
        pod.scheduled_at = self.now
        self.events.publish(PodScheduled(self.now, pod_name, node_name))
        self.engine.schedule(
            self.config.startup_delay, lambda: self._start(pod_name)
        )

    def _start(self, pod_name: str) -> None:
        pod = self.pods.get(pod_name)
        if pod is None or pod.phase != PodPhase.SCHEDULED:
            return  # evicted or finished while starting
        pod.phase = PodPhase.RUNNING
        pod.started_at = self.now
        assert pod.node_name is not None
        self.events.publish(PodStarted(self.now, pod_name, pod.node_name))

    # -- lifecycle: finish / evict -----------------------------------------------

    def finish(self, pod_name: str, *, succeeded: bool = True) -> None:
        """Terminate a pod normally, releasing its node resources."""
        pod = self.get_pod(pod_name)
        if pod.terminal:
            raise ClusterError(f"pod {pod_name!r} already terminal")
        self._release_if_bound(pod)
        self._pending.pop(pod_name, None)
        pod.phase = PodPhase.SUCCEEDED if succeeded else PodPhase.FAILED
        pod.finished_at = self.now
        pod.usage = ResourceVector.zero()
        self.events.publish(PodFinished(self.now, pod_name, succeeded))

    def evict(self, pod_name: str, *, reason: str = "preempted") -> None:
        """Forcibly remove a pod (preemption / restart-based resize)."""
        pod = self.get_pod(pod_name)
        if pod.terminal:
            raise ClusterError(f"pod {pod_name!r} already terminal")
        self._release_if_bound(pod)
        self._pending.pop(pod_name, None)
        pod.phase = PodPhase.EVICTED
        pod.finished_at = self.now
        pod.usage = ResourceVector.zero()
        self.events.publish(PodEvicted(self.now, pod_name, reason))

    def _release_if_bound(self, pod: Pod) -> None:
        if pod.node_name is not None:
            self.get_node(pod.node_name).release(pod)

    # -- vertical resize ---------------------------------------------------------

    def can_resize(self, pod_name: str, new_allocation: ResourceVector) -> bool:
        """Whether an in-place resize would fit on the pod's node."""
        pod = self.get_pod(pod_name)
        if not pod.active or pod.node_name is None:
            return False
        if new_allocation.any_negative():
            return False
        if self.quotas is not None and not self.quotas.allows_resize(
            pod, new_allocation, self.pods.values()
        ):
            return False
        return self.get_node(pod.node_name).headroom_for_resize(pod, new_allocation)

    def resize_pod(self, pod_name: str, new_allocation: ResourceVector) -> bool:
        """In-place vertical resize; takes ``resize_delay`` to apply.

        Returns True if the resize was accepted (fits on the node at
        request time). The new allocation is applied after the delay,
        re-checked against headroom at apply time; a resize that no longer
        fits is dropped, mirroring a rejected kubelet patch.
        """
        if not self.can_resize(pod_name, new_allocation):
            return False

        def apply() -> None:
            pod = self.pods.get(pod_name)
            if pod is None or not pod.active or pod.node_name is None:
                return
            if self.quotas is not None and not self.quotas.allows_resize(
                pod, new_allocation, self.pods.values()
            ):
                return
            node = self.get_node(pod.node_name)
            if not node.headroom_for_resize(pod, new_allocation):
                return
            old = pod.allocation
            node.apply_resize(pod, new_allocation)
            self.events.publish(
                PodResized(self.now, pod_name, old, new_allocation)
            )

        self.engine.schedule(self.config.resize_delay, apply)
        return True

    # -- invariants ---------------------------------------------------------------

    def verify_invariants(self) -> None:
        """Cross-check node accounting and queue consistency (test hook)."""
        for node in self.nodes.values():
            node.verify_invariants()
        for name, pod in self._pending.items():
            if pod.phase != PodPhase.PENDING:
                raise ClusterError(f"non-pending pod {name!r} in pending queue")
        for pod in self.pods.values():
            if pod.active and pod.node_name is None:
                raise ClusterError(f"active pod {pod.name!r} has no node")
