"""Cluster watch events.

The control plane components (schedulers, autoscalers, workload drivers)
observe the cluster through a watch stream, mirroring the Kubernetes
informer pattern. Events are plain frozen dataclasses; the
:class:`EventBus` dispatches them synchronously in subscription order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Type, TypeVar

from repro.cluster.resources import ResourceVector


@dataclass(frozen=True)
class ClusterEvent:
    """Base class for all watch events."""

    time: float
    pod_name: str


@dataclass(frozen=True)
class PodSubmitted(ClusterEvent):
    """A pod entered the pending queue."""

    app: str


@dataclass(frozen=True)
class PodScheduled(ClusterEvent):
    """A pod was bound to a node."""

    node_name: str


@dataclass(frozen=True)
class PodStarted(ClusterEvent):
    """A pod's container finished starting and began running."""

    node_name: str


@dataclass(frozen=True)
class PodFinished(ClusterEvent):
    """A pod reached SUCCEEDED or FAILED."""

    succeeded: bool


@dataclass(frozen=True)
class PodEvicted(ClusterEvent):
    """A pod was evicted (preemption or restart-based resize)."""

    reason: str


@dataclass(frozen=True)
class PodResized(ClusterEvent):
    """A pod's allocation changed in place (vertical scaling)."""

    old_allocation: ResourceVector
    new_allocation: ResourceVector


@dataclass(frozen=True)
class LeaderElected(ClusterEvent):
    """A controller replica acquired (or took over) a control-plane lease.

    ``pod_name`` carries the *lease* name — it is the watch key, matching
    how Kubernetes leader-election surfaces through coordination Leases.
    """

    holder: str
    generation: int


@dataclass(frozen=True)
class LeaderDeposed(ClusterEvent):
    """A lease holder lost leadership (expiry takeover or release).

    ``pod_name`` carries the lease name; ``holder`` is the *previous*
    leader whose tenure ended.
    """

    holder: str
    reason: str


E = TypeVar("E", bound=ClusterEvent)


class EventBus:
    """Synchronous pub/sub for cluster events.

    Subscribers register per event type; a subscriber for a base class
    receives subclass events too.
    """

    def __init__(self) -> None:
        self._subscribers: list[tuple[type, Callable[[ClusterEvent], None]]] = []
        self.published = 0

    def subscribe(
        self, event_type: Type[E], handler: Callable[[E], None]
    ) -> Callable[[], None]:
        """Register ``handler`` for events of ``event_type``.

        Returns an unsubscribe callable.
        """
        entry = (event_type, handler)
        self._subscribers.append(entry)  # type: ignore[arg-type]

        def unsubscribe() -> None:
            try:
                self._subscribers.remove(entry)  # type: ignore[arg-type]
            except ValueError:
                pass

        return unsubscribe

    def publish(self, event: ClusterEvent) -> None:
        """Deliver ``event`` to all matching subscribers, in order."""
        self.published += 1
        # Copy: a handler may subscribe/unsubscribe during dispatch.
        for event_type, handler in list(self._subscribers):
            if isinstance(event, event_type):
                handler(event)
