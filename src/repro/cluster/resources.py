"""Multi-dimensional resource vectors.

The controller manages four resources per application, following the
multi-resource control design the paper's calibration calls out:

* ``cpu`` — cores
* ``memory`` — GiB
* ``disk_bw`` — disk I/O bandwidth, MB/s
* ``net_bw`` — network bandwidth, MB/s

:class:`ResourceVector` is the value type used for node capacities, pod
requests/allocations, and measured usage. It is immutable; arithmetic
returns new vectors.
"""

from __future__ import annotations

from typing import Iterator, Mapping

#: Canonical resource dimension names, in controller order.
RESOURCES: tuple[str, ...] = ("cpu", "memory", "disk_bw", "net_bw")


class ResourceVector:
    """Immutable 4-dimensional resource quantity.

    Supports elementwise arithmetic (``+``, ``-``, scalar ``*`` / ``/``),
    elementwise comparisons via :meth:`fits_within`, and convenience
    constructors. Negative intermediate values are permitted (useful for
    headroom math); use :meth:`clamp_nonnegative` before treating a vector
    as a physical quantity.
    """

    __slots__ = ("cpu", "memory", "disk_bw", "net_bw")

    def __init__(
        self,
        cpu: float = 0.0,
        memory: float = 0.0,
        disk_bw: float = 0.0,
        net_bw: float = 0.0,
    ):
        object.__setattr__(self, "cpu", float(cpu))
        object.__setattr__(self, "memory", float(memory))
        object.__setattr__(self, "disk_bw", float(disk_bw))
        object.__setattr__(self, "net_bw", float(net_bw))

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("ResourceVector is immutable")

    # -- constructors -----------------------------------------------------

    @classmethod
    def zero(cls) -> "ResourceVector":
        """The all-zeros vector."""
        return cls()

    @classmethod
    def uniform(cls, value: float) -> "ResourceVector":
        """A vector with every dimension set to ``value``."""
        return cls(value, value, value, value)

    @classmethod
    def from_dict(cls, data: Mapping[str, float]) -> "ResourceVector":
        """Build from a mapping; missing dimensions default to 0.

        Raises ``KeyError`` on unknown dimension names so typos fail loudly.
        """
        unknown = set(data) - set(RESOURCES)
        if unknown:
            raise KeyError(f"unknown resource dimensions: {sorted(unknown)}")
        return cls(**{k: float(v) for k, v in data.items()})

    # -- accessors ---------------------------------------------------------

    def __getitem__(self, name: str) -> float:
        if name not in RESOURCES:
            raise KeyError(f"unknown resource dimension: {name!r}")
        return getattr(self, name)

    def as_dict(self) -> dict[str, float]:
        """Plain-dict view, keyed by :data:`RESOURCES` names."""
        return {name: getattr(self, name) for name in RESOURCES}

    def __iter__(self) -> Iterator[float]:
        return (getattr(self, name) for name in RESOURCES)

    # -- arithmetic ----------------------------------------------------------

    def _combine(self, other: "ResourceVector", op) -> "ResourceVector":
        return ResourceVector(
            *(op(getattr(self, n), getattr(other, n)) for n in RESOURCES)
        )

    def __add__(self, other: "ResourceVector") -> "ResourceVector":
        return self._combine(other, lambda a, b: a + b)

    def __sub__(self, other: "ResourceVector") -> "ResourceVector":
        return self._combine(other, lambda a, b: a - b)

    def __mul__(self, scalar: float) -> "ResourceVector":
        return ResourceVector(*(v * scalar for v in self))

    __rmul__ = __mul__

    def __truediv__(self, scalar: float) -> "ResourceVector":
        return ResourceVector(*(v / scalar for v in self))

    def elementwise_mul(self, other: "ResourceVector") -> "ResourceVector":
        """Hadamard product, e.g. scaling each dimension by its own factor."""
        return self._combine(other, lambda a, b: a * b)

    def elementwise_min(self, other: "ResourceVector") -> "ResourceVector":
        return self._combine(other, min)

    def elementwise_max(self, other: "ResourceVector") -> "ResourceVector":
        return self._combine(other, max)

    def clamp_nonnegative(self) -> "ResourceVector":
        """Replace negative components with 0."""
        return ResourceVector(*(max(0.0, v) for v in self))

    def clamp(self, lo: "ResourceVector", hi: "ResourceVector") -> "ResourceVector":
        """Clamp each dimension into ``[lo, hi]``."""
        return self.elementwise_max(lo).elementwise_min(hi)

    def scale(self, factors: Mapping[str, float]) -> "ResourceVector":
        """Scale named dimensions by per-dimension factors; others unchanged."""
        values = self.as_dict()
        for name, factor in factors.items():
            if name not in RESOURCES:
                raise KeyError(f"unknown resource dimension: {name!r}")
            values[name] *= factor
        return ResourceVector(**values)

    def replace(self, **updates: float) -> "ResourceVector":
        """Return a copy with the given dimensions overwritten."""
        values = self.as_dict()
        for name, value in updates.items():
            if name not in RESOURCES:
                raise KeyError(f"unknown resource dimension: {name!r}")
            values[name] = float(value)
        return ResourceVector(**values)

    # -- predicates / reductions ----------------------------------------------

    def fits_within(self, other: "ResourceVector", *, tolerance: float = 1e-9) -> bool:
        """True when every dimension is ≤ the other's (within tolerance)."""
        return all(
            getattr(self, n) <= getattr(other, n) + tolerance for n in RESOURCES
        )

    def is_zero(self, *, tolerance: float = 1e-12) -> bool:
        return all(abs(v) <= tolerance for v in self)

    def any_negative(self, *, tolerance: float = 1e-9) -> bool:
        return any(v < -tolerance for v in self)

    def total_fraction_of(self, capacity: "ResourceVector") -> dict[str, float]:
        """Per-dimension fraction of ``capacity`` (0 where capacity is 0)."""
        result = {}
        for name in RESOURCES:
            cap = getattr(capacity, name)
            result[name] = (getattr(self, name) / cap) if cap > 0 else 0.0
        return result

    def dominant_share(self, capacity: "ResourceVector") -> float:
        """Max fraction across dimensions (DRF-style dominant share)."""
        return max(self.total_fraction_of(capacity).values(), default=0.0)

    def bottleneck(self, capacity: "ResourceVector") -> str:
        """Name of the dimension with the highest fraction of capacity."""
        fractions = self.total_fraction_of(capacity)
        return max(RESOURCES, key=lambda n: fractions[n])

    # -- dunder plumbing ------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ResourceVector):
            return NotImplemented
        return all(getattr(self, n) == getattr(other, n) for n in RESOURCES)

    def __hash__(self) -> int:
        return hash(tuple(self))

    def __repr__(self) -> str:
        parts = ", ".join(f"{n}={getattr(self, n):g}" for n in RESOURCES)
        return f"ResourceVector({parts})"

    def approx_equal(self, other: "ResourceVector", *, tolerance: float = 1e-9) -> bool:
        """Elementwise closeness check for tests and invariants."""
        return all(
            abs(getattr(self, n) - getattr(other, n)) <= tolerance for n in RESOURCES
        )
