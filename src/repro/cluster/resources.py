"""Multi-dimensional resource vectors.

The controller manages four resources per application, following the
multi-resource control design the paper's calibration calls out:

* ``cpu`` — cores
* ``memory`` — GiB
* ``disk_bw`` — disk I/O bandwidth, MB/s
* ``net_bw`` — network bandwidth, MB/s

:class:`ResourceVector` is the value type used for node capacities, pod
requests/allocations, and measured usage. It is immutable; arithmetic
returns new vectors.
"""

from __future__ import annotations

from typing import Iterator, Mapping

#: Canonical resource dimension names, in controller order.
RESOURCES: tuple[str, ...] = ("cpu", "memory", "disk_bw", "net_bw")

# Module-level aliases used by the allocation-free arithmetic fast paths
# below; ResourceVector construction and field writes dominate several
# simulator hot loops (usage recording, scrape aggregation, node
# accounting), so arithmetic avoids __init__'s float() coercions and the
# per-dimension getattr/genexpr machinery entirely.
_new = object.__new__
_set = object.__setattr__


class ResourceVector:
    """Immutable 4-dimensional resource quantity.

    Supports elementwise arithmetic (``+``, ``-``, scalar ``*`` / ``/``),
    elementwise comparisons via :meth:`fits_within`, and convenience
    constructors. Negative intermediate values are permitted (useful for
    headroom math); use :meth:`clamp_nonnegative` before treating a vector
    as a physical quantity.
    """

    __slots__ = ("cpu", "memory", "disk_bw", "net_bw")

    def __init__(
        self,
        cpu: float = 0.0,
        memory: float = 0.0,
        disk_bw: float = 0.0,
        net_bw: float = 0.0,
    ):
        object.__setattr__(self, "cpu", float(cpu))
        object.__setattr__(self, "memory", float(memory))
        object.__setattr__(self, "disk_bw", float(disk_bw))
        object.__setattr__(self, "net_bw", float(net_bw))

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("ResourceVector is immutable")

    # -- constructors -----------------------------------------------------

    @classmethod
    def zero(cls) -> "ResourceVector":
        """The all-zeros vector (shared instance; vectors are immutable)."""
        if cls is ResourceVector:
            return _ZERO
        return cls()

    @classmethod
    def uniform(cls, value: float) -> "ResourceVector":
        """A vector with every dimension set to ``value``."""
        return cls(value, value, value, value)

    @classmethod
    def from_dict(cls, data: Mapping[str, float]) -> "ResourceVector":
        """Build from a mapping; missing dimensions default to 0.

        Raises ``KeyError`` on unknown dimension names so typos fail loudly.
        """
        unknown = set(data) - set(RESOURCES)
        if unknown:
            raise KeyError(f"unknown resource dimensions: {sorted(unknown)}")
        return cls(**{k: float(v) for k, v in data.items()})

    # -- accessors ---------------------------------------------------------

    def __getitem__(self, name: str) -> float:
        if name not in RESOURCES:
            raise KeyError(f"unknown resource dimension: {name!r}")
        return getattr(self, name)

    def as_dict(self) -> dict[str, float]:
        """Plain-dict view, keyed by :data:`RESOURCES` names."""
        return {name: getattr(self, name) for name in RESOURCES}

    def __iter__(self) -> Iterator[float]:
        return (getattr(self, name) for name in RESOURCES)

    # -- arithmetic ----------------------------------------------------------

    @staticmethod
    def _from_fields(
        cpu: float, memory: float, disk_bw: float, net_bw: float
    ) -> "ResourceVector":
        """Fast constructor for values already known to be floats."""
        vec = _new(ResourceVector)
        _set(vec, "cpu", cpu)
        _set(vec, "memory", memory)
        _set(vec, "disk_bw", disk_bw)
        _set(vec, "net_bw", net_bw)
        return vec

    def _combine(self, other: "ResourceVector", op) -> "ResourceVector":
        return ResourceVector._from_fields(
            op(self.cpu, other.cpu),
            op(self.memory, other.memory),
            op(self.disk_bw, other.disk_bw),
            op(self.net_bw, other.net_bw),
        )

    def __add__(self, other: "ResourceVector") -> "ResourceVector":
        return ResourceVector._from_fields(
            self.cpu + other.cpu,
            self.memory + other.memory,
            self.disk_bw + other.disk_bw,
            self.net_bw + other.net_bw,
        )

    def __sub__(self, other: "ResourceVector") -> "ResourceVector":
        return ResourceVector._from_fields(
            self.cpu - other.cpu,
            self.memory - other.memory,
            self.disk_bw - other.disk_bw,
            self.net_bw - other.net_bw,
        )

    def __mul__(self, scalar: float) -> "ResourceVector":
        return ResourceVector._from_fields(
            self.cpu * scalar,
            self.memory * scalar,
            self.disk_bw * scalar,
            self.net_bw * scalar,
        )

    __rmul__ = __mul__

    def __truediv__(self, scalar: float) -> "ResourceVector":
        return ResourceVector._from_fields(
            self.cpu / scalar,
            self.memory / scalar,
            self.disk_bw / scalar,
            self.net_bw / scalar,
        )

    def elementwise_mul(self, other: "ResourceVector") -> "ResourceVector":
        """Hadamard product, e.g. scaling each dimension by its own factor."""
        return ResourceVector._from_fields(
            self.cpu * other.cpu,
            self.memory * other.memory,
            self.disk_bw * other.disk_bw,
            self.net_bw * other.net_bw,
        )

    def elementwise_min(self, other: "ResourceVector") -> "ResourceVector":
        return self._combine(other, min)

    def elementwise_max(self, other: "ResourceVector") -> "ResourceVector":
        return self._combine(other, max)

    def clamp_nonnegative(self) -> "ResourceVector":
        """Replace negative components with 0."""
        cpu, memory, disk_bw, net_bw = self.cpu, self.memory, self.disk_bw, self.net_bw
        if cpu >= 0.0 and memory >= 0.0 and disk_bw >= 0.0 and net_bw >= 0.0:
            return self
        return ResourceVector._from_fields(
            cpu if cpu > 0.0 else 0.0,
            memory if memory > 0.0 else 0.0,
            disk_bw if disk_bw > 0.0 else 0.0,
            net_bw if net_bw > 0.0 else 0.0,
        )

    def clamp(self, lo: "ResourceVector", hi: "ResourceVector") -> "ResourceVector":
        """Clamp each dimension into ``[lo, hi]``."""
        return self.elementwise_max(lo).elementwise_min(hi)

    def scale(self, factors: Mapping[str, float]) -> "ResourceVector":
        """Scale named dimensions by per-dimension factors; others unchanged."""
        values = self.as_dict()
        for name, factor in factors.items():
            if name not in RESOURCES:
                raise KeyError(f"unknown resource dimension: {name!r}")
            values[name] *= factor
        return ResourceVector(**values)

    def replace(self, **updates: float) -> "ResourceVector":
        """Return a copy with the given dimensions overwritten."""
        values = self.as_dict()
        for name, value in updates.items():
            if name not in RESOURCES:
                raise KeyError(f"unknown resource dimension: {name!r}")
            values[name] = float(value)
        return ResourceVector(**values)

    # -- predicates / reductions ----------------------------------------------

    def fits_within(self, other: "ResourceVector", *, tolerance: float = 1e-9) -> bool:
        """True when every dimension is ≤ the other's (within tolerance)."""
        return (
            self.cpu <= other.cpu + tolerance
            and self.memory <= other.memory + tolerance
            and self.disk_bw <= other.disk_bw + tolerance
            and self.net_bw <= other.net_bw + tolerance
        )

    def is_zero(self, *, tolerance: float = 1e-12) -> bool:
        return all(abs(v) <= tolerance for v in self)

    def any_negative(self, *, tolerance: float = 1e-9) -> bool:
        return (
            self.cpu < -tolerance
            or self.memory < -tolerance
            or self.disk_bw < -tolerance
            or self.net_bw < -tolerance
        )

    def total_fraction_of(self, capacity: "ResourceVector") -> dict[str, float]:
        """Per-dimension fraction of ``capacity`` (0 where capacity is 0)."""
        result = {}
        for name in RESOURCES:
            cap = getattr(capacity, name)
            result[name] = (getattr(self, name) / cap) if cap > 0 else 0.0
        return result

    def dominant_share(self, capacity: "ResourceVector") -> float:
        """Max fraction across dimensions (DRF-style dominant share)."""
        return max(self.total_fraction_of(capacity).values(), default=0.0)

    def bottleneck(self, capacity: "ResourceVector") -> str:
        """Name of the dimension with the highest fraction of capacity."""
        fractions = self.total_fraction_of(capacity)
        return max(RESOURCES, key=lambda n: fractions[n])

    # -- dunder plumbing ------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ResourceVector):
            return NotImplemented
        return all(getattr(self, n) == getattr(other, n) for n in RESOURCES)

    def __hash__(self) -> int:
        return hash(tuple(self))

    def __repr__(self) -> str:
        parts = ", ".join(f"{n}={getattr(self, n):g}" for n in RESOURCES)
        return f"ResourceVector({parts})"

    def approx_equal(self, other: "ResourceVector", *, tolerance: float = 1e-9) -> bool:
        """Elementwise closeness check for tests and invariants."""
        return all(
            abs(getattr(self, n) - getattr(other, n)) <= tolerance for n in RESOURCES
        )


#: Shared all-zeros vector returned by :meth:`ResourceVector.zero`.
_ZERO = ResourceVector()
