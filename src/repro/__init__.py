"""repro — reproduction of EVOLVE (DATE 2022).

A converged Big-Data / HPC / Cloud platform on a simulated Kubernetes
substrate, whose core contribution is a multi-resource adaptive PID
autoscaler mapping Performance Level Objectives to CPU, memory, disk-
bandwidth, and network-bandwidth allocations.

Quickstart::

    from repro import EvolvePlatform, ResourceVector
    from repro.workloads import DiurnalTrace, LatencyPLO, ServiceDemands

    platform = EvolvePlatform(policy="adaptive")
    platform.deploy_microservice(
        "frontend",
        trace=DiurnalTrace(base=250, amplitude=180, period=3600),
        demands=ServiceDemands(cpu_seconds=0.01),
        allocation=ResourceVector(cpu=1, memory=1, disk_bw=20, net_bw=20),
        plo=LatencyPLO(0.08),
    )
    platform.run(2 * 3600)
    print(platform.result().violation_fraction("frontend"))

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
reconstructed evaluation suite.
"""

from repro.cluster.resources import RESOURCES, ResourceVector
from repro.platform.evolve import EvolvePlatform, ExperimentResult
from repro.platform.config import ClusterSpec, PlatformConfig

__version__ = "0.1.0"

__all__ = [
    "RESOURCES",
    "ResourceVector",
    "EvolvePlatform",
    "ExperimentResult",
    "ClusterSpec",
    "PlatformConfig",
    "__version__",
]
