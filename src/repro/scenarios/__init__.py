"""Curated, versioned scenario pack.

Each ``*.json`` file in this package is a named, replayable scenario in
the fuzzer's :class:`~repro.verify.fuzzer.ScenarioSpec` repro format
(``format`` 3 or 4), plus pack metadata keys (``name``, ``description``,
``tags``, ``pack_version``) which the spec loader ignores. One file,
three consumers:

* the arena (``repro arena``) replays every pack entry under every
  registered autoscaler policy and scores the result;
* the benchmark runner replays them through R-T13 (``repro bench``);
* the fuzzer replays any single entry directly —
  ``repro fuzz --replay src/repro/scenarios/<name>.json`` — with the
  full invariant registry attached.

Pack contract: entries are append-only within a ``PACK_VERSION``; any
edit to an existing entry's spec (which would silently shift every
policy's scorecard) requires a version bump and a CHANGES.md note.
Scenario themes cover the load taxonomy: ``calm`` (steady baseline),
``diurnal`` (cyclic load + batch/HPC mix), ``flash-crowd`` (a 4x
surge on one service), ``overload-surge`` (correlated surges with the
overload stack armed), ``zone-outage`` (correlated zone failure),
``data-fault`` (data-plane faults with FT armed). Pack v2 appends the
trace-realism entries (ScenarioSpec v4): ``diurnal-replay`` (a recorded
rate curve replayed sample-by-sample, driving open-loop Poisson
arrivals), ``heavy-tail`` (MMPP arrivals with Pareto request-size
marks), and ``correlated-surge`` (the CorrelatedSurge coordinator
hitting every service on one shared schedule).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from repro.verify.fuzzer import ScenarioSpec

#: Bump when any existing entry's spec changes (see the pack contract).
#: v2 appended diurnal-replay / heavy-tail / correlated-surge; every v1
#: entry is byte-identical to pack v1.
PACK_VERSION = 2

_PACK_DIR = Path(__file__).resolve().parent


class UnknownScenarioError(ValueError):
    """Raised for scenario names not in the pack; lists what is."""

    def __init__(self, name: str, available: tuple[str, ...]):
        self.name = name
        self.available = available
        super().__init__(
            f"unknown scenario {name!r}; pack contains: "
            + ", ".join(repr(s) for s in available)
        )


@dataclass(frozen=True)
class PackEntry:
    """One named scenario: metadata + the parsed replayable spec."""

    name: str
    description: str
    tags: tuple[str, ...]
    path: Path
    spec: ScenarioSpec


def scenario_names() -> tuple[str, ...]:
    """All pack entries, sorted by name."""
    return tuple(
        sorted(path.stem for path in _PACK_DIR.glob("*.json"))
    )


def load_scenario(name: str) -> PackEntry:
    """Load one pack entry by name."""
    path = _PACK_DIR / f"{name}.json"
    if not path.is_file():
        raise UnknownScenarioError(name, scenario_names())
    data = json.loads(path.read_text())
    declared = data.get("name", name)
    if declared != name:
        raise ValueError(
            f"pack file {path.name} declares name {declared!r}"
        )
    return PackEntry(
        name=name,
        description=data.get("description", ""),
        tags=tuple(data.get("tags", ())),
        path=path,
        spec=ScenarioSpec.from_dict(data),
    )


def load_pack() -> tuple[PackEntry, ...]:
    """Every pack entry, sorted by name."""
    return tuple(load_scenario(name) for name in scenario_names())
