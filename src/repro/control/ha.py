"""Replicated control plane: lease-based leader election over control loops.

A single :class:`~repro.control.manager.ControlLoopManager` is a single
point of failure — kill it and every managed application coasts on its
last allocation while load keeps moving. This module runs N replicas
behind a TTL lease stored in the API server
(:meth:`~repro.cluster.api.ClusterAPI.try_acquire_lease`), the same
pattern kube-controller-manager uses with its Lease object:

* Exactly one replica holds the lease and runs its control loop; it
  renews every ``ttl / 3`` seconds.
* Standbys watch the lease every ``ttl / 4`` seconds and try to acquire
  the moment it expires.
* A leader that cannot renew (crash, partition) **self-fences**: a
  :class:`~repro.sim.engine.Watchdog` armed with the lease TTL fires at
  the exact moment the lease becomes stealable — before any rival can
  acquire it, thanks to its negative event priority — and stops the
  loop. A partitioned leader additionally fails every actuation with
  :class:`~repro.cluster.api.PartitionError` (the manager's
  ``partition_guard``), so there is no window in which two leaders
  actuate: the old one is fenced or failing before the new one starts.

Recovery is stateful. The leader snapshots the full control state into a
shared :class:`~repro.control.statestore.ControllerStateStore` and logs
every actuation write-ahead; a newly elected leader restores the latest
durable snapshot and replays the WAL tail with **idempotent
reconciliation** — a logged resize whose target the cluster already
carries is deduplicated, one lost in flight is re-issued exactly once.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cluster.api import ActuationError, ClusterAPI, PartitionError
from repro.cluster.resources import ResourceVector
from repro.control.manager import ControlLoopManager
from repro.control.statestore import ControllerStateStore
from repro.sim.engine import Engine, PeriodicHandle, Watchdog


@dataclass(frozen=True)
class FailoverEvent:
    """One leadership change, with its recovery bookkeeping.

    ``gap`` is the observable leader gap: elected time minus the previous
    lease's last successful renewal (None for the initial election).
    """

    time: float
    leader: str
    generation: int
    gap: float | None
    snapshot_restored: bool
    snapshot_age: float | None
    wal_replayed: int
    wal_deduped: int
    wal_reissued: int
    wal_failed: int


@dataclass
class _Replica:
    policy: object  # AdaptiveAutoscaler-like (has .manager) or bare manager
    identity: str
    api: object  # ScopedClusterAPI
    alive: bool = True
    watch_handle: PeriodicHandle | None = None
    crashes: int = 0
    elections: int = 0
    renew_failures: int = 0
    step_downs: int = field(default=0)

    @property
    def manager(self) -> ControlLoopManager:
        return getattr(self.policy, "manager", self.policy)


class ReplicatedControlPlane:
    """N control-loop replicas behind lease-based leader election.

    Parameters
    ----------
    replicas:
        Policy objects (anything exposing ``start``/``stop`` and a
        ``manager`` attribute, e.g. ``AdaptiveAutoscaler``) or bare
        :class:`ControlLoopManager` instances. All replicas must have the
        same applications registered.
    lease_ttl:
        Lease TTL in seconds; defaults to twice the control interval, so
        one missed renewal is tolerated and failover completes within
        three control periods.
    store:
        Shared durable statestore; a default one (60 s snapshots) is
        created when omitted.
    rng:
        Jitter source for de-correlating standby watch timers. Use a
        dedicated :class:`~repro.sim.rng.RngRegistry` stream — the plane
        must never draw from workload streams.
    """

    def __init__(
        self,
        engine: Engine,
        api: ClusterAPI,
        replicas: list,
        *,
        lease_name: str = "control-plane",
        lease_ttl: float | None = None,
        store: ControllerStateStore | None = None,
        rng: np.random.Generator | None = None,
        fault_log=None,
    ):
        if not replicas:
            raise ValueError("need at least one control-plane replica")
        self.engine = engine
        self.api = api
        self.lease_name = lease_name
        self.store = store or ControllerStateStore(engine)
        self.rng = rng
        self.fault_log = fault_log
        self.replicas: list[_Replica] = [
            _Replica(
                policy,
                f"{lease_name}-{i}",
                api.for_controller(f"{lease_name}-{i}"),
            )
            for i, policy in enumerate(replicas)
        ]
        interval = self.replicas[0].manager.interval
        self.lease_ttl = lease_ttl if lease_ttl is not None else 2.0 * interval
        if self.lease_ttl <= 0:
            raise ValueError("lease_ttl must be positive")
        self.renew_interval = self.lease_ttl / 3.0
        self.watch_interval = self.lease_ttl / 4.0
        self._leader: int | None = None
        self._renew_handle: PeriodicHandle | None = None
        self._snapshot_handle: PeriodicHandle | None = None
        self._watchdog: Watchdog | None = None
        self._started = False
        self.generation = 0
        self.failovers: list[FailoverEvent] = []
        self.step_downs = 0
        self.fence_events = 0
        #: Optional :class:`~repro.obs.telemetry.Telemetry` bundle.
        self.telemetry = None

    # -- introspection (chaos domains use this surface) ---------------------------

    def leader_index(self) -> int | None:
        return self._leader

    def identity(self, index: int) -> str:
        return self.replicas[index].identity

    def is_alive(self, index: int) -> bool:
        return self.replicas[index].alive

    def alive_indices(self) -> list[int]:
        return [i for i, r in enumerate(self.replicas) if r.alive]

    def leader_manager(self) -> ControlLoopManager | None:
        """The acting leader's manager (None during a leader gap)."""
        if self._leader is None:
            return None
        return self.replicas[self._leader].manager

    def stats(self) -> dict[str, int | float | None]:
        return {
            "replicas": len(self.replicas),
            "leader": self._leader,
            "generation": self.generation,
            "failovers": len(self.failovers),
            "step_downs": self.step_downs,
            "fence_events": self.fence_events,
            "wal_reissued": sum(e.wal_reissued for e in self.failovers),
            "wal_deduped": sum(e.wal_deduped for e in self.failovers),
        }

    # -- lifecycle --------------------------------------------------------------------

    def start(self) -> None:
        """Elect the first alive replica and put the rest on lease watch."""
        if self._started:
            raise RuntimeError("control plane already started")
        self._started = True
        for index in self.alive_indices():
            if self._leader is None:
                lease = self.replicas[index].api.try_acquire_lease(
                    self.lease_name, self.replicas[index].identity, self.lease_ttl
                )
                if lease is not None:
                    self._become_leader(index, lease, previous=None)
                    continue
            self._start_watch(index)

    def stop(self) -> None:
        """Stop all loops and timers (end of experiment, not a fault)."""
        if self._leader is not None:
            index = self._leader
            self._demote(index)
            try:
                self.replicas[index].api.release_lease(
                    self.lease_name, self.replicas[index].identity
                )
            except PartitionError:
                pass
        for replica in self.replicas:
            self._stop_watch(replica)
        self._started = False

    # -- fault hooks (chaos domains call these) -----------------------------------

    def crash_replica(self, index: int) -> None:
        """Kill a replica process: loop, timers, and in-memory state die."""
        replica = self.replicas[index]
        if not replica.alive:
            raise ValueError(f"replica {replica.identity} already down")
        replica.alive = False
        replica.crashes += 1
        self._stop_watch(replica)
        if self._leader == index:
            # A crash is not a clean step-down: the lease is left to
            # expire, which is exactly the leader gap the TTL bounds.
            self._demote(index)
        replica.manager.reset_entries()

    def restart_replica(self, index: int) -> None:
        """Bring a crashed replica back as a cold standby."""
        replica = self.replicas[index]
        if replica.alive:
            return
        replica.alive = True
        replica.manager.reset_entries()
        if self._started:
            self._start_watch(index)

    # -- standby side -----------------------------------------------------------------

    def _start_watch(self, index: int) -> None:
        replica = self.replicas[index]
        if replica.watch_handle is not None:
            return
        # Stagger the first poll per replica (plus optional jitter) so
        # standbys do not race on the same tick; the engine would break
        # the tie deterministically, but the stagger keeps election order
        # independent of scheduling insertion order.
        offset = self.watch_interval * (1.0 + 0.1 * index)
        if self.rng is not None:
            offset += 0.05 * self.watch_interval * float(self.rng.random())
        replica.watch_handle = self.engine.every(
            self.watch_interval,
            lambda: self._watch_tick(index),
            start=self.engine.now + offset,
        )

    def _stop_watch(self, replica: _Replica) -> None:
        if replica.watch_handle is not None:
            replica.watch_handle.cancel()
            replica.watch_handle = None

    def _watch_tick(self, index: int) -> None:
        replica = self.replicas[index]
        if not replica.alive or self._leader == index:
            return
        try:
            lease = replica.api.get_lease(self.lease_name)
            if lease is not None and not lease.expired(replica.api.now):
                return
            acquired = replica.api.try_acquire_lease(
                self.lease_name, replica.identity, self.lease_ttl
            )
        except PartitionError:
            return  # cut off from the API server; keep watching
        if acquired is not None:
            self._stop_watch(replica)
            self._become_leader(index, acquired, previous=lease)

    # -- leader side ------------------------------------------------------------------

    def _become_leader(self, index: int, lease, *, previous) -> None:
        replica = self.replicas[index]
        self._leader = index
        self.generation = lease.generation
        replica.elections += 1

        manager = replica.manager
        # Fresh process semantics: whatever this replica accumulated in a
        # previous life is gone; only the statestore survives.
        manager.stop()
        manager.reset_entries()
        recovery = self._restore(manager)
        manager.partition_guard = replica.api.check_partition
        manager.actuation_sink = self.store.append_wal
        # Stamp the fencing epoch so every decision this leader takes
        # carries the lease generation in its provenance record.
        manager.lease_generation = lease.generation
        if self.telemetry is not None:
            self.telemetry.elections.inc()
            self.telemetry.tracer.instant(
                "election", "ha",
                leader=replica.identity, generation=lease.generation,
            )
        replica.policy.start()

        self._renew_handle = self.engine.every(
            self.renew_interval, lambda: self._renew_tick(index)
        )
        self._watchdog = Watchdog(
            self.engine, self.lease_ttl, lambda: self._fence(index)
        )
        self._watchdog.start()
        if self.store.snapshot_interval is not None:
            self._snapshot_handle = self.engine.every(
                self.store.snapshot_interval,
                lambda: self.store.snapshot(manager.export_state()),
            )

        gap = None
        if previous is not None:
            gap = self.engine.now - previous.renewed_at
            if self.fault_log is not None:
                self.fault_log.record(
                    "leader-gap", replica.identity,
                    previous.renewed_at, self.engine.now,
                    detail=f"generation={lease.generation}",
                )
        self.failovers.append(
            FailoverEvent(
                self.engine.now, replica.identity, lease.generation, gap,
                **recovery,
            )
        )

    def _demote(self, index: int) -> None:
        """Tear down leader duties (does not touch the lease)."""
        replica = self.replicas[index]
        replica.policy.stop()
        replica.manager.partition_guard = None
        replica.manager.actuation_sink = None
        replica.manager.lease_generation = None
        if self._renew_handle is not None:
            self._renew_handle.cancel()
            self._renew_handle = None
        if self._snapshot_handle is not None:
            self._snapshot_handle.cancel()
            self._snapshot_handle = None
        if self._watchdog is not None:
            self._watchdog.cancel()
            self._watchdog = None
        self._leader = None

    def _renew_tick(self, index: int) -> None:
        replica = self.replicas[index]
        if self._leader != index:
            return
        try:
            lease = replica.api.renew_lease(self.lease_name, replica.identity)
        except PartitionError:
            replica.renew_failures += 1
            return  # keep trying; the watchdog fences us at the TTL
        if lease is None:
            # The lease expired or moved under us: leadership is gone and
            # a rival may already hold it — stop actuating immediately.
            replica.renew_failures += 1
            self._step_down(index)
            return
        if self._watchdog is not None:
            self._watchdog.feed()

    def _fence(self, index: int) -> None:
        """Watchdog expiry: the lease TTL elapsed without a renewal."""
        self.fence_events += 1
        self._step_down(index)

    def _step_down(self, index: int) -> None:
        replica = self.replicas[index]
        self.step_downs += 1
        replica.step_downs += 1
        if self.telemetry is not None:
            self.telemetry.step_downs.inc()
            self.telemetry.tracer.instant(
                "step_down", "ha", replica=replica.identity,
            )
        self._demote(index)
        if replica.alive:
            self._start_watch(index)

    # -- recovery ---------------------------------------------------------------------

    def _restore(self, manager: ControlLoopManager) -> dict:
        """Restore snapshot + WAL tail; reconcile idempotently.

        Only *durable* records are visible (``durable_at <= now``). For
        each (app, kind) only the newest logged actuation matters — older
        ones were superseded in the old leader's own timeline. A record
        whose target the cluster already reflects is **deduplicated**
        (never re-issued: resizes are absolute targets, so re-applying an
        applied one is at best a no-op and at worst tramples a concurrent
        change); a record that never took effect is re-issued once.
        """
        now = self.engine.now
        snap = self.store.latest_snapshot(now)
        if snap is not None:
            manager.restore_state(snap.state)
        records = self.store.wal_after(snap.wal_seq if snap else 0, now)
        apps = manager.applications()
        newest: dict[tuple[str, str], object] = {}
        for record in records:
            newest[(record.app, record.kind)] = record
        deduped = reissued = failed = 0
        for (app_name, kind), record in newest.items():
            app = apps.get(app_name)
            if app is None:
                continue
            try:
                if kind == "resize":
                    target = record.target
                    assert isinstance(target, ResourceVector)
                    applied = app.current_allocation().approx_equal(
                        target
                    ) or app.target_allocation.approx_equal(target)
                    if applied:
                        deduped += 1
                    else:
                        app.set_target_allocation(target)
                        reissued += 1
                elif kind == "scale":
                    desired = int(record.target)
                    if app.replica_count == desired:
                        deduped += 1
                    else:
                        app.scale_to(desired)
                        reissued += 1
            except ActuationError:
                failed += 1  # next control period re-decides
        return {
            "snapshot_restored": snap is not None,
            "snapshot_age": (now - snap.time) if snap is not None else None,
            "wal_replayed": len(records),
            "wal_deduped": deduped,
            "wal_reissued": reissued,
            "wal_failed": failed,
        }
