"""Backpressure ledger: deferred, coalesced scale-up requests.

When the control loop is *distressed* — actuation retries pending, a
circuit breaker open or probing, safe mode, or fresh actuation failures —
issuing more scale-up requests amplifies the very storm that caused the
distress: every new grow adds submissions that fail, retry, and pile onto
the backoff queues. Instead the manager parks grow decisions here. The
ledger keeps one entry per application (newest-wins coalescing, keeping
the largest requested replica count), and the manager drains an
application's entry on its first calm control period. Reclaim decisions
supersede a queued grow — shrinking reduces load and is always safe.

Pure bookkeeping: no events, no RNG, nothing scheduled. The ledger is
in-memory only and deliberately not snapshotted — like in-flight retry
closures, deferred targets die with a crashed controller, and the next
control period re-decides from live signals.

Observability: when telemetry is enabled the counters below are synced
into the ``sched/backpressure/*`` instruments at scrape time (see
:meth:`repro.obs.telemetry.Telemetry.attach_manager`), and the ledger
obeys the conservation identity checked by the flight recorder:
``deferrals == coalesced + releases + dropped + queued`` (a coalesced
defer folds into the existing entry instead of adding one).
"""

from __future__ import annotations


class BackpressureState:
    """Per-application deferred scale-up targets with coalescing."""

    def __init__(self) -> None:
        #: app name → largest deferred replica target.
        self.deferred: dict[str, int] = {}
        self.deferrals = 0
        self.coalesced = 0
        self.releases = 0
        self.dropped = 0

    def defer(self, app_name: str, desired: int) -> None:
        """Queue a grow to ``desired`` replicas, coalescing with any
        earlier queued grow for the same application."""
        prev = self.deferred.get(app_name)
        if prev is not None:
            self.coalesced += 1
            desired = max(desired, prev)
        self.deferred[app_name] = desired
        self.deferrals += 1

    def release(self, app_name: str) -> int | None:
        """Pop and return the queued target, or None if nothing queued."""
        target = self.deferred.pop(app_name, None)
        if target is not None:
            self.releases += 1
        return target

    def drop(self, app_name: str) -> None:
        """Discard a queued grow superseded by a reclaim decision."""
        if self.deferred.pop(app_name, None) is not None:
            self.dropped += 1

    def pending(self, app_name: str) -> bool:
        return app_name in self.deferred

    def clear(self) -> None:
        """Forget everything (simulated controller restart)."""
        self.deferred.clear()

    def stats(self) -> dict[str, int]:
        return {
            "queued": len(self.deferred),
            "deferrals": self.deferrals,
            "coalesced": self.coalesced,
            "releases": self.releases,
            "dropped": self.dropped,
        }
