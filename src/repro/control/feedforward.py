"""Feedforward load anticipation (the paper's natural extension).

Pure feedback reacts only after latency has already degraded — one to
two control periods of violation per load surge. The feedforward term
watches the *offered load* signal directly and injects a proportional
scale-up into the controller output as soon as load jumps, before the
queueing model has translated the surge into latency.

Conservative by design: it only ever adds scale-up (never reclaim —
load drops are left to feedback, which is already cautious), ignores
changes below ``threshold``, and clamps its contribution.
"""

from __future__ import annotations

from repro.metrics.collector import MetricsCollector
from repro.workloads.base import Application


class FeedforwardScaler:
    """Offered-load delta → additive controller output.

    Parameters
    ----------
    gain:
        Output per unit relative load increase (e.g. a doubling of load
        with gain 0.5 adds +0.5 to the controller output).
    threshold:
        Relative increase below which nothing is added (noise guard).
    limit:
        Maximum additive contribution per control period.
    window:
        Seconds over which "previous" load is measured.
    hold:
        Seconds after an activation during which *reclaim* decisions are
        suppressed. Without this hysteresis the feedback loop hands the
        anticipatory allocation back the moment the latency percentile
        looks healthy — right before the surge crests — and the violation
        the feedforward prevented happens anyway.
    """

    def __init__(
        self,
        collector: MetricsCollector,
        *,
        gain: float = 0.5,
        threshold: float = 0.15,
        limit: float = 1.0,
        window: float = 30.0,
        hold: float = 180.0,
    ):
        if gain < 0 or threshold < 0 or limit <= 0 or window <= 0 or hold < 0:
            raise ValueError("invalid feedforward parameters")
        self.collector = collector
        self.gain = gain
        self.threshold = threshold
        self.limit = limit
        self.window = window
        self.hold = hold
        self.activations = 0
        self._last_activation: dict[str, float] = {}

    def reclaim_suppressed(self, app_name: str, now: float) -> bool:
        """Whether a recent activation should block reclaiming."""
        last = self._last_activation.get(app_name)
        return last is not None and (now - last) < self.hold

    def signal(self, app: Application, now: float) -> float:
        """Additive output for this control period (≥ 0)."""
        series_name = f"{app.metric_prefix()}/offered"
        if not self.collector.has_series(series_name):
            return 0.0
        series = self.collector.series(series_name)
        current = series.last()
        last_time = series.last_time()
        if current is None or last_time is None:
            return 0.0
        # Baseline: trailing window just before the newest sample.
        previous = series.mean_over(last_time - 1e-6, self.window)
        if previous is None or previous <= 0:
            return 0.0
        delta = (current - previous) / previous
        if delta <= self.threshold:
            return 0.0
        self.activations += 1
        self._last_activation[app.name] = now
        return min(self.limit, self.gain * delta)
