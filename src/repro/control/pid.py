"""Discrete PID controller with the standard production hardening.

* **Anti-windup** — the integral term is clamped, and integration is
  suspended while the output is saturated in the same direction
  (conditional integration), so long violations do not bank unbounded
  corrections.
* **Filtered derivative** — the derivative acts on a first-order-filtered
  error, taming scrape-noise amplification.
* **Output clamping** — actuation is bounded to what the cluster can
  apply in one control period.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class PIDGains:
    """Proportional / integral / derivative gains."""

    kp: float
    ki: float = 0.0
    kd: float = 0.0

    def __post_init__(self) -> None:
        if self.kp < 0 or self.ki < 0 or self.kd < 0:
            raise ValueError("gains must be non-negative")

    def scaled(self, factor: float) -> "PIDGains":
        """Gains multiplied by ``factor`` (adaptive tuning hook)."""
        if factor <= 0:
            raise ValueError("scale factor must be positive")
        return PIDGains(self.kp * factor, self.ki * factor, self.kd * factor)


class PIDController:
    """Classic discrete PID on an externally-computed error signal.

    Sign convention follows :class:`~repro.workloads.plo.PLOStatus`:
    positive error means the objective is violated and the output should
    push allocations *up*; negative error means overachievement and the
    output may reclaim.

    Parameters
    ----------
    gains:
        Baseline gains; :attr:`gain_scale` multiplies them at runtime.
    output_limits:
        Inclusive (lo, hi) clamp on the control signal.
    integral_limit:
        Absolute clamp on the integral term's *contribution* (after ki).
    derivative_alpha:
        Smoothing factor in (0, 1] of the derivative's error filter;
        1.0 disables filtering.
    """

    def __init__(
        self,
        gains: PIDGains,
        *,
        output_limits: tuple[float, float] = (-1.0, 1.0),
        integral_limit: float = 1.0,
        derivative_alpha: float = 0.3,
    ):
        lo, hi = output_limits
        if lo >= hi:
            raise ValueError("output_limits must satisfy lo < hi")
        if integral_limit < 0:
            raise ValueError("integral_limit must be non-negative")
        if not 0 < derivative_alpha <= 1:
            raise ValueError("derivative_alpha must be in (0, 1]")
        self.gains = gains
        self.gain_scale = 1.0
        self.output_limits = (float(lo), float(hi))
        self.integral_limit = float(integral_limit)
        self.derivative_alpha = float(derivative_alpha)
        self._integral = 0.0          # ∫ error dt (before ki)
        self._filtered_error: float | None = None
        self._prev_filtered: float | None = None
        self.last_output = 0.0
        #: Per-term contributions (P, I, D) of the most recent update —
        #: decision-provenance introspection, not control state.
        self.last_terms: tuple[float, float, float] = (0.0, 0.0, 0.0)
        self.updates = 0

    # -- runtime gain access --------------------------------------------------

    @property
    def effective_gains(self) -> PIDGains:
        """Baseline gains × current adaptive scale."""
        return self.gains.scaled(self.gain_scale)

    # -- state -----------------------------------------------------------------

    def reset(self) -> None:
        """Clear integral and derivative state (e.g. after redeploys)."""
        self._integral = 0.0
        self._filtered_error = None
        self._prev_filtered = None
        self.last_output = 0.0
        self.last_terms = (0.0, 0.0, 0.0)

    def export_state(self) -> dict:
        """Durable-snapshot view of the mutable loop state.

        Everything a successor controller needs to resume mid-transient
        without re-integrating from zero; gains/limits are configuration,
        not state, and are not exported.
        """
        return {
            "integral": self._integral,
            "filtered_error": self._filtered_error,
            "prev_filtered": self._prev_filtered,
            "gain_scale": self.gain_scale,
            "last_output": self.last_output,
            "updates": self.updates,
        }

    def restore_state(self, state: dict) -> None:
        """Inverse of :meth:`export_state` (controller failover path)."""
        self._integral = float(state["integral"])
        self._filtered_error = state["filtered_error"]
        self._prev_filtered = state["prev_filtered"]
        self.gain_scale = float(state["gain_scale"])
        self.last_output = float(state["last_output"])
        self.updates = int(state["updates"])

    @property
    def integral_term(self) -> float:
        """Current integral contribution (ki × ∫e dt, clamped)."""
        ki = self.effective_gains.ki
        return self._clamp_integral(ki * self._integral)

    def _clamp_integral(self, value: float) -> float:
        return max(-self.integral_limit, min(self.integral_limit, value))

    # -- update --------------------------------------------------------------------

    def update(self, error: float, dt: float) -> float:
        """Advance the controller by ``dt`` seconds with measured ``error``.

        Returns the clamped control output.
        """
        if dt <= 0:
            raise ValueError("dt must be positive")
        gains = self.effective_gains
        self.updates += 1

        # Derivative on filtered error.
        if self._filtered_error is None:
            self._filtered_error = error
        else:
            a = self.derivative_alpha
            self._filtered_error = a * error + (1 - a) * self._filtered_error
        if self._prev_filtered is None:
            derivative = 0.0
        else:
            derivative = (self._filtered_error - self._prev_filtered) / dt
        self._prev_filtered = self._filtered_error

        # Tentative integral step with conditional anti-windup below.
        proposed_integral = self._integral + error * dt
        if gains.ki > 0:
            proposed_integral = self._clamp_integral(
                gains.ki * proposed_integral
            ) / gains.ki

        self.last_terms = (
            gains.kp * error,
            gains.ki * proposed_integral,
            gains.kd * derivative,
        )
        unclamped = sum(self.last_terms)
        lo, hi = self.output_limits
        output = max(lo, min(hi, unclamped))

        # Conditional integration: only accept the integral step when the
        # output is not saturated, or when the error pushes away from the
        # saturated rail.
        saturated_high = unclamped > hi and error > 0
        saturated_low = unclamped < lo and error < 0
        if not saturated_high and not saturated_low:
            self._integral = proposed_integral

        self.last_output = output
        return output
