"""Durable controller state: snapshots plus a write-ahead actuation log.

The control loop is stateful — PID integrators, adaptive gain scales,
safe-mode and circuit-breaker latches, last-known-good allocations — and
a controller crash that loses this state forces the successor to
re-integrate from zero mid-transient. The :class:`ControllerStateStore`
models the durable side of the control plane:

* **Snapshots** of the full per-application control state (the dict
  produced by :meth:`repro.control.manager.ControlLoopManager.export_state`),
  taken on a configurable interval.
* A **write-ahead log** of issued actuations: every resize/scale is
  logged *before* it is sent to the cluster, so a crash between the log
  write and the apply still leaves the successor enough to reconcile.

Durability is not instantaneous. Every write carries a ``durable_at``
timestamp ``now + fsync_latency``; a successor restoring at crash time
``T`` only observes records with ``durable_at <= T``, which models the
small window in which a crash loses the most recent writes. Snapshot
corruption (a chaos-injectable fault) marks the newest snapshot
unreadable, forcing fallback to an older snapshot and a longer WAL
replay.

This store is shared infrastructure, not per-replica state: all replicas
of a :class:`~repro.control.ha.ReplicatedControlPlane` read and write the
same store, the way etcd backs every kube-controller-manager replica.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sim.engine import Engine


@dataclass(frozen=True)
class WalRecord:
    """One issued actuation, logged write-ahead.

    ``target`` is the resize target (:class:`ResourceVector`) for
    ``kind == "resize"`` or the desired replica count for
    ``kind == "scale"``. Targets are immutable values, so sharing them
    with the live control loop is safe.
    """

    seq: int
    time: float
    durable_at: float
    app: str
    kind: str  # "resize" | "scale"
    target: object


@dataclass
class StateSnapshot:
    """A point-in-time capture of the whole control plane's state."""

    seq: int
    time: float
    durable_at: float
    wal_seq: int  # highest WAL seq already reflected in ``state``
    state: dict[str, dict]
    corrupted: bool = field(default=False)


class ControllerStateStore:
    """Snapshot + WAL store with simulated fsync latency.

    Parameters
    ----------
    snapshot_interval:
        Seconds between periodic snapshots (consumed by the control
        plane's scheduler); ``None`` disables snapshotting, leaving WAL
        replay from scratch as the only recovery path.
    fsync_latency:
        Delay (s) before a write becomes durable. A crash inside this
        window loses the write, exactly like an un-fsynced page.
    """

    def __init__(
        self,
        engine: Engine,
        *,
        snapshot_interval: float | None = 60.0,
        fsync_latency: float = 0.005,
        log=None,
    ):
        if snapshot_interval is not None and snapshot_interval <= 0:
            raise ValueError("snapshot_interval must be positive or None")
        if fsync_latency < 0:
            raise ValueError("fsync_latency must be non-negative")
        self.engine = engine
        self.snapshot_interval = snapshot_interval
        self.fsync_latency = fsync_latency
        self.log = log  # optional FaultLog for corruption episodes
        self.snapshots: list[StateSnapshot] = []
        self.wal: list[WalRecord] = []
        self._snapshot_seq = 0
        self._wal_seq = 0
        self.corruptions = 0
        #: Optional :class:`~repro.obs.telemetry.Telemetry` bundle.
        self.telemetry = None

    # -- writes ------------------------------------------------------------------

    def append_wal(self, app: str, kind: str, target: object) -> WalRecord:
        """Log one actuation write-ahead; returns the record."""
        if kind not in ("resize", "scale"):
            raise ValueError(f"unknown WAL record kind {kind!r}")
        self._wal_seq += 1
        now = self.engine.now
        record = WalRecord(
            self._wal_seq, now, now + self.fsync_latency, app, kind, target
        )
        self.wal.append(record)
        if self.telemetry is not None:
            self.telemetry.wal_appends.inc()
        return record

    def snapshot(self, state: dict[str, dict]) -> StateSnapshot:
        """Persist a full control-state capture.

        ``state`` must be a freshly-exported dict (``export_state`` builds
        new containers, so the live loop cannot mutate it afterwards).
        """
        self._snapshot_seq += 1
        now = self.engine.now
        snap = StateSnapshot(
            self._snapshot_seq,
            now,
            now + self.fsync_latency,
            self._wal_seq,
            state,
        )
        self.snapshots.append(snap)
        if self.telemetry is not None:
            self.telemetry.snapshots.inc()
        return snap

    # -- fault injection -----------------------------------------------------------

    def corrupt_latest(self, now: float) -> bool:
        """Mark the newest durable snapshot unreadable (chaos hook).

        Returns True when a snapshot was actually corrupted. Recovery then
        falls back to the next-older intact snapshot plus a longer WAL
        replay — strictly worse, never fatal.
        """
        for snap in reversed(self.snapshots):
            if snap.corrupted or snap.durable_at > now:
                continue
            snap.corrupted = True
            self.corruptions += 1
            if self.log is not None:
                self.log.record(
                    "snapshot-corruption", f"snapshot-{snap.seq}", now, now,
                    detail=f"wal_seq={snap.wal_seq}",
                )
            return True
        return False

    # -- reads (recovery path) --------------------------------------------------------

    def latest_snapshot(self, at: float | None = None) -> StateSnapshot | None:
        """Newest intact snapshot durable at time ``at`` (default: now)."""
        at = self.engine.now if at is None else at
        for snap in reversed(self.snapshots):
            if not snap.corrupted and snap.durable_at <= at:
                return snap
        return None

    def wal_after(self, seq: int, at: float | None = None) -> list[WalRecord]:
        """Durable WAL records with ``record.seq > seq``, oldest first."""
        at = self.engine.now if at is None else at
        return [r for r in self.wal if r.seq > seq and r.durable_at <= at]

    # -- reporting ---------------------------------------------------------------------

    def stats(self) -> dict[str, int]:
        return {
            "snapshots": len(self.snapshots),
            "wal_records": len(self.wal),
            "corruptions": self.corruptions,
        }
