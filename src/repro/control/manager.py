"""The control loop: evaluate PLOs, decide, actuate — and degrade gracefully.

One :class:`ControlLoopManager` runs per experiment. Every control period
it, for each registered application:

1. evaluates the application's PLO against the metrics pipeline and
   checks the signal is *fresh* (recent samples, not a stalled scrape),
2. builds the saturation snapshot from scraped usage/allocation,
3. asks the application's :class:`~repro.control.multiresource.MultiResourceController`
   for a decision,
4. actuates vertically (in-place pod resizes) and, through an optional
   horizontal policy, by adding/removing replicas when vertical scaling
   rails out,
5. records the loop's internals as metrics series for the evaluation
   harness (error, output, gain scale, decisions, safe mode, breaker).

The loop is hardened against the fault taxonomy in
:mod:`repro.cluster.chaos` / :mod:`repro.metrics.faults`:

* **Stale-signal holddown + safe mode** — a missing or stale PLO signal
  never reaches the PID. After ``safe_mode_after`` consecutive stale
  periods the app enters *safe mode*: the loop freezes it at the
  last-known-good allocation and stops actuating until the signal
  returns, at which point the controller state is reset (stale integral
  discarded) and normal operation resumes.
* **Retry with exponential backoff + jitter** — actuations that raise
  :class:`~repro.cluster.api.ActuationError` are retried on a capped
  exponential schedule instead of hot-looped.
* **Circuit breaker** — an app whose actuations keep failing, or whose
  decisions flap between grow and reclaim, has scaling suppressed for
  ``breaker_open_duration`` seconds. When the window elapses the breaker
  goes *half-open*: the next actuation is a probe — success closes the
  breaker, failure re-opens it immediately for another full window.
* **Backpressure** (opt-in via
  :class:`~repro.scheduler.admission.OverloadConfig`) — while any loop is
  distressed (pending retries, open/probing breakers, safe mode), grow
  decisions are queued and coalesced in a
  :class:`~repro.control.backpressure.BackpressureState` instead of
  issued, preventing retry storms; they drain on the first calm period.
* **Brownout** (opt-in) — apps exposing the brownout surface
  (``enter_brownout`` / ``exit_brownout``) are hysteretically degraded
  to a cheaper PLO tier under sustained violation and restored once the
  error clears.

All retry/breaker knobs live in :class:`ResilienceConfig`; overload
features live in :class:`~repro.scheduler.admission.OverloadConfig`.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Protocol

import numpy as np

from repro.cluster.api import ActuationError
from repro.cluster.resources import RESOURCES, ResourceVector
from repro.control.backpressure import BackpressureState
from repro.control.estimator import SaturationSnapshot
from repro.control.multiresource import ControlDecision, MultiResourceController
from repro.metrics.collector import MetricsCollector
from repro.obs.tracing import DecisionProvenance
from repro.sim.engine import Engine, EventHandle, PeriodicHandle
from repro.workloads.base import Application


class HorizontalPolicy(Protocol):
    """Hook deciding replica-count changes after the vertical decision."""

    def adjust(
        self,
        app: Application,
        decision: ControlDecision,
        controller: MultiResourceController,
    ) -> int:
        """Return the desired replica count (may equal the current one)."""
        ...


@dataclass(frozen=True)
class ResilienceConfig:
    """Degradation/retry knobs of the control loop.

    Parameters
    ----------
    safe_mode_after:
        Consecutive stale control periods before an app enters safe mode.
    freshness_timeout:
        Max age (s) of the newest PLO-metric sample before the signal
        counts as stale; None derives ``2.5 × interval``.
    retry_base_delay / retry_max_delay / retry_jitter / max_retries:
        Exponential-backoff schedule for failed actuations: attempt *n*
        waits ``base · 2ⁿ`` seconds (capped at ``retry_max_delay``),
        multiplied by a uniform ``1 ± retry_jitter`` factor so synchronized
        retries de-correlate. At most ``max_retries`` retries per decision.
    breaker_failure_threshold:
        Consecutive actuation failures that trip the circuit breaker.
    breaker_flap_window / breaker_flap_threshold:
        Trip the breaker when the last ``flap_window`` non-hold decisions
        contain at least ``flap_threshold`` grow↔reclaim direction flips.
    breaker_open_duration:
        Seconds scaling stays suppressed once the breaker opens.
    """

    safe_mode_after: int = 3
    freshness_timeout: float | None = None
    retry_base_delay: float = 2.0
    retry_max_delay: float = 60.0
    retry_jitter: float = 0.25
    max_retries: int = 4
    breaker_failure_threshold: int = 3
    breaker_flap_window: int = 6
    breaker_flap_threshold: int = 4
    breaker_open_duration: float = 120.0

    def __post_init__(self) -> None:
        if self.safe_mode_after < 1:
            raise ValueError("safe_mode_after must be ≥ 1")
        if self.retry_base_delay <= 0 or self.retry_max_delay <= 0:
            raise ValueError("retry delays must be positive")
        if not 0.0 <= self.retry_jitter < 1.0:
            raise ValueError("retry_jitter must be in [0, 1)")
        if self.max_retries < 0:
            raise ValueError("max_retries must be ≥ 0")
        if self.breaker_failure_threshold < 1:
            raise ValueError("breaker_failure_threshold must be ≥ 1")
        if self.breaker_open_duration <= 0:
            raise ValueError("breaker_open_duration must be positive")


@dataclass
class _Entry:
    app: Application
    controller: MultiResourceController
    horizontal: HorizontalPolicy | None
    feedforward: object | None = None  # optional FeedforwardScaler
    last_decision: ControlDecision | None = None
    skipped: int = 0
    stats: dict[str, int] = field(
        default_factory=lambda: {"grow": 0, "reclaim": 0, "hold": 0}
    )
    # -- resilience state ----------------------------------------------------
    stale_periods: int = 0
    last_signal_time: float | None = None
    safe_mode: bool = False
    safe_mode_entries: int = 0
    safe_mode_exits: int = 0
    last_good_allocation: ResourceVector | None = None
    actuation_failures: int = 0
    consecutive_failures: int = 0
    retries: int = 0
    retry_attempts: int = 0
    retry_action: Callable[[], None] | None = None
    retry_handle: EventHandle | None = None
    breaker_open_until: float = 0.0
    breaker_trips: int = 0
    breaker_skips: int = 0
    # Half-open: the open window elapsed and the next actuation is a
    # probe — success closes the breaker, failure re-opens it.
    breaker_half_open: bool = False
    breaker_probes: int = 0
    breaker_reopens: int = 0
    directions: deque = field(default_factory=lambda: deque(maxlen=6))
    # -- brownout hysteresis (only advanced when brownout is enabled) --------
    brownout_high_periods: int = 0
    brownout_low_periods: int = 0
    brownout_entries: int = 0
    brownout_exits: int = 0
    brownout_episode: object | None = None
    # Span id of the current period's decide span (telemetry only), so
    # actuations — including delayed retries — parent to their decision.
    decision_span_id: int | None = None


class ControlLoopManager:
    """Periodic controller executor over registered applications.

    Parameters
    ----------
    interval:
        Control period in seconds (the dt fed to each PID).
    usage_window:
        Trailing window for usage averaging when building saturation
        snapshots; defaults to the control period.
    resilience:
        Safe-mode / retry / breaker knobs; defaults to
        :class:`ResilienceConfig` (hardening always on).
    rng:
        Source of retry jitter; seeded default keeps runs deterministic.
    overload:
        Optional :class:`~repro.scheduler.admission.OverloadConfig`.
        Its ``backpressure`` flag arms the deferred scale-up ledger and
        ``brownout`` arms hysteretic degradation; both default off, and a
        ``None`` (or all-off) config leaves the loop byte-identical.
    """

    def __init__(
        self,
        engine: Engine,
        collector: MetricsCollector,
        *,
        interval: float = 10.0,
        usage_window: float | None = None,
        resilience: ResilienceConfig | None = None,
        rng: np.random.Generator | None = None,
        fault_log=None,
        overload=None,
    ):
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.engine = engine
        self.collector = collector
        self.interval = interval
        self.usage_window = usage_window or interval
        self.resilience = resilience or ResilienceConfig()
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self.fault_log = fault_log
        self.backpressure: BackpressureState | None = (
            BackpressureState()
            if overload is not None and overload.backpressure
            else None
        )
        self.brownout_cfg = (
            overload if overload is not None and overload.brownout else None
        )
        # Aggregate brownout counters across all entries, maintained at
        # the enter/exit sites so telemetry can sync ``sched/brownout/*``
        # with plain attribute reads per scrape.
        self.brownout_entries_total = 0
        self.brownout_exits_total = 0
        self.brownout_active_total = 0
        # HA hooks (see repro.control.ha). ``partition_guard`` runs at the
        # top of every actuation and may raise ActuationError (a partitioned
        # leader cannot reach the API, so its writes fail like any other
        # transient fault). ``actuation_sink`` is the write-ahead hook: it
        # sees (app, kind, target) *before* the action is issued, so a crash
        # mid-actuation still leaves a WAL record for the successor.
        self.partition_guard: Callable[[], None] | None = None
        self.actuation_sink: Callable[[str, str, object], None] | None = None
        #: Optional :class:`~repro.obs.telemetry.Telemetry` bundle.
        self.telemetry = None
        #: Fencing epoch of the lease this manager acts under (set by the
        #: HA control plane on promotion; None when not replicated).
        self.lease_generation: int | None = None
        self._entries: dict[str, _Entry] = {}
        self._handle: PeriodicHandle | None = None
        self.loops = 0

    @property
    def freshness_timeout(self) -> float:
        timeout = self.resilience.freshness_timeout
        return timeout if timeout is not None else 2.5 * self.interval

    # -- registration ------------------------------------------------------------

    def register(
        self,
        app: Application,
        controller: MultiResourceController,
        *,
        horizontal: HorizontalPolicy | None = None,
        feedforward=None,
    ) -> None:
        """Manage ``app`` (which must carry a ``plo``) with ``controller``."""
        if app.plo is None:
            raise ValueError(f"application {app.name!r} has no PLO attached")
        if app.name in self._entries:
            raise ValueError(f"application {app.name!r} already registered")
        entry = _Entry(app, controller, horizontal, feedforward)
        entry.directions = deque(maxlen=max(2, self.resilience.breaker_flap_window))
        self._entries[app.name] = entry

    def unregister(self, app_name: str) -> None:
        entry = self._entries.pop(app_name, None)
        if entry is not None:
            self._cancel_retry(entry)

    def applications(self) -> dict[str, Application]:
        """Registered applications by name (HA replay needs the objects)."""
        return {name: entry.app for name, entry in self._entries.items()}

    def entry_stats(self, app_name: str) -> dict[str, int]:
        """Decision counts for one application (for tests/reports)."""
        return dict(self._entries[app_name].stats)

    def entry_resilience(self, app_name: str) -> dict[str, int | bool]:
        """Resilience counters for one application (for tests/reports)."""
        entry = self._entries[app_name]
        return {
            "safe_mode": entry.safe_mode,
            "safe_mode_entries": entry.safe_mode_entries,
            "safe_mode_exits": entry.safe_mode_exits,
            "stale_periods": entry.stale_periods,
            "actuation_failures": entry.actuation_failures,
            "retries": entry.retries,
            "breaker_trips": entry.breaker_trips,
            "breaker_skips": entry.breaker_skips,
            "breaker_probes": entry.breaker_probes,
            "breaker_reopens": entry.breaker_reopens,
            "brownout_entries": entry.brownout_entries,
            "brownout_exits": entry.brownout_exits,
        }

    def resilience_stats(self) -> dict[str, int]:
        """Aggregate resilience counters over all registered applications."""
        totals = {
            "safe_mode_entries": 0,
            "safe_mode_exits": 0,
            "actuation_failures": 0,
            "retries": 0,
            "breaker_trips": 0,
            "breaker_skips": 0,
            "breaker_probes": 0,
            "breaker_reopens": 0,
            "brownout_entries": 0,
            "brownout_exits": 0,
        }
        for entry in self._entries.values():
            totals["safe_mode_entries"] += entry.safe_mode_entries
            totals["safe_mode_exits"] += entry.safe_mode_exits
            totals["actuation_failures"] += entry.actuation_failures
            totals["retries"] += entry.retries
            totals["breaker_trips"] += entry.breaker_trips
            totals["breaker_skips"] += entry.breaker_skips
            totals["breaker_probes"] += entry.breaker_probes
            totals["breaker_reopens"] += entry.breaker_reopens
            totals["brownout_entries"] += entry.brownout_entries
            totals["brownout_exits"] += entry.brownout_exits
        return totals

    def backpressure_stats(self) -> dict[str, int]:
        """Deferred scale-up ledger counters (zeros when disabled)."""
        if self.backpressure is None:
            return {
                "queued": 0,
                "deferrals": 0,
                "coalesced": 0,
                "releases": 0,
                "dropped": 0,
            }
        return self.backpressure.stats()

    # -- state export / restore (control-plane HA) ----------------------------------

    def export_state(self) -> dict[str, dict]:
        """Per-application control state for a durable snapshot.

        Captures everything a standby replica needs to resume each loop
        mid-transient: controller internals (PID integrator, adaptive gain
        scale), safe-mode and breaker latches, and the last-known-good
        allocation. In-flight retry closures are deliberately *not*
        exported — they die with the process; the WAL covers re-issuing
        whatever was lost.
        """
        state: dict[str, dict] = {}
        for name, entry in self._entries.items():
            state[name] = {
                "stats": dict(entry.stats),
                "skipped": entry.skipped,
                "stale_periods": entry.stale_periods,
                "last_signal_time": entry.last_signal_time,
                "safe_mode": entry.safe_mode,
                "safe_mode_entries": entry.safe_mode_entries,
                "safe_mode_exits": entry.safe_mode_exits,
                "last_good_allocation": (
                    entry.last_good_allocation.as_dict()
                    if entry.last_good_allocation is not None
                    else None
                ),
                "breaker_open_until": entry.breaker_open_until,
                "breaker_trips": entry.breaker_trips,
                "breaker_skips": entry.breaker_skips,
                "breaker_half_open": entry.breaker_half_open,
                "directions": list(entry.directions),
                "controller": entry.controller.export_state(),
            }
        return state

    def restore_state(self, state: dict[str, dict]) -> None:
        """Load a snapshot produced by :meth:`export_state`.

        Unknown application names are ignored (the snapshot may predate an
        unregister); registered apps absent from the snapshot keep their
        current (freshly reset) state.
        """
        for name, app_state in state.items():
            entry = self._entries.get(name)
            if entry is None:
                continue
            entry.stats = dict(app_state["stats"])
            entry.skipped = int(app_state["skipped"])
            entry.stale_periods = int(app_state["stale_periods"])
            entry.last_signal_time = app_state["last_signal_time"]
            entry.safe_mode = bool(app_state["safe_mode"])
            entry.safe_mode_entries = int(app_state["safe_mode_entries"])
            entry.safe_mode_exits = int(app_state["safe_mode_exits"])
            good = app_state["last_good_allocation"]
            entry.last_good_allocation = (
                ResourceVector.from_dict(good) if good is not None else None
            )
            entry.breaker_open_until = float(app_state["breaker_open_until"])
            entry.breaker_trips = int(app_state["breaker_trips"])
            entry.breaker_skips = int(app_state["breaker_skips"])
            entry.breaker_half_open = bool(
                app_state.get("breaker_half_open", False)
            )
            entry.directions.clear()
            entry.directions.extend(app_state["directions"])
            entry.controller.restore_state(app_state["controller"])

    def reset_entries(self) -> None:
        """Discard all in-memory control state (simulated process restart).

        A crashed controller loses its integrators, latches, and pending
        retries; a successor starts from here and then applies whatever the
        statestore preserved via :meth:`restore_state`.
        """
        for entry in self._entries.values():
            self._cancel_retry(entry)
            entry.controller.reset()
            entry.last_decision = None
            entry.stale_periods = 0
            entry.last_signal_time = None
            entry.safe_mode = False
            entry.last_good_allocation = None
            entry.consecutive_failures = 0
            entry.breaker_open_until = 0.0
            entry.breaker_half_open = False
            entry.brownout_high_periods = 0
            entry.brownout_low_periods = 0
            entry.directions.clear()
        if self.backpressure is not None:
            self.backpressure.clear()

    # -- lifecycle ------------------------------------------------------------------

    def start(self) -> None:
        if self._handle is not None:
            raise RuntimeError("manager already started")
        self._handle = self.engine.every(self.interval, self.run_once, priority=5)

    def stop(self) -> None:
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None
        for entry in self._entries.values():
            self._cancel_retry(entry)

    # -- signal freshness / safe mode ---------------------------------------------

    def _signal_fresh(self, entry: _Entry, error: float | None, now: float) -> bool:
        """Whether the PLO signal is present *and* recently scraped."""
        if error is None:
            return False
        app = entry.app
        last_t = self.collector.latest_time(app.plo.metric_name(app.name))
        return last_t is not None and now - last_t <= self.freshness_timeout

    def _enter_safe_mode(self, entry: _Entry, now: float) -> None:
        entry.safe_mode = True
        entry.safe_mode_entries += 1
        if self.telemetry is not None:
            self.telemetry.safe_mode_entries.inc()
            self.telemetry.tracer.instant(
                "safe_mode_enter", "control", app=entry.app.name,
                stale_periods=entry.stale_periods,
            )
        self._cancel_retry(entry)
        # Freeze at the last-known-good allocation: if a decision taken on
        # data that later proved stale moved the target, pull it back.
        good = entry.last_good_allocation
        if good is not None and not good.approx_equal(
            entry.app.target_allocation, tolerance=1e-9
        ):
            try:
                entry.app.set_target_allocation(good)
            except ActuationError:
                pass  # stay frozen wherever we are; retried on exit

    def _exit_safe_mode(self, entry: _Entry) -> None:
        entry.safe_mode = False
        entry.safe_mode_exits += 1
        # The PID integrated against a signal that then went dark; start
        # the loop clean rather than acting on pre-outage momentum.
        entry.controller.reset()

    # -- actuation: retries and circuit breaking ------------------------------------

    def _cancel_retry(self, entry: _Entry) -> None:
        if entry.retry_handle is not None:
            entry.retry_handle.cancel()
        entry.retry_handle = None
        entry.retry_action = None
        entry.retry_attempts = 0

    def _trip_breaker(self, entry: _Entry, now: float) -> None:
        entry.breaker_open_until = now + self.resilience.breaker_open_duration
        entry.breaker_trips += 1
        entry.breaker_half_open = False
        if self.telemetry is not None:
            self.telemetry.breaker_trips.inc()
            self.telemetry.tracer.instant(
                "breaker_trip", "control", app=entry.app.name,
                open_until=entry.breaker_open_until,
            )
        entry.directions.clear()
        entry.consecutive_failures = 0
        self._cancel_retry(entry)

    def _record_direction(self, entry: _Entry, decision: ControlDecision) -> bool:
        """Track grow/reclaim flapping; True when the breaker just tripped."""
        if decision.action == "hold":
            return False
        entry.directions.append(1 if decision.action == "grow" else -1)
        flips = sum(
            1
            for a, b in zip(entry.directions, list(entry.directions)[1:])
            if a != b
        )
        if (
            len(entry.directions) >= 2
            and flips >= self.resilience.breaker_flap_threshold
        ):
            self._trip_breaker(entry, self.engine.now)
            return True
        return False

    def _actuate(
        self,
        entry: _Entry,
        action: Callable[[], None],
        *,
        on_success: Callable[[], None] | None = None,
        kind: str = "actuation",
    ) -> bool:
        """Run one actuation, absorbing injected transient failures.

        On failure the actuation is rescheduled with exponential backoff
        and jitter (up to ``max_retries``); repeated failures trip the
        circuit breaker instead of retrying forever.
        """
        tel = self.telemetry
        sp = None
        if tel is not None:
            # Parent to the decide span that ordered this actuation — an
            # explicit link, so delayed retries stay causally attached.
            sp = tel.tracer.begin(
                "actuate", "actuation", parent=entry.decision_span_id,
                app=entry.app.name, kind=kind,
            )
        try:
            try:
                if self.partition_guard is not None:
                    self.partition_guard()
                action()
            except ActuationError:
                if sp is not None:
                    sp.args["outcome"] = "failed"
                self._on_actuation_failure(entry, action, on_success)
                return False
            if entry.breaker_half_open:
                # Successful probe: the breaker is fully closed again.
                entry.breaker_half_open = False
                if tel is not None:
                    tel.tracer.instant(
                        "breaker_close", "control", app=entry.app.name,
                    )
            entry.consecutive_failures = 0
            self._cancel_retry(entry)
            if sp is not None:
                sp.args["outcome"] = "applied"
                tel.actuations.inc()
            if on_success is not None:
                on_success()
            return True
        finally:
            if sp is not None:
                tel.tracer.end(sp)

    def _on_actuation_failure(
        self,
        entry: _Entry,
        action: Callable[[], None],
        on_success: Callable[[], None] | None,
    ) -> None:
        cfg = self.resilience
        entry.actuation_failures += 1
        if self.telemetry is not None:
            self.telemetry.actuation_failures.inc()
        if entry.breaker_half_open:
            # Failed probe: re-open immediately for another full window
            # rather than counting toward the failure threshold.
            entry.breaker_reopens += 1
            self._trip_breaker(entry, self.engine.now)
            return
        entry.consecutive_failures += 1
        if entry.consecutive_failures >= cfg.breaker_failure_threshold:
            self._trip_breaker(entry, self.engine.now)
            return
        if entry.retry_attempts >= cfg.max_retries:
            # Give up on this decision; the next period re-decides.
            self._cancel_retry(entry)
            return
        delay = min(
            cfg.retry_max_delay,
            cfg.retry_base_delay * (2.0 ** entry.retry_attempts),
        )
        if cfg.retry_jitter > 0:
            delay *= 1.0 + cfg.retry_jitter * (2.0 * float(self.rng.random()) - 1.0)
        entry.retry_attempts += 1
        entry.retries += 1
        if self.telemetry is not None:
            self.telemetry.actuation_retries.inc()
        entry.retry_action = action
        if entry.retry_handle is not None:
            entry.retry_handle.cancel()
        entry.retry_handle = self.engine.schedule(
            delay, lambda: self._run_retry(entry, action, on_success)
        )
        if self.fault_log is not None:
            # Structured episode per retry window so MTTR attribution in
            # analysis.recovery can separate retry latency from the outage.
            now = self.engine.now
            self.fault_log.record(
                "actuation-retry", entry.app.name, now, now + delay,
                detail=f"attempt={entry.retry_attempts}",
            )

    def _run_retry(
        self,
        entry: _Entry,
        action: Callable[[], None],
        on_success: Callable[[], None] | None,
    ) -> None:
        if entry.retry_action is not action:
            return  # superseded by a newer decision
        entry.retry_handle = None
        if (
            entry.app.finished
            or entry.safe_mode
            or self.engine.now < entry.breaker_open_until
        ):
            entry.retry_action = None
            return
        self._actuate(entry, action, on_success=on_success, kind="retry")

    # -- backpressure and brownout ---------------------------------------------------

    def _distressed(self, now: float) -> bool:
        """Whether any registered loop shows distress right now: a retry
        pending, a breaker open or probing, safe mode, or unresolved
        actuation failures."""
        for entry in self._entries.values():
            if (
                entry.retry_handle is not None
                or entry.safe_mode
                or entry.breaker_half_open
                or now < entry.breaker_open_until
                or entry.consecutive_failures > 0
            ):
                return True
        return False

    def _apply_backpressure(
        self, entry: _Entry, desired: int, current: int, now: float
    ) -> int:
        """Queue/coalesce grows under distress; drain queued grows when calm.

        Returns the replica target to actually pursue this period.
        """
        bp = self.backpressure
        app_name = entry.app.name
        if self._distressed(now):
            if desired > current:
                bp.defer(app_name, desired)
                desired = current
                if self.telemetry is not None:
                    self.telemetry.tracer.instant(
                        "backpressure_defer", "control", app=app_name,
                    )
            elif desired < current:
                # A reclaim supersedes any queued grow.
                bp.drop(app_name)
        else:
            held = bp.release(app_name)
            if held is not None and desired >= current:
                desired = max(desired, held)
        self.collector.record(
            f"control/{app_name}/backpressure",
            1.0 if bp.pending(app_name) else 0.0,
        )
        return desired

    def _update_brownout(self, entry: _Entry, error: float | None, now: float) -> None:
        """Hysteretic brownout: enter after ``brownout_enter_periods``
        consecutive periods above the enter error, exit after
        ``brownout_exit_periods`` below the (penalty-compensated) exit
        error. The application object is the source of truth for the
        active flag, so it survives controller failover.
        """
        cfg = self.brownout_cfg
        app = entry.app
        if not getattr(app, "brownout_capable", False):
            return
        if not app.brownout_active:
            if error is not None and error >= cfg.brownout_enter_error:
                entry.brownout_high_periods += 1
            else:
                entry.brownout_high_periods = 0
            if entry.brownout_high_periods >= cfg.brownout_enter_periods:
                entry.brownout_high_periods = 0
                app.enter_brownout(
                    factor=cfg.brownout_demand_factor,
                    latency_penalty=cfg.brownout_latency_penalty,
                )
                entry.brownout_entries += 1
                self.brownout_entries_total += 1
                self.brownout_active_total += 1
                if self.fault_log is not None:
                    entry.brownout_episode = self.fault_log.open(
                        "brownout", app.name, now,
                        detail=f"factor={cfg.brownout_demand_factor}",
                    )
                if self.telemetry is not None:
                    self.telemetry.tracer.instant(
                        "brownout_enter", "control", app=app.name,
                    )
        else:
            # The latency penalty keeps the measured error from ever
            # reaching zero; compensate the exit threshold so a service
            # that would be healthy un-degraded can actually leave.
            threshold = cfg.brownout_exit_error
            plo = app.plo
            if getattr(plo, "kind", None) == "latency" and plo.target > 0:
                threshold += cfg.brownout_latency_penalty / plo.target
            if error is not None and error <= threshold:
                entry.brownout_low_periods += 1
            else:
                entry.brownout_low_periods = 0
            if entry.brownout_low_periods >= cfg.brownout_exit_periods:
                entry.brownout_low_periods = 0
                app.exit_brownout()
                entry.brownout_exits += 1
                self.brownout_exits_total += 1
                self.brownout_active_total -= 1
                if self.fault_log is not None and entry.brownout_episode is not None:
                    self.fault_log.close(entry.brownout_episode, now)
                    entry.brownout_episode = None
                if self.telemetry is not None:
                    self.telemetry.tracer.instant(
                        "brownout_exit", "control", app=app.name,
                    )
        self.collector.record(
            f"control/{app.name}/brownout",
            1.0 if app.brownout_active else 0.0,
        )

    # -- the loop ----------------------------------------------------------------------

    def _saturation(self, app: Application) -> SaturationSnapshot:
        """Saturation from scraped series, falling back to live pods."""
        prefix = app.metric_prefix()
        usage = {}
        alloc = {}
        for name in RESOURCES:
            usage[name] = self.collector.window_mean(
                f"{prefix}/usage/{name}", self.usage_window
            )
            alloc[name] = self.collector.latest(f"{prefix}/alloc/{name}")
        if any(v is None for v in usage.values()) or any(
            v is None or v <= 0 for v in alloc.values()
        ):
            total_usage = ResourceVector.zero()
            total_alloc = ResourceVector.zero()
            for pod in app.running_pods():
                total_usage = total_usage + pod.usage
                total_alloc = total_alloc + pod.allocation
            return SaturationSnapshot.from_vectors(total_usage, total_alloc)
        fractions = {
            name: (usage[name] / alloc[name] if alloc[name] else 0.0)
            for name in RESOURCES
        }
        return SaturationSnapshot(fractions)

    def run_once(self) -> None:
        """Execute one control period over all registered applications."""
        now = self.engine.now
        self.loops += 1
        for entry in list(self._entries.values()):
            if entry.app.finished:
                continue
            self._run_entry(entry, now)

    def _run_entry(self, entry: _Entry, now: float) -> None:
        tel = self.telemetry
        if tel is None:
            entry.decision_span_id = None
            self._run_entry_inner(entry, now, None)
            return
        sp = tel.tracer.begin("decide", "control", app=entry.app.name)
        entry.decision_span_id = sp.id
        try:
            self._run_entry_inner(entry, now, sp)
        finally:
            tel.tracer.end(sp)

    def _emit_provenance(
        self,
        entry: _Entry,
        now: float,
        verdict: str,
        *,
        decision: ControlDecision | None = None,
        action: str | None = None,
        target: ResourceVector | None = None,
        sp=None,
    ) -> None:
        """Append one decision-provenance record (telemetry only).

        Links the decide span back to the scrape that stored the newest
        PLO sample this evaluation read, and snapshots controller
        internals at decision time.
        """
        tel = self.telemetry
        if tel is None:
            return
        app = entry.app
        metric = app.plo.metric_name(app.name)
        signal_time = self.collector.latest_time(metric)
        signal_age = now - signal_time if signal_time is not None else None
        scrape_span = (
            self.collector.scrape_span_at(signal_time)
            if signal_time is not None
            else None
        )
        if sp is not None and scrape_span is not None:
            sp.parent_id = scrape_span
        controller = entry.controller
        pid = getattr(controller, "pid", None)
        tuner = getattr(controller, "tuner", None)
        if action is None:
            action = decision.action if decision is not None else "none"
        if target is None and decision is not None and decision.changed:
            target = decision.new_allocation
        active: tuple[int, ...] = ()
        if self.fault_log is not None:
            active = tuple(ep.eid for ep in self.fault_log.active_at(now))
        tel.tracer.trace.provenance.append(DecisionProvenance(
            app=app.name,
            time=now,
            verdict=verdict,
            action=action,
            error=decision.error if decision is not None else None,
            output=decision.output if decision is not None else None,
            gain_scale=decision.gain_scale if decision is not None else None,
            terms=(
                getattr(pid, "last_terms", None)
                if decision is not None
                else None
            ),
            inputs={metric: self.collector.latest(metric)},
            signal_age=signal_age,
            stale_periods=entry.stale_periods,
            safe_mode=entry.safe_mode,
            deadband=getattr(controller, "deadband", 0.0),
            clamped=decision.clamped if decision is not None else False,
            weights=dict(decision.weights) if decision is not None else {},
            target=target.as_dict() if target is not None else None,
            replicas=app.replica_count,
            lease_generation=self.lease_generation,
            scrape_span_id=scrape_span,
            span_id=sp.id if sp is not None else None,
            active_faults=active,
            tuner_event=(
                getattr(tuner, "last_event", None)
                if decision is not None
                else None
            ),
        ))
        if sp is not None:
            sp.args["verdict"] = verdict
            sp.args["action"] = action
        if verdict == "actuated" and signal_age is not None:
            tel.reaction_latency.observe(signal_age)

    def _run_entry_inner(self, entry: _Entry, now: float, sp) -> None:
        app = entry.app
        prefix = f"control/{app.name}"
        status = app.plo.evaluate(self.collector, app.name, now)

        if not self._signal_fresh(entry, status.error, now):
            entry.skipped += 1
            entered = False
            # Before the first signal ever arrives there is no last-known-
            # good state to protect; stay in the plain skip path.
            if entry.last_signal_time is not None:
                entry.stale_periods += 1
                if (
                    not entry.safe_mode
                    and entry.stale_periods >= self.resilience.safe_mode_after
                ):
                    self._enter_safe_mode(entry, now)
                    entered = True
            self.collector.record(
                f"{prefix}/safe_mode", 1.0 if entry.safe_mode else 0.0
            )
            if self.telemetry is not None:
                if entered:
                    self._emit_provenance(
                        entry, now, "safe-mode-entry", action="freeze",
                        target=entry.last_good_allocation, sp=sp,
                    )
                elif entry.safe_mode:
                    self._emit_provenance(entry, now, "safe-mode-hold", sp=sp)
                else:
                    self._emit_provenance(entry, now, "stale-skip", sp=sp)
            return

        entry.stale_periods = 0
        entry.last_signal_time = now
        if entry.safe_mode:
            self._exit_safe_mode(entry)
        self.collector.record(f"{prefix}/safe_mode", 0.0)

        breaker_open = now < entry.breaker_open_until
        if (
            not breaker_open
            and entry.breaker_open_until > 0.0
            and not entry.breaker_half_open
        ):
            # The open window elapsed: go half-open instead of silently
            # closing — the next actuation is a probe (success closes the
            # breaker, failure re-opens it for another full window).
            entry.breaker_half_open = True
            entry.breaker_probes += 1
            entry.breaker_open_until = 0.0
            if self.telemetry is not None:
                self.telemetry.tracer.instant(
                    "breaker_half_open", "control", app=app.name,
                )
        self.collector.record(
            f"{prefix}/breaker_open", 1.0 if breaker_open else 0.0
        )
        if breaker_open:
            entry.breaker_skips += 1
            self._emit_provenance(entry, now, "breaker-skip", sp=sp)
            return

        saturation = self._saturation(app)
        ff = 0.0
        if entry.feedforward is not None:
            ff = entry.feedforward.signal(app, now)
        decision = entry.controller.decide(
            status.error, saturation, app.current_allocation(),
            self.interval, feedforward=ff,
        )
        if self.telemetry is not None:
            self.telemetry.decisions.inc()
        suppressed = False
        if (
            decision.action == "reclaim"
            and entry.feedforward is not None
            and entry.feedforward.reclaim_suppressed(app.name, now)
        ):
            suppressed = True
            decision = ControlDecision(
                "hold", app.current_allocation(), decision.error,
                decision.output, decision.gain_scale, decision.weights,
                reason="reclaim-suppressed",
            )
        entry.last_decision = decision
        entry.stats[decision.action] += 1

        if self._record_direction(entry, decision):
            # Flapping tripped the breaker: suppress this actuation too.
            self.collector.record(f"{prefix}/breaker_open", 1.0)
            self._emit_provenance(entry, now, "flap-breaker",
                                  decision=decision, sp=sp)
            return

        if decision.changed:
            target = decision.new_allocation

            def apply_vertical(app=app, target=target) -> None:
                app.set_target_allocation(target)

            def mark_good(entry=entry, target=target) -> None:
                entry.last_good_allocation = target

            if self.actuation_sink is not None:
                self.actuation_sink(app.name, "resize", target)
            self._actuate(
                entry, apply_vertical, on_success=mark_good, kind="resize"
            )
        elif entry.last_good_allocation is None:
            entry.last_good_allocation = app.current_allocation()

        if entry.horizontal is not None and now >= entry.breaker_open_until:
            desired = entry.horizontal.adjust(app, decision, entry.controller)
            bp = self.backpressure
            if bp is not None:
                desired = self._apply_backpressure(
                    entry, desired, app.replica_count, now
                )
            if desired != app.replica_count:

                def apply_horizontal(app=app, desired=desired) -> None:
                    app.scale_to(desired)

                if self.actuation_sink is not None:
                    self.actuation_sink(app.name, "scale", desired)
                self._actuate(entry, apply_horizontal, kind="scale")

        if self.brownout_cfg is not None:
            self._update_brownout(entry, decision.error, now)

        self.collector.record(f"{prefix}/error", decision.error)
        self.collector.record(f"{prefix}/output", decision.output)
        self.collector.record(f"{prefix}/gain_scale", decision.gain_scale)
        self.collector.record(
            f"{prefix}/action",
            {"hold": 0.0, "grow": 1.0, "reclaim": -1.0}[decision.action],
        )
        self.collector.record(f"{prefix}/replicas", float(app.replica_count))

        if self.telemetry is not None:
            if decision.changed:
                verdict = "actuated"
            elif suppressed:
                verdict = "reclaim-suppressed"
            elif decision.reason == "deadband":
                verdict = "deadband"
            else:
                verdict = "hold"
            self._emit_provenance(entry, now, verdict, decision=decision, sp=sp)
