"""The control loop: evaluate PLOs, decide, actuate.

One :class:`ControlLoopManager` runs per experiment. Every control period
it, for each registered application:

1. evaluates the application's PLO against the metrics pipeline,
2. builds the saturation snapshot from scraped usage/allocation,
3. asks the application's :class:`~repro.control.multiresource.MultiResourceController`
   for a decision,
4. actuates vertically (in-place pod resizes) and, through an optional
   horizontal policy, by adding/removing replicas when vertical scaling
   rails out,
5. records the loop's internals as metrics series for the evaluation
   harness (error, output, gain scale, decisions).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol

from repro.cluster.resources import RESOURCES, ResourceVector
from repro.control.estimator import SaturationSnapshot
from repro.control.multiresource import ControlDecision, MultiResourceController
from repro.metrics.collector import MetricsCollector
from repro.sim.engine import Engine, PeriodicHandle
from repro.workloads.base import Application


class HorizontalPolicy(Protocol):
    """Hook deciding replica-count changes after the vertical decision."""

    def adjust(
        self,
        app: Application,
        decision: ControlDecision,
        controller: MultiResourceController,
    ) -> int:
        """Return the desired replica count (may equal the current one)."""
        ...


@dataclass
class _Entry:
    app: Application
    controller: MultiResourceController
    horizontal: HorizontalPolicy | None
    feedforward: object | None = None  # optional FeedforwardScaler
    last_decision: ControlDecision | None = None
    skipped: int = 0
    stats: dict[str, int] = field(
        default_factory=lambda: {"grow": 0, "reclaim": 0, "hold": 0}
    )


class ControlLoopManager:
    """Periodic controller executor over registered applications.

    Parameters
    ----------
    interval:
        Control period in seconds (the dt fed to each PID).
    usage_window:
        Trailing window for usage averaging when building saturation
        snapshots; defaults to the control period.
    """

    def __init__(
        self,
        engine: Engine,
        collector: MetricsCollector,
        *,
        interval: float = 10.0,
        usage_window: float | None = None,
    ):
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.engine = engine
        self.collector = collector
        self.interval = interval
        self.usage_window = usage_window or interval
        self._entries: dict[str, _Entry] = {}
        self._handle: PeriodicHandle | None = None
        self.loops = 0

    # -- registration ------------------------------------------------------------

    def register(
        self,
        app: Application,
        controller: MultiResourceController,
        *,
        horizontal: HorizontalPolicy | None = None,
        feedforward=None,
    ) -> None:
        """Manage ``app`` (which must carry a ``plo``) with ``controller``."""
        if app.plo is None:
            raise ValueError(f"application {app.name!r} has no PLO attached")
        if app.name in self._entries:
            raise ValueError(f"application {app.name!r} already registered")
        self._entries[app.name] = _Entry(app, controller, horizontal, feedforward)

    def unregister(self, app_name: str) -> None:
        self._entries.pop(app_name, None)

    def entry_stats(self, app_name: str) -> dict[str, int]:
        """Decision counts for one application (for tests/reports)."""
        return dict(self._entries[app_name].stats)

    # -- lifecycle ------------------------------------------------------------------

    def start(self) -> None:
        if self._handle is not None:
            raise RuntimeError("manager already started")
        self._handle = self.engine.every(self.interval, self.run_once, priority=5)

    def stop(self) -> None:
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    # -- the loop ----------------------------------------------------------------------

    def _saturation(self, app: Application) -> SaturationSnapshot:
        """Saturation from scraped series, falling back to live pods."""
        prefix = app.metric_prefix()
        usage = {}
        alloc = {}
        for name in RESOURCES:
            usage[name] = self.collector.window_mean(
                f"{prefix}/usage/{name}", self.usage_window
            )
            alloc[name] = self.collector.latest(f"{prefix}/alloc/{name}")
        if any(v is None for v in usage.values()) or any(
            v is None or v <= 0 for v in alloc.values()
        ):
            total_usage = ResourceVector.zero()
            total_alloc = ResourceVector.zero()
            for pod in app.running_pods():
                total_usage = total_usage + pod.usage
                total_alloc = total_alloc + pod.allocation
            return SaturationSnapshot.from_vectors(total_usage, total_alloc)
        fractions = {
            name: (usage[name] / alloc[name] if alloc[name] else 0.0)
            for name in RESOURCES
        }
        return SaturationSnapshot(fractions)

    def run_once(self) -> None:
        """Execute one control period over all registered applications."""
        now = self.engine.now
        self.loops += 1
        for entry in list(self._entries.values()):
            app = entry.app
            if app.finished:
                continue
            status = app.plo.evaluate(self.collector, app.name, now)
            prefix = f"control/{app.name}"
            if status.error is None:
                entry.skipped += 1
                continue
            saturation = self._saturation(app)
            ff = 0.0
            if entry.feedforward is not None:
                ff = entry.feedforward.signal(app, now)
            decision = entry.controller.decide(
                status.error, saturation, app.current_allocation(),
                self.interval, feedforward=ff,
            )
            if (
                decision.action == "reclaim"
                and entry.feedforward is not None
                and entry.feedforward.reclaim_suppressed(app.name, now)
            ):
                decision = ControlDecision(
                    "hold", app.current_allocation(), decision.error,
                    decision.output, decision.gain_scale, decision.weights,
                )
            entry.last_decision = decision
            entry.stats[decision.action] += 1

            if decision.changed:
                app.set_target_allocation(decision.new_allocation)
            if entry.horizontal is not None:
                desired = entry.horizontal.adjust(app, decision, entry.controller)
                if desired != app.replica_count:
                    app.scale_to(desired)

            self.collector.record(f"{prefix}/error", decision.error)
            self.collector.record(f"{prefix}/output", decision.output)
            self.collector.record(f"{prefix}/gain_scale", decision.gain_scale)
            self.collector.record(
                f"{prefix}/action",
                {"hold": 0.0, "grow": 1.0, "reclaim": -1.0}[decision.action],
            )
            self.collector.record(f"{prefix}/replicas", float(app.replica_count))
