"""Multi-resource controller: one PID, per-dimension actuation.

This is the headline mechanism: a per-application PID on the normalized
PLO error whose scalar output is *distributed* across CPU, memory, disk
bandwidth, and network bandwidth by the bottleneck estimator. Scale-up
flows to saturated dimensions; reclaim flows to dimensions with headroom,
so the controller simultaneously fixes violations and returns the
over-provisioned slack that inflates cluster cost.

The ablations in R-T3 are configuration points here: ``adaptive=False``
freezes the gain scale, and ``dimensions=("cpu",)`` reduces it to the
classic single-resource controller.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.cluster.resources import RESOURCES, ResourceVector
from repro.control.adaptive import AdaptiveGainTuner
from repro.control.estimator import BottleneckEstimator, SaturationSnapshot
from repro.control.pid import PIDController, PIDGains


@dataclass(frozen=True)
class AllocationBounds:
    """Per-replica allocation floor and ceiling."""

    minimum: ResourceVector
    maximum: ResourceVector

    def __post_init__(self) -> None:
        if not self.minimum.fits_within(self.maximum):
            raise ValueError("minimum allocation exceeds maximum")
        if self.minimum.any_negative():
            raise ValueError("minimum allocation must be non-negative")

    def clamp(self, allocation: ResourceVector) -> ResourceVector:
        return allocation.clamp(self.minimum, self.maximum)

    def at_ceiling(self, allocation: ResourceVector, dimension: str,
                   *, tolerance: float = 1e-6) -> bool:
        """Whether ``dimension`` is pinned at the ceiling."""
        return allocation[dimension] >= self.maximum[dimension] - tolerance

    def near_floor(self, allocation: ResourceVector, *, slack: float = 1.25) -> bool:
        """Whether every dimension is within ``slack``× of the floor."""
        for name in RESOURCES:
            floor = self.minimum[name]
            if floor <= 0:
                continue
            if allocation[name] > floor * slack:
                return False
        return True


@dataclass(frozen=True)
class ControlDecision:
    """Outcome of one control period for one application."""

    action: str  # "grow" | "reclaim" | "hold"
    new_allocation: ResourceVector
    error: float
    output: float
    gain_scale: float
    weights: dict[str, float]
    #: Why a hold was held ("deadband", "zero-output", "no-dimensions",
    #: "clamped") or "" for actuated decisions.
    reason: str = ""
    #: True when the bounds clamp altered (or fully absorbed) the
    #: proposed allocation.
    clamped: bool = False

    @property
    def changed(self) -> bool:
        return self.action != "hold"


class MultiResourceController:
    """Per-application adaptive multi-resource PID controller.

    Parameters
    ----------
    gains:
        Baseline PID gains on the normalized PLO error.
    bounds:
        Per-replica allocation clamp.
    deadband:
        |error| below which no actuation happens (churn suppression).
    adaptive:
        Enable online gain adaptation (ablation switch).
    dimensions:
        Resource dimensions this controller may actuate; others are left
        untouched (``("cpu",)`` gives the single-resource ablation).
    reclaim_caution:
        Multiplier < 1 damping scale-down relative to scale-up, because
        under-shooting an allocation hurts users while over-shooting only
        costs efficiency.
    error_clamp:
        Inclusive (lo, hi) clamp applied to the raw PLO error before the
        PID and tuner see it. Latency ratios explode once a service is
        saturated (queues make measured/target unbounded), and an
        unbounded error would make every controller slam its output rail
        regardless of gains; a bounded error keeps the loop in its linear
        regime.
    """

    def __init__(
        self,
        gains: PIDGains,
        bounds: AllocationBounds,
        *,
        deadband: float = 0.1,
        adaptive: bool = True,
        dimensions: Sequence[str] = RESOURCES,
        reclaim_caution: float = 0.5,
        estimator: BottleneckEstimator | None = None,
        tuner: AdaptiveGainTuner | None = None,
        output_limits: tuple[float, float] = (-0.5, 1.0),
        error_clamp: tuple[float, float] = (-1.0, 3.0),
    ):
        unknown = set(dimensions) - set(RESOURCES)
        if unknown:
            raise ValueError(f"unknown dimensions: {sorted(unknown)}")
        if not dimensions:
            raise ValueError("need at least one controlled dimension")
        if deadband < 0:
            raise ValueError("deadband must be non-negative")
        if not 0 < reclaim_caution <= 1:
            raise ValueError("reclaim_caution must be in (0, 1]")
        if not error_clamp[0] < 0 < error_clamp[1]:
            raise ValueError("error_clamp must bracket zero")
        self.pid = PIDController(gains, output_limits=output_limits)
        self.bounds = bounds
        self.deadband = deadband
        self.adaptive = adaptive
        self.dimensions = tuple(dimensions)
        self.reclaim_caution = reclaim_caution
        self.estimator = estimator or BottleneckEstimator()
        self.tuner = tuner or AdaptiveGainTuner(deadband=deadband)
        self.error_clamp = error_clamp
        self.decisions = 0

    def reset(self) -> None:
        self.pid.reset()
        self.tuner.reset()

    def export_state(self) -> dict:
        """Snapshot of the mutable control state (for the HA statestore)."""
        return {
            "pid": self.pid.export_state(),
            "tuner": self.tuner.export_state(),
            "decisions": self.decisions,
        }

    def restore_state(self, state: dict) -> None:
        """Resume from an exported snapshot (controller failover path)."""
        self.pid.restore_state(state["pid"])
        self.tuner.restore_state(state["tuner"])
        self.decisions = int(state["decisions"])

    def decide(
        self,
        error: float,
        saturation: SaturationSnapshot,
        current: ResourceVector,
        dt: float,
        *,
        feedforward: float = 0.0,
    ) -> ControlDecision:
        """One control period: error + saturation → allocation target.

        ``feedforward`` is an additive, non-negative output contribution
        (load anticipation); it can trigger a grow even inside the error
        deadband.
        """
        self.decisions += 1
        if feedforward < 0:
            raise ValueError("feedforward must be non-negative")
        error = max(self.error_clamp[0], min(self.error_clamp[1], error))
        if self.adaptive:
            self.pid.gain_scale = self.tuner.update(error)
        output = self.pid.update(error, dt)
        if feedforward > 0:
            # An anticipated surge invalidates the feedback's "overachieving"
            # reading (it is about to be stale): suppress reclaim and add
            # the anticipatory growth on top.
            output = min(
                self.pid.output_limits[1], max(0.0, output) + feedforward
            )
        gain_scale = self.pid.gain_scale

        if feedforward <= 0 and abs(error) <= self.deadband:
            return ControlDecision(
                "hold", current, error, output, gain_scale, {},
                reason="deadband",
            )

        if output > 0:
            weights = self.estimator.grow_weights(saturation)
            action = "grow"
            effort = output
        elif output < 0:
            weights = self.estimator.reclaim_weights(saturation)
            action = "reclaim"
            effort = output * self.reclaim_caution
        else:
            return ControlDecision(
                "hold", current, error, output, gain_scale, {},
                reason="zero-output",
            )

        # Restrict actuation to the controlled dimensions.
        weights = {
            name: (weights.get(name, 0.0) if name in self.dimensions else 0.0)
            for name in RESOURCES
        }
        if all(w == 0.0 for w in weights.values()):
            return ControlDecision(
                "hold", current, error, output, gain_scale, weights,
                reason="no-dimensions",
            )

        factors = {
            name: max(0.05, 1.0 + effort * weight)
            for name, weight in weights.items()
        }
        proposed = current.scale(factors)
        clamped = self.bounds.clamp(proposed)
        was_clamped = not clamped.approx_equal(proposed, tolerance=1e-9)
        if clamped.approx_equal(current, tolerance=1e-9):
            return ControlDecision(
                "hold", current, error, output, gain_scale, weights,
                reason="clamped", clamped=True,
            )
        return ControlDecision(
            action, clamped, error, output, gain_scale, weights,
            clamped=was_clamped,
        )
