"""Bottleneck attribution: which resource is responsible for the error.

A single scalar PID output must be turned into per-dimension allocation
changes. The estimator inspects per-resource *saturation* — how close
measured usage sits to the current allocation — and produces:

* **grow weights**: dimensions that are saturated (usage ≈ allocation)
  while the PLO is violated are the ones throttling the application and
  receive the scale-up signal;
* **reclaim weights**: dimensions with ample headroom receive the
  scale-down signal when the application overachieves.

Saturation is a robust signal under the Guaranteed-QoS enforcement the
cluster applies: a pod cannot consume beyond its allocation, so a
bottlenecked dimension pins usage at the allocation ceiling.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.resources import RESOURCES, ResourceVector


@dataclass(frozen=True)
class SaturationSnapshot:
    """Per-dimension usage/allocation fractions for one application."""

    fractions: dict[str, float]

    @classmethod
    def from_vectors(
        cls, usage: ResourceVector, allocation: ResourceVector
    ) -> "SaturationSnapshot":
        fractions = {}
        for name in RESOURCES:
            alloc = allocation[name]
            fractions[name] = usage[name] / alloc if alloc > 0 else 0.0
        return cls(fractions)

    def most_saturated(self) -> str:
        return max(RESOURCES, key=lambda n: self.fractions[n])


class BottleneckEstimator:
    """Attribute control effort to resource dimensions.

    Parameters
    ----------
    grow_threshold:
        Saturation above which a dimension is considered a bottleneck
        candidate for scale-up.
    reclaim_threshold:
        Saturation below which a dimension is considered reclaimable.
    memory_headroom:
        Extra caution multiplier on memory reclaim weights (shrinking
        memory too eagerly causes thrashing before the controller can
        recover).
    """

    def __init__(
        self,
        *,
        grow_threshold: float = 0.85,
        reclaim_threshold: float = 0.6,
        memory_headroom: float = 0.5,
    ):
        if not 0 < grow_threshold < 1:
            raise ValueError("grow_threshold must be in (0, 1)")
        if not 0 < reclaim_threshold < 1:
            raise ValueError("reclaim_threshold must be in (0, 1)")
        if grow_threshold <= reclaim_threshold:
            raise ValueError("grow_threshold must exceed reclaim_threshold")
        if not 0 <= memory_headroom <= 1:
            raise ValueError("memory_headroom must be in [0, 1]")
        self.grow_threshold = grow_threshold
        self.reclaim_threshold = reclaim_threshold
        self.memory_headroom = memory_headroom

    def grow_weights(self, snapshot: SaturationSnapshot) -> dict[str, float]:
        """Weights in [0, 1] per dimension for distributing scale-up.

        Saturated dimensions get weight proportional to how far past the
        threshold they are; if nothing crosses the threshold (a transient
        violation with headroom everywhere), the most saturated dimension
        gets full weight so the controller still acts.
        """
        weights: dict[str, float] = {}
        for name in RESOURCES:
            sat = snapshot.fractions[name]
            if sat >= self.grow_threshold:
                weights[name] = min(
                    1.0,
                    (sat - self.grow_threshold) / (1 - self.grow_threshold) + 0.25,
                )
            else:
                weights[name] = 0.0
        if all(w == 0.0 for w in weights.values()):
            weights[snapshot.most_saturated()] = 1.0
        return weights

    def reclaim_weights(self, snapshot: SaturationSnapshot) -> dict[str, float]:
        """Weights in [0, 1] per dimension for distributing scale-down.

        Only dimensions with comfortable headroom shrink; memory shrinks
        more cautiously (see ``memory_headroom``).
        """
        weights: dict[str, float] = {}
        for name in RESOURCES:
            sat = snapshot.fractions[name]
            if sat <= self.reclaim_threshold:
                weight = 1.0 - sat / self.reclaim_threshold
                if name == "memory":
                    weight *= self.memory_headroom
                weights[name] = weight
            else:
                weights[name] = 0.0
        return weights
