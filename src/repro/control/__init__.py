"""Multi-resource adaptive PID control — the paper's core contribution.

The pipeline per application:

1. :class:`~repro.control.pid.PIDController` turns the normalized PLO
   error into a scalar actuation signal (anti-windup, filtered derivative,
   clamped output).
2. :class:`~repro.control.adaptive.AdaptiveGainTuner` rescales the gains
   online, damping oscillation and accelerating sluggish convergence, so
   one controller works across diverse, drifting workloads.
3. :class:`~repro.control.estimator.BottleneckEstimator` attributes the
   error to specific resource dimensions from per-resource saturation.
4. :class:`~repro.control.multiresource.MultiResourceController` combines
   the three into per-dimension allocation targets.
5. :class:`~repro.control.manager.ControlLoopManager` runs the loop on a
   fixed cadence against the metrics pipeline and actuates applications.

For fault tolerance, :class:`~repro.control.ha.ReplicatedControlPlane`
runs N managers behind lease-based leader election, persisting state via
:class:`~repro.control.statestore.ControllerStateStore`.
"""

from repro.control.pid import PIDController, PIDGains
from repro.control.adaptive import AdaptiveGainTuner
from repro.control.estimator import BottleneckEstimator, SaturationSnapshot
from repro.control.multiresource import (
    AllocationBounds,
    ControlDecision,
    MultiResourceController,
)
from repro.control.manager import ControlLoopManager, ResilienceConfig
from repro.control.feedforward import FeedforwardScaler
from repro.control.statestore import (
    ControllerStateStore,
    StateSnapshot,
    WalRecord,
)
from repro.control.ha import FailoverEvent, ReplicatedControlPlane

__all__ = [
    "ControllerStateStore",
    "FailoverEvent",
    "FeedforwardScaler",
    "ReplicatedControlPlane",
    "StateSnapshot",
    "WalRecord",
    "PIDController",
    "PIDGains",
    "AdaptiveGainTuner",
    "BottleneckEstimator",
    "SaturationSnapshot",
    "MultiResourceController",
    "AllocationBounds",
    "ControlDecision",
    "ControlLoopManager",
    "ResilienceConfig",
]
