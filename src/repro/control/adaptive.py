"""Online gain adaptation.

Fixed PID gains tuned for one workload oscillate on a twitchier one and
crawl on a heavier one. The tuner watches the recent error signal and
rescales the gains between control periods:

* **Oscillation** (frequent error sign flips with meaningful amplitude)
  → multiply the scale down, damping the loop.
* **Sluggishness** (error stuck on one side of the deadband for many
  consecutive periods) → multiply the scale up, accelerating convergence.
* Otherwise the scale relaxes slowly back toward 1.0, so temporary
  adaptations do not become permanent mis-tunings.
"""

from __future__ import annotations

from collections import deque


class AdaptiveGainTuner:
    """Heuristic gain scheduler driven by the error history.

    Parameters
    ----------
    window:
        Number of recent control periods inspected.
    deadband:
        |error| below this is treated as converged (no adaptation
        pressure in either direction).
    oscillation_flips:
        Minimum sign flips within the window to diagnose oscillation.
    sluggish_periods:
        Consecutive same-sign, out-of-deadband periods to diagnose a
        too-slow loop.
    shrink / grow:
        Multiplicative scale adjustments for the two diagnoses.
    bounds:
        Inclusive (min, max) clamp on the scale.
    relax:
        Per-update pull of the scale back toward 1.0 in [0, 1].
    """

    def __init__(
        self,
        *,
        window: int = 8,
        deadband: float = 0.05,
        oscillation_flips: int = 3,
        sluggish_periods: int = 4,
        shrink: float = 0.7,
        grow: float = 1.3,
        bounds: tuple[float, float] = (0.2, 5.0),
        relax: float = 0.02,
    ):
        if window < 2:
            raise ValueError("window must be ≥ 2")
        if not 0 < shrink < 1 or grow <= 1:
            raise ValueError("need 0 < shrink < 1 and grow > 1")
        lo, hi = bounds
        if not 0 < lo <= 1 <= hi:
            raise ValueError("bounds must bracket 1.0 with lo > 0")
        if not 0 <= relax <= 1:
            raise ValueError("relax must be in [0, 1]")
        self.window = window
        self.deadband = deadband
        self.oscillation_flips = oscillation_flips
        self.sluggish_periods = sluggish_periods
        self.shrink = shrink
        self.grow = grow
        self.bounds = (lo, hi)
        self.relax = relax
        self.scale = 1.0
        self._errors: deque[float] = deque(maxlen=window)
        self.oscillation_events = 0
        self.sluggish_events = 0
        #: Diagnosis of the most recent update: "oscillation",
        #: "sluggish", or None (provenance introspection).
        self.last_event: str | None = None

    # -- diagnostics -------------------------------------------------------------

    def _sign_flips(self) -> int:
        """Sign changes among out-of-deadband errors in the window."""
        significant = [e for e in self._errors if abs(e) > self.deadband]
        flips = 0
        for prev, cur in zip(significant, significant[1:]):
            if prev * cur < 0:
                flips += 1
        return flips

    def _sluggish(self) -> bool:
        """True when the last N errors sit on the same side, out of band."""
        if len(self._errors) < self.sluggish_periods:
            return False
        recent = list(self._errors)[-self.sluggish_periods:]
        if any(abs(e) <= self.deadband for e in recent):
            return False
        return all(e > 0 for e in recent) or all(e < 0 for e in recent)

    # -- update ----------------------------------------------------------------------

    def update(self, error: float) -> float:
        """Feed one control-period error; returns the new gain scale."""
        self._errors.append(float(error))
        lo, hi = self.bounds
        if self._sign_flips() >= self.oscillation_flips:
            self.scale *= self.shrink
            self.oscillation_events += 1
            self.last_event = "oscillation"
            self._errors.clear()  # re-observe under the new gains
        elif self._sluggish():
            self.scale *= self.grow
            self.sluggish_events += 1
            self.last_event = "sluggish"
            self._errors.clear()
        else:
            self.scale += (1.0 - self.scale) * self.relax
            self.last_event = None
        self.scale = max(lo, min(hi, self.scale))
        return self.scale

    def reset(self) -> None:
        self.scale = 1.0
        self._errors.clear()

    def export_state(self) -> dict:
        """Durable-snapshot view (controller failover path)."""
        return {
            "scale": self.scale,
            "errors": list(self._errors),
            "oscillation_events": self.oscillation_events,
            "sluggish_events": self.sluggish_events,
        }

    def restore_state(self, state: dict) -> None:
        self.scale = float(state["scale"])
        self._errors.clear()
        self._errors.extend(float(e) for e in state["errors"])
        self.oscillation_events = int(state["oscillation_events"])
        self.sluggish_events = int(state["sluggish_events"])
