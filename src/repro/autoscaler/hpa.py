"""Stock Kubernetes Horizontal Pod Autoscaler baseline.

Implements the documented HPA algorithm: desired replicas scale with the
ratio of observed CPU utilization (usage / request) to the target,
with a tolerance band and a scale-down stabilization window. It is
single-resource and purely horizontal — the two limitations the
multi-resource adaptive controller removes.
"""

from __future__ import annotations

import math

from repro.autoscaler.base import AutoscalerBase
from repro.metrics.collector import MetricsCollector
from repro.sim.engine import Engine
from repro.workloads.base import Application


class HorizontalPodAutoscaler(AutoscalerBase):
    """Threshold-driven horizontal scaler on CPU utilization.

    Parameters
    ----------
    target_utilization:
        Desired usage/request CPU fraction (kube default 0.5–0.8 range).
    tolerance:
        Relative band around the target inside which no action is taken
        (kube default 0.1).
    min_replicas / max_replicas:
        Replica clamp.
    scale_down_stabilization:
        Seconds a lower desired count must persist before shrinking
        (kube default 300 s).
    """

    policy_name = "k8s-hpa"

    def __init__(
        self,
        engine: Engine,
        collector: MetricsCollector,
        *,
        target_utilization: float = 0.6,
        tolerance: float = 0.1,
        min_replicas: int = 1,
        max_replicas: int = 32,
        interval: float = 15.0,
        scale_down_stabilization: float = 300.0,
    ):
        super().__init__(engine, collector, interval=interval)
        if not 0 < target_utilization < 1:
            raise ValueError("target_utilization must be in (0, 1)")
        if tolerance < 0:
            raise ValueError("tolerance must be non-negative")
        if not 1 <= min_replicas <= max_replicas:
            raise ValueError("need 1 ≤ min_replicas ≤ max_replicas")
        self.target_utilization = target_utilization
        self.tolerance = tolerance
        self.min_replicas = min_replicas
        self.max_replicas = max_replicas
        self.scale_down_stabilization = scale_down_stabilization
        # app name -> (pending lower desired count, since-time)
        self._pending_down: dict[str, tuple[int, float]] = {}

    def _observed_utilization(self, app: Application) -> float | None:
        """Mean CPU usage/allocation over the last interval, from metrics."""
        prefix = app.metric_prefix()
        usage = self.collector.window_mean(f"{prefix}/usage/cpu", self.interval)
        alloc = self.collector.latest(f"{prefix}/alloc/cpu")
        if usage is None or alloc is None or alloc <= 0:
            return None
        return usage / alloc

    def reconcile(self, app: Application) -> None:
        utilization = self._observed_utilization(app)
        if utilization is None:
            return
        current = max(1, app.replica_count)
        ratio = utilization / self.target_utilization
        if abs(ratio - 1.0) <= self.tolerance:
            self._pending_down.pop(app.name, None)
            return
        desired = math.ceil(current * ratio)
        desired = max(self.min_replicas, min(self.max_replicas, desired))

        if desired > current:
            self._pending_down.pop(app.name, None)
            app.scale_to(desired)
        elif desired < current:
            now = self.engine.now
            pending = self._pending_down.get(app.name)
            if pending is None or desired > pending[0]:
                # Track the *highest* recommendation within the window, as
                # kube does: scale down only to the max of recent wishes.
                self._pending_down[app.name] = (desired, now)
                return
            since = pending[1]
            if now - since >= self.scale_down_stabilization:
                app.scale_to(pending[0])
                self._pending_down.pop(app.name, None)
