"""The contribution: adaptive multi-resource autoscaler.

Wires one :class:`~repro.control.multiresource.MultiResourceController`
per application into the shared
:class:`~repro.control.manager.ControlLoopManager`, and adds the
*horizontal escape valve*: when vertical scaling rails out at the
per-replica ceiling while still violating, the policy adds a replica
(resetting per-replica allocations so the controller can re-converge);
when the application overachieves with allocations near the floor, it
removes one.

This composition — PLO error in, multi-resource vertical actuation first,
horizontal only at the rails — is what drives both headline results:
fewer violations (error-proportional, bottleneck-directed scaling reacts
in one or two control periods) and higher utilization (reclaim runs
continuously instead of never).
"""

from __future__ import annotations

from repro.control.feedforward import FeedforwardScaler
from repro.control.manager import ControlLoopManager, ResilienceConfig
from repro.control.multiresource import (
    AllocationBounds,
    ControlDecision,
    MultiResourceController,
)
from repro.control.pid import PIDGains
from repro.metrics.collector import MetricsCollector
from repro.sim.engine import Engine
from repro.workloads.base import Application


class HorizontalEscapePolicy:
    """Replica changes when vertical scaling saturates.

    Parameters
    ----------
    min_replicas / max_replicas:
        Replica clamp.
    scale_out_error:
        Minimum PLO error before adding a replica (prevents scale-out on
        marginal violations vertical scaling can still absorb).
    scale_in_error:
        Maximum (negative) error before removing a replica.
    cooldown:
        Seconds between replica changes for one application.
    """

    def __init__(
        self,
        engine: Engine,
        *,
        min_replicas: int = 1,
        max_replicas: int = 32,
        scale_out_error: float = 0.2,
        scale_in_error: float = -0.4,
        cooldown: float = 60.0,
    ):
        if not 1 <= min_replicas <= max_replicas:
            raise ValueError("need 1 ≤ min_replicas ≤ max_replicas")
        if scale_out_error <= 0 or scale_in_error >= 0:
            raise ValueError("scale_out_error > 0 and scale_in_error < 0 required")
        self.engine = engine
        self.min_replicas = min_replicas
        self.max_replicas = max_replicas
        self.scale_out_error = scale_out_error
        self.scale_in_error = scale_in_error
        self.cooldown = cooldown
        self._last_change: dict[str, float] = {}
        self.scale_outs = 0
        self.scale_ins = 0

    def _in_cooldown(self, app_name: str) -> bool:
        last = self._last_change.get(app_name)
        return last is not None and (self.engine.now - last) < self.cooldown

    def adjust(
        self,
        app: Application,
        decision: ControlDecision,
        controller: MultiResourceController,
    ) -> int:
        current = app.replica_count
        if self._in_cooldown(app.name):
            return current
        bounds = controller.bounds
        allocation = app.current_allocation()

        # Scale out: still violating hard, and every bottleneck dimension
        # the controller wanted to grow is already pinned at its ceiling.
        if decision.error >= self.scale_out_error and current < self.max_replicas:
            grow_dims = [d for d, w in decision.weights.items() if w > 0]
            railed = grow_dims and all(
                bounds.at_ceiling(allocation, d) for d in grow_dims
            )
            if railed or decision.action == "grow" and not grow_dims:
                self._last_change[app.name] = self.engine.now
                self.scale_outs += 1
                return current + 1

        # Scale in: comfortably overachieving with allocations near the
        # floor — a whole replica of slack exists.
        if (
            decision.error <= self.scale_in_error
            and current > self.min_replicas
            and bounds.near_floor(allocation)
        ):
            self._last_change[app.name] = self.engine.now
            self.scale_ins += 1
            return current - 1
        return current


class AdaptiveAutoscaler:
    """Facade assembling controllers + manager + escape valve.

    Parameters
    ----------
    gains:
        Default PID gains for newly attached applications.
    bounds:
        Default per-replica allocation clamp.
    adaptive / dimensions:
        Passed to each controller; the ablation switches.
    horizontal:
        Enable the replica escape valve.
    """

    policy_name = "adaptive-multiresource"

    #: The platform refuses to manage PLO-less apps under this policy:
    #: the control loop is error-driven and has no signal without one.
    requires_plo = True

    def __init__(
        self,
        engine: Engine,
        collector: MetricsCollector,
        *,
        bounds: AllocationBounds,
        gains: PIDGains | None = None,
        interval: float = 10.0,
        adaptive: bool = True,
        dimensions: tuple[str, ...] | None = None,
        horizontal: bool = True,
        min_replicas: int = 1,
        max_replicas: int = 32,
        deadband: float = 0.1,
        controller_kwargs: dict | None = None,
        feedforward: bool = False,
        resilience: ResilienceConfig | None = None,
        rng=None,
        fault_log=None,
        overload=None,
    ):
        self.engine = engine
        self.collector = collector
        self.bounds = bounds
        self.gains = gains or PIDGains(kp=0.8, ki=0.08, kd=0.1)
        self.adaptive = adaptive
        self.dimensions = dimensions
        self.deadband = deadband
        self.controller_kwargs = dict(controller_kwargs or {})
        self.feedforward = (
            FeedforwardScaler(collector) if feedforward else None
        )
        self.manager = ControlLoopManager(
            engine, collector, interval=interval, resilience=resilience,
            rng=rng, fault_log=fault_log, overload=overload,
        )
        self.escape = (
            HorizontalEscapePolicy(
                engine, min_replicas=min_replicas, max_replicas=max_replicas
            )
            if horizontal
            else None
        )
        self.controllers: dict[str, MultiResourceController] = {}

    def attach(self, app: Application) -> MultiResourceController:
        """Create a controller for ``app`` and register it with the loop."""
        kwargs = dict(self.controller_kwargs)
        if self.dimensions is not None:
            kwargs["dimensions"] = self.dimensions
        controller = MultiResourceController(
            self.gains,
            self.bounds,
            deadband=self.deadband,
            adaptive=self.adaptive,
            **kwargs,
        )
        self.controllers[app.name] = controller
        self.manager.register(
            app, controller, horizontal=self.escape,
            feedforward=self.feedforward,
        )
        return controller

    def detach(self, app: Application) -> None:
        """Release ``app`` from management (idempotent)."""
        self.controllers.pop(app.name, None)
        self.manager.unregister(app.name)

    def start(self) -> None:
        self.manager.start()

    def stop(self) -> None:
        self.manager.stop()
