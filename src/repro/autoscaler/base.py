"""Shared periodic-loop base for autoscaling policies."""

from __future__ import annotations

from repro.cluster.api import ActuationError
from repro.metrics.collector import MetricsCollector
from repro.sim.engine import Engine, PeriodicHandle
from repro.workloads.base import Application


class AutoscalerBase:
    """Base class: a named policy ticking at a fixed interval.

    Subclasses implement :meth:`reconcile`, called once per interval with
    each attached application.
    """

    #: Policy name used in reports.
    policy_name = "base"

    def __init__(
        self,
        engine: Engine,
        collector: MetricsCollector,
        *,
        interval: float = 15.0,
    ):
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.engine = engine
        self.collector = collector
        self.interval = interval
        self._apps: list[Application] = []
        self._handle: PeriodicHandle | None = None
        self.reconciles = 0
        self.actuation_failures = 0

    def attach(self, app: Application) -> None:
        """Put ``app`` under this policy's management."""
        if app in self._apps:
            raise ValueError(f"application {app.name!r} already attached")
        self._apps.append(app)

    def detach(self, app: Application) -> None:
        try:
            self._apps.remove(app)
        except ValueError:
            pass

    def start(self) -> None:
        if self._handle is not None:
            raise RuntimeError("autoscaler already started")
        self._handle = self.engine.every(self.interval, self._loop, priority=5)

    def stop(self) -> None:
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    def _loop(self) -> None:
        self.reconciles += 1
        for app in list(self._apps):
            if not app.finished:
                try:
                    self.reconcile(app)
                except ActuationError:
                    # Transient actuation fault: the periodic loop itself
                    # is the retry mechanism — next interval re-decides
                    # from fresh observations.
                    self.actuation_failures += 1

    def reconcile(self, app: Application) -> None:
        """Apply the policy to one application. Override."""
        raise NotImplementedError
