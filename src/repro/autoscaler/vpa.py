"""Vertical Pod Autoscaler baseline.

Recommends per-replica allocations as a high percentile of recent usage
plus a safety margin, per resource — the VPA recommender model. Vertical
only and driven by *usage*, not by the objective: when the application is
throttled at its allocation ceiling, observed usage equals the ceiling and
the percentile recommendation grows only by the margin factor per period,
which is exactly the slow-recovery failure mode the adaptive controller's
error-proportional actuation avoids.
"""

from __future__ import annotations

from repro.autoscaler.base import AutoscalerBase
from repro.cluster.resources import RESOURCES, ResourceVector
from repro.control.multiresource import AllocationBounds
from repro.metrics.collector import MetricsCollector
from repro.sim.engine import Engine
from repro.workloads.base import Application


class VerticalPodAutoscaler(AutoscalerBase):
    """Percentile-of-usage vertical recommender.

    Parameters
    ----------
    bounds:
        Per-replica recommendation clamp.
    percentile:
        Usage percentile the recommendation tracks (VPA default ~p90).
    margin:
        Multiplicative safety margin over the percentile (VPA ~1.15).
    history_window:
        Seconds of usage history per recommendation.
    change_threshold:
        Minimum relative change per dimension before a resize is issued
        (suppresses churn from noisy usage).
    """

    policy_name = "vpa"

    def __init__(
        self,
        engine: Engine,
        collector: MetricsCollector,
        *,
        bounds: AllocationBounds,
        percentile: float = 90.0,
        margin: float = 1.15,
        history_window: float = 300.0,
        change_threshold: float = 0.1,
        interval: float = 60.0,
    ):
        super().__init__(engine, collector, interval=interval)
        if not 0 < percentile <= 100:
            raise ValueError("percentile must be in (0, 100]")
        if margin < 1:
            raise ValueError("margin must be ≥ 1")
        if change_threshold < 0:
            raise ValueError("change_threshold must be non-negative")
        self.bounds = bounds
        self.percentile = percentile
        self.margin = margin
        self.history_window = history_window
        self.change_threshold = change_threshold
        self.resizes = 0

    def recommend(self, app: Application) -> ResourceVector | None:
        """Current recommendation from the usage history, or None."""
        prefix = app.metric_prefix()
        replicas = max(1, len(app.running_pods()))
        values: dict[str, float] = {}
        for name in RESOURCES:
            observed = self.collector.window_percentile(
                f"{prefix}/usage/{name}", self.history_window, self.percentile
            )
            if observed is None:
                return None
            # The series is app-aggregate usage; recommend per replica.
            values[name] = (observed / replicas) * self.margin
        return self.bounds.clamp(ResourceVector.from_dict(values))

    def _materially_different(
        self, current: ResourceVector, proposed: ResourceVector
    ) -> bool:
        for name in RESOURCES:
            base = current[name]
            if base <= 0:
                if proposed[name] > 0:
                    return True
                continue
            if abs(proposed[name] - base) / base > self.change_threshold:
                return True
        return False

    def reconcile(self, app: Application) -> None:
        recommendation = self.recommend(app)
        if recommendation is None:
            return
        current = app.current_allocation()
        if self._materially_different(current, recommendation):
            app.set_target_allocation(recommendation)
            self.resizes += 1
