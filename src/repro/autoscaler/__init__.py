"""Autoscaling policies: the evaluated baselines and the contribution.

* :class:`~repro.autoscaler.static.StaticPolicy` — user over-provisioning,
  the implicit Kubernetes default.
* :class:`~repro.autoscaler.hpa.HorizontalPodAutoscaler` — the stock
  threshold-based HPA on CPU utilization.
* :class:`~repro.autoscaler.vpa.VerticalPodAutoscaler` — percentile-based
  request recommendation, VPA-style.
* :class:`~repro.autoscaler.adaptive.AdaptiveAutoscaler` — the paper's
  multi-resource adaptive PID controller with a horizontal escape valve.
"""

from repro.autoscaler.base import AutoscalerBase
from repro.autoscaler.static import StaticPolicy
from repro.autoscaler.hpa import HorizontalPodAutoscaler
from repro.autoscaler.vpa import VerticalPodAutoscaler
from repro.autoscaler.adaptive import AdaptiveAutoscaler, HorizontalEscapePolicy

__all__ = [
    "AutoscalerBase",
    "StaticPolicy",
    "HorizontalPodAutoscaler",
    "VerticalPodAutoscaler",
    "AdaptiveAutoscaler",
    "HorizontalEscapePolicy",
]
