"""Autoscaling policies: the evaluated baselines and the contribution.

* :class:`~repro.autoscaler.static.StaticPolicy` — user over-provisioning,
  the implicit Kubernetes default.
* :class:`~repro.autoscaler.hpa.HorizontalPodAutoscaler` — the stock
  threshold-based HPA on CPU utilization.
* :class:`~repro.autoscaler.vpa.VerticalPodAutoscaler` — percentile-based
  request recommendation, VPA-style.
* :class:`~repro.autoscaler.adaptive.AdaptiveAutoscaler` — the paper's
  multi-resource adaptive PID controller with a horizontal escape valve.

All four are registered with the pluggable policy registry
(:mod:`repro.autoscaler.registry`); new policies join the platform, the
CLI, and the arena by registering a factory — see ``docs/arena.md``.
"""

from repro.autoscaler.base import AutoscalerBase
from repro.autoscaler.registry import (
    AutoscalerPolicy,
    PolicyContext,
    PolicyInterfaceError,
    UnknownPolicyError,
    build_policy,
    register_policy,
    registered_policies,
)
from repro.autoscaler.static import StaticPolicy
from repro.autoscaler.hpa import HorizontalPodAutoscaler
from repro.autoscaler.vpa import VerticalPodAutoscaler
from repro.autoscaler.adaptive import AdaptiveAutoscaler, HorizontalEscapePolicy

__all__ = [
    "AutoscalerBase",
    "AutoscalerPolicy",
    "PolicyContext",
    "PolicyInterfaceError",
    "UnknownPolicyError",
    "StaticPolicy",
    "HorizontalPodAutoscaler",
    "VerticalPodAutoscaler",
    "AdaptiveAutoscaler",
    "HorizontalEscapePolicy",
    "build_policy",
    "register_policy",
    "registered_policies",
]
