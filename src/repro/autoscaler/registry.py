"""Pluggable autoscaler-policy registry.

Policies are decoupled from the platform and the control loop: anything
implementing the :class:`AutoscalerPolicy` protocol can be registered
under a name and selected with ``EvolvePlatform(policy="<name>")``, the
``repro`` CLI, config files, and the arena harness (``repro arena``).

Registering a policy::

    from repro.autoscaler.registry import register_policy

    @register_policy("my-policy")
    def _build(ctx, **kwargs):
        return MyPolicy(ctx.engine, ctx.collector, **kwargs)

The factory receives a :class:`PolicyContext` carrying every platform
handle a policy may need (engine, collector, allocation bounds, named
RNG streams, fault log, overload config). Factories must draw RNG only
through ``ctx.rng_stream(name)`` — streams are derived from the stream
name, not creation order, so seeded runs stay bit-identical no matter
how many policies are registered.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Protocol, runtime_checkable

if TYPE_CHECKING:  # imports for annotations only; keep runtime deps thin
    from repro.cluster.chaos import FaultLog
    from repro.control.multiresource import AllocationBounds
    from repro.metrics.collector import MetricsCollector
    from repro.platform.config import OverloadConfig
    from repro.sim.engine import Engine
    from repro.workloads.base import Application


@runtime_checkable
class AutoscalerPolicy(Protocol):
    """The contract every registered policy must satisfy.

    A policy manages a set of attached applications and actuates them
    exclusively through the application-level verbs
    (:meth:`Application.scale_to` / :meth:`Application.set_target_allocation`)
    or the cluster API — never by mutating cluster state directly.
    """

    #: Human-readable name used in reports and scorecards.
    policy_name: str

    def attach(self, app: "Application") -> None:
        """Put ``app`` under this policy's management."""
        ...

    def detach(self, app: "Application") -> None:
        """Release ``app`` from management (idempotent)."""
        ...

    def start(self) -> None:
        """Begin the periodic reconcile loop."""
        ...

    def stop(self) -> None:
        """Cancel the reconcile loop (safe to call when not started)."""
        ...


@dataclass(frozen=True)
class PolicyContext:
    """Platform handles handed to policy factories at build time.

    One context per platform; factories pick what they need and ignore
    the rest. ``rng_stream`` is the *only* sanctioned randomness source:
    it returns a named child generator whose seed derives from the
    stream name, keeping seeded runs bit-identical across policies.
    """

    engine: "Engine"
    collector: "MetricsCollector"
    bounds: "AllocationBounds"
    control_interval: float
    rng_stream: Callable[[str], Any]
    fault_log: "FaultLog"
    overload: "OverloadConfig"


class UnknownPolicyError(ValueError):
    """Raised when a policy name is not in the registry.

    Subclasses :class:`ValueError` so pre-registry callers that caught
    ``ValueError`` keep working; the message lists every registered
    policy so misconfiguration is diagnosable at the call site instead
    of surfacing as an attribute error deep in the control loop.
    """

    def __init__(self, name: str, registered: tuple[str, ...]):
        self.name = name
        self.registered = registered
        super().__init__(
            f"unknown policy {name!r}; registered policies: "
            + ", ".join(repr(p) for p in registered)
        )


class PolicyInterfaceError(TypeError):
    """Raised when a factory returns an object missing the protocol."""

    def __init__(self, name: str, missing: tuple[str, ...]):
        self.policy = name
        self.missing = missing
        super().__init__(
            f"policy {name!r} does not satisfy AutoscalerPolicy: "
            f"missing {', '.join(missing)}"
        )


#: Factory signature: ``factory(ctx, **kwargs) -> AutoscalerPolicy``.
PolicyFactory = Callable[..., AutoscalerPolicy]

_REGISTRY: dict[str, PolicyFactory] = {}

#: Attributes checked on every built policy before it is handed out.
_REQUIRED_ATTRS = ("policy_name", "attach", "detach", "start", "stop")


def register_policy(name: str) -> Callable[[PolicyFactory], PolicyFactory]:
    """Decorator: register ``factory`` under ``name``.

    Names are unique; re-registering an existing name is an error so a
    typo cannot silently shadow a built-in policy.
    """
    if not name or not isinstance(name, str):
        raise ValueError("policy name must be a non-empty string")

    def decorator(factory: PolicyFactory) -> PolicyFactory:
        if name in _REGISTRY:
            raise ValueError(f"policy {name!r} is already registered")
        _REGISTRY[name] = factory
        return factory

    return decorator


def registered_policies() -> tuple[str, ...]:
    """All registered policy names, in registration order."""
    return tuple(_REGISTRY)


def build_policy(name: str, ctx: PolicyContext, **kwargs) -> AutoscalerPolicy:
    """Build the policy registered under ``name``.

    Raises :class:`UnknownPolicyError` for unregistered names and
    :class:`PolicyInterfaceError` when the factory's product does not
    implement the :class:`AutoscalerPolicy` protocol.
    """
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise UnknownPolicyError(name, registered_policies()) from None
    policy = factory(ctx, **kwargs)
    missing = tuple(
        attr for attr in _REQUIRED_ATTRS if not hasattr(policy, attr)
    )
    if missing:
        raise PolicyInterfaceError(name, missing)
    return policy


# -- built-in policies --------------------------------------------------------
#
# Construction mirrors the pre-registry EvolvePlatform._build_policy
# exactly (same constructor arguments, same RNG stream names) so seeded
# runs are bit-identical across the refactor.


@register_policy("static")
def _build_static(ctx: PolicyContext, **kwargs) -> AutoscalerPolicy:
    from repro.autoscaler.static import StaticPolicy

    return StaticPolicy(ctx.engine, ctx.collector, **kwargs)


@register_policy("hpa")
def _build_hpa(ctx: PolicyContext, **kwargs) -> AutoscalerPolicy:
    from repro.autoscaler.hpa import HorizontalPodAutoscaler

    return HorizontalPodAutoscaler(ctx.engine, ctx.collector, **kwargs)


@register_policy("vpa")
def _build_vpa(ctx: PolicyContext, **kwargs) -> AutoscalerPolicy:
    from repro.autoscaler.vpa import VerticalPodAutoscaler

    return VerticalPodAutoscaler(
        ctx.engine, ctx.collector, bounds=ctx.bounds, **kwargs
    )


@register_policy("adaptive")
def _build_adaptive(ctx: PolicyContext, **kwargs) -> AutoscalerPolicy:
    from repro.autoscaler.adaptive import AdaptiveAutoscaler

    kwargs.setdefault("rng", ctx.rng_stream("control/jitter"))
    kwargs.setdefault("fault_log", ctx.fault_log)
    kwargs.setdefault("overload", ctx.overload)
    return AdaptiveAutoscaler(
        ctx.engine,
        ctx.collector,
        bounds=ctx.bounds,
        interval=ctx.control_interval,
        **kwargs,
    )
