"""Static over-provisioning baseline.

Models the Kubernetes status quo the paper argues against: the user sizes
requests once (usually for peak load plus a safety margin) and the
platform never adjusts them. The policy exists so every experiment runs
the same harness for every policy; its reconcile is a no-op.
"""

from __future__ import annotations

from repro.autoscaler.base import AutoscalerBase
from repro.workloads.base import Application


class StaticPolicy(AutoscalerBase):
    """Never changes allocations or replica counts."""

    policy_name = "static"

    def reconcile(self, app: Application) -> None:
        """Deliberately does nothing."""
