"""Data-plane fault-tolerance configuration.

One frozen knob bundle shared by the three data-plane recovery
mechanisms: the :class:`~repro.workloads.bigdata.BigDataJob` task
engine (lineage recompute, speculative execution, retry budgets), the
:class:`~repro.workloads.stream.StreamJob` checkpoint/replay path, and
the :class:`~repro.storage.repair.StorageRepairService` re-replication
loop.  This module is a dependency leaf — workloads, storage, and the
platform all import it without cycles.

Discipline (same as ``OverloadConfig``): every feature defaults *off*,
and with ``enabled=False`` seeded runs are bit-identical to a build
without this module — no extra RNG draws, no extra engine events, no
changed metric streams.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class DataPlaneConfig:
    """Knobs for data-plane fault tolerance. Frozen; safe to share."""

    #: Master switch. Off → fluid big-data model, no stream checkpoints,
    #: no storage repair, liveness-blind locality (seed behaviour).
    enabled: bool = False

    # -- BigDataJob task engine ------------------------------------------------
    #: Re-open completed upstream tasks whose output node went dark.
    lineage: bool = True
    #: Launch duplicate copies of straggler-held tasks (first finish wins).
    speculation: bool = True
    #: An executor is a straggler when its retired-work rate stays below
    #: ``straggler_factor`` × the stage median rate…
    straggler_factor: float = 0.5
    #: …for this many consecutive ticks.
    straggler_patience: int = 3
    #: Speculate only once this fraction of the stage's tasks are done
    #: (tail phase), mirroring the classic speculative-execution gate.
    speculation_quantile: float = 0.5
    #: Fault-driven re-opens a stage tolerates before the job is failed
    #: with a poison-stage quarantine.
    stage_max_attempts: int = 4
    #: Exponential re-dispatch backoff after a fault: base · 2^(attempt−1),
    #: capped.
    retry_backoff_base: float = 5.0
    retry_backoff_cap: float = 120.0

    # -- StreamJob checkpoints -------------------------------------------------
    #: Seconds between checkpoint barriers.
    checkpoint_interval: float = 30.0
    #: Seconds a restarted operator spends restoring state before it
    #: processes events again (replayed backlog accrues meanwhile).
    restore_delay: float = 5.0

    # -- ObjectStore repair ----------------------------------------------------
    #: Run the background re-replication loop.
    repair: bool = True
    #: Seconds between repair scans.
    repair_interval: float = 15.0
    #: Repair copy bandwidth; each scan moves at most
    #: ``repair_bandwidth_mbps × repair_interval`` MB (the last object may
    #: overshoot and borrow from the next scan's budget).
    repair_bandwidth_mbps: float = 200.0

    def __post_init__(self) -> None:
        if not 0.0 < self.straggler_factor < 1.0:
            raise ValueError("straggler_factor must be in (0, 1)")
        if self.straggler_patience < 1:
            raise ValueError("straggler_patience must be >= 1")
        if not 0.0 <= self.speculation_quantile <= 1.0:
            raise ValueError("speculation_quantile must be in [0, 1]")
        if self.stage_max_attempts < 1:
            raise ValueError("stage_max_attempts must be >= 1")
        if self.retry_backoff_base <= 0 or self.retry_backoff_cap <= 0:
            raise ValueError("retry backoff parameters must be positive")
        if self.checkpoint_interval <= 0:
            raise ValueError("checkpoint_interval must be positive")
        if self.restore_delay < 0:
            raise ValueError("restore_delay must be >= 0")
        if self.repair_interval <= 0:
            raise ValueError("repair_interval must be positive")
        if self.repair_bandwidth_mbps <= 0:
            raise ValueError("repair_bandwidth_mbps must be positive")

    def backoff(self, attempt: int) -> float:
        """Re-dispatch delay after the ``attempt``-th fault (1-based)."""
        return min(
            self.retry_backoff_cap,
            self.retry_backoff_base * (2.0 ** max(0, attempt - 1)),
        )
