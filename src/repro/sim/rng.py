"""Seeded random-number streams.

Every stochastic component draws from its own named stream, derived from a
single experiment seed. Streams are independent of creation order: the
stream named ``"workload/frontend"`` is the same whether it is requested
first or last, which keeps experiments reproducible as the codebase grows.
"""

from __future__ import annotations

import zlib

import numpy as np


class RngRegistry:
    """Registry of named, independently-seeded numpy Generators.

    Parameters
    ----------
    seed:
        Root seed for the experiment. Two registries with the same seed
        hand out identical streams for identical names.
    """

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        self._streams: dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return the Generator for ``name``, creating it on first use.

        The child seed is derived from the root seed and a stable hash of
        the name (CRC32), so it does not depend on Python's randomized
        string hashing or on creation order.
        """
        if name not in self._streams:
            child = np.random.SeedSequence(
                entropy=self.seed, spawn_key=(zlib.crc32(name.encode("utf-8")),)
            )
            self._streams[name] = np.random.Generator(np.random.PCG64(child))
        return self._streams[name]

    def fork(self, sub_seed: int) -> "RngRegistry":
        """Derive a registry for a sub-experiment (e.g. one sweep point)."""
        return RngRegistry(seed=(self.seed * 1_000_003 + int(sub_seed)) & 0x7FFFFFFF)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"RngRegistry(seed={self.seed}, streams={sorted(self._streams)})"
