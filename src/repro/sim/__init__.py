"""Discrete-event simulation core.

This package provides the clock and event machinery every other subsystem
is built on: an event-heap engine (:class:`~repro.sim.engine.Engine`),
cancellable and periodic events, and seeded random-number streams
(:class:`~repro.sim.rng.RngRegistry`) so that every experiment in the
repository is deterministic given its seed.
"""

from repro.sim.engine import (
    Engine,
    EventHandle,
    PeriodicHandle,
    SimulationError,
    Watchdog,
)
from repro.sim.rng import RngRegistry

__all__ = [
    "Engine",
    "EventHandle",
    "PeriodicHandle",
    "RngRegistry",
    "SimulationError",
    "Watchdog",
]
