"""Event-heap discrete-event simulation engine.

The engine keeps a priority queue of timestamped callbacks. Components
schedule work with :meth:`Engine.schedule` (relative delay) or
:meth:`Engine.schedule_at` (absolute time) and the engine executes
callbacks in time order. Ties are broken first by an explicit integer
priority (lower runs first) and then by insertion order, which makes runs
fully deterministic.

Simulated time is a float in **seconds**. There is no wall-clock coupling:
a 24-hour experiment runs as fast as its callbacks allow.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable


class SimulationError(RuntimeError):
    """Raised for invalid engine operations (e.g. scheduling in the past)."""


class EventHandle:
    """Handle to a scheduled event, allowing cancellation.

    Cancellation is lazy: the heap entry stays in place but is skipped when
    popped. ``cancelled`` and ``executed`` let callers inspect state. The
    owning engine keeps a live-event counter and a cancelled-entry counter
    so :meth:`Engine.pending_count` is O(1) and heavy cancellation churn
    (watchdog feeds, retry backoff) triggers heap compaction instead of
    unbounded growth.
    """

    __slots__ = ("time", "priority", "callback", "cancelled", "executed",
                 "_engine")

    def __init__(
        self,
        time: float,
        priority: int,
        callback: Callable[[], None],
        engine: "Engine | None" = None,
    ):
        self.time = time
        self.priority = priority
        self.callback = callback
        self.cancelled = False
        self.executed = False
        self._engine = engine

    def cancel(self) -> None:
        """Prevent the event from running. Safe to call more than once."""
        if self.cancelled:
            return
        self.cancelled = True
        if not self.executed and self._engine is not None:
            self._engine._note_cancellation()

    @property
    def pending(self) -> bool:
        """True while the event is still scheduled to run."""
        return not self.cancelled and not self.executed

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = (
            "cancelled"
            if self.cancelled
            else ("done" if self.executed else "pending")
        )
        return f"EventHandle(t={self.time:.6g}, prio={self.priority}, {state})"


class PeriodicHandle:
    """Handle to a repeating event; cancelling stops future firings."""

    __slots__ = ("interval", "_engine", "_current", "cancelled", "fired")

    def __init__(self, engine: "Engine", interval: float):
        self.interval = interval
        self._engine = engine
        self._current: EventHandle | None = None
        self.cancelled = False
        self.fired = 0

    def cancel(self) -> None:
        """Stop the periodic event after any currently-executing firing."""
        self.cancelled = True
        if self._current is not None:
            self._current.cancel()


class Watchdog:
    """A feedable deadline timer: fires unless fed before the timeout.

    The lease-timer primitive of the replicated control plane: a leader
    arms a watchdog with its lease TTL and feeds it on every successful
    renewal; if renewals stop (crash, partition), the watchdog fires at
    exactly the moment the lease becomes stealable and the callback can
    self-fence *before* a rival leader can acquire it. Also usable for
    any "expected heartbeat" pattern.

    The callback fires at most once per arm; :meth:`feed` re-arms it.
    """

    __slots__ = ("timeout", "callback", "_engine", "_handle", "expirations")

    def __init__(self, engine: "Engine", timeout: float, callback: Callable[[], None]):
        if timeout <= 0:
            raise SimulationError(f"watchdog timeout must be positive, got {timeout!r}")
        self.timeout = timeout
        self.callback = callback
        self._engine = engine
        self._handle: EventHandle | None = None
        self.expirations = 0

    @property
    def armed(self) -> bool:
        return self._handle is not None and self._handle.pending

    def start(self) -> None:
        """Arm the watchdog (equivalent to an initial feed)."""
        self.feed()

    def feed(self) -> None:
        """Push the deadline out to ``now + timeout``."""
        if self._handle is not None:
            self._handle.cancel()
        # Priority -1: at an exact deadline tie, the expiry (and its
        # self-fencing side effects) runs before same-tick consumers.
        self._handle = self._engine.schedule(
            self.timeout, self._expire, priority=-1
        )

    def cancel(self) -> None:
        """Disarm without firing."""
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    def _expire(self) -> None:
        self._handle = None
        self.expirations += 1
        self.callback()


class Engine:
    """Discrete-event engine with deterministic execution order.

    Parameters
    ----------
    start_time:
        Initial simulated time (seconds). Defaults to 0.
    """

    #: Lazy-cancel compaction thresholds: rebuild the heap once at least
    #: ``_COMPACT_MIN`` cancelled entries linger AND they outnumber the
    #: live ones. Amortized O(1) per cancellation, bounds the heap at
    #: ~2× the live event count.
    _COMPACT_MIN = 64

    def __init__(self, start_time: float = 0.0):
        self._now = float(start_time)
        self._heap: list[tuple[float, int, int, EventHandle]] = []
        self._counter = itertools.count()
        self._running = False
        self.events_executed = 0
        # Live (scheduled, neither executed nor cancelled) events, kept
        # exact so pending_count() is O(1).
        self._live = 0
        # Cancelled entries still sitting in the heap (lazy cancellation).
        self._cancelled_in_heap = 0
        #: Number of lazy-cancel heap compactions performed (observability).
        self.heap_compactions = 0
        # Observer hooks invoked at every timestamp boundary (see
        # add_cycle_hook). Empty-list truthiness is the only cost on the
        # hot path when nobody is watching.
        self._cycle_hooks: list[Callable[[], None]] = []

    def _note_cancellation(self) -> None:
        """Bookkeeping hook called by :meth:`EventHandle.cancel`."""
        self._live -= 1
        self._cancelled_in_heap += 1
        if (
            self._cancelled_in_heap >= self._COMPACT_MIN
            and self._cancelled_in_heap * 2 > len(self._heap)
        ):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries and re-heapify.

        Safe for determinism: heap entries are totally ordered by their
        unique ``(time, priority, seq)`` key, so any valid heap over the
        surviving entries pops in the identical order. The rebuild is done
        in place (slice assignment, not rebinding) so outstanding
        references to the heap list stay valid.
        """
        self._heap[:] = [entry for entry in self._heap if not entry[3].cancelled]
        heapq.heapify(self._heap)
        self._cancelled_in_heap = 0
        self.heap_compactions += 1

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def schedule(
        self,
        delay: float,
        callback: Callable[[], None],
        *,
        priority: int = 0,
    ) -> EventHandle:
        """Schedule ``callback`` to run ``delay`` seconds from now.

        ``delay`` must be non-negative. Returns a cancellable handle.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule with negative delay {delay!r}")
        return self.schedule_at(self._now + delay, callback, priority=priority)

    def schedule_at(
        self,
        time: float,
        callback: Callable[[], None],
        *,
        priority: int = 0,
    ) -> EventHandle:
        """Schedule ``callback`` at absolute simulated ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time!r}, which is before now={self._now!r}"
            )
        handle = EventHandle(time, priority, callback, self)
        heapq.heappush(self._heap, (time, priority, next(self._counter), handle))
        self._live += 1
        return handle

    def every(
        self,
        interval: float,
        callback: Callable[[], None],
        *,
        start: float | None = None,
        priority: int = 0,
    ) -> PeriodicHandle:
        """Run ``callback`` every ``interval`` seconds.

        The first firing happens at ``start`` (absolute time, default
        ``now + interval``). Returns a handle whose :meth:`~PeriodicHandle.cancel`
        stops future firings.
        """
        if interval <= 0:
            raise SimulationError(
                f"periodic interval must be positive, got {interval!r}"
            )
        periodic = PeriodicHandle(self, interval)
        first = self._now + interval if start is None else start
        # Rescheduling is inlined (no schedule_at frame or validity check
        # per firing): the next deadline is always now + interval ≥ now.
        # Push onto self._heap — never a captured alias — so the closure
        # survives any heap rebuild done by _compact().
        counter = self._counter

        def fire() -> None:
            if periodic.cancelled:
                return
            periodic.fired += 1
            callback()
            if not periodic.cancelled:
                handle = EventHandle(self._now + interval, priority, fire, self)
                heapq.heappush(
                    self._heap, (handle.time, priority, next(counter), handle)
                )
                self._live += 1
                periodic._current = handle

        periodic._current = self.schedule_at(first, fire, priority=priority)
        return periodic

    def peek(self) -> float | None:
        """Time of the next pending event, or None if the heap is empty."""
        heap = self._heap
        while heap:
            entry = heap[0]
            if entry[3].cancelled:
                heapq.heappop(heap)
                self._cancelled_in_heap -= 1
                continue
            return entry[0]
        return None

    def add_cycle_hook(self, hook: Callable[[], None]) -> None:
        """Register an observer called at every timestamp boundary.

        Hooks run just before the engine advances ``now`` to a strictly
        later timestamp — i.e. when every event at the current time has
        executed and the cluster is quiescent. They are the checkpoint
        used by the invariant checker (:mod:`repro.verify`).

        Hooks MUST be read-only with respect to the simulation: no
        scheduling, no cancellation, no RNG draws. A hook that mutates
        the heap mid-step has undefined behaviour; observation-only
        hooks keep seeded runs bit-identical with hooks on or off.
        """
        self._cycle_hooks.append(hook)

    def remove_cycle_hook(self, hook: Callable[[], None]) -> None:
        """Unregister a cycle hook; unknown hooks are ignored."""
        try:
            self._cycle_hooks.remove(hook)
        except ValueError:
            pass

    def audit_heap(self) -> tuple[int, int]:
        """Count (live, cancelled) entries actually present in the heap.

        O(heap) introspection for integrity checks: the live count must
        equal :meth:`pending_count` and the cancelled count must equal
        the lazy-cancellation counter. A mismatch means an event was
        pushed onto a stale heap alias (lost across a compaction) or the
        bookkeeping drifted.
        """
        live = 0
        cancelled = 0
        for entry in self._heap:
            if entry[3].cancelled:
                cancelled += 1
            else:
                live += 1
        return live, cancelled

    @property
    def cancelled_in_heap(self) -> int:
        """Cancelled entries the heap still carries (lazy cancellation)."""
        return self._cancelled_in_heap

    def step(self) -> bool:
        """Execute the next pending event. Returns False if none remain."""
        heap = self._heap
        pop = heapq.heappop
        while heap:
            entry = heap[0]
            handle = entry[3]
            if handle.cancelled:
                pop(heap)
                self._cancelled_in_heap -= 1
                continue
            if self._cycle_hooks and entry[0] > self._now:
                # Quiescent boundary: everything at the current timestamp
                # has run and the clock is about to advance.
                for hook in tuple(self._cycle_hooks):
                    hook()
            pop(heap)
            self._now = entry[0]
            handle.executed = True
            self._live -= 1
            handle.callback()
            self.events_executed += 1
            return True
        return False

    def run_until(self, end_time: float) -> None:
        """Run events until simulated time reaches ``end_time``.

        Events scheduled exactly at ``end_time`` are executed. The clock is
        left at ``end_time`` even if the heap drains early, so periodic
        consumers observe a consistent horizon.
        """
        if end_time < self._now:
            raise SimulationError(
                f"end_time {end_time!r} is before current time {self._now!r}"
            )
        self._running = True
        try:
            while self._running:
                nxt = self.peek()
                if nxt is None or nxt > end_time:
                    break
                self.step()
        finally:
            self._running = False
        self._now = max(self._now, end_time)

    def run(self, max_events: int | None = None) -> int:
        """Run until the event heap drains (or ``max_events`` executed).

        Returns the number of events executed by this call.
        """
        executed = 0
        self._running = True
        try:
            while self._running:
                if max_events is not None and executed >= max_events:
                    break
                if not self.step():
                    break
                executed += 1
        finally:
            self._running = False
        return executed

    def stop(self) -> None:
        """Stop a run in progress after the current event completes."""
        self._running = False

    def pending_count(self) -> int:
        """Number of not-yet-cancelled events still in the heap. O(1)."""
        return self._live

    def heap_size(self) -> int:
        """Raw heap length including lazily-cancelled entries (testing)."""
        return len(self._heap)
