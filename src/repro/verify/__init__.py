"""Simulation correctness harness: invariants + scenario fuzzing.

``repro.verify`` turns the platform's safety properties into
machine-checked contracts:

* :mod:`repro.verify.invariants` — a registry of cluster-wide safety
  invariants (resource conservation, no double-bind, gang atomicity,
  single lease holder, WAL discipline, event-heap integrity, load-shed
  conservation) evaluated at engine timestamp boundaries through
  :meth:`repro.sim.engine.Engine.add_cycle_hook`.
* :mod:`repro.verify.fuzzer` — a seeded scenario fuzzer that composes
  workload mixes, chaos schedules, and controller configs into short
  episodes, and shrinks any violating scenario to a minimal replayable
  JSON repro (``repro fuzz``).

This module intentionally does not import the fuzzer: the fuzzer pulls
in :mod:`repro.platform.evolve`, which itself attaches an
:class:`~repro.verify.invariants.InvariantChecker` when asked to, and
the one-way dependency keeps imports acyclic.
"""

from repro.verify.invariants import (
    CheckContext,
    Invariant,
    InvariantChecker,
    InvariantViolation,
    Violation,
    default_invariants,
)

__all__ = [
    "CheckContext",
    "Invariant",
    "InvariantChecker",
    "InvariantViolation",
    "Violation",
    "default_invariants",
]
