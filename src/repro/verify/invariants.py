"""Cluster-wide safety invariants, checked at engine cycle boundaries.

Every invariant is a small read-only auditor over the live simulation
state. The :class:`InvariantChecker` registers itself as an engine cycle
hook (:meth:`repro.sim.engine.Engine.add_cycle_hook`), so checks run at
*quiescent* timestamp boundaries — after every event at the current time
has executed, before the clock advances — where the platform's safety
properties must hold:

* **resource-conservation** — per node, the tracked allocation equals the
  sum of bound pod allocations, fits within allocatable capacity, and is
  never negative; every bound pod is in an active phase.
* **no-double-bind** — a pod occupies at most one node, its recorded
  ``node_name`` matches the node that holds it, pending pods hold no
  node resources, and the pending queue contains only pending pods.
* **gang-atomicity** — a gang is never *partially* scheduled by the
  scheduler: at a cycle boundary its members are all-pending, all-bound,
  or the gang was degraded by a fault (eviction) and is healing.
* **lease-discipline** — at most one control-plane replica holds leader
  duties at a time, and lease generations are strictly increasing with a
  unique holder per generation (the fencing-token contract).
* **wal-discipline** — WAL sequence numbers are strictly increasing,
  durability timestamps never precede the write, snapshots reference
  only logged WAL positions, and failover replay accounting balances
  (``deduped + reissued + failed ≤ replayed``). The strong WAL-replay
  idempotence property (a second replay deduplicates everything) is
  exercised end-to-end in ``tests/verify``.
* **heap-integrity** — simulated time is monotonic and the engine's O(1)
  pending/cancelled counters agree with an O(heap) audit of the real
  heap, which catches events pushed onto a stale heap alias (the PR 4
  compaction bug) the moment they are orphaned.
* **shed-conservation** — load-shed pods are conserved, not
  double-counted: a shed pod is terminal, holds no node resources, and
  never reappears in the pending queue under its old name; the admission
  controller's shed counters agree exactly with the ``load-shed``
  evictions the cluster actually published.

All checks are observation-only: no scheduling, no RNG draws, no state
mutation outside the checker itself — a seeded run is bit-identical with
the checker attached or not.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from repro.cluster.cluster import Cluster
from repro.cluster.events import LeaderElected, PodEvicted
from repro.cluster.pod import PodPhase
from repro.cluster.resources import ResourceVector
from repro.sim.engine import Engine

#: Accounting tolerance for float drift, matching Node.verify_invariants.
_TOLERANCE = 1e-6


@dataclass(frozen=True)
class Violation:
    """One observed invariant breach."""

    invariant: str
    time: float
    detail: str

    def __str__(self) -> str:
        return f"[{self.invariant}] t={self.time:g}: {self.detail}"


class InvariantViolation(AssertionError):
    """Raised in ``on_violation="raise"`` mode; carries the violation."""

    def __init__(self, violation: Violation):
        super().__init__(str(violation))
        self.violation = violation


class CheckContext:
    """What invariants are allowed to see (read-only by contract)."""

    __slots__ = (
        "engine",
        "cluster",
        "control_plane",
        "statestore",
        "scheduler",
        "apps",
        "store",
        "repair",
    )

    def __init__(
        self,
        engine: Engine,
        cluster: Cluster,
        *,
        control_plane=None,
        statestore=None,
        scheduler=None,
        apps=None,
        store=None,
        repair=None,
    ):
        self.engine = engine
        self.cluster = cluster
        self.control_plane = control_plane
        self.statestore = statestore
        self.scheduler = scheduler
        self.apps = apps
        self.store = store
        self.repair = repair


class Invariant:
    """Base invariant: optional event subscriptions + a per-cycle audit."""

    name = "invariant"

    def __init__(self) -> None:
        self._unsubscribe: list[Callable[[], None]] = []

    def bind(self, ctx: CheckContext) -> None:
        """Subscribe to cluster events if the invariant needs causality."""

    def unbind(self) -> None:
        for unsub in self._unsubscribe:
            unsub()
        self._unsubscribe.clear()

    def check(self, ctx: CheckContext) -> Iterable[str]:
        """Audit the current state; yield one detail string per breach."""
        return ()


class ResourceConservation(Invariant):
    """Per-node allocation accounting is exact, bounded, and non-negative."""

    name = "resource-conservation"

    def check(self, ctx: CheckContext) -> Iterable[str]:
        out: list[str] = []
        for node in ctx.cluster.nodes.values():
            total = ResourceVector.zero()
            for pod in node.pods.values():
                total = total + pod.allocation
                if not pod.active:
                    out.append(
                        f"node {node.name}: pod {pod.name} holds resources "
                        f"in phase {pod.phase.value}"
                    )
            if not total.approx_equal(node.allocated, tolerance=_TOLERANCE):
                out.append(
                    f"node {node.name}: allocation drift (tracked "
                    f"{node.allocated!r}, actual {total!r})"
                )
            if not node.allocated.fits_within(
                node.allocatable, tolerance=_TOLERANCE
            ):
                out.append(
                    f"node {node.name}: over-allocated (allocated "
                    f"{node.allocated!r}, allocatable {node.allocatable!r})"
                )
            if node.allocated.any_negative():
                out.append(
                    f"node {node.name}: negative allocation {node.allocated!r}"
                )
        return out


class NoDoubleBind(Invariant):
    """Each pod is bound to at most one node, consistently recorded."""

    name = "no-double-bind"

    def check(self, ctx: CheckContext) -> Iterable[str]:
        out: list[str] = []
        holders: dict[str, list[str]] = {}
        for node in ctx.cluster.nodes.values():
            for pod_name in node.pods:
                holders.setdefault(pod_name, []).append(node.name)
        for pod_name, nodes in holders.items():
            if len(nodes) > 1:
                out.append(
                    f"pod {pod_name} bound to {len(nodes)} nodes: "
                    f"{sorted(nodes)}"
                )
        for pod in ctx.cluster.pods.values():
            held = holders.get(pod.name, ())
            if pod.active:
                if pod.node_name is None:
                    out.append(f"active pod {pod.name} has no node")
                elif list(held) != [pod.node_name]:
                    out.append(
                        f"pod {pod.name} records node {pod.node_name} but is "
                        f"held by {sorted(held)}"
                    )
            elif held:
                out.append(
                    f"{pod.phase.value} pod {pod.name} still holds node "
                    f"resources on {sorted(held)}"
                )
        for pod in ctx.cluster.pending_pods():
            if pod.phase is not PodPhase.PENDING:
                out.append(
                    f"non-pending pod {pod.name} ({pod.phase.value}) in the "
                    "pending queue"
                )
        return out


class GangAtomicity(Invariant):
    """Gangs are scheduled all-or-none.

    At a cycle boundary a gang must not be split between bound and
    pending members — unless a fault degraded it (an eviction since it
    was last whole), in which case the partial state is the legal
    self-healing transient. The degraded mark clears once the gang is
    fully active again.
    """

    name = "gang-atomicity"

    def __init__(self) -> None:
        super().__init__()
        self._degraded: set[str] = set()
        #: Largest live-member count ever observed per gang — the gang's
        #: true size. The degraded mark clears only when the gang is
        #: whole *at that size* again: right after an eviction the gang
        #: looks "fully bound" (the lost rank is terminal, its
        #: replacement not yet resubmitted), and clearing then would
        #: flag the legal healing rebind as a fresh partial schedule.
        self._size: dict[str, int] = {}

    def bind(self, ctx: CheckContext) -> None:
        cluster = ctx.cluster

        def on_evicted(event: PodEvicted) -> None:
            pod = cluster.pods.get(event.pod_name)
            if pod is not None and pod.spec.gang_id is not None:
                self._degraded.add(pod.spec.gang_id)

        self._unsubscribe.append(
            cluster.events.subscribe(PodEvicted, on_evicted)
        )

    def check(self, ctx: CheckContext) -> Iterable[str]:
        out: list[str] = []
        gangs: dict[str, list] = {}
        for pod in ctx.cluster.pods.values():
            gang_id = pod.spec.gang_id
            if gang_id is None or pod.terminal:
                continue
            gangs.setdefault(gang_id, []).append(pod)
        for gang_id, members in gangs.items():
            bound = sum(1 for p in members if p.active)
            pending = sum(1 for p in members if p.phase is PodPhase.PENDING)
            size = max(self._size.get(gang_id, 0), bound + pending)
            self._size[gang_id] = size
            if bound and pending:
                if gang_id not in self._degraded:
                    out.append(
                        f"gang {gang_id} partially scheduled: {bound} bound, "
                        f"{pending} pending, with no degrading fault"
                    )
            elif bound and not pending and bound >= size:
                self._degraded.discard(gang_id)
        # Gangs with no live members left need no bookkeeping anymore.
        self._degraded &= set(gangs)
        for gone in [g for g in self._size if g not in gangs]:
            del self._size[gone]
        return out


class LeaseDiscipline(Invariant):
    """At most one acting leader; generations fence monotonically."""

    name = "lease-discipline"

    def __init__(self) -> None:
        super().__init__()
        self._last_generation: dict[str, int] = {}
        self._holder_of: dict[tuple[str, int], str] = {}
        self._event_violations: list[str] = []

    def bind(self, ctx: CheckContext) -> None:
        def on_elected(event: LeaderElected) -> None:
            lease = event.pod_name  # ClusterEvent.pod_name carries the lease
            key = (lease, event.generation)
            last = self._last_generation.get(lease, 0)
            if event.generation <= last and key not in self._holder_of:
                self._event_violations.append(
                    f"lease {lease}: generation {event.generation} "
                    f"issued after generation {last}"
                )
            previous = self._holder_of.setdefault(key, event.holder)
            if previous != event.holder:
                self._event_violations.append(
                    f"lease {lease}: generation {event.generation} "
                    f"granted to both {previous} and {event.holder}"
                )
            self._last_generation[lease] = max(last, event.generation)

        self._unsubscribe.append(
            ctx.cluster.events.subscribe(LeaderElected, on_elected)
        )

    def check(self, ctx: CheckContext) -> Iterable[str]:
        out = self._event_violations
        self._event_violations = []
        plane = ctx.control_plane
        if plane is not None:
            acting = [
                plane.identity(i)
                for i, replica in enumerate(plane.replicas)
                if replica.manager.actuation_sink is not None
            ]
            if len(acting) > 1:
                out.append(
                    f"{len(acting)} replicas hold leader duties at once: "
                    f"{acting}"
                )
            leader = plane.leader_index()
            if leader is not None and not plane.is_alive(leader):
                out.append(
                    f"dead replica {plane.identity(leader)} is still leader"
                )
        return out


class WalDiscipline(Invariant):
    """WAL/snapshot ordering and failover replay accounting."""

    name = "wal-discipline"

    def __init__(self) -> None:
        super().__init__()
        self._wal_scanned = 0
        self._last_seq = 0
        self._snapshots_scanned = 0
        self._last_snapshot_time = 0.0
        self._failovers_scanned = 0

    def check(self, ctx: CheckContext) -> Iterable[str]:
        store = ctx.statestore
        if store is None:
            return ()
        out: list[str] = []
        wal = store.wal
        for i in range(self._wal_scanned, len(wal)):
            record = wal[i]
            if record.seq <= self._last_seq:
                out.append(
                    f"WAL seq {record.seq} not after previous "
                    f"{self._last_seq}"
                )
            if record.durable_at < record.time:
                out.append(
                    f"WAL seq {record.seq} durable at {record.durable_at:g} "
                    f"before its write at {record.time:g}"
                )
            self._last_seq = max(self._last_seq, record.seq)
        self._wal_scanned = len(wal)
        snapshots = store.snapshots
        for i in range(self._snapshots_scanned, len(snapshots)):
            snap = snapshots[i]
            if snap.time < self._last_snapshot_time:
                out.append(
                    f"snapshot seq {snap.seq} taken at {snap.time:g}, before "
                    f"the previous one at {self._last_snapshot_time:g}"
                )
            if snap.wal_seq > self._last_seq:
                out.append(
                    f"snapshot seq {snap.seq} claims WAL position "
                    f"{snap.wal_seq}, beyond the log at {self._last_seq}"
                )
            self._last_snapshot_time = max(self._last_snapshot_time, snap.time)
        self._snapshots_scanned = len(snapshots)
        plane = ctx.control_plane
        if plane is not None:
            failovers = plane.failovers
            for i in range(self._failovers_scanned, len(failovers)):
                event = failovers[i]
                accounted = (
                    event.wal_deduped + event.wal_reissued + event.wal_failed
                )
                if accounted > event.wal_replayed:
                    out.append(
                        f"failover at {event.time:g}: {accounted} records "
                        f"accounted from {event.wal_replayed} replayed"
                    )
                if event.gap is not None and event.gap < 0:
                    out.append(
                        f"failover at {event.time:g}: negative leader gap "
                        f"{event.gap:g}"
                    )
            self._failovers_scanned = len(failovers)
        return out


class HeapIntegrity(Invariant):
    """Engine clock monotonicity and heap bookkeeping agreement."""

    name = "heap-integrity"

    def __init__(self) -> None:
        super().__init__()
        self._last_now = float("-inf")

    def check(self, ctx: CheckContext) -> Iterable[str]:
        out: list[str] = []
        engine = ctx.engine
        if engine.now < self._last_now:
            out.append(
                f"clock moved backwards: {engine.now:g} after "
                f"{self._last_now:g}"
            )
        self._last_now = engine.now
        live, cancelled = engine.audit_heap()
        if live != engine.pending_count():
            out.append(
                f"live counter says {engine.pending_count()} pending events "
                f"but the heap holds {live} (orphaned push onto a stale "
                "heap alias?)"
            )
        if cancelled != engine.cancelled_in_heap:
            out.append(
                f"cancellation counter says {engine.cancelled_in_heap} "
                f"cancelled entries but the heap holds {cancelled}"
            )
        return out


class ShedConservation(Invariant):
    """Load-shed pods are conserved — shed exactly once, gone for good.

    Every ``load-shed`` eviction the cluster publishes is cross-checked
    against live state (the shed pod must be terminal, hold no node
    resources, and never reappear in the pending queue — replacement
    replicas get fresh names) and against the admission controller's own
    ledger: ``shed_total`` equals the observed eviction count, the
    per-class tallies sum to it, and the pending-rejection /
    running-eviction split accounts for every shed. A mismatch means a
    shed pod was double-counted (or lost) somewhere between the
    scheduler, the cluster, and the stats the benchmarks report.
    """

    name = "shed-conservation"

    def __init__(self) -> None:
        super().__init__()
        self._shed: set[str] = set()
        self._observed = 0

    def bind(self, ctx: CheckContext) -> None:
        def on_evicted(event: PodEvicted) -> None:
            if event.reason == "load-shed":
                self._observed += 1
                self._shed.add(event.pod_name)

        self._unsubscribe.append(
            ctx.cluster.events.subscribe(PodEvicted, on_evicted)
        )

    def check(self, ctx: CheckContext) -> Iterable[str]:
        out: list[str] = []
        for name in self._shed:
            pod = ctx.cluster.pods.get(name)
            if pod is not None and not pod.terminal:
                out.append(
                    f"shed pod {name} resurrected in phase {pod.phase.value}"
                )
        for pod in ctx.cluster.pending_pods():
            if pod.name in self._shed:
                out.append(f"shed pod {pod.name} back in the pending queue")
        for node in ctx.cluster.nodes.values():
            for pod_name in node.pods:
                if pod_name in self._shed:
                    out.append(
                        f"shed pod {pod_name} still holds resources on "
                        f"node {node.name}"
                    )
        admission = getattr(ctx.scheduler, "admission", None)
        if admission is not None:
            if admission.shed_total != self._observed:
                out.append(
                    f"admission ledger counts {admission.shed_total} sheds "
                    f"but the cluster published {self._observed} load-shed "
                    "evictions"
                )
            by_class = sum(admission.shed_by_class.values())
            if by_class != admission.shed_total:
                out.append(
                    f"per-class shed tallies sum to {by_class}, not "
                    f"shed_total {admission.shed_total}"
                )
            split = admission.rejected_pending + admission.evicted_running
            if split != admission.shed_total:
                out.append(
                    f"shed split {admission.rejected_pending} rejected + "
                    f"{admission.evicted_running} evicted != shed_total "
                    f"{admission.shed_total}"
                )
        elif self._observed:
            out.append(
                f"{self._observed} load-shed evictions published with no "
                "admission controller attached"
            )
        return out


class DataPlaneConservation(Invariant):
    """Data-plane work is conserved across faults and recoveries.

    For every fault-tolerant :class:`~repro.workloads.bigdata.BigDataJob`,
    each cpu-second an executor retired must land in exactly one bucket
    of the ledger: useful (tasks done or in flight), speculative
    in-flight, wasted (losing duplicate copies), or reopened (lost to an
    executor death or lineage recompute) —
    ``retired = useful + spec_inflight + wasted + reopened``. Stage
    attempt counters must respect the quarantine budget, and the fluid
    stage counters must mirror the task state they are derived from.

    For every :class:`~repro.workloads.stream.StreamJob` (fault-tolerant
    or not), arrivals are conserved across checkpoint rollbacks:
    ``total_arrived = total_processed + lag_events``.

    The storage repair ledger must be self-consistent: bytes repaired
    equal the repair traffic charged against the repair bandwidth.
    """

    name = "data-plane-conservation"

    def check(self, ctx: CheckContext) -> Iterable[str]:
        out: list[str] = []
        apps = ctx.apps or {}
        for app in apps.values():
            accounting = getattr(app, "ft_accounting", None)
            ledger = accounting() if callable(accounting) else None
            if ledger is not None:
                balance = (
                    ledger["useful"]
                    + ledger["spec_inflight"]
                    + ledger["wasted"]
                    + ledger["reopened"]
                )
                tol = _TOLERANCE * max(1.0, ledger["retired"])
                if abs(ledger["retired"] - balance) > tol:
                    out.append(
                        f"job {app.name}: retired {ledger['retired']:.6f} != "
                        f"useful {ledger['useful']:.6f} + spec "
                        f"{ledger['spec_inflight']:.6f} + wasted "
                        f"{ledger['wasted']:.6f} + reopened "
                        f"{ledger['reopened']:.6f}"
                    )
                total_work = sum(s.work_cpu_seconds for s in app.stages)
                if ledger["useful"] > total_work * (1 + _TOLERANCE) + _TOLERANCE:
                    out.append(
                        f"job {app.name}: useful work {ledger['useful']:.6f} "
                        f"exceeds total stage work {total_work:.6f}"
                    )
                for stage in app.stages:
                    rt = app._runtime[stage.name]
                    if rt.attempts > app.ft.stage_max_attempts and not app.failed:
                        out.append(
                            f"job {app.name}: stage {stage.name} at "
                            f"{rt.attempts} attempts (budget "
                            f"{app.ft.stage_max_attempts}) without quarantine"
                        )
                    mirrored = sum(t.work_left for t in rt.tasks if not t.done)
                    if abs(stage.remaining_work - mirrored) > _TOLERANCE * max(
                        1.0, stage.work_cpu_seconds
                    ):
                        out.append(
                            f"job {app.name}: stage {stage.name} fluid counter "
                            f"{stage.remaining_work:.6f} != task-state sum "
                            f"{mirrored:.6f}"
                        )
            arrived = getattr(app, "total_arrived", None)
            if arrived is not None:
                processed = app.total_processed
                lag = app.lag_events
                tol = _TOLERANCE * max(1.0, arrived)
                if abs(arrived - (processed + lag)) > tol:
                    out.append(
                        f"stream {app.name}: arrived {arrived:.6f} != "
                        f"processed {processed:.6f} + lag {lag:.6f}"
                    )
        repair = ctx.repair
        if repair is not None:
            if abs(repair.repaired_mb - repair.repair_traffic_mb) > _TOLERANCE:
                out.append(
                    f"repair ledger: repaired {repair.repaired_mb:.6f} MB != "
                    f"traffic charged {repair.repair_traffic_mb:.6f} MB"
                )
        return out


def default_invariants() -> list[Invariant]:
    """Fresh instances of the full registry (order = check order)."""
    return [
        ResourceConservation(),
        NoDoubleBind(),
        GangAtomicity(),
        LeaseDiscipline(),
        WalDiscipline(),
        HeapIntegrity(),
        ShedConservation(),
        DataPlaneConservation(),
    ]


class InvariantChecker:
    """Runs the invariant registry at engine cycle boundaries.

    Parameters
    ----------
    every:
        Check every N-th timestamp boundary. 1 audits every cycle (what
        the fuzzer uses on its short episodes); larger strides bound the
        overhead on long runs — violations the registry detects are
        persistent states (a double-bind or allocation drift stays wrong
        until someone releases it), so a strided audit still catches
        them, just a few cycles later.
    on_violation:
        ``"record"`` appends to :attr:`violations`; ``"raise"`` raises
        :class:`InvariantViolation` at the offending boundary.
    stop_on_violation:
        In record mode, stop the engine run at the first violation (the
        fuzzer's episode-abort knob).
    """

    def __init__(
        self,
        engine: Engine,
        cluster: Cluster,
        *,
        control_plane=None,
        statestore=None,
        scheduler=None,
        apps=None,
        store=None,
        repair=None,
        invariants: Sequence[Invariant] | None = None,
        every: int = 1,
        on_violation: str = "record",
        stop_on_violation: bool = False,
        max_violations: int = 1000,
    ):
        if every < 1:
            raise ValueError("every must be ≥ 1")
        if on_violation not in ("record", "raise"):
            raise ValueError("on_violation must be 'record' or 'raise'")
        self.ctx = CheckContext(
            engine,
            cluster,
            control_plane=control_plane,
            statestore=statestore,
            scheduler=scheduler,
            apps=apps,
            store=store,
            repair=repair,
        )
        self.invariants = (
            list(invariants) if invariants is not None else default_invariants()
        )
        self.every = every
        self.on_violation = on_violation
        self.stop_on_violation = stop_on_violation
        self.max_violations = max_violations
        self.violations: list[Violation] = []
        #: Duplicate (invariant, detail) observations after the first.
        self.suppressed = 0
        self.cycles_seen = 0
        self.checks_run = 0
        self._seen: set[tuple[str, str]] = set()
        self._installed = False

    @classmethod
    def attach(cls, platform, *, every: int | None = None, **kwargs):
        """Build a checker over a built platform and install its hook."""
        if every is None:
            every = getattr(platform.config, "verify_every", 1)
        checker = cls(
            platform.engine,
            platform.cluster,
            control_plane=platform.control_plane,
            statestore=platform.statestore,
            scheduler=platform.scheduler,
            apps=platform.apps,
            store=getattr(platform, "store", None),
            repair=getattr(platform, "repair", None),
            every=every,
            **kwargs,
        )
        checker.install()
        return checker

    # -- lifecycle -----------------------------------------------------------

    def install(self) -> None:
        if self._installed:
            raise RuntimeError("checker already installed")
        self._installed = True
        for invariant in self.invariants:
            invariant.bind(self.ctx)
        self.ctx.engine.add_cycle_hook(self._on_cycle)

    def detach(self) -> None:
        if not self._installed:
            return
        self._installed = False
        self.ctx.engine.remove_cycle_hook(self._on_cycle)
        for invariant in self.invariants:
            invariant.unbind()

    # -- checking ------------------------------------------------------------

    def _on_cycle(self) -> None:
        self.cycles_seen += 1
        if (self.cycles_seen - 1) % self.every:
            return
        self.check_now()

    def check_now(self) -> list[Violation]:
        """Run every invariant once; returns the *new* violations."""
        self.checks_run += 1
        now = self.ctx.engine.now
        fresh: list[Violation] = []
        for invariant in self.invariants:
            for detail in invariant.check(self.ctx):
                violation = Violation(invariant.name, now, detail)
                if self.on_violation == "raise":
                    raise InvariantViolation(violation)
                key = (violation.invariant, violation.detail)
                if key in self._seen:
                    self.suppressed += 1
                    continue
                self._seen.add(key)
                if len(self.violations) < self.max_violations:
                    self.violations.append(violation)
                fresh.append(violation)
        if fresh and self.stop_on_violation:
            self.ctx.engine.stop()
        return fresh

    def final_check(self) -> list[Violation]:
        """One last audit at end of run (cycle hooks fire *between*
        timestamps, so the final batch of events needs an explicit pass)."""
        return self.check_now()

    @property
    def ok(self) -> bool:
        return not self.violations

    def report(self) -> str:
        if self.ok:
            return (
                f"ok: {self.checks_run} checks over {self.cycles_seen} cycles"
            )
        lines = [
            f"{len(self.violations)} violation(s) "
            f"({self.suppressed} duplicate observations suppressed):"
        ]
        lines.extend(f"  {v}" for v in self.violations)
        return "\n".join(lines)
