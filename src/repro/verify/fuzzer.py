"""Seeded scenario fuzzer with shrinking replay.

The fuzzer composes random-but-reproducible scenarios — a workload mix
(micro/stream/bigdata/hpc), an explicit chaos schedule, and a controller
config — runs each as a short platform episode with the full
:mod:`repro.verify.invariants` registry attached at ``every=1``, and on
any violation **shrinks** the scenario to a minimal failing form before
writing a replayable JSON repro file.

Determinism contract: a scenario is *entirely* described by its
:class:`ScenarioSpec`. Scenario generation draws only from
``RngRegistry(run_seed).stream("fuzz/scenario/<index>")``, and the
episode itself draws only from the platform's own registry seeded with
``spec.seed`` — so ``repro fuzz --seed 7`` produces the same episodes on
every machine, and a repro file replays the same run that failed (see
docs/testing.md for the seed-derivation scheme).

Chaos is scheduled *explicitly* (strike at ``at``, heal at
``at + duration``) rather than through the Poisson
:class:`~repro.cluster.chaos.ChaosMonkey`, so dropping one chaos event
during shrinking does not shift the timing of the others. Targets are
stored as integers and resolved against the candidate list at strike
time (``candidates[target % len(candidates)]``), which keeps a spec
valid under shrinking even when earlier faults changed which nodes are
healthy.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Callable

from repro.cluster.chaos import ZoneOutageDomain
from repro.cluster.events import PodScheduled
from repro.cluster.pod import PodPhase, WorkloadClass
from repro.cluster.resources import ResourceVector
from repro.dataplane import DataPlaneConfig
from repro.platform.config import ClusterSpec, OverloadConfig, PlatformConfig
from repro.platform.evolve import EvolvePlatform
from repro.sim.rng import RngRegistry
from repro.storage.placement import spread_blocks
from repro.verify.invariants import Invariant, InvariantChecker, Violation
from repro.workloads.arrivals import (
    CorrelatedSurge,
    MarkedArrivals,
    MMPPArrivals,
    ParetoSizes,
    PoissonArrivals,
)
from repro.workloads.bigdata import Stage
from repro.workloads.microservice import Microservice, ServiceDemands
from repro.workloads.plo import LatencyPLO
from repro.workloads.stream import Operator
from repro.workloads.traces import (
    ConstantTrace,
    DiurnalTrace,
    ReplayTrace,
    ScaledTrace,
)

#: Bump when the repro JSON layout changes incompatibly. Version 2 adds
#: ``zones`` / ``overload`` spec fields and the ``zone-outage`` /
#: ``overload-surge`` chaos domains; version 3 adds the ``ft`` spec
#: field (arming data-plane fault tolerance) and the ``executor-kill``
#: / ``straggler`` / ``data-loss`` chaos domains; version 4 adds the
#: trace-model fields ``arrival_model`` (open-loop Poisson/MMPP
#: arrivals), ``heavy_tail`` (Pareto request-size marks), and ``surge``
#: (the correlated multi-app surge coordinator), plus an optional
#: ``samples`` micro param replaying a recorded rate curve. Older files
#: still load (the new fields default to the old behaviour), and each
#: version draws its new scenario knobs strictly *after* every
#: prior-version draw, so e.g. trace-model-less episodes are
#: bit-identical to the v3 fuzzer's.
FORMAT_VERSION = 4
SUPPORTED_FORMATS = (1, 2, 3, 4)

#: v4 open-loop arrival models; ``"rate"`` is the v3-and-earlier
#: rate-curve sampling.
ARRIVAL_MODELS = ("rate", "poisson", "mmpp")

WORKLOAD_KINDS = ("micro", "stream", "bigdata", "hpc")
NODE_DOMAINS = ("crash", "degrade")
CONTROLLER_DOMAINS = ("controller-crash", "partition")
ZONE_DOMAINS = ("zone-outage",)
OVERLOAD_DOMAINS = ("overload-surge",)
#: Data-plane fault domains (v3); only drawn when the spec arms ``ft``
#: so the un-armed prefix of a run stays identical to v2.
DATA_DOMAINS = ("executor-kill", "straggler", "data-loss")

#: Shrinking never reduces the horizon below this (the control loops
#: need a few intervals to do anything at all).
MIN_HORIZON = 60.0


# -- scenario specs ------------------------------------------------------------


@dataclass(frozen=True)
class WorkloadSpec:
    """One workload in a scenario; ``params`` is kind-specific JSON."""

    kind: str
    name: str
    params: dict

    def to_dict(self) -> dict:
        return {"kind": self.kind, "name": self.name, "params": self.params}

    @classmethod
    def from_dict(cls, data: dict) -> "WorkloadSpec":
        return cls(
            kind=data["kind"], name=data["name"], params=dict(data["params"])
        )


@dataclass(frozen=True)
class ChaosEvent:
    """One explicit fault: strike at ``at``, heal at ``at + duration``.

    ``target`` is an abstract index resolved against the candidate list
    at strike time, so it stays meaningful as scenarios shrink.
    """

    domain: str
    at: float
    duration: float
    target: int

    def to_dict(self) -> dict:
        return {
            "domain": self.domain,
            "at": self.at,
            "duration": self.duration,
            "target": self.target,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ChaosEvent":
        return cls(
            domain=data["domain"],
            at=float(data["at"]),
            duration=float(data["duration"]),
            target=int(data["target"]),
        )


@dataclass(frozen=True)
class ScenarioSpec:
    """A complete, replayable scenario."""

    seed: int
    horizon: float
    nodes: int
    controller_replicas: int = 1
    scheduler: str = "converged"
    workloads: tuple[WorkloadSpec, ...] = ()
    chaos: tuple[ChaosEvent, ...] = ()
    #: Availability zones (v2); 1 = flat cluster, the v1 behaviour.
    zones: int = 1
    #: Arm the overload-resilience stack (admission control,
    #: backpressure, brownout) for this episode (v2; off in v1).
    overload: bool = False
    #: Arm data-plane fault tolerance (task-granular big-data engine,
    #: stream checkpoints, storage repair) for this episode (v3).
    ft: bool = False
    #: Open-loop arrival model for microservices (v4): ``"rate"`` (the
    #: v3 rate-curve sampling), ``"poisson"`` (NHPP), or ``"mmpp"``.
    arrival_model: str = "rate"
    #: Pareto request-size marks on microservice arrivals (v4; only
    #: meaningful with an open-loop ``arrival_model``).
    heavy_tail: bool = False
    #: Couple microservice load through the CorrelatedSurge coordinator
    #: (v4): one shared surge schedule hits every service at once.
    surge: bool = False

    def __post_init__(self) -> None:
        if self.arrival_model not in ARRIVAL_MODELS:
            raise ValueError(
                f"arrival_model must be one of {ARRIVAL_MODELS}, "
                f"got {self.arrival_model!r}"
            )

    def to_dict(self) -> dict:
        return {
            "format": FORMAT_VERSION,
            "seed": self.seed,
            "horizon": self.horizon,
            "nodes": self.nodes,
            "controller_replicas": self.controller_replicas,
            "scheduler": self.scheduler,
            "workloads": [w.to_dict() for w in self.workloads],
            "chaos": [c.to_dict() for c in self.chaos],
            "zones": self.zones,
            "overload": self.overload,
            "ft": self.ft,
            "arrival_model": self.arrival_model,
            "heavy_tail": self.heavy_tail,
            "surge": self.surge,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ScenarioSpec":
        version = data.get("format", FORMAT_VERSION)
        if version not in SUPPORTED_FORMATS:
            raise ValueError(
                f"repro format {version} not supported "
                f"(this build reads formats {SUPPORTED_FORMATS})"
            )
        return cls(
            seed=int(data["seed"]),
            horizon=float(data["horizon"]),
            nodes=int(data["nodes"]),
            controller_replicas=int(data.get("controller_replicas", 1)),
            scheduler=data.get("scheduler", "converged"),
            workloads=tuple(
                WorkloadSpec.from_dict(w) for w in data.get("workloads", ())
            ),
            chaos=tuple(
                ChaosEvent.from_dict(c) for c in data.get("chaos", ())
            ),
            zones=int(data.get("zones", 1)),
            overload=bool(data.get("overload", False)),
            ft=bool(data.get("ft", False)),
            arrival_model=str(data.get("arrival_model", "rate")),
            heavy_tail=bool(data.get("heavy_tail", False)),
            surge=bool(data.get("surge", False)),
        )

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        return cls.from_dict(json.loads(text))


# -- scenario generation -------------------------------------------------------


def _draw_workload(kind: str, index: int, rng) -> WorkloadSpec:
    name = f"{kind}-{index}"
    if kind == "micro":
        base = round(float(rng.uniform(50.0, 250.0)), 1)
        params = {
            "base": base,
            "amplitude": round(base * float(rng.uniform(0.2, 0.8)), 1),
            "period": 600.0,
            "cpu_seconds": round(float(rng.uniform(0.002, 0.01)), 4),
            "cpu": round(float(rng.uniform(0.5, 2.0)), 2),
            "memory": 2.0,
            "plo": 0.05,
            "replicas": int(rng.integers(1, 3)),
        }
    elif kind == "stream":
        params = {
            "rate": round(float(rng.uniform(100.0, 400.0)), 1),
            "cpu_seconds": round(float(rng.uniform(0.001, 0.004)), 4),
            "cpu": round(float(rng.uniform(0.5, 1.5)), 2),
            "memory": 2.0,
            "plo": 5.0,
            "workers": int(rng.integers(1, 3)),
        }
    elif kind == "bigdata":
        params = {
            "scan_cpu": round(float(rng.uniform(100.0, 400.0)), 1),
            "agg_cpu": round(float(rng.uniform(100.0, 400.0)), 1),
            "input_mb": round(float(rng.uniform(1000.0, 8000.0)), 1),
            "executors": int(rng.integers(2, 4)),
            "delay": round(float(rng.uniform(0.0, 60.0)), 1),
            "cpu": round(float(rng.uniform(1.0, 2.0)), 2),
            "memory": 4.0,
            "dataset": bool(rng.random() < 0.5),
        }
    elif kind == "hpc":
        params = {
            "ranks": int(rng.integers(2, 5)),
            "duration": round(float(rng.uniform(60.0, 180.0)), 1),
            "cpu": round(float(rng.uniform(2.0, 4.0)), 2),
            "memory": round(float(rng.uniform(4.0, 8.0)), 1),
            "delay": round(float(rng.uniform(0.0, 60.0)), 1),
        }
    else:  # pragma: no cover - guarded by WORKLOAD_KINDS
        raise ValueError(f"unknown workload kind {kind!r}")
    return WorkloadSpec(kind=kind, name=name, params=params)


def generate_scenario(run_seed: int, index: int) -> ScenarioSpec:
    """Draw episode ``index`` of a fuzz run, deterministically.

    Each (run_seed, index) pair maps to its own RNG stream, so episodes
    are independent: adding episode 12 never perturbs episode 13.
    """
    rng = RngRegistry(run_seed).stream(f"fuzz/scenario/{index}")
    nodes = int(rng.integers(3, 6))
    horizon = float(rng.integers(4, 11)) * 60.0
    replicas = 3 if float(rng.random()) < 0.25 else 1
    zones = 3 if float(rng.random()) < 0.3 else 1
    overload = bool(float(rng.random()) < 0.5)
    workloads = tuple(
        _draw_workload(
            WORKLOAD_KINDS[int(rng.integers(len(WORKLOAD_KINDS)))], i, rng
        )
        for i in range(int(rng.integers(1, 5)))
    )
    domains = (
        NODE_DOMAINS
        + (CONTROLLER_DOMAINS if replicas > 1 else ())
        + (ZONE_DOMAINS if zones > 1 else ())
        + OVERLOAD_DOMAINS
    )
    chaos = tuple(
        ChaosEvent(
            domain=domains[int(rng.integers(len(domains)))],
            at=round(float(rng.uniform(30.0, max(60.0, 0.6 * horizon))), 1),
            duration=round(float(rng.uniform(30.0, 120.0)), 1),
            target=int(rng.integers(16)),
        )
        for _ in range(int(rng.integers(0, 4)))
    )
    seed = int(rng.integers(2**31 - 1))
    # v3 draws happen strictly after every v2 draw (including the seed),
    # so the v2 prefix of an episode's stream — and therefore every
    # ft-less scenario — is bit-identical to what the v2 fuzzer drew.
    ft = bool(float(rng.random()) < 0.35)
    if ft:
        chaos += tuple(
            ChaosEvent(
                domain=DATA_DOMAINS[int(rng.integers(len(DATA_DOMAINS)))],
                at=round(
                    float(rng.uniform(30.0, max(60.0, 0.6 * horizon))), 1
                ),
                duration=round(float(rng.uniform(30.0, 120.0)), 1),
                target=int(rng.integers(16)),
            )
            for _ in range(int(rng.integers(1, 4)))
        )
    # v4 draws: trace-model knobs, strictly after every v3 draw, so
    # scenarios with the new models disabled are bit-identical to v3's.
    arrival_model = "rate"
    heavy_tail = False
    if float(rng.random()) < 0.35:
        arrival_model = ("poisson", "mmpp")[int(rng.integers(2))]
        heavy_tail = bool(float(rng.random()) < 0.4)
    surge = bool(float(rng.random()) < 0.25)
    return ScenarioSpec(
        seed=seed,
        horizon=horizon,
        nodes=nodes,
        controller_replicas=replicas,
        workloads=workloads,
        chaos=chaos,
        zones=zones,
        overload=overload,
        ft=ft,
        arrival_model=arrival_model,
        heavy_tail=heavy_tail,
        surge=surge,
    )


# -- platform construction -----------------------------------------------------


def build_platform(
    spec: ScenarioSpec,
    *,
    telemetry: bool = False,
    policy: str = "adaptive",
    policy_kwargs: dict | None = None,
    slos: tuple = (),
) -> EvolvePlatform:
    """Materialize a spec: platform + workloads + explicit chaos schedule.

    ``policy`` / ``policy_kwargs`` / ``slos`` exist for the arena
    harness, which replays pack scenarios under every registered policy
    with SLO tracking armed; the defaults reproduce the fuzzer's
    canonical adaptive build bit-for-bit.
    """
    platform = EvolvePlatform(
        cluster_spec=ClusterSpec(node_count=spec.nodes, zones=spec.zones),
        config=PlatformConfig(
            seed=spec.seed,
            controller_replicas=spec.controller_replicas,
            telemetry=telemetry,
            slos=tuple(slos),
            overload=OverloadConfig(
                admission=spec.overload,
                backpressure=spec.overload,
                brownout=spec.overload,
            ),
            data_plane=DataPlaneConfig(enabled=spec.ft),
        ),
        scheduler=spec.scheduler,
        policy=policy,
        policy_kwargs=policy_kwargs,
    )
    surge = None
    if spec.surge:
        # One shared schedule from a dedicated stream; per-app lags draw
        # in deployment order, which spec.workloads fixes.
        surge = CorrelatedSurge(
            platform.rng.stream("workload/surge"),
            horizon=spec.horizon,
            mean_interval=max(120.0, spec.horizon / 3.0),
            duration=60.0,
            factor=4.0,
            max_lag=15.0,
        )
    for workload in spec.workloads:
        _deploy(
            platform,
            workload,
            arrival_model=spec.arrival_model,
            heavy_tail=spec.heavy_tail,
            surge=surge,
            horizon=spec.horizon,
        )
    for event in spec.chaos:
        _schedule_chaos(platform, event)
    return platform


def _micro_arrivals(
    platform: EvolvePlatform,
    name: str,
    trace,
    *,
    arrival_model: str,
    heavy_tail: bool,
    horizon: float,
):
    """Build the open-loop arrival process for one microservice (v4).

    Streams are per-app (``workload/<name>/arrivals`` / ``…/sizes``) so
    adding a service never shifts a neighbour's draw sequence.
    """
    if arrival_model == "rate":
        return None
    rng = platform.rng.stream(f"workload/{name}/arrivals")
    if arrival_model == "poisson":
        process = PoissonArrivals(trace, rng)
    elif arrival_model == "mmpp":
        process = MMPPArrivals(
            trace, rng, factors=(0.3, 1.0, 3.0), horizon=horizon
        )
    else:
        raise ValueError(f"unknown arrival model {arrival_model!r}")
    if heavy_tail:
        process = MarkedArrivals(
            process,
            ParetoSizes(alpha=1.6),
            platform.rng.stream(f"workload/{name}/sizes"),
        )
    return process


def _deploy(
    platform: EvolvePlatform,
    workload: WorkloadSpec,
    *,
    arrival_model: str = "rate",
    heavy_tail: bool = False,
    surge: "CorrelatedSurge | None" = None,
    horizon: float = 86_400.0,
) -> None:
    p = workload.params
    if workload.kind == "micro":
        if "samples" in p:
            # Replayed rate curve (pack v2's diurnal-replay entries).
            trace = ReplayTrace(
                [(float(t), float(r)) for t, r in p["samples"]],
                time_scale=float(p.get("time_scale", 1.0)),
                rate_scale=float(p.get("rate_scale", 1.0)),
            )
        else:
            trace = DiurnalTrace(
                base=p["base"], amplitude=p["amplitude"], period=p["period"]
            )
        if surge is not None:
            trace = surge.attach(trace, name=workload.name)
        platform.deploy_microservice(
            workload.name,
            trace=trace,
            # Optional per-request disk/net demands (v4): services whose
            # bottleneck is I/O, not CPU — absent in older specs, so the
            # defaults reproduce the v3 deployment byte-for-byte.
            demands=ServiceDemands(
                cpu_seconds=p["cpu_seconds"],
                disk_mb=float(p.get("disk_mb", 0.0)),
                net_mb=float(p.get("net_mb", 0.0)),
                base_latency=0.005,
            ),
            allocation=ResourceVector(
                cpu=p["cpu"], memory=p["memory"], disk_bw=10, net_bw=30
            ),
            plo=LatencyPLO(p["plo"], window=30),
            replicas=p["replicas"],
            arrivals=_micro_arrivals(
                platform,
                workload.name,
                trace,
                arrival_model=arrival_model,
                heavy_tail=heavy_tail,
                horizon=horizon,
            ),
        )
    elif workload.kind == "stream":
        platform.deploy_stream(
            workload.name,
            trace=ConstantTrace(p["rate"]),
            operators=[
                Operator("parse", p["cpu_seconds"]),
                Operator("agg", p["cpu_seconds"] / 2),
            ],
            allocation=ResourceVector(
                cpu=p["cpu"], memory=p["memory"], disk_bw=10, net_bw=40
            ),
            plo=LatencyPLO(p["plo"], window=30),
            workers=p["workers"],
        )
    elif workload.kind == "bigdata":
        dataset = None
        if p.get("dataset"):
            dataset = f"{workload.name}-data"
            node_names = list(platform.cluster.nodes)
            spread_blocks(
                platform.store,
                dataset,
                total_mb=2000,
                block_mb=100,
                nodes=node_names[: max(1, len(node_names) // 2)],
            )
        platform.submit_bigdata(
            workload.name,
            stages=[
                Stage("scan", p["scan_cpu"], input_mb=p["input_mb"]),
                Stage(
                    "agg",
                    p["agg_cpu"],
                    input_mb=p["input_mb"] / 10,
                    deps=("scan",),
                ),
            ],
            allocation=ResourceVector(
                cpu=p["cpu"], memory=p["memory"], disk_bw=60, net_bw=60
            ),
            executors=p["executors"],
            dataset=dataset,
            delay=p["delay"],
        )
    elif workload.kind == "hpc":
        platform.submit_hpc(
            workload.name,
            ranks=p["ranks"],
            duration=p["duration"],
            allocation=ResourceVector(
                cpu=p["cpu"], memory=p["memory"], disk_bw=5, net_bw=40
            ),
            delay=p["delay"],
        )
    else:
        raise ValueError(f"unknown workload kind {workload.kind!r}")


def _schedule_chaos(platform: EvolvePlatform, event: ChaosEvent) -> None:
    """Schedule one explicit strike/heal pair, with guards.

    Every guard makes the event a no-op instead of an error when its
    target is unavailable (all nodes already down, no control plane,
    replica already partitioned …): a shrunken spec must stay runnable
    no matter which of its siblings were dropped.
    """
    engine = platform.engine
    token: dict = {}

    if event.domain == "crash":

        def strike() -> None:
            healthy = [n.name for n in platform.injector.healthy_nodes()]
            if not healthy:
                return
            name = healthy[event.target % len(healthy)]
            platform.injector.fail_node(name)
            token["node"] = name

        def heal() -> None:
            name = token.get("node")
            if name is not None and platform.injector.is_failed(name):
                platform.injector.recover_node(name)

    elif event.domain == "degrade":

        def strike() -> None:
            candidates = [
                n.name
                for n in platform.injector.healthy_nodes()
                if not platform.degrader.is_degraded(n.name)
            ]
            if not candidates:
                return
            name = candidates[event.target % len(candidates)]
            platform.degrader.degrade_node(name, 0.5)
            token["node"] = name

        def heal() -> None:
            name = token.get("node")
            if name is not None and platform.degrader.is_degraded(name):
                platform.degrader.restore_node(name)

    elif event.domain == "controller-crash":

        def strike() -> None:
            plane = platform.control_plane
            if plane is None:
                return
            alive = plane.alive_indices()
            if not alive:
                return
            leader = plane.leader_index()
            index = (
                leader
                if leader is not None
                else alive[event.target % len(alive)]
            )
            plane.crash_replica(index)
            token["index"] = index

        def heal() -> None:
            plane = platform.control_plane
            index = token.get("index")
            if (
                plane is not None
                and index is not None
                and not plane.is_alive(index)
            ):
                plane.restart_replica(index)

    elif event.domain == "zone-outage":

        def strike() -> None:
            dom = ZoneOutageDomain(
                platform.injector, log=platform.fault_log
            )
            zones = dom.zones()
            if not zones:
                return
            token["zone"] = dom.strike_zone(zones[event.target % len(zones)])
            token["dom"] = dom

        def heal() -> None:
            dom = token.get("dom")
            if dom is not None:
                dom.heal(token["zone"])

    elif event.domain == "overload-surge":
        # A flash crowd, not a fault injection: multiply one
        # microservice's offered load by 4× for the window, restoring
        # the original trace afterwards. Exercises the shed → brownout →
        # recover pipeline when the spec armed the overload stack.

        def strike() -> None:
            services = [
                app
                for _name, app in sorted(platform.apps.items())
                if isinstance(app, Microservice)
            ]
            if not services:
                return
            app = services[event.target % len(services)]
            token["app"] = app
            token["trace"] = app.trace
            app.trace = ScaledTrace(app.trace, 4.0)

        def heal() -> None:
            app = token.get("app")
            if app is not None:
                app.trace = token["trace"]

    elif event.domain == "executor-kill":
        # Kill one running data-parallel pod (bigdata executor or stream
        # worker) — the small-blast-radius fault the task engine's
        # share re-open and the stream checkpoint restart absorb.

        def strike() -> None:
            victims = sorted(
                pod.name
                for pod in platform.cluster.pods.values()
                if pod.phase is PodPhase.RUNNING
                and pod.spec.workload_class is WorkloadClass.BIGDATA
            )
            if not victims:
                return
            platform.cluster.evict(
                victims[event.target % len(victims)], reason="executor-kill"
            )

        heal = None

    elif event.domain == "straggler":

        def strike() -> None:
            candidates = [
                node
                for node in platform.cluster.nodes.values()
                if node.speed_factor >= 1.0
                and not node.allocatable.is_zero()
            ]
            if not candidates:
                return
            node = candidates[event.target % len(candidates)]
            node.speed_factor = 0.3
            token["node"] = node.name

        def heal() -> None:
            name = token.get("node")
            if name is not None:
                platform.cluster.get_node(name).speed_factor = 1.0

    elif event.domain == "data-loss":
        # Wipe one data-bearing node's replicas; no heal — the repair
        # loop (armed whenever the spec sets ``ft``) re-replicates.

        def strike() -> None:
            nodes = sorted(platform.store.nodes_with_data())
            if not nodes:
                return
            platform.store.drop_node(nodes[event.target % len(nodes)])

        heal = None

    elif event.domain == "partition":

        def strike() -> None:
            plane = platform.control_plane
            if plane is None:
                return
            alive = plane.alive_indices()
            if not alive:
                return
            identity = plane.identity(alive[event.target % len(alive)])
            now = engine.now
            if not platform.partition_faults.is_partitioned(identity, now):
                # Bounded window: closes by itself, no heal callback.
                platform.partition_faults.partition(
                    identity, now, event.duration
                )

        heal = None

    else:
        raise ValueError(f"unknown chaos domain {event.domain!r}")

    engine.schedule_at(event.at, strike)
    if heal is not None:
        engine.schedule_at(event.at + event.duration, heal)


# -- episodes ------------------------------------------------------------------


@dataclass
class EpisodeResult:
    spec: ScenarioSpec
    violations: list[Violation]
    events_executed: int
    checks_run: int
    #: (time, pod, node) placement triples, when requested.
    fingerprint: list[tuple[float, str, str]] | None = None

    @property
    def ok(self) -> bool:
        return not self.violations


def run_episode(
    spec: ScenarioSpec,
    *,
    every: int = 1,
    telemetry: bool = False,
    invariants: list[Invariant] | None = None,
    inject: Callable[[EvolvePlatform], None] | None = None,
    collect_fingerprint: bool = False,
) -> EpisodeResult:
    """Run one scenario under the invariant checker.

    ``inject`` runs against the built platform before the clock starts —
    the hook tests use to plant a known corruption (a raw double-bind, a
    stale-heap push) and prove the harness catches it.
    """
    platform = build_platform(spec, telemetry=telemetry)
    checker = InvariantChecker.attach(
        platform,
        every=every,
        invariants=invariants,
        stop_on_violation=True,
    )
    fingerprint: list[tuple[float, str, str]] | None = None
    if collect_fingerprint:
        fingerprint = []
        platform.cluster.events.subscribe(
            PodScheduled,
            lambda e: fingerprint.append((e.time, e.pod_name, e.node_name)),
        )
    if inject is not None:
        inject(platform)
    platform.run(spec.horizon)
    checker.final_check()
    checker.detach()
    return EpisodeResult(
        spec=spec,
        violations=list(checker.violations),
        events_executed=platform.engine.events_executed,
        checks_run=checker.checks_run,
        fingerprint=fingerprint,
    )


def telemetry_identity_violation(
    spec: ScenarioSpec, *, every: int = 1
) -> Violation | None:
    """Differential invariant: telemetry must not change decisions.

    Runs the spec twice — telemetry off and on — and compares the
    placement fingerprint and total event count. Unlike the cycle-level
    invariants this one needs two full runs, so the fuzzer applies it
    per episode behind ``--differential``.
    """
    base = run_episode(spec, every=every, collect_fingerprint=True)
    tele = run_episode(
        spec, every=every, telemetry=True, collect_fingerprint=True
    )
    if base.fingerprint != tele.fingerprint:
        return Violation(
            "telemetry-identity",
            spec.horizon,
            f"placements diverge with telemetry enabled "
            f"({len(base.fingerprint)} vs {len(tele.fingerprint)} binds)",
        )
    if base.events_executed != tele.events_executed:
        return Violation(
            "telemetry-identity",
            spec.horizon,
            f"event count diverges with telemetry enabled "
            f"({base.events_executed} vs {tele.events_executed})",
        )
    return None


# -- shrinking -----------------------------------------------------------------


def shrink(
    spec: ScenarioSpec,
    still_fails: Callable[[ScenarioSpec], bool],
    *,
    max_evals: int = 64,
) -> ScenarioSpec:
    """Greedily minimize a failing spec.

    Reduction moves, tried to a fixpoint: drop one workload, drop one
    chaos event, drop the replicated control plane, flatten the zones,
    disable the overload stack, disable data-plane fault tolerance,
    disable the v4 trace models (surge, heavy-tail marks, open-loop
    arrivals — in that order, most-composite first), halve the horizon.
    A candidate is kept only if ``still_fails`` — so the result is
    1-minimal with respect to these moves (dropping any single remaining
    element makes the failure disappear), within an evaluation budget.
    """
    evals = 0

    def attempt(candidate: ScenarioSpec) -> bool:
        nonlocal evals
        if evals >= max_evals:
            return False
        evals += 1
        return still_fails(candidate)

    current = spec
    improved = True
    while improved and evals < max_evals:
        improved = False
        for i in range(len(current.workloads)):
            candidate = replace(
                current,
                workloads=current.workloads[:i] + current.workloads[i + 1:],
            )
            if attempt(candidate):
                current = candidate
                improved = True
                break
        if improved:
            continue
        for i in range(len(current.chaos)):
            candidate = replace(
                current, chaos=current.chaos[:i] + current.chaos[i + 1:]
            )
            if attempt(candidate):
                current = candidate
                improved = True
                break
        if improved:
            continue
        if current.controller_replicas > 1:
            candidate = replace(current, controller_replicas=1)
            if attempt(candidate):
                current = candidate
                improved = True
                continue
        if current.zones > 1:
            candidate = replace(current, zones=1)
            if attempt(candidate):
                current = candidate
                improved = True
                continue
        if current.overload:
            candidate = replace(current, overload=False)
            if attempt(candidate):
                current = candidate
                improved = True
                continue
        if current.ft:
            # Data-plane chaos events stay runnable with ft off (evict
            # works regardless; speed_factor and dropped replicas are
            # inert without the fault-tolerant models), so this move
            # never needs to also prune the chaos list.
            candidate = replace(current, ft=False)
            if attempt(candidate):
                current = candidate
                improved = True
                continue
        if current.surge:
            candidate = replace(current, surge=False)
            if attempt(candidate):
                current = candidate
                improved = True
                continue
        if current.heavy_tail:
            candidate = replace(current, heavy_tail=False)
            if attempt(candidate):
                current = candidate
                improved = True
                continue
        if current.arrival_model != "rate":
            candidate = replace(current, arrival_model="rate")
            if attempt(candidate):
                current = candidate
                improved = True
                continue
        if current.horizon > MIN_HORIZON:
            candidate = replace(
                current, horizon=max(MIN_HORIZON, current.horizon / 2)
            )
            if attempt(candidate):
                current = candidate
                improved = True
    return current


# -- the fuzz loop -------------------------------------------------------------


@dataclass
class FuzzFailure:
    index: int
    violations: list[Violation]
    spec: ScenarioSpec
    shrunk: ScenarioSpec
    repro_path: str | None


@dataclass
class FuzzSummary:
    run_seed: int
    episodes: int
    failures: list[FuzzFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures


def write_repro(
    spec: ScenarioSpec,
    violations: list[Violation],
    out_dir: str | Path,
    run_seed: int,
    index: int,
) -> Path:
    """Persist a failing (shrunken) spec as a replayable JSON file."""
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    path = out / f"repro-{run_seed}-{index}.json"
    payload = spec.to_dict()
    payload["violations"] = [str(v) for v in violations]
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def load_spec(path: str | Path) -> ScenarioSpec:
    """Load a spec from a repro file (extra keys like violations ignored)."""
    return ScenarioSpec.from_dict(json.loads(Path(path).read_text()))


def fuzz(
    episodes: int,
    run_seed: int,
    *,
    every: int = 1,
    out_dir: str | Path | None = "fuzz-repros",
    shrink_failures: bool = True,
    differential: bool = False,
    inject: Callable[[EvolvePlatform], None] | None = None,
    log: Callable[[str], None] | None = None,
) -> FuzzSummary:
    """Run ``episodes`` seeded scenarios; shrink and persist any failure."""
    say = log if log is not None else (lambda _msg: None)
    summary = FuzzSummary(run_seed=run_seed, episodes=episodes)
    for index in range(episodes):
        spec = generate_scenario(run_seed, index)
        result = run_episode(spec, every=every, inject=inject)
        violations = list(result.violations)
        if not violations and differential:
            extra = telemetry_identity_violation(spec, every=every)
            if extra is not None:
                violations.append(extra)
        if not violations:
            say(
                f"episode {index}: ok "
                f"({result.events_executed} events, "
                f"{result.checks_run} checks)"
            )
            continue
        say(f"episode {index}: VIOLATION {violations[0]}")
        shrunk = spec
        if shrink_failures:

            def still_fails(candidate: ScenarioSpec) -> bool:
                if not run_episode(
                    candidate, every=every, inject=inject
                ).ok:
                    return True
                if differential:
                    return (
                        telemetry_identity_violation(candidate, every=every)
                        is not None
                    )
                return False

            shrunk = shrink(spec, still_fails)
            say(
                f"episode {index}: shrunk to {len(shrunk.workloads)} "
                f"workload(s), {len(shrunk.chaos)} chaos event(s), "
                f"horizon {shrunk.horizon:g}s"
            )
        repro_path = None
        if out_dir is not None:
            repro_path = str(
                write_repro(shrunk, violations, out_dir, run_seed, index)
            )
            say(f"episode {index}: repro written to {repro_path}")
        summary.failures.append(
            FuzzFailure(
                index=index,
                violations=violations,
                spec=spec,
                shrunk=shrunk,
                repro_path=repro_path,
            )
        )
    return summary


def replay(
    path: str | Path, *, seed: int | None = None, every: int = 1
) -> EpisodeResult:
    """Re-run a repro file; ``seed`` overrides the recorded episode seed."""
    spec = load_spec(path)
    if seed is not None:
        spec = replace(spec, seed=seed)
    return run_episode(spec, every=every)
