"""H3-style object store model.

Objects are block-replicated across node-local devices. The store tracks
metadata only (sizes and replica locations); data movement costs are
charged by the workload models through their disk/network bandwidth
allocations. Remote reads are additionally discounted by
``remote_penalty`` to reflect protocol and cross-rack overheads.

Liveness: replica sets are mutated only explicitly (``drop_node`` /
``add_replica``), so after a node failure dead replicas keep counting
toward locality until a repair loop removes them. Queries therefore
accept a node-liveness predicate — or use :attr:`ObjectStore.node_liveness`
as the default — so locality and bandwidth math can exclude dark nodes
without waiting for repair. The predicate defaults to ``None`` (count
everything), preserving seed behaviour bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable


#: Sentinel distinguishing "not passed" from an explicit ``live=None``.
_UNSET = object()

LivenessFn = Callable[[str], bool]


class StorageError(RuntimeError):
    """Raised on invalid object-store operations."""


@dataclass(frozen=True)
class StorageObject:
    """One stored object (a dataset block)."""

    bucket: str
    key: str
    size_mb: float
    replicas: frozenset[str] = field(default_factory=frozenset)
    #: Intended replica count; ``None`` means "whatever it was written
    #: with" (resolved at put() time). The repair loop re-replicates
    #: objects whose live replica count falls below this.
    target_replicas: int | None = None

    def __post_init__(self) -> None:
        if self.size_mb < 0:
            raise ValueError("size_mb must be non-negative")
        if self.target_replicas is not None and self.target_replicas < 1:
            raise ValueError("target_replicas must be >= 1")

    def is_local_to(self, node_name: str) -> bool:
        return node_name in self.replicas

    @property
    def target(self) -> int:
        """Effective replication target."""
        if self.target_replicas is not None:
            return self.target_replicas
        return max(1, len(self.replicas))

    def live_replicas(self, live: LivenessFn | None) -> frozenset[str]:
        """Replicas on nodes the predicate considers alive."""
        if live is None:
            return self.replicas
        return frozenset(n for n in self.replicas if live(n))


class ObjectStore:
    """Bucket/object metadata service.

    Parameters
    ----------
    remote_penalty:
        Multiplier (0, 1] applied to network bandwidth for remote reads.
    """

    def __init__(self, *, remote_penalty: float = 0.7):
        if not 0 < remote_penalty <= 1:
            raise ValueError("remote_penalty must be in (0, 1]")
        self.remote_penalty = remote_penalty
        self._buckets: dict[str, dict[str, StorageObject]] = {}
        #: Default node-liveness predicate for dataset-level queries.
        #: ``None`` (the default) counts every replica — seed behaviour.
        #: The platform wires this to "node not dark" only when data-plane
        #: fault tolerance is enabled.
        self.node_liveness: LivenessFn | None = None
        #: Bumped on every replica-set mutation; schedulers may fold it
        #: into score-cache keys if replication ever changes mid-cycle.
        self.epoch = 0

    # -- bucket/object CRUD ---------------------------------------------------

    def create_bucket(self, bucket: str) -> None:
        if bucket in self._buckets:
            raise StorageError(f"bucket {bucket!r} already exists")
        self._buckets[bucket] = {}

    def has_bucket(self, bucket: str) -> bool:
        return bucket in self._buckets

    def buckets(self) -> list[str]:
        """Bucket names in sorted (deterministic) order."""
        return sorted(self._buckets)

    def put(
        self,
        bucket: str,
        key: str,
        size_mb: float,
        replicas: set[str] | frozenset[str],
        *,
        target_replicas: int | None = None,
    ) -> StorageObject:
        """Store object metadata; replicas are node names holding the data."""
        if bucket not in self._buckets:
            raise StorageError(f"unknown bucket {bucket!r}")
        if target_replicas is None:
            target_replicas = max(1, len(replicas))
        obj = StorageObject(
            bucket, key, size_mb, frozenset(replicas), target_replicas=target_replicas
        )
        self._buckets[bucket][key] = obj
        self.epoch += 1
        return obj

    def get(self, bucket: str, key: str) -> StorageObject:
        try:
            return self._buckets[bucket][key]
        except KeyError:
            raise StorageError(f"unknown object {bucket!r}/{key!r}") from None

    def delete(self, bucket: str, key: str) -> None:
        try:
            del self._buckets[bucket][key]
        except KeyError:
            raise StorageError(f"unknown object {bucket!r}/{key!r}") from None
        self.epoch += 1

    def list_objects(self, bucket: str) -> list[StorageObject]:
        if bucket not in self._buckets:
            raise StorageError(f"unknown bucket {bucket!r}")
        return list(self._buckets[bucket].values())

    # -- replica mutation (repair / data-loss paths) -------------------------------

    def drop_node(self, node_name: str) -> int:
        """Remove ``node_name`` from every replica set (disk wiped).

        Returns the number of replicas dropped. Objects may be left with
        zero replicas — they are *lost* until a surviving copy exists
        elsewhere, which :meth:`lost_objects` reports.
        """
        dropped = 0
        for objects in self._buckets.values():
            for key, obj in objects.items():
                if node_name in obj.replicas:
                    objects[key] = replace(obj, replicas=obj.replicas - {node_name})
                    dropped += 1
        if dropped:
            self.epoch += 1
        return dropped

    def add_replica(self, bucket: str, key: str, node_name: str) -> StorageObject:
        """Record a new replica of an existing object on ``node_name``."""
        obj = self.get(bucket, key)
        if node_name in obj.replicas:
            return obj
        obj = replace(obj, replicas=obj.replicas | {node_name})
        self._buckets[bucket][key] = obj
        self.epoch += 1
        return obj

    # -- dataset-level queries ----------------------------------------------------

    def _resolve_live(self, live) -> LivenessFn | None:
        return self.node_liveness if live is _UNSET else live

    def bucket_size_mb(self, bucket: str) -> float:
        return sum(o.size_mb for o in self.list_objects(bucket))

    def locality_fraction(self, bucket: str, node_name: str, *, live=_UNSET) -> float:
        """Fraction of the bucket's bytes with a replica on ``node_name``.

        ``live`` is a node-liveness predicate; when it rejects
        ``node_name`` itself the fraction is 0 (a dark node serves no
        local reads). Defaults to :attr:`node_liveness`.
        """
        live = self._resolve_live(live)
        if live is not None and not live(node_name):
            return 0.0
        objects = self.list_objects(bucket)
        total = sum(o.size_mb for o in objects)
        if total <= 0:
            return 0.0
        local = sum(o.size_mb for o in objects if o.is_local_to(node_name))
        return local / total

    def replica_nodes(self, bucket: str, *, live=_UNSET) -> set[str]:
        """All live nodes holding at least one block of the bucket."""
        live = self._resolve_live(live)
        nodes: set[str] = set()
        for obj in self.list_objects(bucket):
            nodes |= obj.replicas
        if live is not None:
            nodes = {n for n in nodes if live(n)}
        return nodes

    def nodes_with_data(self) -> set[str]:
        """Every node holding at least one replica, across all buckets."""
        nodes: set[str] = set()
        for objects in self._buckets.values():
            for obj in objects.values():
                nodes |= obj.replicas
        return nodes

    def under_replicated(
        self, bucket: str | None = None, *, live=_UNSET
    ) -> list[StorageObject]:
        """Objects whose live replica count is below target, sorted by key."""
        live = self._resolve_live(live)
        buckets = [bucket] if bucket is not None else self.buckets()
        found: list[StorageObject] = []
        for name in buckets:
            for key in sorted(self._buckets.get(name, ())):
                obj = self._buckets[name][key]
                if len(obj.live_replicas(live)) < obj.target:
                    found.append(obj)
        return found

    def lost_objects(
        self, bucket: str | None = None, *, live=_UNSET
    ) -> list[StorageObject]:
        """Objects with zero live replicas (data unrecoverable by repair)."""
        live = self._resolve_live(live)
        buckets = [bucket] if bucket is not None else self.buckets()
        return [
            obj
            for name in buckets
            for key in sorted(self._buckets.get(name, ()))
            if not (obj := self._buckets[name][key]).live_replicas(live)
        ]
