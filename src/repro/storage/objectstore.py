"""H3-style object store model.

Objects are block-replicated across node-local devices. The store tracks
metadata only (sizes and replica locations); data movement costs are
charged by the workload models through their disk/network bandwidth
allocations. Remote reads are additionally discounted by
``remote_penalty`` to reflect protocol and cross-rack overheads.
"""

from __future__ import annotations

from dataclasses import dataclass, field


class StorageError(RuntimeError):
    """Raised on invalid object-store operations."""


@dataclass(frozen=True)
class StorageObject:
    """One stored object (a dataset block)."""

    bucket: str
    key: str
    size_mb: float
    replicas: frozenset[str] = field(default_factory=frozenset)

    def __post_init__(self) -> None:
        if self.size_mb < 0:
            raise ValueError("size_mb must be non-negative")

    def is_local_to(self, node_name: str) -> bool:
        return node_name in self.replicas


class ObjectStore:
    """Bucket/object metadata service.

    Parameters
    ----------
    remote_penalty:
        Multiplier (0, 1] applied to network bandwidth for remote reads.
    """

    def __init__(self, *, remote_penalty: float = 0.7):
        if not 0 < remote_penalty <= 1:
            raise ValueError("remote_penalty must be in (0, 1]")
        self.remote_penalty = remote_penalty
        self._buckets: dict[str, dict[str, StorageObject]] = {}

    # -- bucket/object CRUD ---------------------------------------------------

    def create_bucket(self, bucket: str) -> None:
        if bucket in self._buckets:
            raise StorageError(f"bucket {bucket!r} already exists")
        self._buckets[bucket] = {}

    def has_bucket(self, bucket: str) -> bool:
        return bucket in self._buckets

    def put(
        self, bucket: str, key: str, size_mb: float, replicas: set[str] | frozenset[str]
    ) -> StorageObject:
        """Store object metadata; replicas are node names holding the data."""
        if bucket not in self._buckets:
            raise StorageError(f"unknown bucket {bucket!r}")
        obj = StorageObject(bucket, key, size_mb, frozenset(replicas))
        self._buckets[bucket][key] = obj
        return obj

    def get(self, bucket: str, key: str) -> StorageObject:
        try:
            return self._buckets[bucket][key]
        except KeyError:
            raise StorageError(f"unknown object {bucket!r}/{key!r}") from None

    def delete(self, bucket: str, key: str) -> None:
        try:
            del self._buckets[bucket][key]
        except KeyError:
            raise StorageError(f"unknown object {bucket!r}/{key!r}") from None

    def list_objects(self, bucket: str) -> list[StorageObject]:
        if bucket not in self._buckets:
            raise StorageError(f"unknown bucket {bucket!r}")
        return list(self._buckets[bucket].values())

    # -- dataset-level queries ----------------------------------------------------

    def bucket_size_mb(self, bucket: str) -> float:
        return sum(o.size_mb for o in self.list_objects(bucket))

    def locality_fraction(self, bucket: str, node_name: str) -> float:
        """Fraction of the bucket's bytes with a replica on ``node_name``."""
        objects = self.list_objects(bucket)
        total = sum(o.size_mb for o in objects)
        if total <= 0:
            return 0.0
        local = sum(o.size_mb for o in objects if o.is_local_to(node_name))
        return local / total

    def replica_nodes(self, bucket: str) -> set[str]:
        """All nodes holding at least one block of the bucket."""
        nodes: set[str] = set()
        for obj in self.list_objects(bucket):
            nodes |= obj.replicas
        return nodes
