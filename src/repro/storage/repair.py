"""Background re-replication of under-replicated objects.

After a node failure (or a :class:`~repro.cluster.chaos.DataLossDomain`
disk wipe) objects fall below their replication target. The
:class:`StorageRepairService` runs a periodic scan that

1. detects newly-dark nodes (allocatable capacity zeroed by the failure
   injector) and drops their replicas — the node-local data is gone;
2. queues every under-replicated object;
3. drains the queue at a configured repair bandwidth, copying each
   object to the live node carrying the fewest bytes of that bucket
   (deterministic tie-break by node name) and charging the bytes moved
   to ``repair_traffic_mb``.

The service is only constructed when
:class:`~repro.dataplane.DataPlaneConfig` is enabled, so default runs
schedule no repair events and stay bit-identical to the seed.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING

from repro.dataplane import DataPlaneConfig
from repro.storage.objectstore import ObjectStore, StorageError

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.api import ClusterAPI
    from repro.cluster.chaos import FaultLog
    from repro.sim.engine import Engine


class StorageRepairService:
    """Periodic under-replication scanner and re-replicator."""

    def __init__(
        self,
        engine: "Engine",
        store: ObjectStore,
        api: "ClusterAPI",
        *,
        config: DataPlaneConfig | None = None,
        log: "FaultLog | None" = None,
    ):
        self.engine = engine
        self.store = store
        self.api = api
        self.config = config or DataPlaneConfig(enabled=True)
        self.log = log
        # Accounting — the repair ledger checked by the data-plane
        # conservation invariant.
        self.scans = 0
        self.dropped_replicas = 0
        self.repaired_objects = 0
        self.repaired_mb = 0.0
        self.repair_traffic_mb = 0.0
        self.unplaceable = 0
        self._queue: deque[tuple[str, str]] = deque()
        self._queued: set[tuple[str, str]] = set()
        self._dark: set[str] = set()
        # Bandwidth debt carried when the last object of a scan overshot
        # the per-scan budget.
        self._debt_mb = 0.0
        self._handle = None
        #: Optional :class:`~repro.obs.telemetry.Telemetry` bundle; when
        #: set, replica drops and working repair cycles are traced under
        #: the ``store`` category.
        self.telemetry = None

    # -- lifecycle -------------------------------------------------------------

    def start(self) -> None:
        if self._handle is None:
            self._handle = self.engine.every(
                self.config.repair_interval, self.scan, priority=-3
            )

    def stop(self) -> None:
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    # -- liveness --------------------------------------------------------------

    def node_live(self, name: str) -> bool:
        """A node is live while it retains allocatable capacity."""
        return not self.api.get_node(name).allocatable.is_zero()

    # -- scan ------------------------------------------------------------------

    def scan(self) -> None:
        """One repair cycle: drop dark replicas, queue, drain by bandwidth."""
        self.scans += 1
        now = self.engine.now
        self._drop_dark_replicas(now)
        for obj in self.store.under_replicated(live=self.node_live):
            ref = (obj.bucket, obj.key)
            if ref not in self._queued:
                self._queue.append(ref)
                self._queued.add(ref)
        repaired_before = self.repaired_objects
        self._drain(now)
        # Only cycles that moved data are traced — an idle scan every
        # repair_interval would bury the timeline in no-op spans.
        if self.telemetry is not None and (
            self.repaired_objects > repaired_before or self._queue
        ):
            self.telemetry.tracer.instant(
                "repair_cycle", "store",
                repaired=self.repaired_objects - repaired_before,
                backlog=len(self._queue),
            )

    def _drop_dark_replicas(self, now: float) -> None:
        for node in self.api.list_nodes():
            dark = node.allocatable.is_zero()
            if dark and node.name not in self._dark:
                self._dark.add(node.name)
                dropped = self.store.drop_node(node.name)
                self.dropped_replicas += dropped
                if dropped:
                    if self.log is not None:
                        self.log.record(
                            "storage-replica-loss",
                            node.name,
                            now,
                            now,
                            detail=f"replicas_dropped={dropped}",
                        )
                    if self.telemetry is not None:
                        self.telemetry.tracer.instant(
                            "replica_drop", "store",
                            node=node.name, dropped=dropped,
                        )
            elif not dark:
                self._dark.discard(node.name)

    def _drain(self, now: float) -> None:
        budget = self.config.repair_bandwidth_mbps * self.config.repair_interval
        budget -= self._debt_mb
        self._debt_mb = 0.0
        deferred: list[tuple[str, str]] = []
        while self._queue and budget > 0:
            bucket, key = self._queue.popleft()
            self._queued.discard((bucket, key))
            try:
                obj = self.store.get(bucket, key)
            except StorageError:
                continue  # deleted since queued
            live = obj.live_replicas(self.node_live)
            if len(live) >= obj.target:
                continue  # healed elsewhere (e.g. node recovered)
            if not live:
                continue  # no surviving copy: unrepairable, counted in lost_objects
            target = self._pick_target(bucket, obj.replicas)
            if target is None:
                deferred.append((bucket, key))
                self.unplaceable += 1
                continue
            healed = self.store.add_replica(bucket, key, target)
            self.repaired_objects += 1
            self.repaired_mb += obj.size_mb
            self.repair_traffic_mb += obj.size_mb
            budget -= obj.size_mb
            if len(healed.live_replicas(self.node_live)) < healed.target:
                deferred.append((bucket, key))  # one copy per pass; still short
        if budget < 0:
            self._debt_mb = -budget
        for ref in deferred:
            if ref not in self._queued:
                self._queue.append(ref)
                self._queued.add(ref)

    def _pick_target(self, bucket: str, exclude: frozenset[str]) -> str | None:
        """Live node not already holding the object, least loaded for the bucket."""
        load: dict[str, float] = {}
        for obj in self.store.list_objects(bucket):
            for node in obj.replicas:
                load[node] = load.get(node, 0.0) + obj.size_mb
        candidates = [
            node.name
            for node in self.api.list_nodes()
            if node.name not in exclude and not node.allocatable.is_zero()
        ]
        if not candidates:
            return None
        return min(candidates, key=lambda n: (load.get(n, 0.0), n))

    # -- reporting -------------------------------------------------------------

    def backlog(self) -> int:
        """Objects queued for repair."""
        return len(self._queue)

    def sample_metrics(self) -> dict[str, float]:
        return {
            "repair_scans": float(self.scans),
            "repair_backlog": float(self.backlog()),
            "repaired_objects": float(self.repaired_objects),
            "repair_traffic_mb": self.repair_traffic_mb,
            "replicas_dropped": float(self.dropped_replicas),
        }
