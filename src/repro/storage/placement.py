"""Dataset placement policies over the object store."""

from __future__ import annotations

from typing import Sequence

from repro.storage.objectstore import ObjectStore


def spread_blocks(
    store: ObjectStore,
    bucket: str,
    *,
    total_mb: float,
    block_mb: float,
    nodes: Sequence[str],
    replication: int = 1,
    skew: float = 0.0,
) -> int:
    """Write a dataset as fixed-size blocks across ``nodes``.

    Blocks are placed round-robin; ``skew`` in [0, 1) biases placement
    toward the first node (0 = even spread, 0.9 = almost all blocks on
    ``nodes[0]``), which is how the locality benchmark creates hot spots.
    Returns the number of blocks written.
    """
    if total_mb <= 0 or block_mb <= 0:
        raise ValueError("total_mb and block_mb must be positive")
    if not nodes:
        raise ValueError("need at least one node")
    if not 0 <= skew < 1:
        raise ValueError("skew must be in [0, 1)")
    if not 1 <= replication <= len(nodes):
        raise ValueError("replication must be in [1, len(nodes)]")
    if not store.has_bucket(bucket):
        store.create_bucket(bucket)

    n_blocks = max(1, int(round(total_mb / block_mb)))
    hot_blocks = int(n_blocks * skew)
    for i in range(n_blocks):
        if i < hot_blocks:
            primary = 0
        else:
            primary = i % len(nodes)
        replicas = {nodes[(primary + r) % len(nodes)] for r in range(replication)}
        store.put(bucket, f"block-{i:06d}", block_mb, replicas)
    return n_blocks


class DatasetPlacement:
    """Cached locality view of one dataset, consumed by schedulers.

    Wraps :meth:`ObjectStore.locality_fraction` with memoization so the
    scheduler's scoring loop does not rescan object metadata per pod.
    """

    def __init__(self, store: ObjectStore, bucket: str):
        self.store = store
        self.bucket = bucket
        self._cache: dict[str, float] = {}

    def locality(self, node_name: str) -> float:
        """Fraction of dataset bytes local to ``node_name``."""
        if node_name not in self._cache:
            self._cache[node_name] = self.store.locality_fraction(
                self.bucket, node_name
            )
        return self._cache[node_name]

    def invalidate(self) -> None:
        """Drop cached fractions after placement changes."""
        self._cache.clear()

    def best_nodes(self, node_names: Sequence[str], count: int) -> list[str]:
        """The ``count`` nodes with the highest locality, descending."""
        ranked = sorted(node_names, key=self.locality, reverse=True)
        return ranked[:count]
