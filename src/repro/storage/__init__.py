"""Shared data layer: object store model and dataset placement.

Stands in for the converged platform's shared storage service (an
H3-style object store over fast local devices). What matters for the
experiments is *where* dataset blocks live relative to compute: local
reads go over disk bandwidth, remote reads over (slower effective)
network bandwidth, which is the locality signal the converged scheduler
exploits.
"""

from repro.storage.objectstore import ObjectStore, StorageObject
from repro.storage.placement import DatasetPlacement, spread_blocks
from repro.storage.repair import StorageRepairService

__all__ = [
    "ObjectStore",
    "StorageObject",
    "DatasetPlacement",
    "spread_blocks",
    "StorageRepairService",
]
