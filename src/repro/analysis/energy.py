"""Energy accounting from per-node utilization series.

The DATE-venue concern: datacenter nodes draw substantial power even
idle, so *consolidating* work onto fewer nodes (and parking the empty
ones) saves energy that spreading forfeits. The model is the standard
linear one — parked power for nodes with nothing allocated, otherwise
idle power plus a dynamic term proportional to CPU utilization — applied
offline to the collector's ``node/<name>/...`` series.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.metrics.collector import MetricsCollector


@dataclass(frozen=True)
class PowerModel:
    """Linear node power model (watts).

    Parameters
    ----------
    parked_watts:
        Draw of a node with zero allocation (deep sleep / powered down by
        the cluster manager).
    idle_watts:
        Draw of an active node at 0% CPU.
    peak_watts:
        Draw at 100% CPU.
    park_threshold:
        Allocation fraction below which a node counts as parked.
    """

    parked_watts: float = 15.0
    idle_watts: float = 120.0
    peak_watts: float = 300.0
    park_threshold: float = 1e-6

    def __post_init__(self) -> None:
        if not 0 <= self.parked_watts <= self.idle_watts <= self.peak_watts:
            raise ValueError(
                "need 0 ≤ parked_watts ≤ idle_watts ≤ peak_watts"
            )

    def node_power(self, alloc_frac: float, cpu_usage_frac: float) -> float:
        """Instantaneous node draw in watts."""
        if alloc_frac <= self.park_threshold:
            return self.parked_watts
        dynamic = self.peak_watts - self.idle_watts
        return self.idle_watts + dynamic * max(0.0, min(1.0, cpu_usage_frac))


@dataclass(frozen=True)
class EnergyReport:
    """Energy over a window, per node and total."""

    window: float
    per_node_kwh: dict[str, float] = field(default_factory=dict)

    @property
    def total_kwh(self) -> float:
        return sum(self.per_node_kwh.values())

    @property
    def mean_watts(self) -> float:
        if self.window <= 0:
            return 0.0
        return self.total_kwh * 3.6e6 / self.window


def cluster_energy(
    collector: MetricsCollector,
    node_names: list[str],
    *,
    start: float,
    end: float,
    model: PowerModel | None = None,
) -> EnergyReport:
    """Integrate node power over ``[start, end]``.

    Walks each node's scraped ``alloc_frac``/``usage_frac`` samples and
    applies the power model stepwise (sample values hold until the next
    scrape).
    """
    model = model or PowerModel()
    if end <= start:
        raise ValueError("end must be after start")
    per_node: dict[str, float] = {}
    for name in node_names:
        alloc_series = collector.series(f"node/{name}/alloc_frac/cpu")
        usage_series = collector.series(f"node/{name}/usage_frac/cpu")
        times, allocs = alloc_series.to_lists()
        _times2, usages = usage_series.to_lists()
        joules = 0.0
        points = [
            (t, a, u)
            for t, a, u in zip(times, allocs, usages)
            if t <= end
        ]
        if not points:
            # Never scraped: assume parked for the whole window.
            per_node[name] = model.parked_watts * (end - start) / 3.6e6
            continue
        # Segment before the first sample: parked (nothing was running).
        first_time = max(start, points[0][0])
        joules += model.parked_watts * max(0.0, first_time - start)
        for i, (t, alloc, usage) in enumerate(points):
            seg_start = max(t, start)
            seg_end = points[i + 1][0] if i + 1 < len(points) else end
            seg_end = min(seg_end, end)
            if seg_end > seg_start:
                joules += model.node_power(alloc, usage) * (seg_end - seg_start)
        per_node[name] = joules / 3.6e6  # J → kWh
    return EnergyReport(window=end - start, per_node_kwh=per_node)
