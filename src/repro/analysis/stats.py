"""Experiment statistics: violation accounting, utilization, convergence.

The :class:`PLOMonitor` is deliberately separate from any autoscaling
policy and runs at its own fixed cadence, so every policy in a comparison
is judged by exactly the same yardstick.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.resources import RESOURCES
from repro.metrics.collector import MetricsCollector
from repro.metrics.timeseries import TimeSeries
from repro.sim.engine import Engine, PeriodicHandle
from repro.workloads.base import Application
from repro.workloads.plo import ViolationTracker

__all__ = [
    "PLOMonitor",
    "UtilizationSummary",
    "utilization_summary",
    "settling_time",
    "recovery_time",
    "overshoot",
]


class PLOMonitor:
    """Policy-independent PLO evaluation loop.

    Tracks a :class:`~repro.workloads.plo.ViolationTracker` per
    application and records ``plo/<app>/ratio`` and ``plo/<app>/violated``
    series for the figure benchmarks.
    """

    def __init__(
        self, engine: Engine, collector: MetricsCollector, *, interval: float = 5.0
    ):
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.engine = engine
        self.collector = collector
        self.interval = interval
        self._apps: list[Application] = []
        self.trackers: dict[str, ViolationTracker] = {}
        self._handle: PeriodicHandle | None = None

    def track(self, app: Application) -> ViolationTracker:
        """Start judging ``app`` (must carry a PLO)."""
        if app.plo is None:
            raise ValueError(f"application {app.name!r} has no PLO attached")
        if app.name in self.trackers:
            raise ValueError(f"application {app.name!r} already tracked")
        self._apps.append(app)
        tracker = ViolationTracker()
        self.trackers[app.name] = tracker
        return tracker

    def start(self) -> None:
        if self._handle is not None:
            raise RuntimeError("monitor already started")
        self._handle = self.engine.every(self.interval, self._loop, priority=10)

    def stop(self) -> None:
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    def _loop(self) -> None:
        now = self.engine.now
        for app in self._apps:
            if app.finished and app.plo.kind != "deadline":
                continue
            status = app.plo.evaluate(self.collector, app.name, now)
            self.trackers[app.name].observe(now, status)
            if status.ratio is not None:
                self.collector.record(f"plo/{app.name}/ratio", status.ratio)
                self.collector.record(
                    f"plo/{app.name}/violated", 1.0 if status.violated else 0.0
                )


@dataclass(frozen=True)
class UtilizationSummary:
    """Time-averaged cluster usage and allocation fractions per resource."""

    mean_usage: dict[str, float]
    mean_alloc: dict[str, float]

    @property
    def overall_usage(self) -> float:
        """Mean usage fraction across resource dimensions."""
        return sum(self.mean_usage.values()) / len(self.mean_usage)

    @property
    def overall_alloc(self) -> float:
        return sum(self.mean_alloc.values()) / len(self.mean_alloc)


def utilization_summary(
    collector: MetricsCollector, start: float, end: float
) -> UtilizationSummary:
    """Integrate the cluster gauge series over ``[start, end]``."""
    if end <= start:
        raise ValueError("end must be after start")
    span = end - start
    usage = {}
    alloc = {}
    for name in RESOURCES:
        usage[name] = collector.series(f"cluster/usage_frac/{name}").integrate(
            start, end
        ) / span
        alloc[name] = collector.series(f"cluster/alloc_frac/{name}").integrate(
            start, end
        ) / span
    return UtilizationSummary(usage, alloc)


def settling_time(
    series: TimeSeries,
    *,
    after: float,
    target: float,
    band: float = 0.1,
    hold: float = 30.0,
    horizon: float | None = None,
) -> float | None:
    """Time from ``after`` until the series enters and *stays* within
    ``target ± band·target`` for at least ``hold`` seconds.

    Returns None if it never settles within the observed samples (or
    before ``horizon``).

    Vectorized: the scan for the last excursion outside the band is a
    numpy mask operation over the whole series (comparisons only, so the
    result is identical to the sample-by-sample loop it replaced).
    """
    times, values = series.to_lists()
    t = np.asarray(times)
    v = np.asarray(values)
    keep = t >= after
    if horizon is not None:
        keep &= t <= horizon
    t, v = t[keep], v[keep]
    if t.size == 0:
        return None
    lo, hi = target * (1 - band), target * (1 + band)
    inside = (v >= lo) & (v <= hi)
    if not inside[-1]:
        return None
    outside = np.flatnonzero(~inside)
    candidate = float(t[0] if outside.size == 0 else t[outside[-1] + 1])
    if float(t[-1]) - candidate < hold:
        return None
    return candidate - after


def recovery_time(
    series: TimeSeries,
    *,
    after: float,
    threshold: float,
    hold: float = 60.0,
) -> float | None:
    """Time from ``after`` until the series drops to ``≤ threshold`` and
    stays there for at least ``hold`` seconds.

    The natural convergence metric for PLO ratios: "how long until the
    objective is met again, for good". Returns None if it never recovers
    within the observed samples. Vectorized like :func:`settling_time`.
    """
    times, values = series.to_lists()
    t = np.asarray(times)
    v = np.asarray(values)
    keep = t >= after
    t, v = t[keep], v[keep]
    if t.size == 0:
        return None
    ok = v <= threshold
    if not ok[-1]:
        return None
    bad = np.flatnonzero(~ok)
    candidate = float(t[0] if bad.size == 0 else t[bad[-1] + 1])
    if float(t[-1]) - candidate < hold:
        return None
    return candidate - after


def jains_index(values: list[float]) -> float:
    """Jain's fairness index over per-tenant shares.

    1.0 = perfectly equal; 1/n = one tenant hogs everything. Used to
    report how evenly the converged cluster serves its tenants.
    """
    if not values:
        raise ValueError("need at least one value")
    if any(v < 0 for v in values):
        raise ValueError("values must be non-negative")
    total = sum(values)
    if total == 0:
        return 1.0
    squares = sum(v * v for v in values)
    return (total * total) / (len(values) * squares)


def overshoot(
    series: TimeSeries, *, after: float, target: float, until: float | None = None
) -> float:
    """Peak relative excursion above ``target`` after time ``after``.

    Returns 0 when the series never exceeds the target. Vectorized;
    the maximum of per-sample excursions is order-independent, so the
    result matches the scalar loop exactly.
    """
    if target <= 0:
        return 0.0
    times, values = series.to_lists()
    t = np.asarray(times)
    v = np.asarray(values)
    keep = t >= after
    if until is not None:
        keep &= t <= until
    v = v[keep]
    if v.size == 0:
        return 0.0
    return max(0.0, float(np.max((v - target) / target)))
