"""Evaluation support: PLO monitoring, summary statistics, table output."""

from repro.analysis.stats import (
    PLOMonitor,
    UtilizationSummary,
    overshoot,
    recovery_time,
    settling_time,
    utilization_summary,
)
from repro.analysis.report import format_table, series_to_rows
from repro.analysis.cost import (
    CostReport,
    PriceSheet,
    app_cost,
    cluster_provisioned_cost,
)
from repro.analysis.energy import EnergyReport, PowerModel, cluster_energy
from repro.analysis.recovery import (
    EpisodeRecovery,
    FailoverStats,
    RecoveryStats,
    failover_stats,
    fault_recovery_report,
    reconvergence_time,
    series_divergence,
    summarize,
)
from repro.analysis.traces import (
    actuations,
    critical_path,
    end_to_end_reaction,
    latency_quantiles,
    reaction_latencies,
    triggering_scrape,
)

__all__ = [
    "PriceSheet",
    "CostReport",
    "app_cost",
    "cluster_provisioned_cost",
    "PowerModel",
    "EnergyReport",
    "cluster_energy",
    "PLOMonitor",
    "UtilizationSummary",
    "utilization_summary",
    "settling_time",
    "recovery_time",
    "overshoot",
    "format_table",
    "series_to_rows",
    "EpisodeRecovery",
    "FailoverStats",
    "RecoveryStats",
    "failover_stats",
    "fault_recovery_report",
    "reconvergence_time",
    "series_divergence",
    "summarize",
    "actuations",
    "critical_path",
    "end_to_end_reaction",
    "latency_quantiles",
    "reaction_latencies",
    "triggering_scrape",
]
