"""Parameter-sweep helper for extending the evaluation.

Runs a factory over the cartesian product of named parameter lists and
collects one result row per point — the pattern every benchmark in this
repository hand-rolls, packaged for new experiments::

    grid = sweep(
        {"policy": ["static", "adaptive"], "seed": [1, 2, 3]},
        run_point,          # (params: dict) -> Mapping[str, float]
    )
    print(format_table(grid.columns, grid.rows))
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence


@dataclass
class SweepResult:
    """All points of one sweep, in run order."""

    parameters: list[str]
    metrics: list[str]
    points: list[dict] = field(default_factory=list)

    @property
    def columns(self) -> list[str]:
        return self.parameters + self.metrics

    @property
    def rows(self) -> list[list]:
        return [
            [point[name] for name in self.columns] for point in self.points
        ]

    def filter(self, **fixed) -> list[dict]:
        """Points matching the given parameter values."""
        return [
            p for p in self.points
            if all(p[k] == v for k, v in fixed.items())
        ]

    def series(self, x: str, y: str, **fixed) -> list[tuple]:
        """(x, y) pairs for a figure line, at fixed other parameters."""
        return [(p[x], p[y]) for p in self.filter(**fixed)]


def sweep(
    grid: Mapping[str, Sequence],
    run_point: Callable[[dict], Mapping[str, float]],
) -> SweepResult:
    """Run ``run_point`` over the cartesian product of ``grid``.

    ``run_point`` receives one dict of parameters and returns a mapping
    of metric name → value; metric names must be consistent across
    points. Points run in deterministic (itertools.product) order.
    """
    if not grid:
        raise ValueError("grid must name at least one parameter")
    names = list(grid)
    for name, values in grid.items():
        if not values:
            raise ValueError(f"parameter {name!r} has no values")
    result: SweepResult | None = None
    for combo in itertools.product(*(grid[name] for name in names)):
        params = dict(zip(names, combo))
        metrics = dict(run_point(dict(params)))
        if result is None:
            result = SweepResult(parameters=names, metrics=sorted(metrics))
        if sorted(metrics) != result.metrics:
            raise ValueError(
                f"inconsistent metrics at {params!r}: "
                f"{sorted(metrics)} vs {result.metrics}"
            )
        result.points.append({**params, **metrics})
    assert result is not None
    return result
