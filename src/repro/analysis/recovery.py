"""Per-fault-episode recovery analysis: MTTR and re-convergence.

Joins the :class:`~repro.cluster.chaos.FaultLog` written by the fault
injectors against the control loop's recorded ``control/<app>/error``
series to answer, per episode: how long did the fault last (MTTR at the
infrastructure level), and how long after injection did each managed
application's PLO error settle back inside the deadband (re-convergence
at the control level)?

Used by ``benchmarks/bench_t7_fault_matrix.py`` and the robustness tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from repro.cluster.chaos import FaultEpisode, FaultLog
from repro.metrics.collector import MetricsCollector


def reconvergence_time(
    collector: MetricsCollector,
    app: str,
    start: float,
    *,
    threshold: float = 0.15,
    settle: int = 3,
    horizon: float | None = None,
) -> float | None:
    """Seconds from ``start`` until the app's PLO error settles.

    PLO errors are signed with positive = violating (negative means the
    objective is overachieved, which is fine), so settled means
    ``settle`` consecutive ``control/<app>/error`` samples with
    ``error ≤ threshold``; the re-convergence instant is the last sample
    of that run. Returns None when the error never settles inside
    ``horizon`` (or by the end of the series), or the series is absent —
    a fault the controller did not recover from.
    """
    if settle < 1:
        raise ValueError("settle must be ≥ 1")
    name = f"control/{app}/error"
    if not collector.has_series(name):
        return None
    end = start + horizon if horizon is not None else float("inf")
    run = 0
    for t, value in zip(*collector.series(name).to_lists()):
        if t < start:
            continue
        if t > end:
            break
        run = run + 1 if value <= threshold else 0
        if run >= settle:
            return t - start
    return None


@dataclass(frozen=True)
class EpisodeRecovery:
    """Recovery outcome of one fault episode across the managed apps."""

    episode: FaultEpisode
    #: Episode duration (injection → heal); None while still active.
    mttr: float | None
    #: Per-app seconds from injection to settled PLO error (None = never).
    reconvergence: Mapping[str, float | None]

    def worst_reconvergence(self) -> float | None:
        """Slowest app re-convergence; None when any app never settled."""
        values = list(self.reconvergence.values())
        if not values or any(v is None for v in values):
            return None
        return max(values)


@dataclass(frozen=True)
class RecoveryStats:
    """Aggregate over a set of :class:`EpisodeRecovery`."""

    episodes: int
    healed: int
    mean_mttr: float | None
    max_mttr: float | None
    mean_reconvergence: float | None
    max_reconvergence: float | None
    unconverged: int


def fault_recovery_report(
    log: FaultLog,
    collector: MetricsCollector,
    apps: Sequence[str],
    *,
    threshold: float = 0.15,
    settle: int = 3,
    horizon: float | None = None,
    kinds: Iterable[str] | None = None,
) -> list[EpisodeRecovery]:
    """Build one :class:`EpisodeRecovery` per logged episode.

    ``kinds`` filters episodes by fault kind; default is all of them.
    """
    wanted = set(kinds) if kinds is not None else None
    reports = []
    for episode in log.episodes:
        if wanted is not None and episode.kind not in wanted:
            continue
        recon = {
            app: reconvergence_time(
                collector, app, episode.start,
                threshold=threshold, settle=settle, horizon=horizon,
            )
            for app in apps
        }
        reports.append(EpisodeRecovery(episode, episode.duration(), recon))
    return reports


@dataclass(frozen=True)
class FailoverStats:
    """Aggregate over control-plane :class:`~repro.control.ha.FailoverEvent`.

    Only events with a measured ``gap`` count as failovers — the initial
    election has nothing to fail over from.
    """

    elections: int
    failovers: int
    mean_gap: float | None
    max_gap: float | None
    snapshot_restores: int
    wal_replayed: int
    wal_deduped: int
    wal_reissued: int
    wal_failed: int


def failover_stats(events: Sequence) -> FailoverStats:
    """Summarize a control plane's ``failovers`` list (R-T8 reporting)."""
    gaps = [e.gap for e in events if e.gap is not None]
    return FailoverStats(
        elections=len(events),
        failovers=len(gaps),
        mean_gap=sum(gaps) / len(gaps) if gaps else None,
        max_gap=max(gaps) if gaps else None,
        snapshot_restores=sum(1 for e in events if e.snapshot_restored),
        wal_replayed=sum(e.wal_replayed for e in events),
        wal_deduped=sum(e.wal_deduped for e in events),
        wal_reissued=sum(e.wal_reissued for e in events),
        wal_failed=sum(e.wal_failed for e in events),
    )


def series_divergence(
    collector_a: MetricsCollector,
    collector_b: MetricsCollector,
    name: str,
    *,
    start: float,
    end: float,
    step: float = 10.0,
) -> float | None:
    """Max absolute difference between two runs' series over [start, end].

    Samples both series on a fixed grid with step interpolation, so runs
    with slightly different sample times still compare. Used to measure
    how far a failover run's allocations drift from a crash-free run of
    the same seed. Returns None when either series is absent or never
    overlaps the window.
    """
    if step <= 0:
        raise ValueError("step must be positive")
    if not collector_a.has_series(name) or not collector_b.has_series(name):
        return None
    series_a = collector_a.series(name)
    series_b = collector_b.series(name)
    worst: float | None = None
    t = start
    while t <= end + 1e-9:
        va = series_a.value_at(t)
        vb = series_b.value_at(t)
        if va is not None and vb is not None:
            diff = abs(va - vb)
            if worst is None or diff > worst:
                worst = diff
        t += step
    return worst


def summarize(reports: Sequence[EpisodeRecovery]) -> RecoveryStats:
    """Aggregate MTTR / re-convergence across episodes."""
    mttrs = [r.mttr for r in reports if r.mttr is not None]
    worsts = [r.worst_reconvergence() for r in reports]
    settled = [w for w in worsts if w is not None]
    return RecoveryStats(
        episodes=len(reports),
        healed=len(mttrs),
        mean_mttr=sum(mttrs) / len(mttrs) if mttrs else None,
        max_mttr=max(mttrs) if mttrs else None,
        mean_reconvergence=sum(settled) / len(settled) if settled else None,
        max_reconvergence=max(settled) if settled else None,
        unconverged=len(worsts) - len(settled),
    )
