"""Trace analysis: reaction latency and causal critical paths.

Built on the causal links the tracer records (actuate → decide →
scrape): every applied allocation change can be walked back to the
scrape round that stored the sample it reacted to, which turns the
trace into a measurement instrument for the control plane's end-to-end
responsiveness — the R-T9 experiment.

Two latency notions:

* **Per-actuation reaction latency** (:func:`reaction_latencies`) —
  scrape-to-actuation lag of each applied change. Near zero on a
  healthy pipeline (scrape and decide share an engine tick) and growing
  under scrape faults, retry backoff, and breaker windows.
* **End-to-end step reaction** (:func:`end_to_end_reaction`) — from an
  externally-known load-step timestamp to the first matching actuation,
  the classic control-theoretic reaction time of the whole platform.
"""

from __future__ import annotations

from repro.obs.tracing import Span, Trace


def actuations(trace: Trace, app: str | None = None, *,
               applied_only: bool = True) -> list[Span]:
    """Actuate spans, optionally for one app / only applied ones."""
    spans = trace.by_name("actuate")
    if app is not None:
        spans = [s for s in spans if s.args.get("app") == app]
    if applied_only:
        spans = [s for s in spans if s.args.get("outcome") == "applied"]
    return spans


def triggering_scrape(trace: Trace, span: Span) -> Span | None:
    """The scrape span an actuation (or decision) causally descends from."""
    for ancestor in trace.parent_chain(span):
        if ancestor.name == "scrape":
            return ancestor
    return None


def critical_path(trace: Trace, span: Span) -> list[Span]:
    """Causal chain from the triggering scrape down to ``span``.

    Root-first (scrape → decide → actuate), i.e. the reversed parent
    chain — the path a sample travelled to become an allocation change.
    """
    return list(reversed(trace.parent_chain(span)))


def reaction_latencies(trace: Trace, app: str | None = None) -> list[float]:
    """Scrape-to-actuation latency (s) of every applied actuation.

    Actuations whose parent chain does not reach a scrape span (e.g.
    re-issued WAL records after failover) are skipped.
    """
    out = []
    for span in actuations(trace, app):
        scrape = triggering_scrape(trace, span)
        if scrape is not None:
            out.append(span.start - scrape.start)
    return out


def latency_quantiles(
    values: list[float], qs: tuple[int, ...] = (50, 95, 99)
) -> dict[str, float]:
    """Nearest-rank percentiles keyed ``p50``/``p95``/``p99``."""
    if not values:
        raise ValueError("no latencies to summarize")
    ordered = sorted(values)
    out = {}
    for q in qs:
        rank = max(0, -(-q * len(ordered) // 100) - 1)  # ceil - 1
        out[f"p{q}"] = ordered[rank]
    return out


def top_reaction_paths(
    trace: Trace, k: int = 5
) -> list[dict]:
    """The ``k`` slowest scrape→actuation critical paths, summarized.

    Each entry names the actuated app, the reaction latency, and the
    root-first chain of (name, cat, start) hops — the flight recorder's
    "where did the time go" view. Actuations that don't causally descend
    from a scrape are skipped, matching :func:`reaction_latencies`.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    scored: list[tuple[float, Span]] = []
    for span in actuations(trace):
        scrape = triggering_scrape(trace, span)
        if scrape is not None:
            scored.append((span.start - scrape.start, span))
    scored.sort(key=lambda pair: (-pair[0], pair[1].id))
    out = []
    for latency, span in scored[:k]:
        path = critical_path(trace, span)
        out.append({
            "app": span.args.get("app"),
            "latency": latency,
            "actuated_at": span.start,
            "path": [
                {"name": s.name, "cat": s.cat, "start": s.start}
                for s in path
            ],
        })
    return out


def end_to_end_reaction(
    trace: Trace,
    step_time: float,
    app: str,
    *,
    action: str = "grow",
) -> float | None:
    """Seconds from a load step to the first matching applied actuation.

    ``step_time`` is external knowledge (the scenario's step timestamp);
    the first applied actuation at or after it whose parent decide span
    took ``action`` closes the loop. None when the run never reacted.
    """
    candidates = sorted(actuations(trace, app), key=lambda s: s.start)
    for span in candidates:
        if span.start < step_time:
            continue
        parent = (
            trace.get(span.parent_id) if span.parent_id is not None else None
        )
        if parent is not None and parent.args.get("action") == action:
            return span.start - step_time
    return None
