"""Plain-text tables and series dumps for the benchmark harness.

Every benchmark prints its table/figure data through these helpers so the
outputs in EXPERIMENTS.md regenerate byte-comparably.
"""

from __future__ import annotations

from typing import Sequence

from repro.metrics.timeseries import TimeSeries


def _format_cell(value: object) -> str:
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if abs(value) >= 1000 or (abs(value) < 0.01 and value != 0):
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render an aligned, pipe-separated text table."""
    str_rows = [[_format_cell(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError("row length does not match headers")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("-+-".join("-" * w for w in widths))
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def series_to_rows(
    series: TimeSeries, *, step: float, start: float, end: float
) -> list[tuple[float, float]]:
    """Resample a series at fixed steps (step interpolation) for figures."""
    if step <= 0:
        raise ValueError("step must be positive")
    rows = []
    t = start
    while t <= end + 1e-9:
        value = series.value_at(t)
        if value is not None:
            rows.append((t, value))
        t += step
    return rows
