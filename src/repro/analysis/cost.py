"""Cost accounting over allocation time-series.

Computes what each application's reserved resources would cost at
cloud-style unit prices, entirely offline from the collector's
``app/<name>/alloc/<resource>`` series — the platform needs no runtime
hooks. The evaluation uses it to translate reclaimed allocation (R-T2)
into money, the argument the paper's converged platform makes to
operators.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.resources import RESOURCES, ResourceVector
from repro.metrics.collector import MetricsCollector


@dataclass(frozen=True)
class PriceSheet:
    """Unit prices per resource-hour.

    Defaults are loosely modelled on public-cloud on-demand pricing:
    $/core-hour, $/GiB-hour, and $/ (MB/s)-hour for provisioned disk and
    network bandwidth.
    """

    cpu_hour: float = 0.048
    memory_gib_hour: float = 0.006
    disk_bw_mbs_hour: float = 0.0008
    net_bw_mbs_hour: float = 0.0004

    def __post_init__(self) -> None:
        if min(self.cpu_hour, self.memory_gib_hour,
               self.disk_bw_mbs_hour, self.net_bw_mbs_hour) < 0:
            raise ValueError("prices must be non-negative")

    def as_vector(self) -> ResourceVector:
        """Prices as a vector aligned with :data:`RESOURCES`."""
        return ResourceVector(
            cpu=self.cpu_hour,
            memory=self.memory_gib_hour,
            disk_bw=self.disk_bw_mbs_hour,
            net_bw=self.net_bw_mbs_hour,
        )

    def rate(self, allocation: ResourceVector) -> float:
        """$ per hour for holding ``allocation``."""
        prices = self.as_vector()
        return sum(allocation[r] * prices[r] for r in RESOURCES)


@dataclass(frozen=True)
class CostReport:
    """Cost breakdown for one application over a window."""

    app: str
    window: float
    per_resource: dict[str, float] = field(default_factory=dict)

    @property
    def total(self) -> float:
        return sum(self.per_resource.values())


def app_cost(
    collector: MetricsCollector,
    app: str,
    *,
    prices: PriceSheet | None = None,
    start: float = 0.0,
    end: float | None = None,
) -> CostReport:
    """Integrate an app's allocation series into dollars.

    Allocation series are app-aggregate (all replicas), so the result is
    the whole application's bill for ``[start, end]``.
    """
    prices = prices or PriceSheet()
    if end is None:
        end = collector.engine.now
    if end <= start:
        raise ValueError("end must be after start")
    price_vec = prices.as_vector()
    per_resource = {}
    for resource in RESOURCES:
        series_name = f"app/{app}/alloc/{resource}"
        if not collector.has_series(series_name):
            per_resource[resource] = 0.0
            continue
        unit_seconds = collector.series(series_name).integrate(start, end)
        per_resource[resource] = (unit_seconds / 3600.0) * price_vec[resource]
    return CostReport(app=app, window=end - start, per_resource=per_resource)


def cluster_provisioned_cost(
    capacity: ResourceVector,
    duration_seconds: float,
    *,
    prices: PriceSheet | None = None,
) -> float:
    """$ cost of keeping ``capacity`` provisioned for the duration.

    The operator-side denominator: hardware is paid for whether or not
    allocations use it, which is why reclaimed utilization is money.
    """
    prices = prices or PriceSheet()
    if duration_seconds < 0:
        raise ValueError("duration must be non-negative")
    return prices.rate(capacity) * duration_seconds / 3600.0
