"""Append-only time series with windowed aggregation.

Samples are ``(time, value)`` pairs appended in non-decreasing time order.
Retention is bounded (ring buffer) so day-long simulations stay memory-flat.
"""

from __future__ import annotations

import bisect
import math
from collections import deque
from typing import Iterable


class TimeSeries:
    """Bounded time-ordered series of float samples.

    Parameters
    ----------
    maxlen:
        Maximum retained samples; older samples are dropped FIFO.
    """

    def __init__(self, *, maxlen: int = 100_000):
        self._times: deque[float] = deque(maxlen=maxlen)
        self._values: deque[float] = deque(maxlen=maxlen)

    def __len__(self) -> int:
        return len(self._times)

    def append(self, time: float, value: float) -> None:
        """Append a sample; time must be ≥ the last appended time."""
        if self._times and time < self._times[-1]:
            raise ValueError(
                f"out-of-order sample: t={time} after t={self._times[-1]}"
            )
        self._times.append(float(time))
        self._values.append(float(value))

    # -- point queries -------------------------------------------------------

    def last(self) -> float | None:
        """Most recent value, or None when empty."""
        return self._values[-1] if self._values else None

    def last_time(self) -> float | None:
        return self._times[-1] if self._times else None

    def value_at(self, time: float) -> float | None:
        """Last value at or before ``time`` (step interpolation)."""
        times = list(self._times)
        idx = bisect.bisect_right(times, time) - 1
        if idx < 0:
            return None
        return list(self._values)[idx]

    # -- window queries ------------------------------------------------------

    def window(self, start: float, end: float) -> list[tuple[float, float]]:
        """Samples with ``start < t ≤ end`` (Prometheus-style range)."""
        return [
            (t, v)
            for t, v in zip(self._times, self._values)
            if start < t <= end
        ]

    def _window_values(self, now: float, span: float) -> list[float]:
        return [v for _t, v in self.window(now - span, now)]

    def mean_over(self, now: float, span: float) -> float | None:
        """Arithmetic mean of samples in the trailing window."""
        values = self._window_values(now, span)
        return sum(values) / len(values) if values else None

    def max_over(self, now: float, span: float) -> float | None:
        values = self._window_values(now, span)
        return max(values) if values else None

    def min_over(self, now: float, span: float) -> float | None:
        values = self._window_values(now, span)
        return min(values) if values else None

    def percentile_over(self, now: float, span: float, q: float) -> float | None:
        """q-th percentile (0–100, nearest-rank) over the trailing window."""
        if not 0 <= q <= 100:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        values = sorted(self._window_values(now, span))
        if not values:
            return None
        rank = max(0, math.ceil(q / 100 * len(values)) - 1)
        return values[rank]

    def sum_over(self, now: float, span: float) -> float:
        return sum(self._window_values(now, span))

    def count_over(self, now: float, span: float) -> int:
        return len(self._window_values(now, span))

    def rate_over(self, now: float, span: float) -> float | None:
        """Per-second increase of a monotonically-growing counter.

        Uses first/last samples in the window; None with <2 samples.
        """
        samples = self.window(now - span, now)
        if len(samples) < 2:
            return None
        (t0, v0), (t1, v1) = samples[0], samples[-1]
        if t1 <= t0:
            return None
        return (v1 - v0) / (t1 - t0)

    def ewma(self, alpha: float, *, count: int | None = None) -> float | None:
        """Exponentially-weighted mean of the most recent ``count`` samples.

        ``alpha`` is the smoothing factor in (0, 1]; larger weights recent
        samples more heavily.
        """
        if not 0 < alpha <= 1:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        values: Iterable[float] = self._values
        if count is not None:
            values = list(self._values)[-count:]
        result: float | None = None
        for v in values:
            result = v if result is None else alpha * v + (1 - alpha) * result
        return result

    def integrate(self, start: float, end: float) -> float:
        """Left-step time integral of the series over ``[start, end]``.

        The value at each sample holds until the next sample; the last
        value extends to ``end``. Returns 0 with no samples before ``end``.
        """
        if end <= start:
            return 0.0
        points = [(t, v) for t, v in zip(self._times, self._values) if t <= end]
        if not points:
            return 0.0
        total = 0.0
        for i, (t, v) in enumerate(points):
            seg_start = max(t, start)
            seg_end = points[i + 1][0] if i + 1 < len(points) else end
            seg_end = min(seg_end, end)
            if seg_end > seg_start:
                total += v * (seg_end - seg_start)
        return total

    def to_lists(self) -> tuple[list[float], list[float]]:
        """Copies of (times, values), e.g. for plotting or export."""
        return list(self._times), list(self._values)
