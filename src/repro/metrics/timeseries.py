"""Append-only time series with windowed aggregation.

Samples are ``(time, value)`` pairs appended in non-decreasing time order.
Retention is bounded (FIFO) so day-long simulations stay memory-flat.

Storage is a pair of plain lists with a start offset instead of deques:
lists are directly bisectable, so point and window queries are
O(log n + window) without copying the whole buffer — ``value_at`` used to
materialize every retained sample per call, which put an O(n) term in
every controller tick and every CSV export row. Eviction advances the
offset and compacts lazily (amortized O(1) per append, ≤2× ``maxlen``
transient memory).
"""

from __future__ import annotations

import bisect
import math

import numpy as np

#: Window size beyond which extrema / rank queries switch to numpy.
#: Below it, list built-ins win (no array materialization); above it,
#: vectorized partition/extrema are several times faster. Both paths
#: return identical values (selection and comparison only — no
#: re-ordered floating-point accumulation), so the cutover is invisible
#: to seeded experiments.
_VECTORIZE_MIN = 64


class TimeSeries:
    """Bounded time-ordered series of float samples.

    Parameters
    ----------
    maxlen:
        Maximum retained samples; older samples are dropped FIFO.
    """

    __slots__ = ("_times", "_values", "_maxlen", "_start")

    def __init__(self, *, maxlen: int = 100_000):
        if maxlen < 1:
            raise ValueError("maxlen must be ≥ 1")
        self._maxlen = maxlen
        self._times: list[float] = []
        self._values: list[float] = []
        self._start = 0  # index of the oldest retained sample

    def __len__(self) -> int:
        return len(self._times) - self._start

    def append(self, time: float, value: float) -> None:
        """Append a sample; time must be ≥ the last appended time."""
        times = self._times
        if times and time < times[-1]:
            raise ValueError(
                f"out-of-order sample: t={time} after t={times[-1]}"
            )
        # Skip the float() coercion for exact floats (the hot path); the
        # isinstance guard keeps ints/bools normalized as before.
        times.append(time if type(time) is float else float(time))
        self._values.append(value if type(value) is float else float(value))
        if len(times) - self._start > self._maxlen:
            self._start += 1
            if self._start >= self._maxlen:
                del times[: self._start]
                del self._values[: self._start]
                self._start = 0

    # -- point queries -------------------------------------------------------

    def last(self) -> float | None:
        """Most recent value, or None when empty."""
        values = self._values
        return values[-1] if len(values) > self._start else None

    def last_time(self) -> float | None:
        times = self._times
        return times[-1] if len(times) > self._start else None

    def value_at(self, time: float) -> float | None:
        """Last value at or before ``time`` (step interpolation)."""
        idx = bisect.bisect_right(self._times, time, self._start) - 1
        if idx < self._start:
            return None
        return self._values[idx]

    # -- window queries ------------------------------------------------------

    def _window_bounds(self, start: float, end: float) -> tuple[int, int]:
        """Index range [lo, hi) of samples with ``start < t ≤ end``."""
        lo = bisect.bisect_right(self._times, start, self._start)
        hi = bisect.bisect_right(self._times, end, self._start)
        return lo, hi

    def window(self, start: float, end: float) -> list[tuple[float, float]]:
        """Samples with ``start < t ≤ end`` (Prometheus-style range)."""
        lo, hi = self._window_bounds(start, end)
        return list(zip(self._times[lo:hi], self._values[lo:hi]))

    def _window_values(self, now: float, span: float) -> list[float]:
        lo, hi = self._window_bounds(now - span, now)
        return self._values[lo:hi]

    def mean_over(self, now: float, span: float) -> float | None:
        """Arithmetic mean of samples in the trailing window."""
        values = self._window_values(now, span)
        return sum(values) / len(values) if values else None

    def max_over(self, now: float, span: float) -> float | None:
        values = self._window_values(now, span)
        if not values:
            return None
        if len(values) >= _VECTORIZE_MIN:
            return float(np.max(np.asarray(values)))
        return max(values)

    def min_over(self, now: float, span: float) -> float | None:
        values = self._window_values(now, span)
        if not values:
            return None
        if len(values) >= _VECTORIZE_MIN:
            return float(np.min(np.asarray(values)))
        return min(values)

    def percentile_over(self, now: float, span: float, q: float) -> float | None:
        """q-th percentile (0–100, nearest-rank) over the trailing window."""
        if not 0 <= q <= 100:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        values = self._window_values(now, span)
        if not values:
            return None
        rank = max(0, math.ceil(q / 100 * len(values)) - 1)
        if len(values) >= _VECTORIZE_MIN:
            # np.partition selects the k-th smallest — the same value
            # sorted()[rank] yields — without a full sort.
            return float(np.partition(np.asarray(values), rank)[rank])
        return sorted(values)[rank]

    def sum_over(self, now: float, span: float) -> float:
        return sum(self._window_values(now, span))

    def count_over(self, now: float, span: float) -> int:
        lo, hi = self._window_bounds(now - span, now)
        return hi - lo

    def rate_over(self, now: float, span: float) -> float | None:
        """Per-second increase of a monotonically-growing counter.

        Uses first/last samples in the window; None with <2 samples.
        """
        lo, hi = self._window_bounds(now - span, now)
        if hi - lo < 2:
            return None
        t0, v0 = self._times[lo], self._values[lo]
        t1, v1 = self._times[hi - 1], self._values[hi - 1]
        if t1 <= t0:
            return None
        return (v1 - v0) / (t1 - t0)

    def ewma(self, alpha: float, *, count: int | None = None) -> float | None:
        """Exponentially-weighted mean of the most recent ``count`` samples.

        ``alpha`` is the smoothing factor in (0, 1]; larger weights recent
        samples more heavily.
        """
        if not 0 < alpha <= 1:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        lo = self._start
        if count is not None:
            lo = max(lo, len(self._values) - count)
        result: float | None = None
        for i in range(lo, len(self._values)):
            v = self._values[i]
            result = v if result is None else alpha * v + (1 - alpha) * result
        return result

    def integrate(self, start: float, end: float) -> float:
        """Left-step time integral of the series over ``[start, end]``.

        The value at each sample holds until the next sample; the last
        value extends to ``end``. Returns 0 with no samples before ``end``.
        """
        if end <= start:
            return 0.0
        hi = bisect.bisect_right(self._times, end, self._start)
        if hi <= self._start:
            return 0.0
        total = 0.0
        for i in range(self._start, hi):
            seg_start = max(self._times[i], start)
            seg_end = self._times[i + 1] if i + 1 < hi else end
            seg_end = min(seg_end, end)
            if seg_end > seg_start:
                total += self._values[i] * (seg_end - seg_start)
        return total

    def to_lists(self) -> tuple[list[float], list[float]]:
        """Copies of (times, values), e.g. for plotting or export."""
        return self._times[self._start:], self._values[self._start:]


class ChangePointQueryError(TypeError):
    """A windowed aggregate was read from a change-point-encoded series."""


class ChangePointSeries(TimeSeries):
    """A series whose samples are change points, not uniform ticks.

    Telemetry ``ctrl/*`` series are delta-suppressed at scrape time (see
    :meth:`repro.obs.telemetry.Telemetry.sample_metrics`): a sample is
    appended only when the value moved. Step reads (``last``,
    ``value_at``, ``window``, ``integrate``) stay exact because step
    interpolation carries the last value forward — but windowed
    aggregates would weight change points instead of uniform scrape
    ticks and silently return garbage. This subclass turns that
    contract violation into an immediate :class:`ChangePointQueryError`.
    """

    _FORBIDDEN = (
        "mean_over", "max_over", "min_over", "percentile_over",
        "sum_over", "count_over", "rate_over", "ewma",
    )

    def _refuse(self, name: str):
        raise ChangePointQueryError(
            f"{name}() is not meaningful on a change-point-encoded series: "
            "samples mark value *changes*, not uniform scrape ticks, so "
            "windowed aggregates would be weighted by change frequency. "
            "Use last()/value_at()/window()/integrate() instead "
            "(see docs/performance.md)."
        )

    def mean_over(self, now: float, span: float) -> float | None:
        self._refuse("mean_over")

    def max_over(self, now: float, span: float) -> float | None:
        self._refuse("max_over")

    def min_over(self, now: float, span: float) -> float | None:
        self._refuse("min_over")

    def percentile_over(self, now: float, span: float, q: float) -> float | None:
        self._refuse("percentile_over")

    def sum_over(self, now: float, span: float) -> float:
        self._refuse("sum_over")

    def count_over(self, now: float, span: float) -> int:
        self._refuse("count_over")

    def rate_over(self, now: float, span: float) -> float | None:
        self._refuse("rate_over")

    def ewma(self, alpha: float, *, count: int | None = None) -> float | None:
        self._refuse("ewma")
