"""Metrics-pipeline fault injection.

Real scrape pipelines drop samples, freeze on stale exporters, and emit
the occasional garbage outlier; a controller evaluated only on a perfect
pipeline overstates its robustness. :class:`MetricsFaultInjector` sits in
front of :class:`~repro.metrics.collector.MetricsCollector` and distorts
what gets stored:

* **Dropped scrapes** — whole scrape rounds skipped, probabilistically
  or for a window (:meth:`drop_scrapes`). No series advances, so
  freshness-based consumers (the control loop's stale-signal holddown)
  see aging timestamps.
* **Per-prefix blackouts** — samples for one source (e.g. ``app/web``)
  dropped for a window (:meth:`blackout`): the per-app scrape blackout.
* **Frozen series** — samples for a prefix replaced by the last stored
  value (:meth:`freeze`): timestamps stay fresh but the values are stale,
  the hardest staleness mode to detect.
* **Outliers** — samples multiplied by a large factor with some
  probability (:meth:`inject_noise` or ``outlier_probability``), the
  mis-scrape / unit-glitch case.

All faults are deterministic given the injected RNG, and window faults
are recorded into the shared :class:`~repro.cluster.chaos.FaultLog` for
MTTR analysis. Out-of-band :meth:`~repro.metrics.collector.MetricsCollector.record`
calls (controller internals) are never distorted — only scraped samples.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.chaos import FaultEpisode, FaultLog


class MetricsFaultInjector:
    """Deterministic fault filter for the scrape path."""

    def __init__(
        self,
        rng: np.random.Generator | None = None,
        *,
        log: FaultLog | None = None,
    ):
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self.log = log if log is not None else FaultLog()
        #: Per-scrape probability of dropping the whole round (continuous).
        self.drop_scrape_probability = 0.0
        #: Per-sample probability of multiplying by ``outlier_factor``.
        self.outlier_probability = 0.0
        self.outlier_factor = 10.0
        self._drop_window: tuple[float, float] = (0.0, 1.0)  # (until, prob)
        self._noise_window: tuple[float, float, float] = (0.0, 0.0, 1.0)
        self._blackouts: dict[str, float] = {}  # prefix -> until
        self._frozen: dict[str, float] = {}  # prefix -> until
        self.scrapes_dropped = 0
        self.samples_dropped = 0
        self.samples_frozen = 0
        self.outliers_injected = 0
        #: Optional :class:`~repro.obs.telemetry.Telemetry` bundle.
        self.telemetry = None

    # -- fault verbs ---------------------------------------------------------

    def drop_scrapes(
        self, now: float, duration: float, *, probability: float = 1.0
    ) -> FaultEpisode:
        """Drop scrape rounds (with ``probability``) for a window."""
        if duration <= 0:
            raise ValueError("duration must be positive")
        if not 0.0 < probability <= 1.0:
            raise ValueError("probability must be in (0, 1]")
        self._drop_window = (now + duration, probability)
        return self.log.record(
            "scrape-drop", "collector", now, now + duration,
            detail=f"probability={probability:g}",
        )

    def blackout(self, prefix: str, now: float, duration: float) -> FaultEpisode:
        """Drop every sample under ``prefix`` for a window."""
        if duration <= 0:
            raise ValueError("duration must be positive")
        self._blackouts[prefix] = max(
            self._blackouts.get(prefix, 0.0), now + duration
        )
        return self.log.record("scrape-blackout", prefix, now, now + duration)

    def freeze(self, prefix: str, now: float, duration: float) -> FaultEpisode:
        """Freeze samples under ``prefix`` at their last stored value."""
        if duration <= 0:
            raise ValueError("duration must be positive")
        self._frozen[prefix] = max(self._frozen.get(prefix, 0.0), now + duration)
        return self.log.record("metrics-freeze", prefix, now, now + duration)

    def inject_noise(
        self,
        now: float,
        duration: float,
        *,
        probability: float = 0.2,
        factor: float = 10.0,
    ) -> FaultEpisode:
        """Outlier window: each sample ×``factor`` with ``probability``."""
        if duration <= 0:
            raise ValueError("duration must be positive")
        if not 0.0 < probability <= 1.0:
            raise ValueError("probability must be in (0, 1]")
        self._noise_window = (now + duration, probability, factor)
        return self.log.record(
            "metrics-noise", "collector", now, now + duration,
            detail=f"probability={probability:g} factor={factor:g}",
        )

    # -- filter interface (called by the collector) --------------------------

    def distorts_samples(self, now: float) -> bool:
        """Whether any per-sample fault could fire at ``now``.

        The collector checks this once per scrape round and skips the
        per-sample :meth:`filter` entirely on a quiescent pipeline — the
        overwhelmingly common case. Safe for seeded determinism: when
        this returns False, :meth:`filter` would return every value
        unchanged and draw no RNG.
        """
        if self.outlier_probability > 0.0:
            return True
        if now < self._noise_window[0] and self._noise_window[1] > 0.0:
            return True
        for until in self._blackouts.values():
            if now < until:
                return True
        for until in self._frozen.values():
            if now < until:
                return True
        return False

    def should_drop_scrape(self, now: float) -> bool:
        until, prob = self._drop_window
        window_prob = prob if now < until else 0.0
        effective = max(window_prob, self.drop_scrape_probability)
        if effective > 0.0 and float(self.rng.random()) < effective:
            self.scrapes_dropped += 1
            return True
        return False

    def _match(self, table: dict[str, float], name: str, now: float) -> bool:
        for prefix, until in table.items():
            if now < until and name.startswith(prefix):
                return True
        return False

    def filter(
        self, name: str, value: float, now: float, last: float | None
    ) -> float | None:
        """Distort one scraped sample; None means drop it."""
        if self._match(self._blackouts, name, now):
            self.samples_dropped += 1
            if self.telemetry is not None:
                self.telemetry.samples_distorted.inc()
            return None
        if self._match(self._frozen, name, now):
            self.samples_frozen += 1
            if self.telemetry is not None:
                self.telemetry.samples_distorted.inc()
            # No history yet: nothing to freeze to, drop the sample.
            return last if last is not None else None
        until, prob, factor = self._noise_window
        window_prob = prob if now < until else 0.0
        effective = max(window_prob, self.outlier_probability)
        if effective > 0.0 and float(self.rng.random()) < effective:
            self.outliers_injected += 1
            if self.telemetry is not None:
                self.telemetry.samples_distorted.inc()
            scale = factor if now < until else self.outlier_factor
            return value * scale
        return value
