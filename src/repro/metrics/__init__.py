"""Metrics pipeline: time series and the scrape loop.

Stands in for Prometheus + metrics-server: workload models and the cluster
are sampled on a fixed scrape cadence, and controllers consume windowed
aggregates (mean, percentile, EWMA) exactly as they would from a real
monitoring stack — including the staleness a scrape interval introduces.
"""

from repro.metrics.timeseries import TimeSeries
from repro.metrics.collector import MetricsCollector, MetricsSource
from repro.metrics.faults import MetricsFaultInjector

__all__ = [
    "TimeSeries",
    "MetricsCollector",
    "MetricsSource",
    "MetricsFaultInjector",
]
