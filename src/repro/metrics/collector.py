"""Scrape loop aggregating workload and cluster metrics.

Workload models register as :class:`MetricsSource`; every scrape interval
the collector samples each source plus cluster-wide allocation/usage, and
stores everything in named :class:`~repro.metrics.timeseries.TimeSeries`.
Controllers read only from the collector, so they see metrics at scrape
granularity — the same staleness a real PID loop fights.
"""

from __future__ import annotations

import bisect
from typing import Mapping, Protocol

from repro.cluster.api import ClusterAPI
from repro.cluster.resources import RESOURCES
from repro.metrics.timeseries import ChangePointSeries, TimeSeries
from repro.sim.engine import Engine, PeriodicHandle


class MetricsSource(Protocol):
    """Anything that can be scraped for named float metrics."""

    def metric_prefix(self) -> str:
        """Prefix for this source's series names (e.g. ``app/frontend``)."""
        ...

    def sample_metrics(self, now: float) -> Mapping[str, float]:
        """Return current metric values keyed by short metric name."""
        ...


class MetricsCollector:
    """Periodic scraper storing all series for an experiment.

    Parameters
    ----------
    engine, api:
        Simulation engine and the cluster to scrape.
    scrape_interval:
        Seconds between scrapes (Prometheus default order: 5–15 s).
    """

    def __init__(
        self,
        engine: Engine,
        api: ClusterAPI,
        *,
        scrape_interval: float = 5.0,
        series_maxlen: int = 100_000,
        faults=None,
    ):
        if scrape_interval <= 0:
            raise ValueError("scrape_interval must be positive")
        self.engine = engine
        self.api = api
        self.scrape_interval = scrape_interval
        self._series_maxlen = series_maxlen
        self._sources: list[MetricsSource] = []
        self._internal_sources: list[MetricsSource] = []
        self._series: dict[str, TimeSeries] = {}
        self._handle: PeriodicHandle | None = None
        self.scrapes = 0
        #: Scrape rounds that produced no samples (dropped by a fault) or
        #: arrived later than 1.5× the configured interval.
        self.scrape_gaps = 0
        self._last_attempt: float | None = None
        #: Optional :class:`~repro.metrics.faults.MetricsFaultInjector`
        #: distorting the scrape path (never the out-of-band ``record``).
        self.faults = faults
        #: Optional :class:`~repro.obs.telemetry.Telemetry` bundle.
        self.telemetry = None
        # Completed scrape rounds as parallel (time, span_id) lists so a
        # decision can be linked back to the scrape that fed it.
        self._scrape_span_times: list[float] = []
        self._scrape_span_ids: list[int] = []
        # Post-scrape hooks (e.g. the SLO engine) run after a completed
        # round, never on dropped rounds. Observation-only by contract.
        self._scrape_hooks: list = []

    # -- registration -------------------------------------------------------

    def register(self, source: MetricsSource) -> None:
        """Add a source to the scrape set."""
        self._sources.append(source)

    def unregister(self, source: MetricsSource) -> None:
        """Remove a source; missing sources are ignored."""
        try:
            self._sources.remove(source)
        except ValueError:
            pass

    def register_internal(self, source: MetricsSource) -> None:
        """Add a control-plane source scraped WITHOUT the fault filter.

        Self-metrics describe the controller, not a kubelet exporter, so
        metrics-layer faults (blackouts, noise) must not distort them —
        and must not draw extra RNG for them, which would perturb seeded
        runs depending on whether telemetry is enabled.
        """
        self._internal_sources.append(source)

    def add_scrape_hook(self, hook) -> None:
        """Run ``hook(now)`` after each completed scrape round.

        Hooks fire once all sources (internal ones included) have been
        sampled, and are skipped entirely when a fault drops the round.
        Hooks must be observation-only — no engine events, no RNG — so
        seeded runs stay bit-identical with hooks attached or not.
        """
        self._scrape_hooks.append(hook)

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        """Begin periodic scraping (first scrape one interval from now)."""
        if self._handle is not None:
            raise RuntimeError("collector already started")
        self._handle = self.engine.every(
            self.scrape_interval, self.scrape, priority=-10
        )

    def stop(self) -> None:
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    # -- scraping ---------------------------------------------------------------

    def series(self, name: str) -> TimeSeries:
        """Get (creating if needed) the series with the given full name."""
        if name not in self._series:
            self._series[name] = TimeSeries(maxlen=self._series_maxlen)
        return self._series[name]

    def has_series(self, name: str) -> bool:
        return name in self._series

    def series_names(self) -> list[str]:
        return sorted(self._series)

    def record(self, name: str, value: float) -> None:
        """Record an out-of-band sample (e.g. per-event observations)."""
        self.series(name).append(self.engine.now, value)

    def _store(self, name: str, value: float, now: float) -> None:
        """Append one scraped sample, subject to the fault filter."""
        if self.faults is not None:
            series = self._series.get(name)
            value = self.faults.filter(
                name, value, now, series.last() if series is not None else None
            )
            if value is None:
                return
        self.series(name).append(now, value)

    def scrape(self) -> None:
        """Sample every source and cluster-level gauges once."""
        now = self.engine.now
        self.scrapes += 1
        tel = self.telemetry
        # Late-arrival gap detection: if more than 1.5 intervals elapsed
        # since the previous attempt, the rounds in between never ran
        # (stopped collector, leadership gap). Disjoint from drop-gaps
        # below, which count rounds that ran but produced nothing.
        if self._last_attempt is not None:
            elapsed = now - self._last_attempt
            if elapsed > 1.5 * self.scrape_interval:
                missed = max(1, round(elapsed / self.scrape_interval) - 1)
                self.scrape_gaps += missed
                if tel is not None:
                    tel.scrape_gaps.inc(missed)
                    tel.tracer.instant(
                        "scrape_gap", "metrics", missed=missed, elapsed=elapsed
                    )
        self._last_attempt = now
        if self.faults is not None and self.faults.should_drop_scrape(now):
            self.scrape_gaps += 1
            if tel is not None:
                tel.scrape_gaps.inc()
                tel.tracer.instant("scrape_dropped", "metrics")
            return
        if tel is None:
            self._scrape_all(now)
        else:
            tel.scrapes.inc()
            sp = tel.tracer.begin("scrape", "metrics", round=self.scrapes)
            self._scrape_span_times.append(now)
            self._scrape_span_ids.append(sp.id)
            try:
                self._scrape_all(now)
            finally:
                tel.tracer.end(sp)
        if self._scrape_hooks:
            for hook in self._scrape_hooks:
                hook(now)

    def _scrape_all(self, now: float) -> None:
        # Batched store path: the fault filter is consulted once per
        # round; on a quiescent pipeline (no active per-sample faults —
        # the common case) every sample appends straight into its series
        # without the per-sample filter/match machinery. Sample order is
        # identical either way, so seeded runs are unchanged.
        faults = self.faults
        if faults is not None and not faults.distorts_samples(now):
            faults = None
        series_map = self._series
        maxlen = self._series_maxlen

        def store_batch(prefix: str, samples) -> None:
            for metric, value in samples.items():
                name = f"{prefix}/{metric}"
                series = series_map.get(name)
                if faults is not None:
                    value = faults.filter(
                        name, value, now,
                        series.last() if series is not None else None,
                    )
                    if value is None:
                        continue
                if series is None:
                    series = series_map[name] = TimeSeries(maxlen=maxlen)
                series.append(now, value)

        for source in list(self._sources):
            store_batch(source.metric_prefix(), source.sample_metrics(now))
        allocatable = self.api.total_allocatable()
        allocated = self.api.total_allocated()
        usage = self.api.total_usage()
        cluster_gauges: dict[str, float] = {}
        for name in RESOURCES:
            cap = allocatable[name]
            cluster_gauges[f"alloc_frac/{name}"] = (
                allocated[name] / cap if cap > 0 else 0.0
            )
            cluster_gauges[f"usage_frac/{name}"] = (
                usage[name] / cap if cap > 0 else 0.0
            )
        # Preserve the historical interleaved order (alloc, usage per
        # resource) — it only matters under a fault filter drawing RNG
        # per sample, where order is part of the seeded stream.
        store_batch("cluster", cluster_gauges)
        for node in self.api.list_nodes():
            fractions = node.usage_fraction()
            alloc_fractions = node.allocation_fraction()
            node_gauges: dict[str, float] = {}
            for name in RESOURCES:
                node_gauges[f"usage_frac/{name}"] = fractions[name]
                node_gauges[f"alloc_frac/{name}"] = alloc_fractions[name]
            store_batch(f"node/{node.name}", node_gauges)
        store_batch(
            "cluster",
            {"pending_pods": float(len(self.api.pending_pods()))},
        )
        # Control-plane self-metrics bypass the fault filter: see
        # register_internal. Inline the series lookup — this loop runs
        # every scrape and the telemetry overhead gate counts its calls.
        for source in list(self._internal_sources):
            prefix = source.metric_prefix()
            for metric, value in source.sample_metrics(now).items():
                name = f"{prefix}/{metric}"
                if name in series_map:
                    series = series_map[name]
                else:
                    # Internal sources delta-suppress their exports, so
                    # their series hold change points, not uniform
                    # ticks; ChangePointSeries rejects windowed
                    # aggregates that would misread that encoding.
                    series = series_map[name] = ChangePointSeries(
                        maxlen=maxlen
                    )
                series.append(now, value)

    # -- convenience queries ------------------------------------------------------

    def latest(self, name: str) -> float | None:
        """Most recent value of a series, or None if absent/empty."""
        series = self._series.get(name)
        return series.last() if series is not None else None

    def latest_time(self, name: str) -> float | None:
        """Timestamp of the most recent sample, or None if absent/empty.

        Freshness probe: consumers compare this against ``engine.now`` to
        detect a stalled scrape pipeline before acting on old data.
        """
        series = self._series.get(name)
        return series.last_time() if series is not None else None

    def last_scrape_age(self, name: str) -> float | None:
        """Seconds since the series last received a sample, or None.

        The per-series staleness signal: diverges from the global scrape
        cadence when a blackout or freeze fault hits one series while the
        rest keep flowing.
        """
        last = self.latest_time(name)
        return self.engine.now - last if last is not None else None

    def scrape_span_at(self, time: float) -> int | None:
        """Span id of the last completed scrape at or before ``time``."""
        idx = bisect.bisect_right(self._scrape_span_times, time) - 1
        return self._scrape_span_ids[idx] if idx >= 0 else None

    def window_mean(self, name: str, span: float) -> float | None:
        series = self._series.get(name)
        if series is None:
            return None
        return series.mean_over(self.engine.now, span)

    def window_percentile(self, name: str, span: float, q: float) -> float | None:
        series = self._series.get(name)
        if series is None:
            return None
        return series.percentile_over(self.engine.now, span, q)

    # -- export --------------------------------------------------------------------

    def export_csv(self, path: str, names: list[str], *, step: float = 60.0,
                   start: float = 0.0, end: float | None = None) -> int:
        """Write selected series to a CSV (one time column, one column per
        series, step-interpolated at ``step`` resolution).

        The figure-regeneration path: every plot in EXPERIMENTS.md can be
        exported for external tooling. Returns the number of data rows.
        """
        if step <= 0:
            raise ValueError("step must be positive")
        missing = [n for n in names if n not in self._series]
        if missing:
            raise KeyError(f"unknown series: {missing}")
        if end is None:
            end = self.engine.now
        rows = 0
        with open(path, "w") as handle:
            handle.write(",".join(["time"] + names) + "\n")
            t = start
            while t <= end + 1e-9:
                values = [self._series[n].value_at(t) for n in names]
                cells = [f"{t:g}"] + [
                    "" if v is None else f"{v:g}" for v in values
                ]
                handle.write(",".join(cells) + "\n")
                rows += 1
                t += step
        return rows
