"""The converged scheduler — one control plane for all three worlds.

Placement policy per class:

* **HPC** — all-or-nothing gang admission (no stranded ranks), balanced
  packing, interference-discounted node choice.
* **Big-data** — executors scored toward nodes holding their dataset's
  blocks (locality bonus from the shared object store).
* **Microservices** — spread away from pressure and noisy neighbours
  (interference penalty).

:class:`SiloedScheduler` is the comparator: the same cluster statically
partitioned into one pool per world, each scheduled independently — the
pre-convergence status quo whose stranded capacity R-F4 measures.
"""

from __future__ import annotations

from repro.cluster.api import ClusterAPI
from repro.cluster.node import Node
from repro.cluster.pod import Pod, WorkloadClass
from repro.scheduler.admission import AdmissionController
from repro.scheduler.base import SchedulerBase
from repro.scheduler.gang import GangAdmission
from repro.scheduler.interference import interference_penalty
from repro.scheduler.kube import least_allocated_score, most_allocated_score
from repro.scheduler.preemption import plan_cheapest_single, plan_gang
from repro.sim.engine import Engine
from repro.storage.objectstore import ObjectStore


class ConvergedScheduler(SchedulerBase):
    """Class-aware scheduler over the whole shared cluster.

    Parameters
    ----------
    store:
        Shared object store, used for big-data locality scoring; optional
        (without it big-data pods fall back to plain packing scores).
    locality_weight / interference_weight:
        Relative strength of the two class-aware score terms against the
        packing score.
    preemption:
        Allow evicting strictly-lower-priority pods to place pods (and
        whole gangs) that otherwise cannot fit. Victims re-queue through
        their application's self-healing.
    packing:
        ``"spread"`` (default, kube's LeastAllocated — headroom and
        interference friendly) or ``"consolidate"`` (MostAllocated —
        packs work onto few nodes so idle ones can be parked; the energy
        experiment's knob).
    admission:
        Optional :class:`~repro.scheduler.admission.AdmissionController`.
        When set, each cycle routes its pending snapshot through the
        controller (class-aware shedding and reordering under overload);
        when ``None`` (default) the cycle is byte-identical to the
        pre-admission behaviour.
    zone_aware_gangs:
        Try to place each gang entirely inside one zone (fullest-first)
        before letting it span zones — cross-zone links stretch the
        gang's synchronous communication phase.
    """

    policy_name = "converged"

    def __init__(
        self,
        engine: Engine,
        api: ClusterAPI,
        *,
        store: ObjectStore | None = None,
        interval: float = 1.0,
        locality_weight: float = 1.0,
        interference_weight: float = 0.5,
        preference_weight: float = 1.0,
        preemption: bool = False,
        packing: str = "spread",
        zone_aware_gangs: bool = True,
        score_cache: bool = True,
        admission: "AdmissionController | None" = None,
    ):
        if packing not in ("spread", "consolidate"):
            raise ValueError(f"unknown packing mode {packing!r}")
        super().__init__(engine, api, interval=interval, admission=admission)
        self.packing = packing
        self.zone_aware_gangs = zone_aware_gangs
        self.single_zone_gangs = 0
        self.store = store
        self.locality_weight = locality_weight
        self.interference_weight = interference_weight
        self.preference_weight = preference_weight
        self.preemption = preemption
        self.gang_admission = GangAdmission()
        self.gangs_admitted = 0
        self.gangs_deferred = 0
        self.preemptions = 0
        # Per-cycle score cache keyed on (node.name, node.generation,
        # pod score inputs). Two score inputs are NOT tracked by the
        # generation counter and rely on being per-cycle invariants:
        # node usage, and object-store replica placement (the
        # locality_fraction read in _locality_bonus). Both can only
        # change between engine events, never inside one scheduling
        # cycle, so entries are valid for the duration of a cycle and
        # the cache is cleared on entry to schedule_cycle. If store
        # replication is ever triggered mid-cycle (e.g. from a bind),
        # a store generation/epoch must be folded into the cache key.
        # Bit-identical by construction: a hit returns the float the
        # scorer would have recomputed.
        # score_cache=False recomputes every score — the reference mode
        # the differential test in tests/verify compares against.
        self.score_cache_enabled = score_cache
        self._score_cache: dict[tuple, float] = {}
        self.score_cache_hits = 0

    def _apply_plan(self, plan) -> None:
        for victim in plan.victims:
            self.api.delete_pod(victim.name, reason="preempted")
            self.preemptions += 1
        for pod_name, node_name in plan.assignment.items():
            self.api.bind_pod(pod_name, node_name)
            self.binds += 1

    # -- cycle -------------------------------------------------------------------

    def schedule_cycle(self) -> None:
        self._score_cache.clear()
        pending = self.api.pending_pods()
        if self.admission is not None:
            pending = self.admission.admit_cycle(pending)
        gangs: dict[str, list[Pod]] = {}
        singles: list[Pod] = []
        for pod in pending:
            if pod.spec.gang_id is not None:
                gangs.setdefault(pod.spec.gang_id, []).append(pod)
            else:
                singles.append(pod)

        # Gangs first, FIFO by earliest member; deferred gangs do not
        # block later work (backfill).
        for gang_id in sorted(gangs, key=lambda g: min(p.created_at for p in gangs[g])):
            members = gangs[gang_id]
            if not self.api.quota_allows_gang([p.name for p in members]):
                self.gangs_deferred += 1
                self.failures += len(members)
                continue
            assignment = self._gang_assignment(members)
            if assignment is None:
                if self.preemption:
                    plan = plan_gang(self.api.list_nodes(), members)
                    if plan is not None:
                        self._apply_plan(plan)
                        self.gangs_admitted += 1
                        continue
                self.gangs_deferred += 1
                self.failures += len(members)
                continue
            for pod_name, node_name in assignment.items():
                self.api.bind_pod(pod_name, node_name)
                self.binds += 1
            self.gangs_admitted += 1

        for pod in singles:
            if not self.api.quota_allows_bind(pod.name):
                self.failures += 1
                continue
            node = self.select_node(pod)
            if node is None:
                if self.preemption:
                    plan = plan_cheapest_single(self.api.list_nodes(), pod)
                    if plan is not None:
                        self._apply_plan(plan)
                        continue
                self.failures += 1
                continue
            self.api.bind_pod(pod.name, node.name)
            self.binds += 1

        if self.admission is not None:
            self.admission.post_cycle()

    def _gang_assignment(self, members: list[Pod]) -> dict[str, str] | None:
        """Find a gang placement, preferring a single zone.

        Zones are tried fullest-capacity-first; a gang that fits nowhere
        alone falls back to spanning the whole cluster.
        """
        nodes = self.api.list_nodes()
        if self.zone_aware_gangs:
            zones: dict[str, list[Node]] = {}
            for node in nodes:
                zone = node.labels.get("zone")
                if zone is not None:
                    zones.setdefault(zone, []).append(node)
            if len(zones) > 1:
                ordered = sorted(
                    zones.values(),
                    key=lambda zone_nodes: -sum(n.free.cpu for n in zone_nodes),
                )
                for zone_nodes in ordered:
                    assignment = self.gang_admission.find_assignment(
                        members, zone_nodes
                    )
                    if assignment is not None:
                        self.single_zone_gangs += 1
                        return assignment
        return self.gang_admission.find_assignment(members, nodes)

    # -- scoring ---------------------------------------------------------------------

    def _locality_bonus(self, node: Node, pod: Pod) -> float:
        if self.store is None:
            return 0.0
        dataset = pod.spec.labels.get("dataset")
        if dataset is None or not self.store.has_bucket(dataset):
            return 0.0
        return self.store.locality_fraction(dataset, node.name)

    def score(self, node: Node, pod: Pod) -> float:
        """Composite placement score; higher is better."""
        if self.packing == "consolidate":
            score = most_allocated_score(node, pod)
        else:
            score = least_allocated_score(node, pod)
        if pod.spec.workload_class == WorkloadClass.BIGDATA:
            score += self.locality_weight * self._locality_bonus(node, pod)
        if pod.spec.preference_matches(node.labels):
            score += self.preference_weight
        score -= self.interference_weight * interference_penalty(node, pod)
        return score

    @staticmethod
    def _pod_score_key(pod: Pod) -> tuple:
        """Everything :meth:`score` reads from the pod, as a hashable key.

        Two pending pods with equal keys score identically on any node,
        so replicas of one app share cache entries within a cycle.
        """
        spec = pod.spec
        alloc = pod.allocation
        return (
            spec.workload_class,
            spec.labels.get("dataset"),
            tuple(sorted(spec.node_preference.items())),
            alloc.cpu,
            alloc.memory,
            alloc.disk_bw,
            alloc.net_bw,
        )

    def select_node(self, pod: Pod) -> Node | None:
        feasible = self.feasible_nodes(pod)
        if not feasible:
            return None
        cache = self._score_cache if self.score_cache_enabled else None
        pod_key = self._pod_score_key(pod)
        best = None
        best_rank: tuple[float, str] | None = None
        for node in feasible:
            if cache is None:
                score = self.score(node, pod)
            else:
                key = (node.name, node.generation, pod_key)
                score = cache.get(key)
                if score is None:
                    score = self.score(node, pod)
                    cache[key] = score
                else:
                    self.score_cache_hits += 1
            rank = (score, node.name)
            if best_rank is None or rank > best_rank:
                best = node
                best_rank = rank
        return best


class SiloedScheduler(SchedulerBase):
    """Statically-partitioned comparator: one node pool per world.

    Parameters
    ----------
    pools:
        Mapping from workload class to the node names it may use. Classes
        absent from the mapping (e.g. SYSTEM) may use any node.
    """

    policy_name = "siloed"

    def __init__(
        self,
        engine: Engine,
        api: ClusterAPI,
        *,
        pools: dict[WorkloadClass, list[str]],
        interval: float = 1.0,
    ):
        super().__init__(engine, api, interval=interval)
        all_nodes = {n.name for n in api.list_nodes()}
        for cls, names in pools.items():
            missing = set(names) - all_nodes
            if missing:
                raise ValueError(f"pool {cls.value!r}: unknown nodes {sorted(missing)}")
        self.pools = {cls: list(names) for cls, names in pools.items()}
        self.gang_admission = GangAdmission()

    def _pool_nodes(self, pod: Pod) -> list[Node]:
        names = self.pools.get(pod.spec.workload_class)
        if names is None:
            return self.api.list_nodes()
        return [self.api.get_node(n) for n in names]

    def schedule_cycle(self) -> None:
        pending = self.api.pending_pods()
        gangs: dict[str, list[Pod]] = {}
        singles: list[Pod] = []
        for pod in pending:
            if pod.spec.gang_id is not None:
                gangs.setdefault(pod.spec.gang_id, []).append(pod)
            else:
                singles.append(pod)

        for gang_id in sorted(gangs, key=lambda g: min(p.created_at for p in gangs[g])):
            members = gangs[gang_id]
            if not self.api.quota_allows_gang([p.name for p in members]):
                self.failures += len(members)
                continue
            nodes = self._pool_nodes(members[0])
            assignment = self.gang_admission.find_assignment(members, nodes)
            if assignment is None:
                self.failures += len(members)
                continue
            for pod_name, node_name in assignment.items():
                self.api.bind_pod(pod_name, node_name)
                self.binds += 1

        for pod in singles:
            if not self.api.quota_allows_bind(pod.name):
                self.failures += 1
                continue
            node = self.select_node(pod)
            if node is None:
                self.failures += 1
                continue
            self.api.bind_pod(pod.name, node.name)
            self.binds += 1

    def select_node(self, pod: Pod) -> Node | None:
        feasible = [
            n
            for n in self._pool_nodes(pod)
            if n.can_fit(pod.allocation) and pod.spec.selector_matches(n.labels)
        ]
        if not feasible:
            return None
        return max(feasible, key=lambda n: (least_allocated_score(n, pod), n.name))
