"""Vanilla Kubernetes-style scheduler: filter + LeastAllocated scoring.

Each pod is placed independently in submission order. Scoring follows the
default kube-scheduler LeastAllocated plugin: prefer the node with the
most free capacity, averaged across resource dimensions. There is no gang
awareness — ranks of an HPC job bind one by one as room appears, and a
partially-placed gang occupies resources while making no progress, which
is precisely the pathology the converged scheduler removes.
"""

from __future__ import annotations

from repro.cluster.node import Node
from repro.cluster.pod import Pod
from repro.cluster.resources import RESOURCES
from repro.scheduler.base import SchedulerBase


def least_allocated_score(node: Node, pod: Pod) -> float:
    """Higher is better: mean free fraction after placing the pod."""
    free_after = node.free - pod.allocation
    fractions = []
    for name in RESOURCES:
        cap = node.allocatable[name]
        fractions.append(free_after[name] / cap if cap > 0 else 0.0)
    return sum(fractions) / len(fractions)


def most_allocated_score(node: Node, pod: Pod) -> float:
    """Consolidating dual of :func:`least_allocated_score`.

    Prefers the busiest node that still fits, packing work onto few
    machines so the rest can be parked (the energy experiment R-F9).
    """
    return 1.0 - least_allocated_score(node, pod)


class KubeScheduler(SchedulerBase):
    """Default scheduler baseline."""

    policy_name = "k8s-default"

    def select_node(self, pod: Pod) -> Node | None:
        feasible = self.feasible_nodes(pod)
        if not feasible:
            return None
        return max(feasible, key=lambda n: (least_allocated_score(n, pod), n.name))
