"""Priority-aware admission control and load shedding.

When cluster pressure crosses a configurable high watermark, the
:class:`AdmissionController` turns the scheduler's FIFO pending queue into
a class-aware one: latency-sensitive work is served first, and the lowest
classes are *shed* — rejected from the pending queue, or evicted from
nodes to requeue — until pressure falls back below the low watermark.
Applications resubmit shed replicas through their self-healing path
(with crash-loop backoff), which models clients retrying with backoff.

Shed classes, most- to least-protected::

    latency > stream > batch > best-effort

Classification derives from the pod's workload class and priority, with a
``shed-class`` pod label as an explicit override. Two guarantees hold:

* **No starvation** — pods pending longer than ``starvation_timeout`` are
  exempt from shedding and admitted ahead of fresh work, so every class
  eventually makes progress even under sustained overload.
* **Gang atomicity** — gang members are never shed (a partial shed would
  strand their siblings).

Everything here is deterministic (no RNG) and entirely inert unless a
scheduler is given a controller, preserving the platform's seeded
bit-identical discipline when the feature is off.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.api import ClusterAPI
from repro.cluster.pod import Pod, WorkloadClass
from repro.sim.engine import Engine

#: Shed classes ordered most-protected first; the shed policy walks this
#: list from the *end*.
SHED_CLASSES = ("latency", "stream", "batch", "best-effort")

#: Rank of each class (lower = more protected).
CLASS_RANK = {cls: rank for rank, cls in enumerate(SHED_CLASSES)}

#: Big-data pods at or above this priority are treated as streaming.
STREAM_PRIORITY = 8


def classify_pod(pod: Pod) -> str:
    """Shed class of a pod: explicit label, else class/priority heuristics.

    Microservices (and system daemons) are latency-sensitive; big-data
    pods at streaming priority (≥ ``STREAM_PRIORITY``) rank as stream;
    negative priority marks best-effort; everything else — batch big-data
    and HPC — is batch.
    """
    label = pod.spec.labels.get("shed-class")
    if label in CLASS_RANK:
        return label
    cls = pod.spec.workload_class
    if cls in (WorkloadClass.MICROSERVICE, WorkloadClass.SYSTEM):
        return "latency"
    if pod.spec.priority < 0:
        return "best-effort"
    if cls is WorkloadClass.BIGDATA and pod.spec.priority >= STREAM_PRIORITY:
        return "stream"
    return "batch"


@dataclass(frozen=True)
class OverloadConfig:
    """Knobs of the overload-resilience layer. Everything defaults *off*:
    a default config changes nothing about platform behaviour.

    Parameters
    ----------
    admission:
        Enable admission control and load shedding in the scheduler.
    backpressure:
        Enable control-loop backpressure: scale-up actuations are queued
        and coalesced instead of issued while the loop is distressed
        (pending retries, open breakers, safe mode).
    brownout:
        Enable hysteretic brownout degradation for services that support
        it (reduced per-request demand at a latency penalty).
    high_watermark / low_watermark:
        Cluster allocation fraction (max over CPU and memory) that
        activates / deactivates shedding. The gap is the hysteresis band.
    pending_high:
        Pending-queue depth that activates shedding regardless of
        allocation pressure (queue blow-up from a flash crowd).
    max_shed_per_cycle:
        Cap on pending-queue rejections per scheduling cycle.
    starvation_timeout:
        Seconds after which a pending pod becomes exempt from shedding
        and is admitted ahead of fresh work.
    evict_running:
        While shedding is active and latency/stream pods are stuck
        pending, evict (at most one per cycle) the newest running
        best-effort pod to free capacity.
    brownout_enter_error / brownout_exit_error:
        PLO error thresholds of the brownout hysteresis loop.
    brownout_enter_periods / brownout_exit_periods:
        Consecutive control periods beyond the threshold required to
        enter / exit brownout.
    brownout_demand_factor:
        Multiplier on per-request demand while browned out (< 1).
    brownout_latency_penalty:
        Seconds added to reported latency while browned out — the price
        of serving the degraded tier.
    """

    admission: bool = False
    backpressure: bool = False
    brownout: bool = False
    high_watermark: float = 0.9
    low_watermark: float = 0.75
    pending_high: int = 64
    max_shed_per_cycle: int = 4
    starvation_timeout: float = 300.0
    evict_running: bool = True
    brownout_enter_error: float = 0.5
    brownout_exit_error: float = 0.05
    brownout_enter_periods: int = 3
    brownout_exit_periods: int = 6
    brownout_demand_factor: float = 0.6
    brownout_latency_penalty: float = 0.02

    def __post_init__(self) -> None:
        if not 0.0 < self.low_watermark <= self.high_watermark:
            raise ValueError("need 0 < low_watermark <= high_watermark")
        if self.pending_high < 1:
            raise ValueError("pending_high must be >= 1")
        if self.max_shed_per_cycle < 0:
            raise ValueError("max_shed_per_cycle must be >= 0")
        if self.starvation_timeout <= 0:
            raise ValueError("starvation_timeout must be positive")
        if self.brownout_exit_error >= self.brownout_enter_error:
            raise ValueError("brownout_exit_error must be < brownout_enter_error")
        if min(self.brownout_enter_periods, self.brownout_exit_periods) < 1:
            raise ValueError("brownout periods must be >= 1")
        if not 0.0 < self.brownout_demand_factor <= 1.0:
            raise ValueError("brownout_demand_factor must be in (0, 1]")
        if self.brownout_latency_penalty < 0:
            raise ValueError("brownout_latency_penalty must be >= 0")

    @property
    def any_enabled(self) -> bool:
        return self.admission or self.backpressure or self.brownout


class AdmissionController:
    """Class-aware admission control over the scheduler pending queue.

    The scheduler calls :meth:`admit_cycle` with the FIFO pending snapshot
    at the top of each cycle and :meth:`post_cycle` after binding. While
    the overload latch is clear both are near-free passthroughs; while it
    is set, ``admit_cycle`` sheds the newest low-class pending pods (up to
    ``max_shed_per_cycle``) and reorders the remainder most-protected
    class first, and ``post_cycle`` evicts-to-requeue at most one running
    best-effort pod per cycle while latency/stream work is stuck pending.
    """

    def __init__(self, engine: Engine, api: ClusterAPI, config: OverloadConfig):
        self.engine = engine
        self.api = api
        self.config = config
        self.shedding_active = False
        self.activations = 0
        self.shed_total = 0
        self.shed_by_class: dict[str, int] = {cls: 0 for cls in SHED_CLASSES}
        self.rejected_pending = 0
        self.evicted_running = 0
        self.aged_admissions = 0
        self.last_pressure = 0.0
        #: Optional :class:`~repro.obs.telemetry.Telemetry` bundle; when
        #: set, latch transitions and shed/evict decisions are traced
        #: under the ``sched`` category and shed pending-ages observed.
        self.telemetry = None
        #: Optional ``collector.scrape_span_at`` ref: parents each admit
        #: cycle span to the scrape round whose signals it acted on,
        #: extending the causal DecisionProvenance graph into shedding.
        self.scrape_span_at = None

    # -- pressure & latch -----------------------------------------------------

    def pressure(self) -> float:
        """Cluster allocation fraction, max over CPU and memory.

        A cluster with zero allocatable capacity (every node down) reads
        as fully pressured.
        """
        cap = self.api.total_allocatable()
        alloc = self.api.total_allocated()
        worst = 0.0
        for capacity, allocated in ((cap.cpu, alloc.cpu), (cap.memory, alloc.memory)):
            frac = allocated / capacity if capacity > 0 else 1.0
            if frac > worst:
                worst = frac
        return worst

    def _update_latch(self, pending_depth: int) -> None:
        pressure = self.pressure()
        self.last_pressure = pressure
        hot = (
            pressure >= self.config.high_watermark
            or pending_depth >= self.config.pending_high
        )
        if self.shedding_active:
            if (
                pressure < self.config.low_watermark
                and pending_depth < self.config.pending_high
            ):
                self.shedding_active = False
                if self.telemetry is not None:
                    self.telemetry.tracer.instant(
                        "shed_latch_off", "sched",
                        pressure=pressure, pending=pending_depth,
                    )
        elif hot:
            self.shedding_active = True
            self.activations += 1
            if self.telemetry is not None:
                self.telemetry.tracer.instant(
                    "shed_latch_on", "sched",
                    pressure=pressure, pending=pending_depth,
                )

    # -- cycle hooks ----------------------------------------------------------

    def admit_cycle(self, pending: list[Pod]) -> list[Pod]:
        """Shed and reorder the pending queue for one scheduling cycle."""
        self._update_latch(len(pending))
        if not self.shedding_active:
            return pending

        now = self.engine.now
        tel = self.telemetry
        cycle_span = None
        if tel is not None:
            # Parent the admit cycle to the scrape round whose pressure
            # signal set the latch, when the link is wired.
            parent = (
                self.scrape_span_at(now)
                if self.scrape_span_at is not None
                else None
            )
            cycle_span = tel.tracer.begin(
                "admit", "sched", parent=parent,
                pending=len(pending), pressure=self.last_pressure,
            )
        try:
            return self._shed_and_reorder(pending, now, tel, cycle_span)
        finally:
            if cycle_span is not None:
                tel.tracer.end(cycle_span)

    def _shed_and_reorder(self, pending, now, tel, cycle_span):
        timeout = self.config.starvation_timeout
        aged: list[Pod] = []
        fresh: list[Pod] = []
        for pod in pending:
            (aged if now - pod.created_at >= timeout else fresh).append(pod)
        self.aged_admissions += len(aged)

        shed: set[str] = set()
        budget = self.config.max_shed_per_cycle
        for cls in reversed(SHED_CLASSES):
            if budget <= 0 or CLASS_RANK[cls] <= CLASS_RANK["stream"]:
                break
            victims = [
                pod
                for pod in fresh
                if pod.spec.gang_id is None and classify_pod(pod) == cls
            ]
            # Newest first: the most recently offered work is rejected,
            # the queue's head keeps its place.
            for pod in reversed(victims):
                if budget <= 0:
                    break
                self.api.delete_pod(pod.name, reason="load-shed")
                shed.add(pod.name)
                self._count_shed(cls)
                self.rejected_pending += 1
                budget -= 1
                if tel is not None:
                    age = now - pod.created_at
                    tel.shed_pending_age.observe(age)
                    tel.tracer.instant(
                        "shed", "sched", parent=cycle_span,
                        pod=pod.name, shed_class=cls, age=age,
                    )

        admitted = [pod for pod in fresh if pod.name not in shed]
        admitted.sort(key=lambda pod: CLASS_RANK[classify_pod(pod)])
        return aged + admitted

    def post_cycle(self) -> None:
        """Evict-to-requeue one running best-effort pod if high-class
        work is still stuck pending under an active shed latch."""
        if not (self.shedding_active and self.config.evict_running):
            return
        stuck = any(
            CLASS_RANK[classify_pod(pod)] <= CLASS_RANK["stream"]
            for pod in self.api.pending_pods()
        )
        if not stuck:
            return
        victims = [
            pod
            for pod in self.api.list_pods()
            if pod.active
            and pod.spec.gang_id is None
            and classify_pod(pod) == "best-effort"
        ]
        if not victims:
            return
        victim = max(victims, key=lambda pod: (pod.created_at, pod.name))
        self.api.delete_pod(victim.name, reason="load-shed")
        self._count_shed("best-effort")
        self.evicted_running += 1
        if self.telemetry is not None:
            self.telemetry.tracer.instant(
                "shed_evict", "sched", pod=victim.name,
                shed_class="best-effort",
            )

    def _count_shed(self, cls: str) -> None:
        self.shed_total += 1
        self.shed_by_class[cls] += 1

    # -- reporting ------------------------------------------------------------

    def stats(self) -> dict:
        return {
            "shedding_active": self.shedding_active,
            "activations": self.activations,
            "last_pressure": self.last_pressure,
            "shed_total": self.shed_total,
            "shed_by_class": dict(self.shed_by_class),
            "rejected_pending": self.rejected_pending,
            "evicted_running": self.evicted_running,
            "aged_admissions": self.aged_admissions,
        }
