"""Interference heuristics for co-locating the three worlds.

The converged scheduler spreads latency-sensitive pods away from heavily
used nodes and away from bandwidth-hungry batch work. The penalty is a
score *subtraction* in [0, ~2]: it never makes an infeasible node
feasible, it only re-ranks feasible ones.
"""

from __future__ import annotations

from repro.cluster.node import Node
from repro.cluster.pod import Pod, WorkloadClass


#: How sensitive each class is to a busy node (0 = indifferent).
_SENSITIVITY = {
    WorkloadClass.MICROSERVICE: 1.0,
    WorkloadClass.HPC: 0.8,
    WorkloadClass.BIGDATA: 0.2,
    WorkloadClass.SYSTEM: 0.0,
}

#: How noisy each class is as a neighbour.
_NOISE = {
    WorkloadClass.BIGDATA: 1.0,
    WorkloadClass.HPC: 0.6,
    WorkloadClass.MICROSERVICE: 0.3,
    WorkloadClass.SYSTEM: 0.1,
}


def node_noise(node: Node) -> float:
    """Aggregate neighbour noisiness on a node, weighted by usage share.

    Each resident pod contributes its class noise scaled by its share of
    node capacity actually in use.
    """
    total = 0.0
    for pod in node.pods.values():
        share = pod.usage.dominant_share(node.allocatable)
        total += _NOISE[pod.spec.workload_class] * share
    return total


def interference_penalty(node: Node, pod: Pod) -> float:
    """Score penalty for placing ``pod`` on ``node``.

    Combines the node's overall usage pressure with resident-pod noise,
    weighted by the incoming pod's sensitivity.
    """
    sensitivity = _SENSITIVITY[pod.spec.workload_class]
    if sensitivity <= 0:
        return 0.0
    pressure = max(node.usage_fraction().values(), default=0.0)
    return sensitivity * (pressure + node_noise(node))
