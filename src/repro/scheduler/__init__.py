"""Pod placement: the baseline kube scheduler and the converged scheduler.

* :class:`~repro.scheduler.kube.KubeScheduler` — filter + LeastAllocated
  scoring, pods placed one at a time (vanilla behaviour; gangs can strand).
* :class:`~repro.scheduler.converged.ConvergedScheduler` — one scheduler
  for all three worlds: all-or-nothing gang admission for HPC, data
  locality for big-data executors, interference-aware spreading for
  latency-sensitive services.
* :class:`~repro.scheduler.converged.SiloedScheduler` — the
  statically-partitioned comparator (one node pool per world).
"""

from repro.scheduler.admission import (
    AdmissionController,
    OverloadConfig,
    classify_pod,
)
from repro.scheduler.base import SchedulerBase
from repro.scheduler.kube import KubeScheduler
from repro.scheduler.gang import GangAdmission
from repro.scheduler.interference import interference_penalty
from repro.scheduler.preemption import (
    PreemptionPlan,
    plan_cheapest_single,
    plan_gang,
    plan_single,
)
from repro.scheduler.converged import ConvergedScheduler, SiloedScheduler

__all__ = [
    "AdmissionController",
    "OverloadConfig",
    "classify_pod",
    "SchedulerBase",
    "KubeScheduler",
    "GangAdmission",
    "interference_penalty",
    "PreemptionPlan",
    "plan_single",
    "plan_cheapest_single",
    "plan_gang",
    "ConvergedScheduler",
    "SiloedScheduler",
]
