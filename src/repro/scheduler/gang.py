"""All-or-nothing gang admission for HPC jobs.

A gang binds only when a feasible simultaneous assignment exists for every
member; otherwise the whole gang waits. Feasibility is checked with a
first-fit-decreasing trial placement against a copy of current headroom,
so admission never partially commits resources.
"""

from __future__ import annotations

from repro.cluster.node import Node
from repro.cluster.pod import Pod
from repro.cluster.resources import ResourceVector


class GangAdmission:
    """Trial-placement gang admission.

    Stateless helper: give it the gang's pending pods and candidate nodes;
    it returns a full pod→node assignment or None.
    """

    def find_assignment(
        self, pods: list[Pod], nodes: list[Node]
    ) -> dict[str, str] | None:
        """Feasible simultaneous placement for all ``pods``, or None.

        Greedy first-fit-decreasing: largest pods (by dominant share of
        the mean node) first, each onto the feasible node with the most
        remaining headroom (balanced packing keeps nodes usable for the
        elastic workloads sharing the cluster).
        """
        if not pods:
            return {}
        if not nodes:
            return None
        mean_cap = self._mean_capacity(nodes)
        ordered = sorted(
            pods,
            key=lambda p: p.allocation.dominant_share(mean_cap),
            reverse=True,
        )
        headroom: dict[str, ResourceVector] = {n.name: n.free for n in nodes}
        assignment: dict[str, str] = {}
        for pod in ordered:
            best: str | None = None
            best_score = -1.0
            for node in nodes:
                if not pod.spec.selector_matches(node.labels):
                    continue
                free = headroom[node.name]
                if not pod.allocation.fits_within(free):
                    continue
                remaining = (free - pod.allocation).dominant_share(node.allocatable)
                if remaining > best_score:
                    best_score = remaining
                    best = node.name
            if best is None:
                return None
            assignment[pod.name] = best
            headroom[best] = (headroom[best] - pod.allocation).clamp_nonnegative()
        return assignment

    @staticmethod
    def _mean_capacity(nodes: list[Node]) -> ResourceVector:
        total = ResourceVector.zero()
        for node in nodes:
            total = total + node.allocatable
        return total / max(1, len(nodes))
