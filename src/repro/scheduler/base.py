"""Scheduler loop plumbing shared by all placement policies."""

from __future__ import annotations

from repro.cluster.api import ClusterAPI
from repro.cluster.node import Node
from repro.cluster.pod import Pod
from repro.sim.engine import Engine, PeriodicHandle


class SchedulerBase:
    """Periodic scheduling loop.

    Each cycle walks the pending queue in submission order and asks the
    policy (:meth:`schedule_cycle` / :meth:`select_node`) to place pods.
    Pods that cannot be placed stay pending and are retried next cycle.

    ``admission`` optionally attaches an
    :class:`~repro.scheduler.admission.AdmissionController`: the cycle
    then routes its pending snapshot through the controller (class-aware
    shedding and reordering under overload). ``None`` keeps the cycle
    byte-identical to the admission-free behaviour.
    """

    policy_name = "base"

    def __init__(
        self,
        engine: Engine,
        api: ClusterAPI,
        *,
        interval: float = 1.0,
        admission=None,
    ):
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.engine = engine
        self.api = api
        self.interval = interval
        self.admission = admission
        self._handle: PeriodicHandle | None = None
        self.cycles = 0
        self.binds = 0
        self.failures = 0

    def start(self) -> None:
        if self._handle is not None:
            raise RuntimeError("scheduler already started")
        self._handle = self.engine.every(self.interval, self._cycle, priority=0)

    def stop(self) -> None:
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    def _cycle(self) -> None:
        self.cycles += 1
        self.schedule_cycle()

    # -- policy hooks -------------------------------------------------------------

    def schedule_cycle(self) -> None:
        """Default cycle: place each pending pod independently."""
        pending = self.api.pending_pods()
        if self.admission is not None:
            pending = self.admission.admit_cycle(pending)
        for pod in pending:
            if not self.api.quota_allows_bind(pod.name):
                self.failures += 1
                continue
            node = self.select_node(pod)
            if node is None:
                self.failures += 1
                continue
            self.api.bind_pod(pod.name, node.name)
            self.binds += 1
        if self.admission is not None:
            self.admission.post_cycle()

    def select_node(self, pod: Pod) -> Node | None:
        """Pick a node for one pod, or None if unschedulable now. Override."""
        raise NotImplementedError

    # -- shared helpers --------------------------------------------------------------

    def feasible_nodes(self, pod: Pod) -> list[Node]:
        """Nodes with room for the pod that satisfy its node selector."""
        return [
            n
            for n in self.api.list_nodes()
            if n.can_fit(pod.allocation) and pod.spec.selector_matches(n.labels)
        ]
