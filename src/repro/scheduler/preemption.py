"""Priority preemption planning.

When a high-priority pod (or a whole gang) cannot be placed, the
converged scheduler may evict strictly-lower-priority pods to make room —
the mechanism that lets user-facing services and rigid gangs displace
elastic batch work, which simply re-queues its executors.

Planning is side-effect-free: a plan lists victims per node, and the
scheduler applies it only after a complete plan exists (no partial
evictions for gangs that still would not fit).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.node import Node
from repro.cluster.pod import Pod
from repro.cluster.resources import ResourceVector


@dataclass
class PreemptionPlan:
    """Victims to evict, and where the incoming pod(s) will land."""

    victims: list[Pod] = field(default_factory=list)
    assignment: dict[str, str] = field(default_factory=dict)

    @property
    def cost(self) -> int:
        return len(self.victims)


def _evictable(node: Node, priority: int) -> list[Pod]:
    """Strictly-lower-priority pods on ``node``, cheapest-first."""
    return [
        pod for pod in node.pods_by_priority() if pod.spec.priority < priority
    ]


def plan_single(node: Node, pod: Pod) -> PreemptionPlan | None:
    """Plan to fit one ``pod`` on ``node`` by evicting low-priority pods.

    Greedy: evict the lowest-priority residents first until the pod fits.
    Returns None when even evicting every lower-priority pod is not
    enough.
    """
    if not pod.spec.selector_matches(node.labels):
        return None
    free = node.free
    if pod.allocation.fits_within(free):
        return PreemptionPlan(assignment={pod.name: node.name})
    victims: list[Pod] = []
    for candidate in _evictable(node, pod.spec.priority):
        victims.append(candidate)
        free = free + candidate.allocation
        if pod.allocation.fits_within(free):
            return PreemptionPlan(victims=victims,
                                  assignment={pod.name: node.name})
    return None


def plan_cheapest_single(nodes: list[Node], pod: Pod) -> PreemptionPlan | None:
    """The single-pod plan with the fewest victims across ``nodes``."""
    best: PreemptionPlan | None = None
    for node in nodes:
        plan = plan_single(node, pod)
        if plan is not None and plan.victims and (
            best is None or plan.cost < best.cost
        ):
            best = plan
    return best


def plan_gang(nodes: list[Node], members: list[Pod]) -> PreemptionPlan | None:
    """Plan to co-place a whole gang by evicting low-priority pods.

    Greedy first-fit-decreasing over hypothetical headroom: for each rank
    (largest first) pick the node needing the fewest additional
    evictions. Returns None unless *every* rank can be placed — gangs are
    never admitted partially, with or without preemption.
    """
    if not members:
        return PreemptionPlan()
    if not nodes:
        return None
    priority = members[0].spec.priority
    headroom: dict[str, ResourceVector] = {n.name: n.free for n in nodes}
    remaining_evictable: dict[str, list[Pod]] = {
        n.name: _evictable(n, priority) for n in nodes
    }
    plan = PreemptionPlan()
    mean_cap = ResourceVector.zero()
    for node in nodes:
        mean_cap = mean_cap + node.allocatable
    mean_cap = mean_cap / max(1, len(nodes))
    ordered = sorted(
        members, key=lambda p: p.allocation.dominant_share(mean_cap), reverse=True
    )

    for member in ordered:
        best_node: str | None = None
        best_evictions: list[Pod] | None = None
        for node in nodes:
            if not member.spec.selector_matches(node.labels):
                continue
            free = headroom[node.name]
            evictions: list[Pod] = []
            if not member.allocation.fits_within(free):
                for candidate in remaining_evictable[node.name]:
                    evictions.append(candidate)
                    free = free + candidate.allocation
                    if member.allocation.fits_within(free):
                        break
                else:
                    continue  # this node cannot host the rank at all
            if best_evictions is None or len(evictions) < len(best_evictions):
                best_node = node.name
                best_evictions = evictions
        if best_node is None or best_evictions is None:
            return None
        for victim in best_evictions:
            plan.victims.append(victim)
            remaining_evictable[best_node].remove(victim)
            headroom[best_node] = headroom[best_node] + victim.allocation
        headroom[best_node] = (
            headroom[best_node] - member.allocation
        ).clamp_nonnegative()
        plan.assignment[member.name] = best_node
    return plan
