"""Micro-benchmark: TimeSeries point/window queries vs the old O(n) path.

``TimeSeries`` used to store samples in ``collections.deque`` objects
and materialize ``list(self._times)`` on *every* ``value_at``/``window``
call — an O(n) copy of the whole retention buffer per query, sitting in
every controller tick and every export row. The rewrite keeps plain
lists with a start offset, so queries bisect in place: O(log n) for
point lookups, O(log n + window) for ranges.

``ReferenceSeries`` below reproduces the old copy-per-query behaviour
so the win is measured, not asserted from memory. On the benchmark size
(100k retained samples, deep history lookups) the bisect path must be
at least 20× faster per query — in practice it is hundreds of times
faster, and the gap grows linearly with retention.

``python -m benchmarks.bench_micro_timeseries`` runs it standalone
(``--smoke`` for the CI-sized variant).
"""

from __future__ import annotations

import argparse
import bisect
import time
from collections import deque

from repro.analysis.report import format_table
from repro.metrics.timeseries import TimeSeries

SAMPLES = 100_000
QUERIES = 2_000


class ReferenceSeries:
    """The pre-rewrite implementation: deques copied on every query."""

    def __init__(self, *, maxlen: int = 100_000):
        self._times: deque[float] = deque(maxlen=maxlen)
        self._values: deque[float] = deque(maxlen=maxlen)

    def append(self, time: float, value: float) -> None:
        self._times.append(float(time))
        self._values.append(float(value))

    def value_at(self, time: float) -> float | None:
        times = list(self._times)  # the O(n) copy under test
        idx = bisect.bisect_right(times, time) - 1
        if idx < 0:
            return None
        return list(self._values)[idx]

    def window(self, start: float, end: float) -> list[tuple[float, float]]:
        return [
            (t, v)
            for t, v in zip(self._times, self._values)
            if start < t <= end
        ]


def _fill(series, n: int) -> None:
    for i in range(n):
        series.append(float(i), float(i % 97))


def _time_queries(series, n: int, queries: int) -> dict[str, float]:
    """Wall seconds for ``queries`` point and window lookups."""
    stride = max(1, n // queries)
    t0 = time.perf_counter()
    for i in range(0, n, stride):
        series.value_at(float(i) + 0.5)
    point = time.perf_counter() - t0
    t0 = time.perf_counter()
    for i in range(0, n, stride):
        series.window(float(i) - 30.0, float(i))
    window = time.perf_counter() - t0
    return {"value_at": point, "window": window}


def run_case(*, samples: int = SAMPLES, queries: int = QUERIES) -> dict:
    fast = TimeSeries(maxlen=samples)
    slow = ReferenceSeries(maxlen=samples)
    _fill(fast, samples)
    _fill(slow, samples)
    # Same query set on both; identical answers are part of the check.
    probe = samples // 2 + 0.5
    assert fast.value_at(probe) == slow.value_at(probe)
    assert fast.window(100.0, 130.0) == slow.window(100.0, 130.0)
    return {
        "samples": samples,
        "queries": min(queries, samples),
        "fast": _time_queries(fast, samples, queries),
        "slow": _time_queries(slow, samples, queries),
    }


def check_case(case: dict) -> None:
    for op in ("value_at", "window"):
        speedup = case["slow"][op] / max(case["fast"][op], 1e-9)
        assert speedup >= 20.0, (
            f"{op}: bisect path only {speedup:.1f}x faster than the "
            f"copy-per-query reference (expected ≥20x)"
        )


def format_case(case: dict) -> list[str]:
    rows = []
    for op in ("value_at", "window"):
        fast, slow = case["fast"][op], case["slow"][op]
        rows.append([
            op,
            f"{slow / case['queries'] * 1e6:.1f}",
            f"{fast / case['queries'] * 1e6:.1f}",
            f"{slow / max(fast, 1e-9):.0f}x",
        ])
    return [
        f"TimeSeries micro-benchmark "
        f"({case['samples']:,} retained samples, "
        f"{case['queries']:,} queries/op)",
        format_table(
            ["query", "copy-per-query µs", "bisect µs", "speedup"], rows
        ),
    ]


def test_timeseries_query_speedup(report) -> None:
    case = run_case()
    report("", *format_case(case))
    check_case(case)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI-sized variant: smaller series, same assertions",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        case = run_case(samples=20_000, queries=500)
    else:
        case = run_case()
    for line in format_case(case):
        print(line)
    check_case(case)
    print("TS OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
