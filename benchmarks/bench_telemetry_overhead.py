"""Telemetry overhead gate: enabled ≤5%, disabled ≈0%, bit-identical.

Three claims keep ``PlatformConfig(telemetry=True)`` honest:

1. **Enabled overhead ≤5%** — the diurnal multi-service scenario runs
   with telemetry off and on under ``cProfile`` and the gate compares
   *total interpreter function calls*. Call counts are a deterministic
   proxy for CPU work: the same seed yields the same count on every
   machine, so the gate cannot flake on a noisy CI runner the way a
   wall-clock ratio does (and the proxy over-counts telemetry, whose
   extra calls are mostly trivial increments — the bound is
   conservative). Wall time for both configurations is reported
   alongside for context.
2. **Disabled overhead ≤2%** — with telemetry off the only residual
   cost is ``if self.telemetry is not None`` guards on the hot paths.
   The guard cost is measured directly and scaled by the number of
   engine events in the run; it must stay under 2% of the disabled
   wall time. (The bound is a deliberately pessimistic model — every
   event charged the full 8 guards — and its share grew when the
   simulator hot path got ~2× faster: same guard cost, half the
   denominator.)
3. **Bit-identity** — a seeded run produces *identical* sample streams
   and event counts with telemetry on or off. Tracing must observe the
   simulation, never perturb it: no extra RNG draws, no extra events.

``python -m benchmarks.bench_telemetry_overhead`` runs it standalone
(``--smoke`` for the CI-sized variant).
"""

from __future__ import annotations

import argparse
import cProfile
import pstats
import time

from repro.analysis.report import format_table
from repro.cluster.resources import ResourceVector
from repro.workloads.microservice import ServiceDemands
from repro.workloads.plo import LatencyPLO
from repro.workloads.traces import DiurnalTrace
from benchmarks.scenarios import HOUR, build_platform

APPS = 8
DURATION = HOUR

ENABLED_BUDGET = 0.05
DISABLED_BUDGET = 0.02


def _build(*, telemetry: bool, apps: int, seed: int = 3):
    platform = build_platform(
        "adaptive", nodes=max(4, apps // 2), seed=seed, telemetry=telemetry
    )
    for i in range(apps):
        platform.deploy_microservice(
            f"svc-{i}",
            trace=DiurnalTrace(base=60, amplitude=40, period=HOUR,
                               phase=i * 120.0),
            demands=ServiceDemands(cpu_seconds=0.008, disk_mb=0.1,
                                   net_mb=0.05, base_latency=0.01),
            allocation=ResourceVector(cpu=0.6, memory=1, disk_bw=15,
                                      net_bw=15),
            plo=LatencyPLO(0.06, window=30),
        )
    return platform


def _profiled_run(*, telemetry: bool, apps: int, duration: float):
    """(total function calls, platform) for one seeded run."""
    platform = _build(telemetry=telemetry, apps=apps)
    profiler = cProfile.Profile()
    profiler.enable()
    platform.run(duration)
    profiler.disable()
    return pstats.Stats(profiler).total_calls, platform


def _timed_run(*, telemetry: bool, apps: int, duration: float) -> float:
    platform = _build(telemetry=telemetry, apps=apps)
    t0 = time.perf_counter()
    platform.run(duration)
    return time.perf_counter() - t0


def _guard_cost_per_check() -> float:
    """Seconds per ``x is not None`` guard, measured in a tight loop."""

    class _Host:
        __slots__ = ("telemetry",)

        def __init__(self):
            self.telemetry = None

    host, n = _Host(), 1_000_000
    t0 = time.perf_counter()
    hits = 0
    for _ in range(n):
        if host.telemetry is not None:  # the disabled-path residual
            hits += 1
    assert hits == 0
    return (time.perf_counter() - t0) / n


def _series_fingerprint(platform, apps: int):
    """The seeded sample streams whose bit-identity we assert."""
    out = {}
    collector = platform.collector
    for i in range(apps):
        for metric in (f"app/svc-{i}/latency", f"app/svc-{i}/alloc/cpu",
                       f"control/svc-{i}/output"):
            out[metric] = (
                collector.series(metric).to_lists()
                if collector.has_series(metric) else None
            )
    return out


def run_case(*, apps: int = APPS, duration: float = DURATION) -> dict:
    calls_off, off_platform = _profiled_run(
        telemetry=False, apps=apps, duration=duration)
    calls_on, on_platform = _profiled_run(
        telemetry=True, apps=apps, duration=duration)
    wall_off = _timed_run(telemetry=False, apps=apps, duration=duration)
    wall_on = _timed_run(telemetry=True, apps=apps, duration=duration)

    identical = (
        _series_fingerprint(off_platform, apps)
        == _series_fingerprint(on_platform, apps)
        and off_platform.engine.events_executed
        == on_platform.engine.events_executed
    )
    # Disabled residual: one guard per instrumentation site, bounded by
    # a handful of checks per engine event.
    guard = _guard_cost_per_check()
    guards_per_event = 8
    disabled_overhead = (
        guard * guards_per_event * off_platform.engine.events_executed
        / wall_off
    )
    return {
        "apps": apps,
        "calls_off": calls_off,
        "calls_on": calls_on,
        "enabled_overhead": calls_on / calls_off - 1.0,
        "wall_off": wall_off,
        "wall_on": wall_on,
        "disabled_overhead": disabled_overhead,
        "identical": identical,
        "events": off_platform.engine.events_executed,
        "spans": len(on_platform.telemetry.trace),
        "provenance": len(on_platform.telemetry.trace.provenance),
    }


def check_case(case: dict) -> None:
    assert case["identical"], (
        "telemetry perturbed the seeded run: sample streams or event "
        "counts differ with tracing on"
    )
    assert case["enabled_overhead"] <= ENABLED_BUDGET, (
        f"telemetry-enabled run costs {case['enabled_overhead']:+.2%} "
        f"function calls vs disabled (budget {ENABLED_BUDGET:.0%})"
    )
    assert case["disabled_overhead"] <= DISABLED_BUDGET, (
        f"disabled guard residual {case['disabled_overhead']:.3%} "
        f"(budget {DISABLED_BUDGET:.0%})"
    )
    assert case["spans"] >= 1 and case["provenance"] >= 1


def format_case(case: dict) -> list[str]:
    rows = [
        ["telemetry off", f"{case['calls_off']:,}", f"{case['wall_off']:.3f}",
         "—"],
        ["telemetry on", f"{case['calls_on']:,}", f"{case['wall_on']:.3f}",
         f"{case['enabled_overhead']:+.2%}"],
    ]
    return [
        f"Telemetry overhead ({case['apps']} services, "
        f"{case['events']:,} engine events)",
        format_table(
            ["configuration", "function calls", "wall s",
             "call overhead"], rows
        ),
        f"  disabled guard residual: {case['disabled_overhead']:.4%} "
        "of runtime",
        f"  seeded streams bit-identical on/off: {case['identical']}",
        f"  enabled run recorded {case['spans']:,} spans, "
        f"{case['provenance']:,} provenance records",
    ]


def test_telemetry_overhead(report) -> None:
    case = run_case()
    report("", *format_case(case))
    check_case(case)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI-sized variant: fewer services, shorter run, same gates",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        case = run_case(apps=4, duration=HOUR / 2)
    else:
        case = run_case()
    for line in format_case(case):
        print(line)
    check_case(case)
    print("OVERHEAD OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
