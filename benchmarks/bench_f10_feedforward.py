"""R-F10 — Feedforward load anticipation (the extension experiment).

Pure-feedback vs feedback+feedforward on three surge shapes: a flash
crowd (fast exponential rise), a steep ramp, and an instant step.
Figure series: violation-seconds per surge shape for both controllers.
Shape expected: anticipation roughly halves the violation burst on
shapes with a visible rise (flash crowd, ramp) and is neutral on the
instant step (nothing to anticipate — feedback is already slammed to its
output rail by the time the loop runs).
"""

import pytest

from repro.analysis.report import format_table
from repro.cluster.resources import ResourceVector
from repro.platform.config import ClusterSpec, PlatformConfig
from repro.platform.evolve import EvolvePlatform
from repro.workloads.microservice import ServiceDemands
from repro.workloads.plo import LatencyPLO
from repro.workloads.traces import (
    CompositeTrace,
    ConstantTrace,
    FlashCrowdTrace,
    RampTrace,
    StepTrace,
)

SURGE_AT = 1800.0
DURATION = 3600.0

SURGES = {
    "flash crowd": lambda: CompositeTrace([
        ConstantTrace(60.0),
        FlashCrowdTrace(start_time=SURGE_AT, peak_rate=400.0, rise=90.0,
                        decay=1200.0),
    ]),
    "ramp (5 min)": lambda: RampTrace(SURGE_AT, SURGE_AT + 300.0, 60.0, 360.0),
    "instant step": lambda: StepTrace([(0.0, 60.0), (SURGE_AT, 360.0)]),
}


def run_surge(trace_factory, feedforward: bool) -> float:
    platform = EvolvePlatform(
        cluster_spec=ClusterSpec(node_count=4),
        config=PlatformConfig(seed=6),
        policy="adaptive",
        policy_kwargs={"horizontal": False, "feedforward": feedforward},
    )
    platform.deploy_microservice(
        "svc",
        trace=trace_factory(),
        demands=ServiceDemands(cpu_seconds=0.01, base_latency=0.01),
        allocation=ResourceVector(cpu=1, memory=1.5, disk_bw=20, net_bw=20),
        plo=LatencyPLO(0.05, window=30),
    )
    platform.run(DURATION)
    return platform.result().trackers["svc"].violation_seconds


@pytest.mark.benchmark(group="f10-feedforward", min_rounds=1, max_time=1)
def test_f10_feedforward(benchmark, report):
    results = {}

    def experiment():
        for name, factory in SURGES.items():
            for ff in (False, True):
                key = (name, ff)
                if key not in results:
                    results[key] = run_surge(factory, ff)
        return results

    benchmark.pedantic(experiment, rounds=1, iterations=1)

    rows = []
    for name in SURGES:
        feedback = results[(name, False)]
        both = results[(name, True)]
        saved = 1 - both / feedback if feedback > 0 else 0.0
        rows.append([
            name, f"{feedback:.0f} s", f"{both:.0f} s", f"{saved:.0%}"
        ])
    report(
        "",
        "R-F10: violation-seconds per surge shape, feedback vs +feedforward",
        format_table(
            ["surge", "feedback only", "with feedforward", "saved"], rows
        ),
    )

    benchmark.extra_info["flash_saving"] = (
        1 - results[("flash crowd", True)] / results[("flash crowd", False)]
    )
    # Shape: anticipation wins where a rise is visible, never hurts.
    assert results[("flash crowd", True)] < results[("flash crowd", False)]
    assert results[("ramp (5 min)", True)] < results[("ramp (5 min)", False)]
    for name in SURGES:
        assert results[(name, True)] <= results[(name, False)] * 1.1
