"""R-F11 — HPC checkpointing under failures.

An HPC gang running under a chaos monkey, with checkpoint intervals from
"none" (rank loss restarts the job) down to frequent. Figure series:
completion makespan vs checkpoint interval. Shape expected: makespan
falls steeply once any checkpointing exists and flattens — the classic
checkpoint-interval curve — while the failure-free run is unaffected by
the interval.
"""

import pytest

from repro.analysis.report import format_table
from repro.cluster.resources import ResourceVector
from repro.platform.config import ClusterSpec, PlatformConfig
from repro.platform.evolve import EvolvePlatform

JOB_DURATION = 1800.0
INTERVALS = (None, 600.0, 150.0, 50.0)


def run_job(checkpoint_interval, *, chaos: bool, seed: int = 77):
    platform = EvolvePlatform(
        cluster_spec=ClusterSpec(node_count=4),
        config=PlatformConfig(seed=seed),
    )
    job = platform.submit_hpc(
        "sim", ranks=3, duration=JOB_DURATION,
        allocation=ResourceVector(cpu=6, memory=8, disk_bw=5, net_bw=80),
        checkpoint_interval=checkpoint_interval,
    )
    if chaos:
        platform.enable_chaos(mtbf=450.0, repair_time=120.0)
    platform.run(10 * 3600.0)
    return job.makespan(), job.rollbacks


@pytest.mark.benchmark(group="f11-checkpointing", min_rounds=1, max_time=1)
def test_f11_checkpointing(benchmark, report):
    results = {}

    def experiment():
        for interval in INTERVALS:
            if interval not in results:
                results[interval] = run_job(interval, chaos=True)
        if "calm" not in results:
            results["calm"] = run_job(None, chaos=False)
        return results

    benchmark.pedantic(experiment, rounds=1, iterations=1)

    rows = []
    for interval in INTERVALS:
        makespan, rollbacks = results[interval]
        label = "none (restart)" if interval is None else f"{interval:.0f} s"
        rows.append([
            label,
            f"{makespan:.0f} s" if makespan else "never",
            rollbacks,
        ])
    calm_makespan, _ = results["calm"]
    report(
        "",
        f"R-F11: HPC makespan vs checkpoint interval under chaos "
        f"(nominal {JOB_DURATION:.0f} s; failure-free run: {calm_makespan:.0f} s)",
        format_table(["checkpoint interval", "makespan", "rollbacks"], rows),
    )

    none_makespan = results[None][0]
    frequent_makespan = results[50.0][0]
    assert none_makespan is not None and frequent_makespan is not None
    benchmark.extra_info["saving"] = 1 - frequent_makespan / none_makespan
    # Shape: checkpointing recovers most of the failure cost.
    assert frequent_makespan < none_makespan
    assert frequent_makespan < calm_makespan * 2.0
