"""R-T6 — Robustness of the headline result across seeds.

The R-T1 scenario re-run under five different random seeds (which move
the bursty trace, noise, and arrival phases). Reports the per-seed
violation fractions and the adaptive-vs-static improvement factor.
Shape expected: the ordering never flips and the improvement stays a
large multiple for every seed — the headline is not a lucky draw.
"""

import statistics

import pytest

from repro.analysis.report import format_table
from benchmarks.scenarios import HOUR, build_platform, deploy_service_mix

SEEDS = (1, 2, 3, 4, 5)
DURATION = 3 * HOUR


def run(policy: str, seed: int) -> float:
    platform = build_platform(policy, nodes=6, seed=seed)
    deploy_service_mix(platform)
    platform.run(DURATION)
    return platform.result().total_violation_fraction()


@pytest.mark.benchmark(group="t6-seed-robustness", min_rounds=1, max_time=1)
def test_t6_seed_robustness(benchmark, report):
    results = {}

    def experiment():
        for seed in SEEDS:
            for policy in ("static", "adaptive"):
                key = (policy, seed)
                if key not in results:
                    results[key] = run(policy, seed)
        return results

    benchmark.pedantic(experiment, rounds=1, iterations=1)

    rows = []
    improvements = []
    for seed in SEEDS:
        static = results[("static", seed)]
        adaptive = results[("adaptive", seed)]
        improvement = static / max(adaptive, 1e-6)
        improvements.append(improvement)
        rows.append([
            seed, f"{static:.1%}", f"{adaptive:.1%}", f"{improvement:.1f}x"
        ])
    rows.append([
        "mean", "", "",
        f"{statistics.mean(improvements):.1f}x ± "
        f"{statistics.pstdev(improvements):.1f}",
    ])
    report(
        "",
        f"R-T6: adaptive-vs-static violation improvement across seeds "
        f"({DURATION / HOUR:.0f} h service mix)",
        format_table(["seed", "static", "adaptive", "improvement"], rows),
    )

    benchmark.extra_info["min_improvement"] = min(improvements)
    # Shape: the headline holds for every seed, comfortably past the
    # paper-lineage 7.4x claim on average.
    assert min(improvements) > 5.0
    assert statistics.mean(improvements) > 7.4
