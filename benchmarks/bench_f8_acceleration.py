"""R-F8 — FPGA acceleration on the heterogeneous cluster.

EVOLVE's testbed pairs general-purpose workers with FPGA-accelerated
nodes. An analytics job whose kernel stage is accelerable (5× on FPGA)
runs three ways: on a CPU-only cluster, on the heterogeneous cluster
with a locality/affinity-blind scheduler, and with the converged
scheduler's accelerator preference. Figure: makespan per configuration,
with and without competing load on the FPGA nodes.
Shape expected: the preference captures most of the hardware speedup;
a blind scheduler forfeits it whenever packing pulls executors away.
"""

import pytest

from repro.analysis.report import format_table
from repro.cluster.resources import ResourceVector
from repro.platform.config import ClusterSpec, NodeGroup, PlatformConfig
from repro.platform.evolve import EvolvePlatform
from repro.workloads.bigdata import Stage
from repro.workloads.microservice import ServiceDemands
from repro.workloads.traces import ConstantTrace

GENERAL = ResourceVector(cpu=16, memory=64, disk_bw=500, net_bw=1250)
FPGA = ResourceVector(cpu=8, memory=32, disk_bw=200, net_bw=1250)
SPEEDUP = 5.0


def hetero_spec():
    return ClusterSpec(groups=(
        NodeGroup("worker", 4, GENERAL),
        NodeGroup("fpga", 2, FPGA, labels={"accelerator": "fpga"}),
    ))


def run_config(*, scheduler: str, accelerator: str | None, hetero: bool,
               busy_fpga: bool):
    platform = EvolvePlatform(
        cluster_spec=hetero_spec() if hetero else ClusterSpec(node_count=6),
        config=PlatformConfig(seed=9),
        scheduler=scheduler,
    )
    if busy_fpga:
        # Competing load pre-occupying the accelerated nodes, so packing
        # scores pull blind schedulers toward the idle general workers.
        platform.deploy_microservice(
            "noise",
            trace=ConstantTrace(50),
            demands=ServiceDemands(cpu_seconds=0.01, base_latency=0.01),
            allocation=ResourceVector(cpu=2, memory=4, disk_bw=20, net_bw=20),
            managed=False, replicas=2,
            node_selector={"accelerator": "fpga"},
        )
        platform.run(60.0)
    job = platform.submit_bigdata(
        "train",
        stages=[
            Stage("prep", 500.0),
            Stage("kernel", 4000.0, deps=("prep",), accel_speedup=SPEEDUP),
        ],
        allocation=ResourceVector(cpu=4, memory=8, disk_bw=50, net_bw=50),
        executors=2,
        accelerator=accelerator,
    )
    platform.run(3 * 3600.0)
    return job.makespan()


@pytest.mark.benchmark(group="f8-acceleration", min_rounds=1, max_time=1)
def test_f8_acceleration(benchmark, report):
    results = {}

    def experiment():
        if not results:
            results["cpu-only cluster"] = run_config(
                scheduler="converged", accelerator="fpga", hetero=False,
                busy_fpga=False,
            )
            results["hetero, affinity-aware"] = run_config(
                scheduler="converged", accelerator="fpga", hetero=True,
                busy_fpga=True,
            )
            results["hetero, blind (kube)"] = run_config(
                scheduler="kube", accelerator="fpga", hetero=True,
                busy_fpga=True,
            )
        return results

    benchmark.pedantic(experiment, rounds=1, iterations=1)

    rows = [
        [name, f"{makespan:.0f} s" if makespan else "never"]
        for name, makespan in results.items()
    ]
    report(
        "",
        f"R-F8: accelerable analytics job ({SPEEDUP:.0f}x kernel on FPGA nodes)",
        format_table(["configuration", "makespan"], rows),
    )

    cpu_only = results["cpu-only cluster"]
    aware = results["hetero, affinity-aware"]
    blind = results["hetero, blind (kube)"]
    benchmark.extra_info["speedup_vs_cpu"] = cpu_only / aware
    # Shape: affinity captures a large share of the 5x kernel speedup;
    # the blind scheduler loses it to packing.
    assert aware < cpu_only / 1.8
    assert aware < blind / 1.5
