"""T13: the autoscaler arena — every policy scored on every pack scenario.

The arena (:mod:`repro.arena`) replays every policy registered in
:mod:`repro.autoscaler.registry` over every entry of the curated
scenario pack (:mod:`repro.scenarios`) and aggregates the per-cell
scorecards into a ranked leaderboard. T13 asserts the *shape* of that
board: the adaptive multi-resource controller leads on violations and
SLO attainment (the R-T1 ordering surviving a much broader regime
sweep), every policy covers every scenario, and the metrics block is a
pure function of the seeds — two same-seed sweeps must agree exactly.

Run standalone with ``python -m benchmarks.bench_t13_arena``
(``--smoke`` replays the pack at its native, CI-sized horizons;
``--full`` doubles every cell's horizon).
"""

from __future__ import annotations

import argparse

from repro.arena import leaderboard_text, run_arena
from repro.scenarios import scenario_names

#: Full mode stretches every cell so slow convergence and late reclaim
#: show up in the scorecards; the pack's native horizons are CI-sized.
FULL_HORIZON = 1200.0


def run_case(*, horizon: float | None = None) -> dict:
    return run_arena(horizon=horizon)


def check_case(case: dict) -> None:
    board = case["metrics"]["leaderboard"]
    by_policy = {row["policy"]: row for row in board}

    # Complete coverage: every registered policy ran every pack entry.
    assert case["metrics"]["scenarios"] == list(scenario_names())
    expected = len(case["metrics"]["scenarios"])
    for row in board:
        assert row["scenarios"] == expected, (
            f"{row['policy']} covered {row['scenarios']}/{expected} scenarios"
        )
    assert len(case["metrics"]["cells"]) == expected * len(board)

    # The headline ordering: the multi-resource controller wins the
    # board, and it does so on the primary key, not a tie-break.
    assert board[0]["policy"] == "adaptive", (
        f"adaptive lost the board to {board[0]['policy']}"
    )
    static = by_policy["static"]
    adaptive = by_policy["adaptive"]
    assert adaptive["mean_violation_rate"] < static["mean_violation_rate"], (
        "adaptive does not beat static on violations"
    )
    assert adaptive["mean_attainment"] >= static["mean_attainment"], (
        "adaptive does not beat static on SLO attainment"
    )
    assert adaptive["wins"] >= 1, "adaptive never strictly won a scenario"

    # Static never actuates, so it can never flap; the controllers do
    # actuate (a zero-flap adaptive run means the wrappers fell off).
    assert by_policy["static"]["total_flaps"] == 0
    assert adaptive["total_flaps"] > 0

    # Chaos scenarios produced repair episodes for every policy.
    for row in board:
        assert row["mean_mttr_s"] is not None, (
            f"{row['policy']} logged no fault recovery at all"
        )


def format_case(case: dict) -> list[str]:
    lines = ["T13 autoscaler arena leaderboard"]
    lines += ["  " + line for line in leaderboard_text(case).splitlines()]
    lines.append(
        f"  pack v{case['metrics']['pack_version']} · "
        f"{len(case['metrics']['cells'])} cells · "
        f"{case['events_executed']} events"
    )
    return lines


def test_arena_leaderboard(report) -> None:
    case = run_case()
    report(*format_case(case))
    check_case(case)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI-sized variant: the pack's native horizons",
    )
    parser.add_argument(
        "--full",
        action="store_true",
        help="double every cell's horizon",
    )
    args = parser.parse_args(argv)
    case = run_case(horizon=FULL_HORIZON if args.full else None)
    for line in format_case(case):
        print(line)
    check_case(case)
    print("T13 OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
