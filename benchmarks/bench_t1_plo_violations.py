"""R-T1 — PLO violations per policy (the headline table).

Three services with different bottlenecks (CPU / disk / memory+net) under
dynamic load for 4 simulated hours, once per autoscaling policy. Reports
per-app and total violation time. Shape expected from the paper's claims:
the adaptive multi-resource controller cuts violations by a large factor
(Skynet-lineage claim: >7×) versus the request-based Kubernetes baseline.
"""

import pytest

from repro.analysis.report import format_table
from benchmarks.scenarios import HOUR, build_platform, deploy_service_mix

POLICIES = ("static", "hpa", "vpa", "adaptive")
DURATION = 4 * HOUR


def run_policy(policy: str):
    platform = build_platform(policy, nodes=6, seed=42)
    apps = deploy_service_mix(platform)
    platform.run(DURATION)
    return apps, platform.result()


@pytest.mark.benchmark(group="t1-plo-violations", min_rounds=1, max_time=1)
def test_t1_plo_violations(benchmark, report):
    results = {}

    def experiment():
        for policy in POLICIES:
            if policy not in results:
                results[policy] = run_policy(policy)
        return results

    benchmark.pedantic(experiment, rounds=1, iterations=1)

    apps = results["adaptive"][0]
    rows = []
    for policy in POLICIES:
        _apps, result = results[policy]
        row = [policy]
        for app in apps:
            row.append(f"{result.violation_fraction(app):.1%}")
        row.append(f"{result.total_violation_fraction():.1%}")
        rows.append(row)
    report(
        "",
        "R-T1: PLO violation time per policy "
        f"(3 services, 6 nodes, {DURATION / HOUR:.0f} h)",
        format_table(["policy", *apps, "total"], rows),
    )

    static_total = results["static"][1].total_violation_fraction()
    adaptive_total = results["adaptive"][1].total_violation_fraction()
    improvement = static_total / max(adaptive_total, 1e-6)
    report(f"adaptive improvement over static: {improvement:.1f}x")
    benchmark.extra_info["improvement_vs_static"] = improvement

    # Shape assertions: adaptive wins by a wide margin.
    assert adaptive_total < static_total / 3
    for policy in ("hpa", "vpa"):
        assert adaptive_total <= results[policy][1].total_violation_fraction() + 0.02
