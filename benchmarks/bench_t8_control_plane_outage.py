"""T8: control-plane outage — leader crash, failover, and WAL replay.

The platform's resilience story so far (T7) covered infrastructure and
pipeline faults while assuming the controller itself survives. T8 kills
the controller. A 3-replica control plane (lease-based leader election +
shared snapshot/WAL statestore, :mod:`repro.control.ha`) loses its
leader mid-run while load is climbing toward the diurnal peak:

* the leader gap (last renewal → successor elected) must stay under
  three control periods at the default lease TTL,
* WAL replay must be idempotent — zero duplicate actuations, detected
  independently via ``PodResized`` events whose old and new allocations
  are identical,
* the post-restore trajectory must track a crash-free run of the same
  seed (the successor resumes the transient instead of restarting it),
* a 1-replica plane with no snapshots (the same crash without a standby)
  must be measurably worse on PLO violations.

Run standalone with ``python -m benchmarks.bench_t8_control_plane_outage``
(``--smoke`` for the CI-sized variant).
"""

from __future__ import annotations

import argparse

from repro.analysis.recovery import failover_stats, series_divergence
from repro.cluster.events import PodResized
from repro.platform.config import ClusterSpec, PlatformConfig
from repro.platform.evolve import EvolvePlatform

from benchmarks.scenarios import deploy_service_mix, step_load_service

#: Leader killed here: the web service is climbing toward its diurnal
#: peak (t=1800), so a dead control plane visibly under-provisions.
CRASH_AT = 1200.0
#: Crashed replica restarts (as a standby) after this long.
REPAIR = 300.0
DURATION = 3000.0
NODES = 6
SEED = 42


def _build(
    replicas: int,
    *,
    snapshot_interval: float | None = 60.0,
    seed: int = SEED,
    step_at: float = CRASH_AT + 60.0,
) -> tuple[EvolvePlatform, list[str]]:
    platform = EvolvePlatform(
        cluster_spec=ClusterSpec(node_count=NODES),
        config=PlatformConfig(
            seed=seed,
            controller_replicas=replicas,
            controller_ha=True,
            snapshot_interval=snapshot_interval,
        ),
        scheduler="converged",
        policy="adaptive",
    )
    apps = deploy_service_mix(platform)
    # A 3× load step landing *inside* the outage window: a control plane
    # with a standby re-provisions within a couple of control periods; a
    # dead single controller eats violations until its replica restarts.
    apps.append(step_load_service(platform, factor=3.0, step_at=step_at))
    return platform, apps


def _run_outage(
    platform: EvolvePlatform,
    *,
    crash_at: float = CRASH_AT,
    repair: float = REPAIR,
    duration: float = DURATION,
) -> list[PodResized]:
    """Crash the leader at ``crash_at``, restart it ``repair`` later.

    Returns the duplicate-actuation evidence: every post-crash
    ``PodResized`` whose old and new allocations are identical (a correct
    WAL replay never re-issues an applied resize, so this list must stay
    empty).
    """
    engine = platform.engine
    plane = platform.control_plane
    duplicates: list[PodResized] = []

    def on_resize(event: PodResized) -> None:
        if event.time >= crash_at and event.old_allocation.approx_equal(
            event.new_allocation, tolerance=1e-9
        ):
            duplicates.append(event)

    platform.api.watch(PodResized, on_resize)

    def crash() -> None:
        leader = plane.leader_index()
        if leader is None:  # already in a gap; nothing to kill
            return
        plane.crash_replica(leader)
        engine.schedule(repair, lambda: plane.restart_replica(leader))

    engine.schedule(crash_at, crash)
    platform.run(duration)
    return duplicates


def run_outage_case(
    *,
    crash_at: float = CRASH_AT,
    repair: float = REPAIR,
    duration: float = DURATION,
) -> dict:
    """The full T8 comparison; returns everything the asserts consume."""
    step_at = crash_at + 60.0
    ha, apps = _build(3, step_at=step_at)
    duplicates = _run_outage(
        ha, crash_at=crash_at, repair=repair, duration=duration
    )
    stats = failover_stats(ha.control_plane.failovers)

    clean, _ = _build(3, step_at=step_at)
    clean.run(duration)

    single, _ = _build(1, snapshot_interval=None, step_at=step_at)
    _run_outage(single, crash_at=crash_at, repair=repair, duration=duration)

    # Compare the settled tail, not the step transient: the two runs pass
    # through the same step response offset by the failover gap, which
    # makes instantaneous diffs meaningless mid-transient. What must
    # match is where the allocations land once the successor has control.
    tail = max(crash_at, duration - 300.0)
    divergence = {
        app: series_divergence(
            ha.collector, clean.collector, f"app/{app}/alloc/cpu",
            start=tail, end=duration,
        )
        for app in apps
    }
    return {
        "crash_at": crash_at,
        "repair": repair,
        "apps": apps,
        "ha": ha,
        "clean": clean,
        "single": single,
        "stats": stats,
        "duplicates": duplicates,
        "divergence": divergence,
        "ha_violations": ha.result().total_violation_fraction(),
        "clean_violations": clean.result().total_violation_fraction(),
        "single_violations": single.result().total_violation_fraction(),
    }


def check_outage_case(case: dict, *, control_interval: float = 10.0) -> None:
    stats = case["stats"]
    assert stats.failovers >= 1, "the crash never triggered a failover"
    assert stats.max_gap is not None and stats.max_gap < 3 * control_interval, (
        f"leader gap {stats.max_gap} exceeds 3 control periods"
    )
    assert stats.snapshot_restores >= 1, "successor never restored a snapshot"
    assert not case["duplicates"], (
        f"WAL replay re-issued applied resizes: {case['duplicates']}"
    )
    # The successor resumes the crash-free trajectory: per-replica CPU
    # never drifts more than one whole core from the clean run.
    for app, drift in case["divergence"].items():
        assert drift is not None, f"{app}: no allocation series to compare"
        assert drift < 1.0, f"{app}: post-failover CPU drifted {drift:.2f} cores"
    assert case["single_violations"] > case["ha_violations"], (
        "a 300 s controller outage should cost more PLO time than a "
        f"sub-30 s failover ({case['single_violations']:.4f} vs "
        f"{case['ha_violations']:.4f})"
    )


def format_case(case: dict) -> list[str]:
    stats = case["stats"]
    lines = [
        "T8 control-plane outage "
        f"(crash leader @{case['crash_at']:.0f}s, restart +{case['repair']:.0f}s)",
        f"  failovers={stats.failovers} "
        f"max_gap={stats.max_gap:.1f}s "
        f"snapshot_restores={stats.snapshot_restores} "
        f"wal_replayed={stats.wal_replayed} "
        f"deduped={stats.wal_deduped} reissued={stats.wal_reissued}",
        f"  duplicate_actuations={len(case['duplicates'])}",
        "  cpu divergence vs crash-free: "
        + " ".join(
            f"{app}={case['divergence'][app]:.3f}" for app in case["apps"]
        ),
        f"  violations: ha-3rep={case['ha_violations']:.4f} "
        f"crash-free={case['clean_violations']:.4f} "
        f"single-no-snapshot={case['single_violations']:.4f}",
    ]
    return lines


def test_control_plane_outage(report) -> None:
    case = run_outage_case()
    report(*format_case(case))
    check_outage_case(case)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI-sized variant: shorter run, same assertions",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        case = run_outage_case(crash_at=600.0, repair=200.0, duration=1500.0)
    else:
        case = run_outage_case()
    for line in format_case(case):
        print(line)
    check_outage_case(case)
    print("T8 OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
