"""R-T5 — Allocation cost per policy (the operator's view of R-T2).

The same over-provisioned service mix as R-T2, but billed: each policy's
reserved resources priced at cloud-style unit prices, against the fixed
cost of keeping the cluster provisioned. Shape expected: the adaptive
controller cuts the tenants' allocation bill by several × versus static
sizing at near-equal PLO compliance — the money version of reclaim.
"""

import pytest

from repro.analysis.cost import PriceSheet, app_cost, cluster_provisioned_cost
from repro.analysis.report import format_table
from benchmarks.scenarios import HOUR, build_platform
from benchmarks.bench_t2_utilization import deploy_overprovisioned_mix

POLICIES = ("static", "vpa", "adaptive")
DURATION = 4 * HOUR


def run_policy(policy: str):
    platform = build_platform(policy, nodes=6, seed=17)
    apps = deploy_overprovisioned_mix(platform)
    platform.run(DURATION)
    prices = PriceSheet()
    bill = sum(
        app_cost(platform.collector, app, prices=prices).total for app in apps
    )
    hardware = cluster_provisioned_cost(
        platform.api.total_allocatable(), DURATION, prices=prices
    )
    return bill, hardware, platform.result()


@pytest.mark.benchmark(group="t5-cost", min_rounds=1, max_time=1)
def test_t5_cost(benchmark, report):
    results = {}

    def experiment():
        for policy in POLICIES:
            if policy not in results:
                results[policy] = run_policy(policy)
        return results

    benchmark.pedantic(experiment, rounds=1, iterations=1)

    rows = []
    for policy in POLICIES:
        bill, hardware, result = results[policy]
        rows.append([
            policy,
            f"${bill:.2f}",
            f"{bill / hardware:.1%}",
            f"{result.total_violation_fraction():.1%}",
        ])
    hardware = results["static"][1]
    report(
        "",
        f"R-T5: tenant allocation bill over {DURATION / HOUR:.0f} h "
        f"(cluster hardware cost ${hardware:.2f})",
        format_table(
            ["policy", "allocation bill", "of hardware cost", "violations"],
            rows,
        ),
    )

    static_bill = results["static"][0]
    adaptive_bill = results["adaptive"][0]
    benchmark.extra_info["bill_reduction"] = static_bill / adaptive_bill
    # Shape: reclaim translates into a multi-x smaller bill at small
    # violation cost.
    assert adaptive_bill < static_bill / 2
    assert results["adaptive"][2].total_violation_fraction() < 0.15
