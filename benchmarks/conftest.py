"""Benchmark harness plumbing.

Every benchmark prints its table/figure through the ``report`` fixture so
the rows appear in ``pytest benchmarks/ --benchmark-only`` output (and in
``bench_output.txt``) even though pytest captures stdout by default.
"""

from __future__ import annotations

import sys

import pytest


@pytest.fixture
def report(capsys):
    """Printer that bypasses pytest's capture for experiment tables."""

    def _print(*lines: str) -> None:
        with capsys.disabled():
            for line in lines:
                sys.stdout.write(line + "\n")
            sys.stdout.flush()

    return _print
