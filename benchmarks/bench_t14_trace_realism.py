"""T14: trace realism — the arrival library reproduces what it claims.

The open-loop arrival library (:mod:`repro.workloads.arrivals`,
:mod:`repro.workloads.traceio`) makes quantitative promises: a
non-homogeneous Poisson process delivers the rate curve's integral with
unit-CV exponential gaps, an MMPP over-disperses the same mean load, a
Pareto size mark has the tail index it was built with, the deterministic
replayer emits exactly the integral's worth of events with a stable
fingerprint, and a correlated surge is active for its configured duty
cycle. T14 measures each promise on seeded draws, then closes the loop
end-to-end: a platform-hosted microservice driven by marked MMPP
arrivals must offer (over the whole run) the load its trace prescribes,
and two same-seed sweeps must agree bit-for-bit.

Run standalone with ``python -m benchmarks.bench_t14_trace_realism``
(``--smoke`` for the CI-sized variant).
"""

from __future__ import annotations

import argparse
import math

import numpy as np

from repro.cluster.resources import ResourceVector
from repro.platform.config import ClusterSpec, PlatformConfig
from repro.platform.evolve import EvolvePlatform
from repro.workloads.arrivals import (
    CorrelatedSurge,
    MarkedArrivals,
    MMPPArrivals,
    ParetoSizes,
    PoissonArrivals,
    trace_integral,
)
from repro.workloads.microservice import ServiceDemands
from repro.workloads.plo import LatencyPLO
from repro.workloads.traceio import TraceReplayer
from repro.workloads.traces import ConstantTrace, DiurnalTrace

SEED = 414
#: Statistical horizons. Smoke keeps the same assertions at roughly a
#: third of the sample mass; the tolerances below are calibrated for the
#: *smoke* sizes, so full mode only tightens the effective error bars.
FULL = {"stat_horizon": 10_800.0, "pareto_n": 12_000, "platform": 2_700.0}
SMOKE = {"stat_horizon": 3_600.0, "pareto_n": 4_000, "platform": 1_800.0}

PARETO_ALPHA = 1.6


def _hill_alpha(samples: np.ndarray, *, top_frac: float = 0.1) -> float:
    """Hill estimator of the Pareto tail index from the top ``top_frac``."""
    order = np.sort(samples)[::-1]
    k = max(10, int(len(order) * top_frac))
    tail = order[: k + 1]
    return float(1.0 / np.mean(np.log(tail[:-1] / tail[-1])))


def _interarrival_cv(times: np.ndarray) -> float:
    gaps = np.diff(times)
    return float(np.std(gaps) / np.mean(gaps))


def _rng(seed: int, name: str) -> np.random.Generator:
    # Bench cells draw from standalone streams (no platform attached);
    # seed + stable per-cell salt keeps them independent and replayable.
    salt = sum(ord(c) for c in name)
    return np.random.default_rng((seed, salt))


def _poisson_cell(sizes: dict) -> dict:
    horizon = sizes["stat_horizon"]
    trace = DiurnalTrace(base=100.0, amplitude=60.0, period=horizon / 3.0)
    events = PoissonArrivals(trace, _rng(SEED, "poisson")).window(0.0, horizon)
    expected = trace_integral(trace, 0.0, horizon)
    flat = ConstantTrace(50.0)
    flat_events = PoissonArrivals(flat, _rng(SEED, "poisson-flat")).window(
        0.0, horizon
    )
    return {
        "events": int(len(events)),
        "expected": expected,
        "rate_rel_error": abs(len(events) - expected) / expected,
        "flat_cv": _interarrival_cv(flat_events),
    }


def _mmpp_cell(sizes: dict) -> dict:
    horizon = sizes["stat_horizon"]
    flat = ConstantTrace(50.0)
    proc = MMPPArrivals(flat, _rng(SEED, "mmpp"), horizon=horizon)
    events = proc.window(0.0, horizon)
    factors = {proc.factor_at(t) for t in np.arange(0.0, horizon, 5.0)}
    return {
        "events": int(len(events)),
        "cv": _interarrival_cv(events),
        "states_visited": int(len(factors)),
    }


def _pareto_cell(sizes: dict) -> dict:
    marks = ParetoSizes(alpha=PARETO_ALPHA)
    draws = marks.sample(_rng(SEED, "pareto"), sizes["pareto_n"])
    return {
        "alpha_true": PARETO_ALPHA,
        "alpha_hill": _hill_alpha(draws),
        "mean_rel_error": abs(float(np.mean(draws)) - marks.mean())
        / marks.mean(),
    }


def _replay_cell(sizes: dict) -> dict:
    horizon = sizes["stat_horizon"]
    trace = DiurnalTrace(base=40.0, amplitude=25.0, period=horizon / 2.0)
    replayer = TraceReplayer(trace)
    events = replayer.events(0.0, horizon)
    expected = trace_integral(trace, 0.0, horizon)
    twin = TraceReplayer(trace).fingerprint(0.0, horizon)
    return {
        "events": int(len(events)),
        "expected": expected,
        "count_error": abs(len(events) - expected),
        "fingerprint": replayer.fingerprint(0.0, horizon),
        "fingerprint_stable": replayer.fingerprint(0.0, horizon) == twin,
    }


def _surge_cell(sizes: dict) -> dict:
    horizon = sizes["stat_horizon"] * 4
    surge = CorrelatedSurge(
        _rng(SEED, "surge"),
        horizon=horizon,
        mean_interval=600.0,
        duration=90.0,
    )
    grid = np.arange(0.0, horizon, 5.0)
    active = float(np.mean([surge.active(t) for t in grid]))
    # Union length of the drawn windows (they may overlap): the duty
    # cycle active() must realise, independent of sampling noise.
    union = 0.0
    cursor = 0.0
    for start, end in surge.windows():
        lo = max(start, cursor)
        if end > lo:
            union += end - lo
            cursor = end
    return {
        "windows": int(len(surge.windows())),
        "active_frac": active,
        "expected_frac": union / horizon,
    }


def _platform_cell(sizes: dict) -> dict:
    """End-to-end: marked MMPP arrivals drive a platform microservice."""
    horizon = sizes["platform"]
    platform = EvolvePlatform(
        cluster_spec=ClusterSpec(node_count=4),
        config=PlatformConfig(seed=SEED),
        scheduler="converged",
        policy="adaptive",
    )
    trace = DiurnalTrace(base=120.0, amplitude=70.0, period=horizon / 2.0)
    mmpp = MMPPArrivals(
        trace,
        platform.rng.stream("workload/frontend/arrivals"),
        horizon=horizon,
    )
    arrivals = MarkedArrivals(
        mmpp,
        ParetoSizes(alpha=PARETO_ALPHA),
        platform.rng.stream("workload/frontend/sizes"),
    )
    platform.deploy_microservice(
        "frontend",
        trace=trace,
        arrivals=arrivals,
        demands=ServiceDemands(cpu_seconds=0.005, base_latency=0.005),
        allocation=ResourceVector(cpu=1.2, memory=2, disk_bw=10, net_bw=30),
        plo=LatencyPLO(0.08, window=30),
    )
    platform.run(horizon)
    times, offered = platform.collector.series("app/frontend/offered").to_lists()
    dt = times[1] - times[0] if len(times) > 1 else 0.0
    offered_total = float(sum(offered)) * dt
    # The open-loop reference is the *modulated* rate (MMPP state path
    # included), not the base curve — realism means the service offered
    # exactly what the stochastic process prescribed, up to thinning
    # noise and edge-window truncation.
    expected = trace_integral(mmpp, 0.0, horizon)
    _, sf = platform.collector.series("app/frontend/size_factor").to_lists()
    return {
        "events": int(platform.engine.events_executed),
        "offered_total": offered_total,
        "expected_total": expected,
        "offered_rel_error": abs(offered_total - expected) / expected,
        "mean_size_factor": float(np.mean(sf)) if sf else 0.0,
    }


def run_case(*, mode: str = "smoke") -> dict:
    sizes = SMOKE if mode == "smoke" else FULL
    cells = {
        "poisson": _poisson_cell(sizes),
        "mmpp": _mmpp_cell(sizes),
        "pareto": _pareto_cell(sizes),
        "replay": _replay_cell(sizes),
        "surge": _surge_cell(sizes),
        "platform": _platform_cell(sizes),
    }
    return {"seed": SEED, "mode": mode, "cells": cells}


def check_case(case: dict) -> None:
    cells = case["cells"]

    # NHPP thinning delivers the rate curve's integral (hundreds of
    # thousands of events even in smoke, so 5% is a generous band) and
    # its constant-rate gaps are exponential (CV of 1).
    poisson = cells["poisson"]
    assert poisson["rate_rel_error"] < 0.05, (
        f"poisson mean rate off by {poisson['rate_rel_error']:.2%}"
    )
    assert abs(poisson["flat_cv"] - 1.0) < 0.1, (
        f"poisson gaps not exponential: CV={poisson['flat_cv']:.3f}"
    )

    # The MMPP visits multiple modulation states and over-disperses:
    # its CV must exceed Poisson's by a clear margin.
    mmpp = cells["mmpp"]
    assert mmpp["states_visited"] >= 2, "MMPP never switched state"
    assert mmpp["cv"] > 1.15, f"MMPP not over-dispersed: CV={mmpp['cv']:.3f}"

    # Hill's estimator recovers the configured tail index.
    pareto = cells["pareto"]
    assert abs(pareto["alpha_hill"] - pareto["alpha_true"]) < 0.25, (
        f"tail index drifted: hill={pareto['alpha_hill']:.3f}"
    )

    # The deterministic replayer is exact (one event per unit of
    # integrated rate, ±1 for the open right edge) and reproducible.
    replay = cells["replay"]
    assert replay["count_error"] <= 1.5, (
        f"replayer count error {replay['count_error']:.3f}"
    )
    assert replay["fingerprint_stable"], "replayer fingerprint unstable"

    # active() realises exactly the duty cycle its drawn windows imply
    # (within grid resolution), and the schedule is non-degenerate.
    surge = cells["surge"]
    assert surge["windows"] >= 2, "surge schedule degenerate"
    assert abs(surge["active_frac"] - surge["expected_frac"]) < 0.01, (
        f"surge duty {surge['active_frac']:.3f} vs "
        f"{surge['expected_frac']:.3f}"
    )

    # End to end: what the platform's microservice *offered* over the
    # run matches the trace integral (open-loop arrivals, so the only
    # slack is Poisson noise plus edge-window truncation), and the
    # heavy-tail marks actually modulated per-request work.
    plat = cells["platform"]
    assert plat["offered_rel_error"] < 0.08, (
        f"platform offered load off by {plat['offered_rel_error']:.2%}"
    )
    assert plat["mean_size_factor"] > 0.0, "size-factor gauge never exported"
    assert math.isfinite(plat["mean_size_factor"])


def format_case(case: dict) -> list[str]:
    cells = case["cells"]
    return [
        "T14 trace realism",
        (
            f"  poisson: {cells['poisson']['events']} events "
            f"(err {cells['poisson']['rate_rel_error']:.2%}, "
            f"flat CV {cells['poisson']['flat_cv']:.3f})"
        ),
        (
            f"  mmpp: CV {cells['mmpp']['cv']:.3f} over "
            f"{cells['mmpp']['states_visited']} states"
        ),
        (
            f"  pareto: hill alpha {cells['pareto']['alpha_hill']:.3f} "
            f"(true {cells['pareto']['alpha_true']})"
        ),
        (
            f"  replay: {cells['replay']['events']} events "
            f"(count err {cells['replay']['count_error']:.3f}) "
            f"fp {cells['replay']['fingerprint'][:12]}"
        ),
        (
            f"  surge: duty {cells['surge']['active_frac']:.3f} "
            f"(expected {cells['surge']['expected_frac']:.3f})"
        ),
        (
            f"  platform: offered err "
            f"{cells['platform']['offered_rel_error']:.2%}, "
            f"mean size factor "
            f"{cells['platform']['mean_size_factor']:.3f}, "
            f"{cells['platform']['events']} events"
        ),
    ]


def test_trace_realism(report) -> None:
    case = run_case()
    report(*format_case(case))
    check_case(case)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI-sized variant: shorter horizons, same assertions",
    )
    args = parser.parse_args(argv)
    case = run_case(mode="smoke" if args.smoke else "full")
    for line in format_case(case):
        print(line)
    check_case(case)
    print("T14 OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
