"""R-F9 — Energy: consolidation on the converged cluster.

The DATE-venue angle: the converged scheduler's consolidate-packing mode
packs the mixed workload onto few nodes so the rest park, versus the
spread default and the siloed partition (which keeps every pool's nodes
warm). Reports energy (kWh), mean power, parked-node time, and the PLO
cost of consolidating.
Shape expected: consolidate < spread < siloed energy, with a modest
violation penalty for consolidation (less headroom per node).
"""

import pytest

from repro.analysis.energy import PowerModel, cluster_energy
from repro.analysis.report import format_table
from benchmarks.scenarios import HOUR, build_platform, deploy_service_mix

DURATION = 3 * HOUR

CONFIGS = {
    "converged+consolidate": dict(
        scheduler="converged", scheduler_kwargs={"packing": "consolidate"}
    ),
    "converged+spread": dict(scheduler="converged", scheduler_kwargs={}),
    "siloed": dict(scheduler="siloed", scheduler_kwargs={}),
}


def run_config(name):
    cfg = CONFIGS[name]
    platform = build_platform(
        "adaptive", nodes=6, seed=42,
        scheduler=cfg["scheduler"],
        scheduler_kwargs=cfg["scheduler_kwargs"] or None,
    )
    deploy_service_mix(platform)
    platform.run(DURATION)
    model = PowerModel()
    report = cluster_energy(
        platform.collector, list(platform.cluster.nodes),
        start=0.0, end=DURATION, model=model,
    )
    parked_kwh_per_node = model.parked_watts * DURATION / 3.6e6
    parked_nodes = sum(
        1 for kwh in report.per_node_kwh.values()
        if kwh <= parked_kwh_per_node * 1.05
    )
    return report, parked_nodes, platform.result()


@pytest.mark.benchmark(group="f9-energy", min_rounds=1, max_time=1)
def test_f9_energy(benchmark, report):
    results = {}

    def experiment():
        for name in CONFIGS:
            if name not in results:
                results[name] = run_config(name)
        return results

    benchmark.pedantic(experiment, rounds=1, iterations=1)

    rows = []
    for name in CONFIGS:
        energy, parked, result = results[name]
        rows.append([
            name,
            f"{energy.total_kwh:.2f} kWh",
            f"{energy.mean_watts:.0f} W",
            f"{parked}/6",
            f"{result.total_violation_fraction():.1%}",
        ])
    report(
        "",
        f"R-F9: cluster energy over {DURATION / HOUR:.0f} h (service mix)",
        format_table(
            ["configuration", "energy", "mean power", "parked nodes",
             "violations"],
            rows,
        ),
    )

    consolidate = results["converged+consolidate"][0].total_kwh
    spread = results["converged+spread"][0].total_kwh
    benchmark.extra_info["energy_saving"] = 1 - consolidate / spread
    # Shape: consolidation parks nodes and saves energy without wrecking
    # the PLOs.
    assert consolidate < spread
    assert results["converged+consolidate"][1] >= 1
    assert results["converged+consolidate"][2].total_violation_fraction() < 0.15
