"""R-T9 — End-to-end reaction latency from the causal trace.

Runs the step-load scenario with telemetry enabled and measures, from
the decision trace itself, how fast the control plane turns a signal
into an allocation change:

* **Per-actuation reaction latency** — scrape→actuation lag of every
  applied change, reported as p50/p95/p99 twice: from the trace-derived
  distribution and from the ``ctrl/reaction_latency`` histogram the
  controller exports about itself (the two instruments must agree on a
  healthy pipeline: both near zero).
* **End-to-end step reaction** — seconds from the load-step timestamp
  to the first applied grow actuation, the headline number: the whole
  pipeline (scrape cadence → PLO window → PID transient → actuation
  delay) in one figure.

Every applied actuation must be causally chained to the scrape that
triggered it (actuate → decide → scrape) — the trace is only a valid
measurement instrument if the chain is complete.

``python -m benchmarks.bench_t9_reaction_latency`` runs it standalone
(``--smoke`` for the CI-sized variant).
"""

from __future__ import annotations

import argparse

from repro.analysis.report import format_table
from repro.analysis.traces import (
    actuations,
    end_to_end_reaction,
    latency_quantiles,
    reaction_latencies,
    triggering_scrape,
)
from benchmarks.scenarios import HOUR, build_platform, step_load_service

STEP_AT = HOUR / 2
DURATION = 1.5 * HOUR


def run_case(*, duration: float = DURATION, step_at: float = STEP_AT) -> dict:
    platform = build_platform("adaptive", seed=11, telemetry=True)
    app = step_load_service(platform, factor=3.0, step_at=step_at)
    platform.run(duration)

    trace = platform.telemetry.trace
    applied = actuations(trace, app)
    chained = [
        span for span in applied
        if triggering_scrape(trace, span) is not None
    ]
    latencies = reaction_latencies(trace, app)
    hist = platform.telemetry.reaction_latency
    return {
        "app": app,
        "step_at": step_at,
        "platform": platform,
        "trace": trace,
        "applied": len(applied),
        "chained": len(chained),
        "latencies": latencies,
        "trace_quantiles": latency_quantiles(latencies),
        "hist_quantiles": {
            f"p{q}": hist.quantile(q) for q in (50, 95, 99)
        },
        "step_reaction": end_to_end_reaction(
            trace, step_at, app, action="grow"
        ),
        "provenance": len(trace.provenance),
        "violations": platform.result().violation_fraction(app),
    }


def check_case(case: dict) -> None:
    assert case["applied"] >= 1, "the step never produced an actuation"
    assert case["chained"] == case["applied"], (
        f"{case['applied'] - case['chained']} actuations lost their "
        "causal chain to a scrape"
    )
    assert case["provenance"] >= 1
    # The per-actuation lag is bounded by the scrape/control cadence.
    assert case["trace_quantiles"]["p99"] <= 30.0, (
        f"p99 reaction latency {case['trace_quantiles']['p99']:.1f}s "
        "exceeds 3 control periods"
    )
    # The step must be answered within a handful of control periods:
    # PLO window (30 s) + a couple of 10 s decisions, plus margin.
    reaction = case["step_reaction"]
    assert reaction is not None, "no grow actuation after the load step"
    assert reaction <= 120.0, f"step reaction took {reaction:.0f}s"


def format_case(case: dict) -> list[str]:
    tq, hq = case["trace_quantiles"], case["hist_quantiles"]
    rows = [
        ["trace-derived", f"{tq['p50']:.2f}", f"{tq['p95']:.2f}",
         f"{tq['p99']:.2f}"],
        ["ctrl/reaction_latency", f"{hq['p50']:.2f}", f"{hq['p95']:.2f}",
         f"{hq['p99']:.2f}"],
    ]
    return [
        "T9 reaction latency "
        f"(step ×3 @{case['step_at']:.0f}s, app={case['app']})",
        format_table(["scrape→actuation (s)", "p50", "p95", "p99"], rows),
        f"  applied actuations={case['applied']} "
        f"(all {case['chained']} chained actuate→decide→scrape), "
        f"provenance records={case['provenance']}",
        f"  end-to-end step reaction: {case['step_reaction']:.1f} s "
        f"(load step → first applied grow)",
        f"  PLO violations: {case['violations']:.1%}",
    ]


def test_t9_reaction_latency(report) -> None:
    case = run_case()
    report("", *format_case(case))
    check_case(case)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI-sized variant: shorter run, same assertions",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        case = run_case(duration=0.75 * HOUR, step_at=HOUR / 4)
    else:
        case = run_case()
    for line in format_case(case):
        print(line)
    check_case(case)
    print("T9 OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
