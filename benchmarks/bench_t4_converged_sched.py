"""R-T4 — Scheduler quality: converged vs siloed vs vanilla kube.

The mixed-worlds arrival trace (services + big-data DAGs + HPC gangs) on
the same 6-node cluster, scheduled three ways. Reports microservice PLO
violations, batch makespans, HPC gang waits, and cluster usage.

Shape expected: the converged scheduler admits every gang quickly (silos
strand the 32-core gangs forever), finishes analytics at least as fast
(locality), and keeps service PLOs intact despite co-location.
"""

import pytest

from repro.analysis.report import format_table
from benchmarks.scenarios import (
    HOUR,
    build_platform,
    deploy_batch_churn,
    deploy_gang_rush,
    deploy_service_mix,
)

SCHEDULERS = ("kube", "siloed", "converged")
DURATION = 4 * HOUR


def run_scheduler(scheduler: str):
    platform = build_platform("adaptive", nodes=6, seed=23, scheduler=scheduler)
    services = deploy_service_mix(platform)
    batches = deploy_batch_churn(platform, start=0.25 * HOUR)
    gangs = deploy_gang_rush(platform)
    platform.run(DURATION)
    return services, batches, gangs, platform.result()


def _mean(values):
    values = [v for v in values if v is not None]
    return sum(values) / len(values) if values else None


def _fmt(value, scale=1.0, suffix=""):
    return "never" if value is None else f"{value * scale:.0f}{suffix}"


@pytest.mark.benchmark(group="t4-converged-sched", min_rounds=1, max_time=1)
def test_t4_converged_scheduling(benchmark, report):
    results = {}

    def experiment():
        for scheduler in SCHEDULERS:
            if scheduler not in results:
                results[scheduler] = run_scheduler(scheduler)
        return results

    benchmark.pedantic(experiment, rounds=1, iterations=1)

    rows = []
    for scheduler in SCHEDULERS:
        services, batches, gangs, result = results[scheduler]
        svc_violations = sum(
            result.violation_fraction(s) for s in services
        ) / len(services)
        batch_makespan = _mean([result.makespans[b] for b in batches])
        gang_wait = _mean([result.hpc_waits[g] for g in gangs])
        gangs_done = sum(1 for g in gangs if result.makespans[g] is not None)
        rows.append([
            scheduler,
            f"{svc_violations:.1%}",
            _fmt(batch_makespan, suffix=" s"),
            _fmt(gang_wait, suffix=" s"),
            f"{gangs_done}/{len(gangs)}",
            f"{result.utilization.overall_usage:.1%}",
        ])
    report(
        "",
        f"R-T4: one mixed-worlds trace, three schedulers "
        f"({DURATION / HOUR:.0f} h, 6 nodes)",
        format_table(
            ["scheduler", "svc violations", "batch makespan",
             "gang wait", "gangs done", "cluster usage"],
            rows,
        ),
    )

    conv = results["converged"][3]
    silo = results["siloed"][3]
    gangs = results["converged"][2]
    benchmark.extra_info["converged_gangs_done"] = sum(
        1 for g in gangs if conv.makespans[g] is not None
    )

    # Shape: converged runs every gang; silos strand them (4×8-core gangs
    # cannot fit any 2-node pool).
    assert all(conv.makespans[g] is not None for g in gangs)
    assert all(silo.makespans[g] is None for g in results["siloed"][2])
    # Co-location does not wreck the services.
    services = results["converged"][0]
    assert all(conv.violation_fraction(s) < 0.25 for s in services)
