"""R-F5 — Control-plane scalability.

Wall-clock cost of the control plane as the number of managed
applications grows (with the cluster scaled to hold them). This is the
one experiment where pytest-benchmark's timing is the measurement
itself: one simulated hour of platform time per configuration. Reported
series: wall seconds and controller decisions per managed app count.
Shape: cost grows roughly linearly with app count — the per-app control
loop has no quadratic interactions.
"""

import time

import pytest

from repro.analysis.report import format_table
from repro.cluster.resources import ResourceVector
from repro.workloads.microservice import ServiceDemands
from repro.workloads.plo import LatencyPLO
from repro.workloads.traces import DiurnalTrace
from benchmarks.scenarios import HOUR, build_platform

APP_COUNTS = (4, 8, 16, 32)
DURATION = 1 * HOUR


def run_scale(apps: int):
    platform = build_platform("adaptive", nodes=max(4, apps // 2), seed=3)
    for i in range(apps):
        platform.deploy_microservice(
            f"svc-{i}",
            trace=DiurnalTrace(base=60, amplitude=40, period=HOUR,
                               phase=i * 120.0),
            demands=ServiceDemands(cpu_seconds=0.008, disk_mb=0.1, net_mb=0.05,
                                   base_latency=0.01),
            allocation=ResourceVector(cpu=0.6, memory=1, disk_bw=15, net_bw=15),
            plo=LatencyPLO(0.06, window=30),
        )
    start = time.perf_counter()
    platform.run(DURATION)
    wall = time.perf_counter() - start
    decisions = sum(c.decisions for c in platform.policy.controllers.values())
    events = platform.engine.events_executed
    violations = platform.result().total_violation_fraction()
    return wall, decisions, events, violations


@pytest.mark.benchmark(group="f5-scalability", min_rounds=1, max_time=1)
def test_f5_scalability(benchmark, report):
    results = {}

    def experiment():
        for apps in APP_COUNTS:
            if apps not in results:
                results[apps] = run_scale(apps)
        return results

    benchmark.pedantic(experiment, rounds=1, iterations=1)

    rows = []
    for apps in APP_COUNTS:
        wall, decisions, events, violations = results[apps]
        rows.append([
            apps,
            f"{wall:.2f} s",
            decisions,
            events,
            f"{events / wall:,.0f}",
            f"{violations:.1%}",
        ])
    report(
        "",
        f"R-F5: control-plane cost for 1 simulated hour vs managed apps",
        format_table(
            ["apps", "wall time", "decisions", "sim events", "events/s",
             "violations"],
            rows,
        ),
    )

    # Shape: near-linear scaling — 8× the apps costs well under 32× the
    # wall time — and control quality does not degrade with scale.
    w4 = results[APP_COUNTS[0]][0]
    w32 = results[APP_COUNTS[-1]][0]
    benchmark.extra_info["wall_ratio_32_over_4"] = w32 / w4
    assert w32 / w4 < 32
    assert results[APP_COUNTS[-1]][3] < 0.2
