"""Shared workload scenarios for the reconstructed evaluation suite.

Each experiment in EXPERIMENTS.md builds on these: a mixed-bottleneck
service set (R-T1/R-T2/R-F1), step loads (R-T3/R-F2), the phase-shifting
service (R-F3), and the mixed-worlds job stream (R-T4/R-F4).
"""

from __future__ import annotations

from repro.cluster.resources import ResourceVector
from repro.platform.config import ClusterSpec, PlatformConfig
from repro.platform.evolve import EvolvePlatform
from repro.storage.placement import spread_blocks
from repro.workloads.bigdata import Stage
from repro.workloads.microservice import DemandPhase, ServiceDemands
from repro.workloads.plo import LatencyPLO
from repro.workloads.traces import (
    BurstyTrace,
    CompositeTrace,
    DiurnalTrace,
    FlashCrowdTrace,
    StepTrace,
)

HOUR = 3600.0


def build_platform(
    policy: str,
    *,
    nodes: int = 6,
    seed: int = 42,
    scheduler: str = "converged",
    policy_kwargs: dict | None = None,
    scheduler_kwargs: dict | None = None,
    telemetry: bool = False,
) -> EvolvePlatform:
    return EvolvePlatform(
        cluster_spec=ClusterSpec(node_count=nodes),
        config=PlatformConfig(seed=seed, telemetry=telemetry),
        scheduler=scheduler,
        policy=policy,
        policy_kwargs=policy_kwargs,
        scheduler_kwargs=scheduler_kwargs,
    )


def deploy_service_mix(platform: EvolvePlatform) -> list[str]:
    """The R-T1 service mix: three services with different bottlenecks.

    * ``web`` — CPU-bound, diurnal + flash crowd.
    * ``media`` — disk-I/O-bound (large reads per request), bursty.
    * ``cache`` — memory-and-network bound, diurnal off-phase.

    All are deliberately sized for their *mean* load, so every policy has
    to handle the peaks. Returns the app names.
    """
    rng = platform.rng
    platform.deploy_microservice(
        "web",
        trace=CompositeTrace([
            DiurnalTrace(base=200, amplitude=140, period=2 * HOUR),
            FlashCrowdTrace(start_time=1.2 * HOUR, peak_rate=250, rise=60,
                            decay=600),
        ]),
        demands=ServiceDemands(cpu_seconds=0.008, disk_mb=0.02, net_mb=0.05,
                               base_latency=0.008),
        allocation=ResourceVector(cpu=1.6, memory=2, disk_bw=20, net_bw=30),
        plo=LatencyPLO(0.05, window=30),
    )
    platform.deploy_microservice(
        "media",
        trace=BurstyTrace(base=40, burst_factor=3.0, burst_rate=1 / 1500,
                          burst_duration=180, horizon=6 * HOUR,
                          rng=rng.stream("trace/media")),
        demands=ServiceDemands(cpu_seconds=0.002, disk_mb=2.0, net_mb=1.0,
                               base_latency=0.015),
        allocation=ResourceVector(cpu=0.5, memory=2, disk_bw=90, net_bw=60),
        plo=LatencyPLO(0.08, window=30),
    )
    platform.deploy_microservice(
        "cache",
        trace=DiurnalTrace(base=150, amplitude=90, period=2 * HOUR,
                           phase=HOUR),
        demands=ServiceDemands(cpu_seconds=0.001, net_mb=0.5, mem_base=1.0,
                               mem_per_inflight=0.02, base_latency=0.005),
        allocation=ResourceVector(cpu=0.4, memory=2.5, disk_bw=10, net_bw=90),
        plo=LatencyPLO(0.04, window=30),
    )
    return ["web", "media", "cache"]


def deploy_batch_churn(platform: EvolvePlatform, *, start: float = 0.0) -> list[str]:
    """Background analytics jobs arriving through the run (R-T2 filler)."""
    names = []
    spread_blocks(
        platform.store, "events", total_mb=8000, block_mb=100,
        nodes=list(platform.cluster.nodes)[: max(1, len(platform.cluster.nodes) // 2)],
    )
    for i in range(3):
        name = f"batch-{i}"
        platform.submit_bigdata(
            name,
            stages=[
                # The scan is I/O-bound (input dominates CPU work), so
                # executor placement relative to the dataset matters.
                Stage("scan", 450.0, input_mb=24_000),
                Stage("agg", 800.0, input_mb=500, deps=("scan",)),
            ],
            allocation=ResourceVector(cpu=2, memory=4, disk_bw=100, net_bw=80),
            executors=3,
            dataset="events",
            delay=start + i * HOUR,
        )
        names.append(name)
    return names


def deploy_gang_rush(platform: EvolvePlatform, *, ranks: int = 8,
                     at: float = 120.0) -> list[str]:
    """Two simultaneous large gangs (R-T4).

    Sized so either gang fits the free cluster alone but not both at once.
    A gang-aware scheduler admits one and defers the other entirely; a
    per-pod scheduler binds stray ranks of the second gang, which then
    hold capacity hostage (spinning at the barrier) while elastic
    workloads queue behind them.
    """
    names = []
    for i in range(2):
        name = f"gang-{i}"
        platform.submit_hpc(
            name, ranks=ranks, duration=0.5 * HOUR,
            allocation=ResourceVector(cpu=6, memory=10, disk_bw=5, net_bw=120),
            delay=at,
        )
        names.append(name)
    return names


def deploy_hpc_stream(platform: EvolvePlatform, *, count: int = 3,
                      spacing: float = 0.75 * HOUR) -> list[str]:
    """Sequential HPC gangs (R-T4/R-F4)."""
    names = []
    for i in range(count):
        name = f"hpc-{i}"
        platform.submit_hpc(
            name, ranks=4, duration=0.4 * HOUR,
            allocation=ResourceVector(cpu=8, memory=10, disk_bw=5, net_bw=120),
            delay=120.0 + i * spacing,
        )
        names.append(name)
    return names


def step_load_service(platform: EvolvePlatform, *, factor: float = 3.0,
                      step_at: float = HOUR / 2) -> str:
    """A service whose load steps up by ``factor`` (R-T3/R-F2)."""
    base = 60.0
    platform.deploy_microservice(
        "stepper",
        trace=StepTrace([(0.0, base), (step_at, base * factor)]),
        demands=ServiceDemands(cpu_seconds=0.01, disk_mb=0.1, net_mb=0.05,
                               base_latency=0.01),
        allocation=ResourceVector(cpu=1, memory=1.5, disk_bw=20, net_bw=20),
        plo=LatencyPLO(0.05, window=30),
    )
    return "stepper"


PHASE_LEN = 1200.0


def phase_shift_service(platform: EvolvePlatform) -> str:
    """The moving-bottleneck service (R-F3)."""
    phases = [
        DemandPhase(0.0, ServiceDemands(
            cpu_seconds=0.02, disk_mb=0.05, net_mb=0.05, base_latency=0.01)),
        DemandPhase(PHASE_LEN, ServiceDemands(
            cpu_seconds=0.002, disk_mb=2.0, net_mb=0.05, base_latency=0.01)),
        DemandPhase(2 * PHASE_LEN, ServiceDemands(
            cpu_seconds=0.002, disk_mb=0.05, net_mb=1.5, base_latency=0.01)),
    ]
    platform.deploy_microservice(
        "shifter",
        trace=StepTrace([(0.0, 60.0)]),
        demands=phases,
        allocation=ResourceVector(cpu=1, memory=2, disk_bw=60, net_bw=60),
        plo=LatencyPLO(0.05, window=30),
    )
    return "shifter"
