"""R-F6 — Data-locality benefit of shared object-store placement.

An I/O-bound scan job over a dataset whose placement skew varies from
fully spread (every node holds blocks) to fully hot (one node holds
everything), scheduled by the locality-aware converged scheduler and the
locality-blind kube scheduler. Figure series: makespan vs skew for both.
Shape: kube degrades as data concentrates (executors read remotely);
converged follows the data and degrades only when the hot node cannot
hold every executor.
"""

import pytest

from repro.analysis.report import format_table
from repro.cluster.resources import ResourceVector
from repro.platform.config import ClusterSpec, PlatformConfig
from repro.platform.evolve import EvolvePlatform
from repro.storage.placement import spread_blocks
from repro.workloads.bigdata import Stage

SKEWS = (0.0, 0.5, 0.9)
DATASET_MB = 16_000


def run_scan(scheduler: str, skew: float):
    platform = EvolvePlatform(
        cluster_spec=ClusterSpec(node_count=4),
        config=PlatformConfig(seed=3),
        scheduler=scheduler,
    )
    spread_blocks(
        platform.store, "logs", total_mb=DATASET_MB, block_mb=100,
        nodes=sorted(platform.cluster.nodes), skew=skew,
    )
    job = platform.submit_bigdata(
        "scan",
        stages=[Stage("scan", 200.0, input_mb=DATASET_MB)],
        allocation=ResourceVector(cpu=2, memory=4, disk_bw=200, net_bw=60),
        executors=2,
        dataset="logs",
    )
    platform.run(4 * 3600.0)
    return job.makespan()


@pytest.mark.benchmark(group="f6-locality", min_rounds=1, max_time=1)
def test_f6_locality(benchmark, report):
    results = {}

    def experiment():
        for scheduler in ("converged", "kube"):
            for skew in SKEWS:
                key = (scheduler, skew)
                if key not in results:
                    results[key] = run_scan(scheduler, skew)
        return results

    benchmark.pedantic(experiment, rounds=1, iterations=1)

    rows = []
    for skew in SKEWS:
        conv = results[("converged", skew)]
        kube = results[("kube", skew)]
        rows.append([
            f"{skew:.1f}",
            f"{conv:.0f} s" if conv else "never",
            f"{kube:.0f} s" if kube else "never",
            f"{kube / conv:.2f}x" if conv and kube else "n/a",
        ])
    report(
        "",
        "R-F6: scan makespan vs dataset placement skew",
        format_table(["skew", "converged", "kube", "kube/converged"], rows),
    )

    # Shape: the locality-aware scheduler wins, and its advantage grows
    # (or at least holds) as the data concentrates.
    for skew in SKEWS:
        conv = results[("converged", skew)]
        kube = results[("kube", skew)]
        assert conv is not None and kube is not None
        assert conv <= kube * 1.05
    gain_spread = results[("kube", 0.0)] / results[("converged", 0.0)]
    gain_hot = results[("kube", 0.9)] / results[("converged", 0.9)]
    benchmark.extra_info["gain_at_hot"] = gain_hot
    assert gain_hot >= 1.1 or gain_spread >= 1.1
