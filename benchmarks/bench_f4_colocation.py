"""R-F4 — Converged co-location over time: utilization and HPC waits.

A stream of HPC gangs arriving through a day of services + analytics,
on the shared cluster vs the siloed partition. Figure series: cluster
usage per 30 minutes for both schedulers, plus gang wait times. Shape:
the converged cluster runs hotter (one pool absorbs every world's peaks)
and serves gangs that the HPC silo cannot even admit.
"""

import pytest

from repro.analysis.report import format_table
from benchmarks.scenarios import (
    HOUR,
    build_platform,
    deploy_batch_churn,
    deploy_hpc_stream,
    deploy_service_mix,
)

DURATION = 4 * HOUR
BUCKET = 1800.0


def run_scheduler(scheduler: str):
    platform = build_platform("adaptive", nodes=6, seed=31, scheduler=scheduler)
    deploy_service_mix(platform)
    deploy_batch_churn(platform, start=0.25 * HOUR)
    gangs = deploy_hpc_stream(platform, count=4, spacing=0.75 * HOUR)
    platform.run(DURATION)
    series = platform.collector.series("cluster/usage_frac/cpu")
    usage = {}
    for bucket_start in range(0, int(DURATION), int(BUCKET)):
        mean = series.integrate(bucket_start, bucket_start + BUCKET) / BUCKET
        usage[bucket_start] = mean
    return usage, gangs, platform.result()


@pytest.mark.benchmark(group="f4-colocation", min_rounds=1, max_time=1)
def test_f4_colocation(benchmark, report):
    results = {}

    def experiment():
        for scheduler in ("converged", "siloed"):
            if scheduler not in results:
                results[scheduler] = run_scheduler(scheduler)
        return results

    benchmark.pedantic(experiment, rounds=1, iterations=1)

    conv_usage, gangs, conv = results["converged"]
    silo_usage, _gangs, silo = results["siloed"]
    rows = [
        [f"{t / 60:.0f}-{(t + BUCKET) / 60:.0f}",
         f"{conv_usage[t]:.1%}", f"{silo_usage[t]:.1%}"]
        for t in sorted(conv_usage)
    ]
    report(
        "",
        "R-F4: cluster CPU usage per 30-min bucket",
        format_table(["t (min)", "converged", "siloed"], rows),
    )
    wait_rows = []
    for gang in gangs:
        wait_rows.append([
            gang,
            "never" if conv.hpc_waits[gang] is None
            else f"{conv.hpc_waits[gang]:.0f} s",
            "never" if silo.hpc_waits.get(gang) is None else
            f"{silo.hpc_waits[gang]:.0f} s",
        ])
    report(
        "",
        "R-F4: HPC gang queue waits",
        format_table(["gang", "converged", "siloed"], wait_rows),
    )

    mean_conv = sum(conv_usage.values()) / len(conv_usage)
    mean_silo = sum(silo_usage.values()) / len(silo_usage)
    benchmark.extra_info["usage_gain"] = mean_conv / max(mean_silo, 1e-9)

    # Shape: converged sustains materially higher usage and admits every
    # gang; the 2-node HPC silo cannot host 4×8-core gangs at all.
    assert mean_conv > 1.5 * mean_silo
    assert all(conv.hpc_waits[g] is not None for g in gangs)
    assert all(silo.hpc_waits[g] is None for g in gangs)
