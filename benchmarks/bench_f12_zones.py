"""R-F12 — Topology-aware gang placement across zones.

A communication-heavy gang on a two-zone cluster, placed zone-aware vs
zone-blind, across communication fractions. Figure series: makespan
ratio (blind / aware) vs comm fraction. Shape expected: the penalty of
spanning zones grows with the job's communication share; compute-bound
gangs barely care.
"""

import pytest

from repro.analysis.report import format_table
from repro.cluster.resources import ResourceVector
from repro.platform.config import ClusterSpec, PlatformConfig
from repro.platform.evolve import EvolvePlatform

COMM_FRACTIONS = (0.1, 0.3, 0.5)
JOB_DURATION = 900.0


def run_gang(comm_fraction: float, zone_aware: bool):
    platform = EvolvePlatform(
        cluster_spec=ClusterSpec(node_count=4, zones=2),
        config=PlatformConfig(seed=5),
        scheduler="converged",
        scheduler_kwargs={"zone_aware_gangs": zone_aware,
                          "interference_weight": 0.0},
    )
    job = platform.submit_hpc(
        "mpi", ranks=2, duration=JOB_DURATION,
        allocation=ResourceVector(cpu=7, memory=8, disk_bw=5, net_bw=100),
        comm_fraction=comm_fraction, zone_penalty=1.0,
    )
    platform.run(6 * 3600.0)
    return job.makespan()


@pytest.mark.benchmark(group="f12-zones", min_rounds=1, max_time=1)
def test_f12_zone_topology(benchmark, report):
    results = {}

    def experiment():
        for cf in COMM_FRACTIONS:
            for aware in (True, False):
                key = (cf, aware)
                if key not in results:
                    results[key] = run_gang(cf, aware)
        return results

    benchmark.pedantic(experiment, rounds=1, iterations=1)

    rows = []
    for cf in COMM_FRACTIONS:
        aware = results[(cf, True)]
        blind = results[(cf, False)]
        rows.append([
            f"{cf:.0%}",
            f"{aware:.0f} s",
            f"{blind:.0f} s",
            f"{blind / aware:.2f}x",
        ])
    report(
        "",
        "R-F12: gang makespan, zone-aware vs zone-blind placement "
        "(2 zones, cross-zone comm 2x slower)",
        format_table(
            ["comm fraction", "zone-aware", "zone-blind", "blind/aware"],
            rows,
        ),
    )

    gain_light = results[(0.1, False)] / results[(0.1, True)]
    gain_heavy = results[(0.5, False)] / results[(0.5, True)]
    benchmark.extra_info["gain_at_50pct_comm"] = gain_heavy
    # Shape: the penalty grows with communication share.
    assert gain_heavy > gain_light
    assert gain_heavy > 1.3
    # Zone-aware always runs at nominal speed.
    for cf in COMM_FRACTIONS:
        assert results[(cf, True)] == pytest.approx(JOB_DURATION + 12, abs=20)
