"""T7: the fault matrix — every fault class × every workload world.

The robustness claim behind the converged platform is not "survives a
node crash" but "degrades gracefully under the whole fault taxonomy":
infrastructure faults (crash, partial degradation), metrics-pipeline
faults (dropped scrapes, frozen series), and actuation faults (API
brown-outs). Each cell of the matrix injects one fault class mid-run
against one workload world and asserts:

* the run completes with zero unhandled exceptions,
* every fault episode heals (finite MTTR),
* every managed application's PLO error re-converges after injection,
* the control plane's degradation machinery engaged where it should
  (safe mode for scrape loss, retries for actuation faults).

Printed per cell: episodes, MTTR, worst re-convergence time, and the
resilience counters.
"""

from __future__ import annotations

import pytest

from repro.analysis.recovery import fault_recovery_report, summarize
from repro.cluster.resources import ResourceVector
from repro.workloads.bigdata import Stage

from benchmarks.scenarios import build_platform, deploy_service_mix

#: Fault injected here, well past controller convergence.
FAULT_AT = 1200.0
#: Crash / degradation heal delay (the infrastructure MTTR).
INFRA_HEAL = 240.0
#: Metrics-pipeline and actuation fault window.
PIPELINE_WINDOW = 120.0
DURATION = 2400.0
NODE = "node-01"

FAULT_CLASSES = (
    "crash", "degradation", "scrape-drop", "stale-metrics", "actuation",
)
WORKLOADS = ("micro", "bigdata")


def _deploy(platform, workload: str) -> list[str]:
    if workload == "micro":
        return deploy_service_mix(platform)
    # One deadline-managed analytics job sized to outlast the run (the
    # deadline sits past the horizon), so the deadline PLO is live before,
    # during, and after the fault and the controller paces rather than
    # races the job.
    platform.submit_bigdata(
        "etl",
        stages=[
            Stage("scan", 24_000.0, input_mb=12_000),
            Stage("agg", 14_000.0, input_mb=400, deps=("scan",)),
        ],
        allocation=ResourceVector(cpu=2, memory=4, disk_bw=80, net_bw=60),
        executors=3,
        deadline=6000.0,
        managed=True,
    )
    return ["etl"]


def _arm_fault(platform, fault: str, apps: list[str]) -> None:
    """Schedule one fault episode of the given class at FAULT_AT."""
    engine = platform.engine

    def strike() -> None:
        now = engine.now
        if fault == "crash":
            platform.injector.fail_node(NODE)
            engine.schedule(
                INFRA_HEAL, lambda: platform.injector.recover_node(NODE)
            )
        elif fault == "degradation":
            platform.degrader.degrade_node(NODE, 0.35)
            engine.schedule(
                INFRA_HEAL, lambda: platform.degrader.restore_node(NODE)
            )
        elif fault == "scrape-drop":
            platform.metrics_faults.drop_scrapes(now, PIPELINE_WINDOW)
        elif fault == "stale-metrics":
            for app in apps:
                platform.metrics_faults.freeze(f"app/{app}", now, PIPELINE_WINDOW)
        elif fault == "actuation":
            platform.actuation_faults.outage(now, PIPELINE_WINDOW)
        else:  # pragma: no cover - parametrize guards this
            raise ValueError(f"unknown fault class {fault!r}")

    engine.schedule(FAULT_AT, strike)


@pytest.mark.parametrize("workload", WORKLOADS)
@pytest.mark.parametrize("fault", FAULT_CLASSES)
def test_fault_matrix(fault: str, workload: str, report) -> None:
    platform = build_platform("adaptive", nodes=6, seed=11)
    apps = _deploy(platform, workload)
    _arm_fault(platform, fault, apps)

    # Zero-unhandled-exceptions criterion: any escape fails the cell.
    platform.run(DURATION)

    manager = platform.policy.manager
    stats = manager.resilience_stats()
    # Deadline errors drift in a wider band than latency errors while the
    # controller paces the job, so the settle threshold is looser there.
    threshold = 0.5 if workload == "bigdata" else 0.35
    episodes = fault_recovery_report(
        platform.fault_log, platform.collector, apps,
        threshold=threshold, settle=3,
    )
    agg = summarize(episodes)

    report(
        f"T7 {workload:>7s} × {fault:<13s} "
        f"episodes={agg.episodes} healed={agg.healed} "
        f"mttr={agg.max_mttr:.0f}s "
        f"reconverge={agg.max_reconvergence:.0f}s "
        f"safe_mode={stats['safe_mode_entries']} "
        f"retries={stats['retries']} "
        f"act_fail={stats['actuation_failures']} "
        f"breaker={stats['breaker_trips']}"
    )

    assert agg.episodes >= 1, "fault was never injected"
    assert agg.healed == agg.episodes, "an episode never healed"
    assert agg.unconverged == 0 and agg.max_reconvergence is not None, (
        f"PLO error never re-converged: {[e.reconvergence for e in episodes]}"
    )

    if fault == "scrape-drop":
        # Signal loss must drive every managed app through safe mode and
        # back out once scrapes resume.
        for app in apps:
            res = manager.entry_resilience(app)
            assert res["safe_mode_entries"] >= 1, f"{app} never entered safe mode"
            assert res["safe_mode_exits"] >= 1, f"{app} never exited safe mode"
            assert not res["safe_mode"], f"{app} stuck in safe mode"
    if fault == "actuation" and workload == "micro":
        # The service mix actuates nearly every period, so the outage must
        # surface as absorbed failures and backoff retries.
        assert stats["actuation_failures"] > 0, "outage never hit an actuation"
        assert stats["retries"] > 0, "failed actuations were never retried"
