"""T12: SLO attainment and burn-rate alerting across canonical scenarios.

The SLO engine and flight recorder (:mod:`repro.obs.slo`,
:mod:`repro.obs.recorder`) claim three things: a calm platform attains
its objectives with zero alerts, an overloaded platform burns its
shed/brownout error budgets and raises burn-rate alerts that *resolve*
once the degradation machinery catches up, and a fault-ridden data
plane shows its lag burn while every conservation ledger still
balances. T12 checks all three against the preset scenarios in
:mod:`repro.platform.presets` — the same seeded platforms the
``repro report`` CLI runs — and measures **alert latency**: the time
from an SLO's first bad tick to its first multi-window burn-rate alert
firing (the fast window must accumulate enough evidence, so detection
trails onset by design).

Run standalone with ``python -m benchmarks.bench_t12_slo``
(``--smoke`` for the CI-sized variant).
"""

from __future__ import annotations

import argparse

from repro.obs.recorder import build_run_report
from repro.platform.presets import PRESETS, build_scenario

SCENARIOS = ("calm", "overload", "data-fault")
SEED = PRESETS["overload"].seed
#: Smoke trims only the calm horizon; overload/data-fault presets are
#: already CI-sized and shortening them would cut the alert lifecycle.
SMOKE_CALM_DURATION = 900.0


def _alert_latency(slo: dict) -> float | None:
    """Seconds from the SLO's first bad tick to its first alert firing."""
    if not slo["alerts"] or slo["first_bad_at"] is None:
        return None
    return slo["alerts"][0]["fired_at"] - slo["first_bad_at"]


def _run_scenario(name: str, duration: float | None) -> dict:
    platform, horizon = build_scenario(name, duration=duration)
    platform.run(horizon)
    report = build_run_report(platform)
    slos = report.slos
    resolved = sum(
        1 for a in report.alerts if a["end"] is not None
    )
    return {
        "scenario": name,
        "duration": horizon,
        "report": report.as_dict(),
        "overall_attainment": report.overall_attainment(),
        "attainment": {n: s["attainment"] for n, s in slos.items()},
        "budget_spent_s": {n: s["budget_spent_s"] for n, s in slos.items()},
        "alert_latency_s": {n: _alert_latency(s) for n, s in slos.items()},
        "alerts": len(report.alerts),
        "alerts_resolved": resolved,
        "ledgers_ok": report.ledgers_ok(),
        "events": platform.engine.events_executed,
    }


def run_case(*, calm_duration: float | None = None) -> dict:
    cells = {
        name: _run_scenario(
            name, calm_duration if name == "calm" else None
        )
        for name in SCENARIOS
    }
    return {"scenarios": cells}


def check_case(case: dict) -> None:
    calm = case["scenarios"]["calm"]
    overload = case["scenarios"]["overload"]
    datafault = case["scenarios"]["data-fault"]

    # Calm baseline: every objective attained, not a single alert.
    assert calm["overall_attainment"] == 1.0, (
        f"calm run burned budget: {calm['attainment']}"
    )
    assert calm["alerts"] == 0, f"calm run alerted: {calm['alerts']}"

    # Overload: the shed and brownout budgets actually burn, and at
    # least one burn-rate alert completes a firing -> resolved cycle.
    assert overload["budget_spent_s"]["shed_free"] > 0.0, (
        "overload never engaged the admission latch"
    )
    assert overload["budget_spent_s"]["brownout_free"] > 0.0, (
        "overload never browned out the web service"
    )
    assert overload["alerts"] >= 1, "overload raised no burn-rate alerts"
    assert overload["alerts_resolved"] >= 1, (
        "no overload alert ever resolved"
    )
    # Detection latency is positive (multi-window evidence takes time)
    # and bounded by the slow window — the alert design's worst case.
    latency = overload["alert_latency_s"]["web_latency"]
    assert latency is not None and 0.0 <= latency <= 600.0, (
        f"web_latency alert latency out of range: {latency}"
    )

    # Data plane under faults: the stream-lag budget burns while the
    # repair loop keeps the storage objective whole.
    assert datafault["attainment"]["stream_lag"] < 1.0, (
        "harsh fault schedule never pushed stream lag over objective"
    )
    assert datafault["attainment"]["repair_backlog"] == 1.0, (
        "repair loop left backlog standing across scrapes"
    )

    # Every conservation ledger balances in every scenario.
    for name, cell in case["scenarios"].items():
        assert cell["ledgers_ok"], f"ledger imbalance in {name}"


def format_case(case: dict) -> list[str]:
    lines = ["T12 SLO attainment and burn-rate alerting"]
    for name, cell in case["scenarios"].items():
        lines.append(
            f"  {name} ({cell['duration']:.0f}s): "
            f"attainment={cell['overall_attainment']:.3f} "
            f"alerts={cell['alerts']} "
            f"(resolved={cell['alerts_resolved']}) "
            f"ledgers={'ok' if cell['ledgers_ok'] else 'IMBALANCED'}"
        )
    web_latency = case["scenarios"]["overload"]["alert_latency_s"].get(
        "web_latency"
    )
    if web_latency is not None:
        lines.append(
            f"  overload web_latency alert latency: {web_latency:.0f}s "
            f"after first bad tick"
        )
    spent = case["scenarios"]["overload"]["budget_spent_s"]
    lines.append(
        "  overload budget spent: " + "  ".join(
            f"{n}={s:.0f}s" for n, s in sorted(spent.items())
        )
    )
    return lines


def test_slo_attainment(report) -> None:
    case = run_case()
    report(*format_case(case))
    check_case(case)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI-sized variant: shorter calm horizon, same assertions",
    )
    args = parser.parse_args(argv)
    case = run_case(
        calm_duration=SMOKE_CALM_DURATION if args.smoke else None
    )
    for line in format_case(case):
        print(line)
    check_case(case)
    print("T12 OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
