"""Unified benchmark runner: every experiment, one registry, one gate.

Each entry in :data:`EXPERIMENTS` wraps one ``bench_*.py`` experiment
with two modes:

* ``smoke`` — a CI-sized variant (reduced grid / duration) that still
  exercises the full platform stack, plus **deterministic budgets**:
  seeded simulations execute an exact, reproducible number of engine
  events (and profiled function calls), so the runner asserts those
  counts against recorded upper bounds. A regression that makes the
  control plane busier — more events, more calls — fails CI
  deterministically, with zero timing flake on noisy runners.
* ``full`` — the paper-scale grid behind EXPERIMENTS.md.

Every run emits one ``BENCH_<exp>.json`` (see :func:`run_experiment`
for the schema): wall time, events executed, events/sec, the
experiment's headline metrics, the seed, and the budget verdicts.
Wall-clock-derived numbers are reported under ``timing`` — never under
``metrics`` — so two smoke runs of the same tree produce bit-identical
``metrics`` blocks (the determinism test relies on this split).

Usage::

    python -m benchmarks.runner --smoke --json out/
    python -m repro bench --smoke --json out/       # same thing
    python -m benchmarks.runner --only t1,f5 --list
"""

from __future__ import annotations

import argparse
import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Mapping

from repro.analysis.cost import PriceSheet, app_cost, cluster_provisioned_cost
from repro.analysis.energy import PowerModel, cluster_energy
from repro.analysis.recovery import fault_recovery_report, summarize
from repro.analysis.stats import recovery_time
from repro.cluster.events import PodResized
from repro.cluster.resources import ResourceVector
from repro.control.pid import PIDGains
from repro.platform.config import ClusterSpec, PlatformConfig
from repro.platform.evolve import EvolvePlatform
from repro.storage.placement import spread_blocks
from repro.workloads.bigdata import Stage
from repro.workloads.microservice import ServiceDemands
from repro.workloads.plo import LatencyPLO, ThroughputPLO
from repro.workloads.traces import ConstantTrace, NoisyTrace

from benchmarks import bench_f5_scalability as bench_f5
from benchmarks import bench_f8_acceleration as bench_f8
from benchmarks import bench_f10_feedforward as bench_f10
from benchmarks import bench_micro_timeseries as bench_micro
from benchmarks import bench_t2_utilization as bench_t2
from benchmarks import bench_t7_fault_matrix as bench_t7
from benchmarks import bench_t8_control_plane_outage as bench_t8
from benchmarks import bench_t9_reaction_latency as bench_t9
from benchmarks import bench_t10_overload as bench_t10
from benchmarks import bench_t11_dataplane as bench_t11
from benchmarks import bench_t12_slo as bench_t12
from benchmarks import bench_telemetry_overhead as bench_tel
from benchmarks.scenarios import (
    HOUR,
    PHASE_LEN,
    build_platform,
    deploy_batch_churn,
    deploy_gang_rush,
    deploy_hpc_stream,
    deploy_service_mix,
    phase_shift_service,
    step_load_service,
)


@dataclass(frozen=True)
class Experiment:
    """One registered benchmark.

    ``run(mode)`` returns a dict with keys ``seed``, ``events_executed``
    (int or None), ``metrics`` (deterministic values only) and optional
    ``timing`` (wall-clock-derived values, excluded from determinism
    comparisons). ``budgets`` maps dotted result paths (``events_executed``
    or ``metrics.<name>``) to smoke-mode upper bounds.
    """

    name: str
    module: str
    title: str
    run: Callable[[str], dict]
    budgets: Mapping[str, int] = field(default_factory=dict)


def _events(*platforms) -> int:
    return sum(p.engine.events_executed for p in platforms)


#: Run-seed override (``--seed``). Adapters that build platforms
#: directly route their default seed through :func:`_seed`; experiments
#: that delegate to a bench module's own seeded case (t8, t9, f5, the
#: micro-benchmarks) keep their internal seeds. Smoke budgets are only
#: calibrated at the default seeds, so an override skips budget gating
#: (see docs/testing.md).
_SEED_OVERRIDE: int | None = None


def _seed(default: int) -> int:
    return default if _SEED_OVERRIDE is None else _SEED_OVERRIDE


# -- experiment adapters ------------------------------------------------------
#
# Smoke variants shrink the grid and the simulated duration but keep the
# seeds and scenario construction of the full experiment, so their event
# counts stay deterministic and comparable across commits.


def _run_t1(mode: str) -> dict:
    policies = ("static", "adaptive") if mode == "smoke" else (
        "static", "hpa", "vpa", "adaptive")
    duration = HOUR if mode == "smoke" else 4 * HOUR
    events = 0
    metrics: dict = {}
    for policy in policies:
        platform = build_platform(policy, nodes=6, seed=_seed(42))
        deploy_service_mix(platform)
        platform.run(duration)
        metrics[f"violations/{policy}"] = (
            platform.result().total_violation_fraction())
        events += _events(platform)
    metrics["improvement_vs_static"] = (
        metrics["violations/static"] / max(metrics["violations/adaptive"], 1e-6))
    return {"seed": _seed(42), "events_executed": events, "metrics": metrics}


def _run_t2(mode: str) -> dict:
    policies = ("static", "adaptive") if mode == "smoke" else (
        "static", "vpa", "adaptive")
    duration = HOUR if mode == "smoke" else 4 * HOUR
    events = 0
    metrics: dict = {}
    for policy in policies:
        platform = build_platform(policy, nodes=6, seed=_seed(17))
        bench_t2.deploy_overprovisioned_mix(platform)
        deploy_batch_churn(platform, start=0.5 * HOUR)
        platform.run(duration)
        util = platform.result().utilization
        metrics[f"efficiency/{policy}"] = (
            util.overall_usage / max(util.overall_alloc, 1e-9))
        events += _events(platform)
    metrics["utilization_gain"] = (
        metrics["efficiency/adaptive"] / max(metrics["efficiency/static"], 1e-9))
    return {"seed": _seed(17), "events_executed": events, "metrics": metrics}


_T3_WEAK = PIDGains(kp=0.05, ki=0.005, kd=0.0)


def _t3_platform(policy_kwargs: dict) -> EvolvePlatform:
    return build_platform(
        "adaptive", nodes=4, seed=_seed(7),
        policy_kwargs={"horizontal": False, **policy_kwargs})


def _t3_step(policy_kwargs: dict) -> tuple[float, EvolvePlatform]:
    platform = _t3_platform(policy_kwargs)
    app = step_load_service(platform, factor=6.0, step_at=HOUR / 2)
    platform.run(1.5 * HOUR)
    return platform.result().trackers[app].violation_fraction, platform


def _t3_shift(policy_kwargs: dict) -> tuple[float, EvolvePlatform]:
    platform = _t3_platform(policy_kwargs)
    app = phase_shift_service(platform)
    platform.run(3 * HOUR)
    return platform.result().trackers[app].violation_fraction, platform


def _t3_noisy(policy_kwargs: dict) -> tuple[int, EvolvePlatform]:
    platform = _t3_platform(policy_kwargs)
    resizes = [0]
    platform.api.watch(
        PodResized, lambda e: resizes.__setitem__(0, resizes[0] + 1))
    trace = NoisyTrace(ConstantTrace(100), rel_std=0.15, bucket=60,
                       horizon=3 * HOUR, rng=platform.rng.stream("trace/noise"))
    platform.deploy_microservice(
        "pipe",
        trace=trace,
        demands=ServiceDemands(cpu_seconds=0.01, base_latency=0.01),
        allocation=ResourceVector(cpu=1.2, memory=1.5, disk_bw=20, net_bw=20),
        plo=ThroughputPLO(100.0, window=30),
    )
    platform.run(2 * HOUR)
    return resizes[0], platform


def _run_t3(mode: str) -> dict:
    events = 0
    metrics: dict = {}
    for label, kwargs in (("adaptive_weak", {"gains": _T3_WEAK}),
                          ("fixed_weak", {"gains": _T3_WEAK, "adaptive": False})):
        violations, platform = _t3_step(kwargs)
        metrics[f"violations/{label}"] = violations
        events += _events(platform)
    if mode == "full":
        for label, kwargs in (("multi", {}), ("cpu_only", {"dimensions": ("cpu",)})):
            violations, platform = _t3_shift(kwargs)
            metrics[f"violations/{label}"] = violations
            events += _events(platform)
        for label, kwargs in (("deadband", {"deadband": 0.1}),
                              ("no_deadband", {"deadband": 0.0})):
            resizes, platform = _t3_noisy(kwargs)
            metrics[f"resizes/{label}"] = resizes
            events += _events(platform)
    return {"seed": _seed(7), "events_executed": events, "metrics": metrics}


def _run_t4(mode: str) -> dict:
    schedulers = ("converged",) if mode == "smoke" else (
        "kube", "siloed", "converged")
    duration = 1.5 * HOUR if mode == "smoke" else 4 * HOUR
    events = 0
    metrics: dict = {}
    for scheduler in schedulers:
        platform = build_platform("adaptive", nodes=6, seed=_seed(23),
                                  scheduler=scheduler)
        services = deploy_service_mix(platform)
        deploy_batch_churn(platform, start=0.25 * HOUR)
        gangs = deploy_gang_rush(platform)
        platform.run(duration)
        result = platform.result()
        metrics[f"svc_violations/{scheduler}"] = sum(
            result.violation_fraction(s) for s in services) / len(services)
        metrics[f"gangs_done/{scheduler}"] = sum(
            1 for g in gangs if result.makespans[g] is not None)
        metrics[f"usage/{scheduler}"] = result.utilization.overall_usage
        events += _events(platform)
    return {"seed": _seed(23), "events_executed": events, "metrics": metrics}


def _run_t5(mode: str) -> dict:
    policies = ("static", "adaptive") if mode == "smoke" else (
        "static", "vpa", "adaptive")
    duration = HOUR if mode == "smoke" else 4 * HOUR
    prices = PriceSheet()
    events = 0
    metrics: dict = {}
    for policy in policies:
        platform = build_platform(policy, nodes=6, seed=_seed(17))
        apps = bench_t2.deploy_overprovisioned_mix(platform)
        platform.run(duration)
        bill = sum(
            app_cost(platform.collector, app, prices=prices).total
            for app in apps)
        metrics[f"bill/{policy}"] = bill
        events += _events(platform)
    metrics["hardware_cost"] = cluster_provisioned_cost(
        platform.api.total_allocatable(), duration, prices=prices)
    metrics["bill_reduction"] = (
        metrics["bill/static"] / max(metrics["bill/adaptive"], 1e-9))
    return {"seed": _seed(17), "events_executed": events, "metrics": metrics}


def _run_t6(mode: str) -> dict:
    base = _seed(1)
    seeds = (base, base + 1) if mode == "smoke" else tuple(
        range(base, base + 5))
    duration = HOUR if mode == "smoke" else 3 * HOUR
    events = 0
    metrics: dict = {}
    improvements = []
    for seed in seeds:
        per_policy = {}
        for policy in ("static", "adaptive"):
            platform = build_platform(policy, nodes=6, seed=seed)
            deploy_service_mix(platform)
            platform.run(duration)
            per_policy[policy] = platform.result().total_violation_fraction()
            events += _events(platform)
        improvement = per_policy["static"] / max(per_policy["adaptive"], 1e-6)
        improvements.append(improvement)
        metrics[f"improvement/seed-{seed}"] = improvement
    metrics["min_improvement"] = min(improvements)
    metrics["mean_improvement"] = sum(improvements) / len(improvements)
    return {"seed": seeds[0], "events_executed": events, "metrics": metrics}


def _run_t7(mode: str) -> dict:
    if mode == "smoke":
        cells = (("micro", "crash"),)
    else:
        cells = tuple(
            (workload, fault)
            for workload in bench_t7.WORKLOADS
            for fault in bench_t7.FAULT_CLASSES)
    events = 0
    metrics: dict = {"cells": len(cells)}
    healed_cells = 0
    for workload, fault in cells:
        platform = build_platform("adaptive", nodes=6, seed=_seed(11))
        apps = bench_t7._deploy(platform, workload)
        bench_t7._arm_fault(platform, fault, apps)
        platform.run(bench_t7.DURATION)
        threshold = 0.5 if workload == "bigdata" else 0.35
        agg = summarize(fault_recovery_report(
            platform.fault_log, platform.collector, apps,
            threshold=threshold, settle=3))
        ok = (agg.episodes >= 1 and agg.healed == agg.episodes
              and agg.unconverged == 0)
        healed_cells += 1 if ok else 0
        metrics[f"healed/{workload}/{fault}"] = ok
        metrics[f"mttr/{workload}/{fault}"] = agg.max_mttr
        events += _events(platform)
    metrics["cells_healed"] = healed_cells
    return {"seed": _seed(11), "events_executed": events, "metrics": metrics}


def _run_t8(mode: str) -> dict:
    if mode == "smoke":
        case = bench_t8.run_outage_case(
            crash_at=600.0, repair=200.0, duration=1500.0)
    else:
        case = bench_t8.run_outage_case()
    bench_t8.check_outage_case(case)
    stats = case["stats"]
    metrics = {
        "failovers": stats.failovers,
        "max_gap_s": stats.max_gap,
        "snapshot_restores": stats.snapshot_restores,
        "duplicate_actuations": len(case["duplicates"]),
        "max_cpu_divergence": max(case["divergence"].values()),
        "violations/ha": case["ha_violations"],
        "violations/clean": case["clean_violations"],
        "violations/single": case["single_violations"],
    }
    events = _events(case["ha"], case["clean"], case["single"])
    return {"seed": bench_t8.SEED, "events_executed": events,
            "metrics": metrics}


def _run_t9(mode: str) -> dict:
    if mode == "smoke":
        case = bench_t9.run_case(duration=0.75 * HOUR, step_at=HOUR / 4)
    else:
        case = bench_t9.run_case()
    bench_t9.check_case(case)
    metrics = {
        "applied": case["applied"],
        "chained": case["chained"],
        "provenance": case["provenance"],
        "reaction_p50_s": case["trace_quantiles"]["p50"],
        "reaction_p99_s": case["trace_quantiles"]["p99"],
        "step_reaction_s": case["step_reaction"],
        "violations": case["violations"],
    }
    return {"seed": 11, "events_executed": _events(case["platform"]),
            "metrics": metrics}


def _run_t10(mode: str) -> dict:
    if mode == "smoke":
        case = bench_t10.run_case(duration=900.0, factors=(1.0, 4.0))
    else:
        case = bench_t10.run_case()
    bench_t10.check_case(case)
    res_1x, res_peak = case["resilient"][0], case["resilient"][-1]
    base_peak = case["baseline"][-1]
    shed = res_peak["shed_by_class"]
    outage = case["outage"]
    metrics = {
        "goodput/resilient-1x": res_1x["goodput"],
        "goodput/resilient-peak": res_peak["goodput"],
        "goodput/baseline-peak": base_peak["goodput"],
        "shed_total": res_peak["shed_total"],
        "shed/best-effort": shed["best-effort"],
        "shed/batch": shed["batch"],
        "running_evictions": res_peak["evicted_running"],
        "brownout_duty": res_peak["brownout_duty"],
        "outage/pods_displaced": outage["pods_displaced"],
        "outage/time_to_recover_s": outage["time_to_recover_s"],
    }
    events = sum(
        p["events"] for p in case["resilient"] + case["baseline"]
    ) + outage["events"]
    return {"seed": bench_t10.SEED, "events_executed": events,
            "metrics": metrics}


def _run_t11(mode: str) -> dict:
    if mode == "smoke":
        case = bench_t11.run_case(duration=900.0, levels=("calm", "harsh"))
    else:
        case = bench_t11.run_case()
    bench_t11.check_case(case)
    calm_ft = case["ft"][0]
    harsh_ft = case["ft"][-1]
    calm_base = case["baseline"][0]
    metrics = {
        "makespan_s/ft-calm": calm_ft["makespan"],
        "makespan_s/ft-harsh": harsh_ft["makespan"],
        "makespan_s/baseline-calm": calm_base["makespan"],
        "stream_lag_s/ft-harsh": harsh_ft["stream_lag_seconds"],
        "executor_losses": harsh_ft["executor_losses"],
        "lineage_recomputes": harsh_ft["lineage_recomputes"],
        "reopened_cpu_s": harsh_ft["reopened_work"],
        "stream_restarts": harsh_ft["stream_restarts"],
        "stream_replayed": harsh_ft["stream_replayed"],
        "repair_traffic_mb": harsh_ft["repair_traffic_mb"],
    }
    events = sum(c["events"] for c in case["ft"] + case["baseline"])
    return {"seed": bench_t11.SEED, "events_executed": events,
            "metrics": metrics}


def _run_t12(mode: str) -> dict:
    if mode == "smoke":
        case = bench_t12.run_case(
            calm_duration=bench_t12.SMOKE_CALM_DURATION)
    else:
        case = bench_t12.run_case()
    bench_t12.check_case(case)
    cells = case["scenarios"]
    overload = cells["overload"]
    metrics = {
        "attainment/calm": cells["calm"]["overall_attainment"],
        "attainment/overload": overload["overall_attainment"],
        "attainment/data-fault": cells["data-fault"]["overall_attainment"],
        "alerts/calm": cells["calm"]["alerts"],
        "alerts/overload": overload["alerts"],
        "alerts_resolved/overload": overload["alerts_resolved"],
        "alert_latency_s/web_latency": (
            overload["alert_latency_s"]["web_latency"]),
        "budget_spent_s/shed_free": (
            overload["budget_spent_s"]["shed_free"]),
        "budget_spent_s/brownout_free": (
            overload["budget_spent_s"]["brownout_free"]),
        "ledgers_ok": all(c["ledgers_ok"] for c in cells.values()),
    }
    events = sum(c["events"] for c in cells.values())
    # The per-scenario RunReports ride along so --json can emit the
    # flight-recorder artifact (REPORT_t12.json) next to the payload.
    reports = {name: c["report"] for name, c in cells.items()}
    return {"seed": bench_t12.SEED, "events_executed": events,
            "metrics": metrics, "report": reports}


def _run_t13(mode: str) -> dict:
    # Imported lazily: the arena pulls in the scenario pack and the
    # fuzzer's platform builder, which the other adapters never need.
    from benchmarks import bench_t13_arena as bench_t13
    from repro.arena import run_arena

    if _SEED_OVERRIDE is not None:
        # The shape checks are calibrated at the pack's native seeds;
        # under --seed only the sweep itself runs (like every budget).
        payload = run_arena(seed=_SEED_OVERRIDE)
    else:
        # Smoke replays the pack at its native horizons (the pack IS
        # CI-sized); full mode doubles every cell's horizon so slow
        # convergence and late reclaim show up in the scorecards.
        payload = bench_t13.run_case(
            horizon=bench_t13.FULL_HORIZON if mode == "full" else None
        )
        bench_t13.check_case(payload)
    return {
        "seed": payload["seed"],
        "events_executed": payload["events_executed"],
        "metrics": payload["metrics"],
        "timing": payload["timing"],
    }


def _run_t14(mode: str) -> dict:
    # Imported lazily like t13: pulls the arrival library and a full
    # platform build the other adapters never need.
    from benchmarks import bench_t14_trace_realism as bench_t14

    case = bench_t14.run_case(mode=mode)
    bench_t14.check_case(case)
    cells = case["cells"]
    metrics = {
        "poisson/rate_rel_error": cells["poisson"]["rate_rel_error"],
        "poisson/flat_cv": cells["poisson"]["flat_cv"],
        "mmpp/cv": cells["mmpp"]["cv"],
        "mmpp/states_visited": cells["mmpp"]["states_visited"],
        "pareto/alpha_hill": cells["pareto"]["alpha_hill"],
        "pareto/mean_rel_error": cells["pareto"]["mean_rel_error"],
        "replay/count_error": cells["replay"]["count_error"],
        "replay/fingerprint": cells["replay"]["fingerprint"],
        "surge/active_frac": cells["surge"]["active_frac"],
        "platform/offered_rel_error": (
            cells["platform"]["offered_rel_error"]),
        "platform/mean_size_factor": (
            cells["platform"]["mean_size_factor"]),
    }
    # Only the end-to-end platform cell runs the engine; the statistical
    # cells draw from standalone streams.
    return {"seed": bench_t14.SEED,
            "events_executed": cells["platform"]["events"],
            "metrics": metrics}


def _run_f1(mode: str) -> dict:
    policies = ("adaptive",) if mode == "smoke" else (
        "static", "hpa", "vpa", "adaptive")
    duration = HOUR if mode == "smoke" else 3 * HOUR
    sample = 300.0
    events = 0
    metrics: dict = {}
    for policy in policies:
        platform = build_platform(policy, nodes=6, seed=_seed(42))
        deploy_service_mix(platform)
        platform.run(duration)
        times, values = platform.collector.series("app/web/latency").to_lists()
        buckets: dict[float, float] = {}
        for t, v in zip(times, values):
            bucket = int(t // sample) * sample
            buckets[bucket] = max(buckets.get(bucket, 0.0), v)
        warm = [t for t in buckets if t >= 600]
        metrics[f"worst_bucket_ms/{policy}"] = max(
            buckets[t] for t in warm) * 1000
        events += _events(platform)
    return {"seed": _seed(42), "events_executed": events, "metrics": metrics}


def _f2_step(factor: float, adaptive: bool) -> tuple[dict, EvolvePlatform]:
    step_at = HOUR / 2
    platform = build_platform(
        "adaptive", nodes=4, seed=_seed(7),
        policy_kwargs={"horizontal": False, "adaptive": adaptive})
    app = step_load_service(platform, factor=factor, step_at=step_at)
    platform.run(1.5 * HOUR)
    series = platform.collector.series(f"plo/{app}/ratio")
    settle = recovery_time(series, after=step_at, threshold=1.0, hold=120.0)
    times, values = series.to_lists()
    peak = max((v for t, v in zip(times, values) if t >= step_at), default=0.0)
    return {"recovery_s": settle, "peak_ratio": peak}, platform


def _run_f2(mode: str) -> dict:
    combos = ((4.0, True),) if mode == "smoke" else tuple(
        (factor, adaptive)
        for factor in (2.0, 4.0, 6.0) for adaptive in (True, False))
    events = 0
    metrics: dict = {}
    for factor, adaptive in combos:
        out, platform = _f2_step(factor, adaptive)
        label = f"{factor:g}x_{'adaptive' if adaptive else 'fixed'}"
        metrics[f"recovery_s/{label}"] = out["recovery_s"]
        metrics[f"peak_ratio/{label}"] = out["peak_ratio"]
        events += _events(platform)
    return {"seed": _seed(7), "events_executed": events, "metrics": metrics}


def _run_f3(mode: str) -> dict:
    variants = (("multi", None),) if mode == "smoke" else (
        ("multi", None), ("cpu_only", ("cpu",)))
    events = 0
    metrics: dict = {}
    for label, dimensions in variants:
        kwargs: dict = {"horizontal": False}
        if dimensions:
            kwargs["dimensions"] = dimensions
        platform = build_platform("adaptive", nodes=4, seed=_seed(7),
                                  policy_kwargs=kwargs)
        app = phase_shift_service(platform)
        platform.run(3 * PHASE_LEN)
        metrics[f"violations/{label}"] = (
            platform.result().trackers[app].violation_fraction)
        events += _events(platform)
    return {"seed": _seed(7), "events_executed": events, "metrics": metrics}


def _run_f4(mode: str) -> dict:
    schedulers = ("converged",) if mode == "smoke" else ("converged", "siloed")
    duration = 2 * HOUR if mode == "smoke" else 4 * HOUR
    events = 0
    metrics: dict = {}
    for scheduler in schedulers:
        platform = build_platform("adaptive", nodes=6, seed=_seed(31),
                                  scheduler=scheduler)
        deploy_service_mix(platform)
        deploy_batch_churn(platform, start=0.25 * HOUR)
        gangs = deploy_hpc_stream(
            platform, count=2 if mode == "smoke" else 4, spacing=0.75 * HOUR)
        platform.run(duration)
        result = platform.result()
        series = platform.collector.series("cluster/usage_frac/cpu")
        metrics[f"mean_cpu_usage/{scheduler}"] = (
            series.integrate(0.0, duration) / duration)
        metrics[f"gangs_served/{scheduler}"] = sum(
            1 for g in gangs if result.hpc_waits.get(g) is not None)
        events += _events(platform)
    return {"seed": _seed(31), "events_executed": events, "metrics": metrics}


def _run_f5(mode: str) -> dict:
    counts = (8,) if mode == "smoke" else (4, 8, 16, 32)
    events = 0
    metrics: dict = {}
    timing: dict = {}
    for apps in counts:
        wall, decisions, run_events, violations = bench_f5.run_scale(apps)
        timing[f"wall_s/{apps}-apps"] = wall
        metrics[f"decisions/{apps}-apps"] = decisions
        metrics[f"events/{apps}-apps"] = run_events
        metrics[f"violations/{apps}-apps"] = violations
        events += run_events
    return {"seed": 3, "events_executed": events, "metrics": metrics,
            "timing": timing}


def _f6_scan(scheduler: str, skew: float) -> tuple[float | None, EvolvePlatform]:
    platform = EvolvePlatform(
        cluster_spec=ClusterSpec(node_count=4),
        config=PlatformConfig(seed=_seed(3)),
        scheduler=scheduler,
    )
    spread_blocks(
        platform.store, "logs", total_mb=16_000, block_mb=100,
        nodes=sorted(platform.cluster.nodes), skew=skew)
    job = platform.submit_bigdata(
        "scan",
        stages=[Stage("scan", 200.0, input_mb=16_000)],
        allocation=ResourceVector(cpu=2, memory=4, disk_bw=200, net_bw=60),
        executors=2,
        dataset="logs",
    )
    platform.run(4 * HOUR)
    return job.makespan(), platform


def _run_f6(mode: str) -> dict:
    skews = (0.9,) if mode == "smoke" else (0.0, 0.5, 0.9)
    events = 0
    metrics: dict = {}
    for skew in skews:
        for scheduler in ("converged", "kube"):
            makespan, platform = _f6_scan(scheduler, skew)
            metrics[f"makespan_s/{scheduler}/skew-{skew:g}"] = makespan
            events += _events(platform)
    return {"seed": _seed(3), "events_executed": events, "metrics": metrics}


def _run_f7(mode: str) -> dict:
    periods = (10.0, 80.0) if mode == "smoke" else (
        5.0, 10.0, 20.0, 40.0, 80.0)
    duration = HOUR if mode == "smoke" else 3 * HOUR
    events = 0
    metrics: dict = {}
    for period in periods:
        platform = EvolvePlatform(
            cluster_spec=ClusterSpec(node_count=6),
            config=PlatformConfig(seed=_seed(42), control_interval=period),
            scheduler="converged",
            policy="adaptive",
        )
        resizes = [0]
        platform.api.watch(
            PodResized, lambda e: resizes.__setitem__(0, resizes[0] + 1))
        deploy_service_mix(platform)
        platform.run(duration)
        metrics[f"violations/{period:g}s"] = (
            platform.result().total_violation_fraction())
        metrics[f"resizes/{period:g}s"] = resizes[0]
        events += _events(platform)
    return {"seed": _seed(42), "events_executed": events, "metrics": metrics}


def _f8_config(*, scheduler: str, hetero: bool,
               busy_fpga: bool) -> tuple[float | None, EvolvePlatform]:
    platform = EvolvePlatform(
        cluster_spec=bench_f8.hetero_spec() if hetero else ClusterSpec(
            node_count=6),
        config=PlatformConfig(seed=_seed(9)),
        scheduler=scheduler,
    )
    if busy_fpga:
        platform.deploy_microservice(
            "noise",
            trace=ConstantTrace(50),
            demands=ServiceDemands(cpu_seconds=0.01, base_latency=0.01),
            allocation=ResourceVector(cpu=2, memory=4, disk_bw=20, net_bw=20),
            managed=False, replicas=2,
            node_selector={"accelerator": "fpga"},
        )
        platform.run(60.0)
    job = platform.submit_bigdata(
        "train",
        stages=[
            Stage("prep", 500.0),
            Stage("kernel", 4000.0, deps=("prep",),
                  accel_speedup=bench_f8.SPEEDUP),
        ],
        allocation=ResourceVector(cpu=4, memory=8, disk_bw=50, net_bw=50),
        executors=2,
        accelerator="fpga",
    )
    platform.run(3 * HOUR)
    return job.makespan(), platform


def _run_f8(mode: str) -> dict:
    configs = {
        "hetero_aware": dict(scheduler="converged", hetero=True,
                             busy_fpga=True),
        "hetero_blind": dict(scheduler="kube", hetero=True, busy_fpga=True),
    }
    if mode == "full":
        configs["cpu_only"] = dict(scheduler="converged", hetero=False,
                                   busy_fpga=False)
    events = 0
    metrics: dict = {}
    for label, kwargs in configs.items():
        makespan, platform = _f8_config(**kwargs)
        metrics[f"makespan_s/{label}"] = makespan
        events += _events(platform)
    return {"seed": _seed(9), "events_executed": events, "metrics": metrics}


_F9_CONFIGS = {
    "consolidate": dict(scheduler="converged",
                        scheduler_kwargs={"packing": "consolidate"}),
    "spread": dict(scheduler="converged", scheduler_kwargs=None),
    "siloed": dict(scheduler="siloed", scheduler_kwargs=None),
}


def _run_f9(mode: str) -> dict:
    names = ("consolidate", "spread") if mode == "smoke" else tuple(_F9_CONFIGS)
    duration = 1.5 * HOUR if mode == "smoke" else 3 * HOUR
    events = 0
    metrics: dict = {}
    for name in names:
        cfg = _F9_CONFIGS[name]
        platform = build_platform(
            "adaptive", nodes=6, seed=_seed(42),
            scheduler=cfg["scheduler"],
            scheduler_kwargs=cfg["scheduler_kwargs"])
        deploy_service_mix(platform)
        platform.run(duration)
        energy = cluster_energy(
            platform.collector, list(platform.cluster.nodes),
            start=0.0, end=duration, model=PowerModel())
        metrics[f"energy_kwh/{name}"] = energy.total_kwh
        metrics[f"violations/{name}"] = (
            platform.result().total_violation_fraction())
        events += _events(platform)
    metrics["energy_saving"] = (
        1 - metrics["energy_kwh/consolidate"] / metrics["energy_kwh/spread"])
    return {"seed": _seed(42), "events_executed": events, "metrics": metrics}


def _f10_surge(factory, feedforward: bool) -> tuple[float, EvolvePlatform]:
    platform = EvolvePlatform(
        cluster_spec=ClusterSpec(node_count=4),
        config=PlatformConfig(seed=_seed(6)),
        policy="adaptive",
        policy_kwargs={"horizontal": False, "feedforward": feedforward},
    )
    platform.deploy_microservice(
        "svc",
        trace=factory(),
        demands=ServiceDemands(cpu_seconds=0.01, base_latency=0.01),
        allocation=ResourceVector(cpu=1, memory=1.5, disk_bw=20, net_bw=20),
        plo=LatencyPLO(0.05, window=30),
    )
    platform.run(3600.0)
    return platform.result().trackers["svc"].violation_seconds, platform


def _run_f10(mode: str) -> dict:
    surges = ("flash crowd",) if mode == "smoke" else tuple(bench_f10.SURGES)
    events = 0
    metrics: dict = {}
    for name in surges:
        factory = bench_f10.SURGES[name]
        label = name.split(" (")[0].replace(" ", "_")
        for feedforward in (False, True):
            seconds, platform = _f10_surge(factory, feedforward)
            suffix = "feedforward" if feedforward else "feedback"
            metrics[f"violation_s/{label}/{suffix}"] = seconds
            events += _events(platform)
    metrics["flash_saving"] = 1 - (
        metrics["violation_s/flash_crowd/feedforward"]
        / max(metrics["violation_s/flash_crowd/feedback"], 1e-9))
    return {"seed": _seed(6), "events_executed": events, "metrics": metrics}


def _f11_job(interval: float | None, *, chaos: bool,
             horizon: float) -> tuple[float | None, int, EvolvePlatform]:
    platform = EvolvePlatform(
        cluster_spec=ClusterSpec(node_count=4),
        config=PlatformConfig(seed=_seed(77)),
    )
    job = platform.submit_hpc(
        "sim", ranks=3, duration=1800.0,
        allocation=ResourceVector(cpu=6, memory=8, disk_bw=5, net_bw=80),
        checkpoint_interval=interval,
    )
    if chaos:
        platform.enable_chaos(mtbf=450.0, repair_time=120.0)
    platform.run(horizon)
    return job.makespan(), job.rollbacks, platform


def _run_f11(mode: str) -> dict:
    if mode == "smoke":
        intervals: tuple[float | None, ...] = (50.0,)
        horizon = 3 * HOUR
    else:
        intervals = (None, 600.0, 150.0, 50.0)
        horizon = 10 * HOUR
    events = 0
    metrics: dict = {}
    for interval in intervals:
        label = "none" if interval is None else f"{interval:g}s"
        makespan, rollbacks, platform = _f11_job(
            interval, chaos=True, horizon=horizon)
        metrics[f"makespan_s/{label}"] = makespan
        metrics[f"rollbacks/{label}"] = rollbacks
        events += _events(platform)
    if mode == "full":
        calm, _rollbacks, platform = _f11_job(None, chaos=False, horizon=horizon)
        metrics["makespan_s/calm"] = calm
        events += _events(platform)
    return {"seed": _seed(77), "events_executed": events, "metrics": metrics}


def _f12_gang(comm_fraction: float, zone_aware: bool,
              horizon: float) -> tuple[float | None, EvolvePlatform]:
    platform = EvolvePlatform(
        cluster_spec=ClusterSpec(node_count=4, zones=2),
        config=PlatformConfig(seed=_seed(5)),
        scheduler="converged",
        scheduler_kwargs={"zone_aware_gangs": zone_aware,
                          "interference_weight": 0.0},
    )
    job = platform.submit_hpc(
        "mpi", ranks=2, duration=900.0,
        allocation=ResourceVector(cpu=7, memory=8, disk_bw=5, net_bw=100),
        comm_fraction=comm_fraction, zone_penalty=1.0,
    )
    platform.run(horizon)
    return job.makespan(), platform


def _run_f12(mode: str) -> dict:
    if mode == "smoke":
        fractions = (0.5,)
        horizon = 2 * HOUR
    else:
        fractions = (0.1, 0.3, 0.5)
        horizon = 6 * HOUR
    events = 0
    metrics: dict = {}
    for cf in fractions:
        for aware in (True, False):
            makespan, platform = _f12_gang(cf, aware, horizon)
            suffix = "aware" if aware else "blind"
            metrics[f"makespan_s/comm-{cf:g}/{suffix}"] = makespan
            events += _events(platform)
    return {"seed": _seed(5), "events_executed": events, "metrics": metrics}


def _run_micro_timeseries(mode: str) -> dict:
    if mode == "smoke":
        case = bench_micro.run_case(samples=20_000, queries=500)
    else:
        case = bench_micro.run_case()
    bench_micro.check_case(case)
    timing = {
        f"speedup/{op}": case["slow"][op] / max(case["fast"][op], 1e-9)
        for op in ("value_at", "window")
    }
    metrics = {"samples": case["samples"], "queries": case["queries"]}
    return {"seed": 0, "events_executed": None, "metrics": metrics,
            "timing": timing}


def _run_telemetry_overhead(mode: str) -> dict:
    if mode == "smoke":
        case = bench_tel.run_case(apps=4, duration=HOUR / 2)
    else:
        case = bench_tel.run_case()
    bench_tel.check_case(case)
    metrics = {
        "calls_off": case["calls_off"],
        "calls_on": case["calls_on"],
        "enabled_call_overhead": case["enabled_overhead"],
        "identical": case["identical"],
        "spans": case["spans"],
        "provenance": case["provenance"],
    }
    timing = {
        "wall_off_s": case["wall_off"],
        "wall_on_s": case["wall_on"],
        "disabled_overhead": case["disabled_overhead"],
    }
    return {"seed": 3, "events_executed": case["events"], "metrics": metrics,
            "timing": timing}


# -- registry -----------------------------------------------------------------
#
# Budgets are deterministic upper bounds for SMOKE mode, set ~25% above
# the counts measured when the budget was recorded (see
# docs/performance.md for the procedure). Identical trees produce
# identical counts, so a breach is always a real workload change in the
# control plane — never runner noise.

EXPERIMENTS: tuple[Experiment, ...] = (
    Experiment(
        "t1", "benchmarks.bench_t1_plo_violations",
        "R-T1: PLO violations per policy", _run_t1,
        budgets={"events_executed": 42_000}),
    Experiment(
        "t2", "benchmarks.bench_t2_utilization",
        "R-T2: cluster utilization per policy", _run_t2,
        budgets={"events_executed": 70_000}),
    Experiment(
        "t3", "benchmarks.bench_t3_ablation",
        "R-T3: controller ablations", _run_t3,
        budgets={"events_executed": 35_000}),
    Experiment(
        "t4", "benchmarks.bench_t4_converged_sched",
        "R-T4: converged vs siloed vs kube scheduling", _run_t4,
        budgets={"events_executed": 40_000}),
    Experiment(
        "t5", "benchmarks.bench_t5_cost",
        "R-T5: allocation cost per policy", _run_t5,
        budgets={"events_executed": 70_000}),
    Experiment(
        "t6", "benchmarks.bench_t6_seed_robustness",
        "R-T6: seed robustness of the headline", _run_t6,
        budgets={"events_executed": 83_000}),
    Experiment(
        "t7", "benchmarks.bench_t7_fault_matrix",
        "R-T7: fault matrix (fault class x workload world)", _run_t7,
        budgets={"events_executed": 15_000}),
    Experiment(
        "t8", "benchmarks.bench_t8_control_plane_outage",
        "R-T8: control-plane outage and failover", _run_t8,
        budgets={"events_executed": 36_000}),
    Experiment(
        "t9", "benchmarks.bench_t9_reaction_latency",
        "R-T9: scrape-to-actuation reaction latency", _run_t9,
        budgets={"events_executed": 9_000, "metrics.applied": 300}),
    Experiment(
        "t10", "benchmarks.bench_t10_overload",
        "R-T10: overload resilience and graceful degradation", _run_t10,
        budgets={"events_executed": 55_000}),
    Experiment(
        "t11", "benchmarks.bench_t11_dataplane",
        "R-T11: data-plane fault tolerance under injected faults", _run_t11,
        budgets={"events_executed": 13_000}),
    Experiment(
        "t12", "benchmarks.bench_t12_slo",
        "R-T12: SLO attainment and burn-rate alerting", _run_t12,
        budgets={"events_executed": 21_000}),
    Experiment(
        # Named "arena" (not "t13") so the artifact lands as
        # BENCH_arena.json — the leaderboard file CI renders and uploads.
        "arena", "benchmarks.bench_t13_arena",
        "R-T13: autoscaler arena (policy x scenario scorecards)", _run_t13,
        budgets={"events_executed": 110_000}),
    Experiment(
        "trace_realism", "benchmarks.bench_t14_trace_realism",
        "R-T14: trace realism of the open-loop arrival library", _run_t14,
        budgets={"events_executed": 6_000}),
    Experiment(
        "f1", "benchmarks.bench_f1_latency_timeline",
        "R-F1: latency timeline per policy", _run_f1,
        budgets={"events_executed": 22_000}),
    Experiment(
        "f2", "benchmarks.bench_f2_convergence",
        "R-F2: convergence after a load step", _run_f2,
        budgets={"events_executed": 18_000}),
    Experiment(
        "f3", "benchmarks.bench_f3_bottleneck_shift",
        "R-F3: multi-resource bottleneck tracking", _run_f3,
        budgets={"events_executed": 12_000}),
    Experiment(
        "f4", "benchmarks.bench_f4_colocation",
        "R-F4: converged co-location utilization", _run_f4,
        budgets={"events_executed": 48_000}),
    Experiment(
        "f5", "benchmarks.bench_f5_scalability",
        "R-F5: control-plane scalability", _run_f5,
        budgets={"events_executed": 46_000}),
    Experiment(
        "f6", "benchmarks.bench_f6_locality",
        "R-F6: data-locality placement benefit", _run_f6,
        budgets={"events_executed": 55_000}),
    Experiment(
        "f7", "benchmarks.bench_f7_control_period",
        "R-F7: control-period sensitivity", _run_f7,
        budgets={"events_executed": 42_000}),
    Experiment(
        "f8", "benchmarks.bench_f8_acceleration",
        "R-F8: FPGA acceleration affinity", _run_f8,
        budgets={"events_executed": 69_000}),
    Experiment(
        "f9", "benchmarks.bench_f9_energy",
        "R-F9: consolidation energy savings", _run_f9,
        budgets={"events_executed": 65_000}),
    Experiment(
        "f10", "benchmarks.bench_f10_feedforward",
        "R-F10: feedforward load anticipation", _run_f10,
        budgets={"events_executed": 24_000}),
    Experiment(
        "f11", "benchmarks.bench_f11_checkpointing",
        "R-F11: HPC checkpointing under chaos", _run_f11,
        budgets={"events_executed": 23_000}),
    Experiment(
        "f12", "benchmarks.bench_f12_zones",
        "R-F12: zone-aware gang placement", _run_f12,
        budgets={"events_executed": 30_000}),
    Experiment(
        "micro_timeseries", "benchmarks.bench_micro_timeseries",
        "TimeSeries query micro-benchmark", _run_micro_timeseries),
    Experiment(
        "telemetry_overhead", "benchmarks.bench_telemetry_overhead",
        "Telemetry overhead gate", _run_telemetry_overhead,
        budgets={"events_executed": 13_000,
                 "metrics.calls_off": 1_300_000,
                 "metrics.calls_on": 1_360_000}),
)

REGISTRY: dict[str, Experiment] = {e.name: e for e in EXPERIMENTS}


# -- running ------------------------------------------------------------------


def _lookup(payload: dict, path: str):
    value: object = payload
    for part in path.split("."):
        if not isinstance(value, dict) or part not in value:
            return None
        value = value[part]
    return value


def check_budgets(exp: Experiment, payload: dict) -> dict[str, dict]:
    """Evaluate the experiment's smoke budgets against a result payload."""
    verdicts = {}
    for path, limit in exp.budgets.items():
        value = _lookup(payload, path)
        verdicts[path] = {
            "value": value,
            "budget": limit,
            "ok": value is not None and value <= limit,
        }
    return verdicts


def run_experiment(exp: Experiment, mode: str) -> dict:
    """Run one experiment; returns the BENCH_<exp>.json payload."""
    start = time.perf_counter()
    out = exp.run(mode)
    wall = time.perf_counter() - start
    events = out.get("events_executed")
    payload = {
        "experiment": exp.name,
        "module": exp.module,
        "title": exp.title,
        "mode": mode,
        "seed": out["seed"],
        "wall_seconds": round(wall, 3),
        "events_executed": events,
        "events_per_sec": (
            round(events / wall) if events and wall > 0 else None),
        "metrics": out["metrics"],
        "timing": out.get("timing", {}),
    }
    if "report" in out:
        # Flight-recorder RunReport(s); split out into REPORT_<exp>.json
        # by write_result rather than bloating the BENCH payload.
        payload["report"] = out["report"]
    if mode == "smoke" and _SEED_OVERRIDE is None:
        budgets = check_budgets(exp, payload)
        payload["budgets"] = budgets
        payload["ok"] = all(v["ok"] for v in budgets.values())
    else:
        # Budgets are calibrated at the default seeds; a --seed override
        # changes the workload trajectory, so gating would be noise.
        payload["budgets"] = {}
        payload["ok"] = True
        if _SEED_OVERRIDE is not None:
            payload["seed_override"] = _SEED_OVERRIDE
    return payload


def write_result(payload: dict, outdir: str | Path) -> Path:
    outdir = Path(outdir)
    outdir.mkdir(parents=True, exist_ok=True)
    report = payload.pop("report", None)
    if report is not None:
        report_path = outdir / f"REPORT_{payload['experiment']}.json"
        report_path.write_text(
            json.dumps(report, indent=2, sort_keys=True) + "\n")
    path = outdir / f"BENCH_{payload['experiment']}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def _summary_line(payload: dict) -> str:
    events = payload["events_executed"]
    rate = payload["events_per_sec"]
    return (
        f"{payload['experiment']:>18s}  "
        f"{payload['wall_seconds']:7.2f}s  "
        f"{events if events is not None else '-':>8}  "
        f"{rate if rate is not None else '-':>8}  "
        f"{'ok' if payload['ok'] else 'BUDGET EXCEEDED'}"
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="benchmarks.runner", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    group = parser.add_mutually_exclusive_group()
    group.add_argument("--smoke", action="store_true",
                       help="CI-sized variants with deterministic budget "
                            "gates (default)")
    group.add_argument("--full", action="store_true",
                       help="paper-scale grids behind EXPERIMENTS.md")
    parser.add_argument("--json", metavar="DIR", default=None,
                        help="write one BENCH_<exp>.json per experiment")
    parser.add_argument("--only", default=None,
                        help="comma-separated experiment names (default: all)")
    parser.add_argument("--list", action="store_true",
                        help="list registered experiments and exit")
    parser.add_argument("--seed", type=int, default=None,
                        help="override every adapter's run seed; smoke "
                             "budget gates are skipped (they are calibrated "
                             "at the default seeds — see docs/testing.md)")
    args = parser.parse_args(argv)

    global _SEED_OVERRIDE
    _SEED_OVERRIDE = args.seed

    if args.list:
        for exp in EXPERIMENTS:
            print(f"{exp.name:>18s}  {exp.title}  [{exp.module}]")
        return 0

    mode = "full" if args.full else "smoke"
    if args.only:
        names = [n.strip() for n in args.only.split(",") if n.strip()]
        unknown = [n for n in names if n not in REGISTRY]
        if unknown:
            parser.error(f"unknown experiments: {', '.join(unknown)}")
        selected = [REGISTRY[n] for n in names]
    else:
        selected = list(EXPERIMENTS)

    print(f"{'experiment':>18s}  {'wall':>8s}  {'events':>8s}  "
          f"{'ev/s':>8s}  status")
    failed = []
    for exp in selected:
        try:
            payload = run_experiment(exp, mode)
        except Exception as err:  # one broken experiment must not hide others
            payload = {
                "experiment": exp.name, "module": exp.module,
                "title": exp.title, "mode": mode, "seed": None,
                "wall_seconds": None, "events_executed": None,
                "events_per_sec": None, "metrics": {}, "timing": {},
                "budgets": {}, "ok": False,
                "error": f"{type(err).__name__}: {err}",
            }
            print(f"{exp.name:>18s}  FAILED: {payload['error']}")
        else:
            print(_summary_line(payload))
            for path, verdict in payload["budgets"].items():
                if not verdict["ok"]:
                    print(f"{'':>18s}  budget {path}: "
                          f"{verdict['value']} > {verdict['budget']}")
        if args.json:
            write_result(payload, args.json)
        if not payload["ok"]:
            failed.append(exp.name)

    if failed:
        print(f"FAILED: {', '.join(failed)}")
        return 1
    print(f"OK: {len(selected)} experiments ({mode})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
