"""R-F7 — Sensitivity to the control period.

The service mix under the adaptive policy with control periods from 5 s
to 80 s. Figure series: violation time and resize count vs period.
Shape expected: violations grow with the period (slower reaction to
transients) while actuation churn falls; the default (10 s) sits at the
knee. This is the cadence-vs-stability trade every deployed controller
must pick, so the evaluation documents it.
"""

import pytest

from repro.analysis.report import format_table
from repro.cluster.events import PodResized
from repro.platform.config import ClusterSpec, PlatformConfig
from repro.platform.evolve import EvolvePlatform
from benchmarks.scenarios import HOUR, deploy_service_mix

PERIODS = (5.0, 10.0, 20.0, 40.0, 80.0)
DURATION = 3 * HOUR


def run_period(period: float):
    platform = EvolvePlatform(
        cluster_spec=ClusterSpec(node_count=6),
        config=PlatformConfig(seed=42, control_interval=period),
        scheduler="converged",
        policy="adaptive",
    )
    resizes = [0]
    platform.api.watch(PodResized, lambda e: resizes.__setitem__(0, resizes[0] + 1))
    deploy_service_mix(platform)
    platform.run(DURATION)
    return platform.result().total_violation_fraction(), resizes[0]


@pytest.mark.benchmark(group="f7-control-period", min_rounds=1, max_time=1)
def test_f7_control_period(benchmark, report):
    results = {}

    def experiment():
        for period in PERIODS:
            if period not in results:
                results[period] = run_period(period)
        return results

    benchmark.pedantic(experiment, rounds=1, iterations=1)

    rows = [
        [f"{period:.0f} s", f"{results[period][0]:.1%}", results[period][1]]
        for period in PERIODS
    ]
    report(
        "",
        f"R-F7: violation time and resize churn vs control period "
        f"(service mix, {DURATION / HOUR:.0f} h)",
        format_table(["control period", "violation time", "resizes"], rows),
    )

    fastest = results[PERIODS[0]]
    slowest = results[PERIODS[-1]]
    benchmark.extra_info["violations_at_80s"] = slowest[0]
    # Shape: slower loops violate more and resize less.
    assert slowest[0] > fastest[0]
    assert slowest[1] < fastest[1]
    # The default period keeps violations in single digits.
    assert results[10.0][0] < 0.10
