"""R-F3 — Multi-resource adaptation as the bottleneck moves.

The phase-shifting service (CPU → disk → network every 20 min) under the
full controller. The figure series: per-dimension allocation over time,
showing each allocation rising in its phase and being reclaimed
afterwards, plus the same run with the CPU-only ablation flatlining.
"""

import pytest

from repro.analysis.report import format_table
from repro.cluster.resources import RESOURCES
from benchmarks.scenarios import (
    PHASE_LEN,
    build_platform,
    phase_shift_service,
)

DURATION = 3 * PHASE_LEN
SAMPLE = 300.0


def run_variant(dimensions):
    kwargs = {"horizontal": False}
    if dimensions:
        kwargs["dimensions"] = dimensions
    platform = build_platform("adaptive", nodes=4, seed=7, policy_kwargs=kwargs)
    app = phase_shift_service(platform)
    samples = []
    svc = platform.apps[app]
    t = SAMPLE
    while t <= DURATION:
        platform.run(t - platform.engine.now)
        alloc = svc.current_allocation()
        samples.append((t, {r: alloc[r] for r in RESOURCES}))
        t += SAMPLE
    return samples, platform.result().trackers[app]


@pytest.mark.benchmark(group="f3-bottleneck-shift", min_rounds=1, max_time=1)
def test_f3_bottleneck_shift(benchmark, report):
    out = {}

    def experiment():
        if not out:
            out["multi"] = run_variant(None)
            out["cpu_only"] = run_variant(("cpu",))
        return out

    benchmark.pedantic(experiment, rounds=1, iterations=1)

    samples, tracker = out["multi"]
    rows = [
        [
            f"{t / 60:.0f}",
            ("cpu" if t <= PHASE_LEN else
             "disk" if t <= 2 * PHASE_LEN else "net"),
            f"{alloc['cpu']:.2f}",
            f"{alloc['disk_bw']:.0f}",
            f"{alloc['net_bw']:.0f}",
        ]
        for t, alloc in samples
    ]
    report(
        "",
        "R-F3: per-dimension allocation as the bottleneck moves "
        "(multi-resource controller)",
        format_table(
            ["t (min)", "phase", "cpu (cores)", "disk (MB/s)", "net (MB/s)"],
            rows,
        ),
        f"multi-resource violations: {tracker.violation_fraction:.1%}; "
        f"cpu-only ablation: {out['cpu_only'][1].violation_fraction:.1%}",
    )

    def mean_alloc(phase_index, resource):
        lo = phase_index * PHASE_LEN
        hi = (phase_index + 1) * PHASE_LEN
        values = [a[resource] for t, a in samples if lo < t <= hi]
        return sum(values) / len(values)

    # Shape: each dimension peaks in its own phase.
    assert mean_alloc(0, "cpu") > mean_alloc(2, "cpu")
    assert mean_alloc(1, "disk_bw") > mean_alloc(0, "disk_bw")
    assert mean_alloc(2, "net_bw") > mean_alloc(0, "net_bw")
    # And the ablation is far worse overall.
    assert out["multi"][1].violation_fraction < \
        out["cpu_only"][1].violation_fraction / 2
    benchmark.extra_info["multi_violations"] = tracker.violation_fraction
