"""R-T3 — Ablation of the controller's design choices.

Three sub-experiments, each isolating one mechanism:

* **multi-resource vs CPU-only** — the moving-bottleneck service; only a
  controller that can actuate disk/network fixes phases 2 and 3.
* **adaptive vs fixed gains** — a 4× load step under deliberately weak
  baseline gains; the tuner detects the sluggish loop and amplifies, the
  fixed controller crawls.
* **deadband vs none** — a throughput-PLO service at its equilibrium
  (error ≈ 0) with noisy load; without a deadband every metric wiggle
  becomes a resize.
"""

import pytest

from repro.analysis.report import format_table
from repro.cluster.events import PodResized
from repro.cluster.resources import ResourceVector
from repro.control.pid import PIDGains
from repro.workloads.microservice import ServiceDemands
from repro.workloads.plo import ThroughputPLO
from repro.workloads.traces import ConstantTrace, NoisyTrace
from benchmarks.scenarios import (
    HOUR,
    build_platform,
    phase_shift_service,
    step_load_service,
)


def run_shift(policy_kwargs):
    platform = build_platform("adaptive", nodes=4, seed=7,
                              policy_kwargs={"horizontal": False, **policy_kwargs})
    app = phase_shift_service(platform)
    platform.run(3 * HOUR)
    return platform.result().trackers[app]


def run_step(policy_kwargs):
    platform = build_platform("adaptive", nodes=4, seed=7,
                              policy_kwargs={"horizontal": False, **policy_kwargs})
    app = step_load_service(platform, factor=6.0, step_at=HOUR / 2)
    platform.run(1.5 * HOUR)
    return platform.result().trackers[app]


def run_noisy_throughput(policy_kwargs):
    platform = build_platform("adaptive", nodes=4, seed=7,
                              policy_kwargs={"horizontal": False, **policy_kwargs})
    resizes = [0]
    platform.api.watch(PodResized, lambda e: resizes.__setitem__(0, resizes[0] + 1))
    # Target equals the mean offered rate: at the controller's equilibrium
    # the error hovers around zero and metric noise is all that remains —
    # exactly where the deadband earns its keep.
    trace = NoisyTrace(ConstantTrace(100), rel_std=0.15, bucket=60,
                       horizon=3 * HOUR, rng=platform.rng.stream("trace/noise"))
    platform.deploy_microservice(
        "pipe",
        trace=trace,
        demands=ServiceDemands(cpu_seconds=0.01, base_latency=0.01),
        allocation=ResourceVector(cpu=1.2, memory=1.5, disk_bw=20, net_bw=20),
        plo=ThroughputPLO(100.0, window=30),
    )
    platform.run(2 * HOUR)
    return platform.result().trackers["pipe"], resizes[0]


WEAK = PIDGains(kp=0.05, ki=0.005, kd=0.0)


@pytest.mark.benchmark(group="t3-ablation", min_rounds=1, max_time=1)
def test_t3_ablation(benchmark, report):
    out = {}

    def experiment():
        if not out:
            out["multi"] = run_shift({})
            out["cpu_only"] = run_shift({"dimensions": ("cpu",)})
            out["adaptive_weak"] = run_step({"gains": WEAK})
            out["fixed_weak"] = run_step({"gains": WEAK, "adaptive": False})
            out["deadband"] = run_noisy_throughput({"deadband": 0.1})
            out["no_deadband"] = run_noisy_throughput({"deadband": 0.0})
        return out

    benchmark.pedantic(experiment, rounds=1, iterations=1)

    rows = [
        ["multi-resource (full)", f"{out['multi'].violation_fraction:.1%}",
         "moving bottleneck, 3 h"],
        ["  ablate: cpu-only", f"{out['cpu_only'].violation_fraction:.1%}",
         "moving bottleneck, 3 h"],
        ["adaptive gains (weak base)", f"{out['adaptive_weak'].violation_fraction:.1%}",
         "6x load step, 1.5 h"],
        ["  ablate: fixed gains", f"{out['fixed_weak'].violation_fraction:.1%}",
         "6x load step, 1.5 h"],
        ["deadband 0.1", f"{out['deadband'][1]} resizes",
         "noisy throughput PLO, 2 h"],
        ["  ablate: deadband 0", f"{out['no_deadband'][1]} resizes",
         "noisy throughput PLO, 2 h"],
    ]
    report(
        "",
        "R-T3: controller ablations",
        format_table(["variant", "result", "scenario"], rows),
    )

    benchmark.extra_info["cpu_only_violations"] = out["cpu_only"].violation_fraction
    benchmark.extra_info["fixed_weak_violations"] = out["fixed_weak"].violation_fraction

    # Shape assertions: each mechanism pulls its weight.
    assert out["multi"].violation_fraction < out["cpu_only"].violation_fraction / 2
    assert (out["adaptive_weak"].violation_fraction
            < out["fixed_weak"].violation_fraction)
    assert out["deadband"][1] < out["no_deadband"][1]
    # The deadband does not trade violations for quiet.
    assert out["deadband"][0].violation_fraction <= \
        out["no_deadband"][0].violation_fraction + 0.05
