"""R-F2 — Controller convergence after a load step.

For load steps of 2×, 4×, and 6×: how long until the PLO is met again
(ratio back ≤ 1 and holding), and how far latency peaked meanwhile —
with adaptive gains on and off. The figure shows recovery time growing
sub-linearly with step size: actuation is error-proportional, so a
bigger violation produces a bigger correction.
"""

import pytest

from repro.analysis.report import format_table
from repro.analysis.stats import recovery_time
from benchmarks.scenarios import HOUR, build_platform, step_load_service

STEP_AT = HOUR / 2
DURATION = 1.5 * HOUR
FACTORS = (2.0, 4.0, 6.0)


def run_step(factor: float, adaptive: bool):
    platform = build_platform(
        "adaptive", nodes=4, seed=7,
        policy_kwargs={"horizontal": False, "adaptive": adaptive},
    )
    app = step_load_service(platform, factor=factor, step_at=STEP_AT)
    platform.run(DURATION)
    series = platform.collector.series(f"plo/{app}/ratio")
    settle = recovery_time(series, after=STEP_AT, threshold=1.0, hold=120.0)
    times, values = series.to_lists()
    peak = max(
        (v for t, v in zip(times, values) if t >= STEP_AT), default=0.0
    )
    violation = platform.result().trackers[app].violation_fraction
    return settle, peak, violation


@pytest.mark.benchmark(group="f2-convergence", min_rounds=1, max_time=1)
def test_f2_convergence(benchmark, report):
    results = {}

    def experiment():
        for factor in FACTORS:
            for adaptive in (True, False):
                key = (factor, adaptive)
                if key not in results:
                    results[key] = run_step(factor, adaptive)
        return results

    benchmark.pedantic(experiment, rounds=1, iterations=1)

    rows = []
    for factor in FACTORS:
        for adaptive in (True, False):
            settle, peak, violation = results[(factor, adaptive)]
            rows.append([
                f"{factor:.0f}x",
                "adaptive" if adaptive else "fixed",
                "n/a" if settle is None else f"{settle:.0f} s",
                f"{peak:.1f}x",
                f"{violation:.1%}",
            ])
    report(
        "",
        "R-F2: recovery time and peak PLO ratio after a load step",
        format_table(
            ["step", "gains", "recovery time", "peak ratio", "violation time"],
            rows,
        ),
    )

    # Shape: the loop settles for every step size, within minutes.
    for factor in FACTORS:
        settle, _peak, _v = results[(factor, True)]
        assert settle is not None
        assert settle < 600.0
    benchmark.extra_info["settle_6x"] = results[(6.0, True)][0]
