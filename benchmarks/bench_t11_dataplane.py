"""T11: data-plane fault tolerance — makespan and lag under injected faults.

T10 stressed the control plane and the admission path; T11 stresses the
*data plane*: the pods and bytes doing the actual work. A fixed mix — a
two-stage analytics job reading a replicated dataset plus a continuous
stream pipeline — runs under a deterministic fault schedule swept from
calm (no faults) to harsh (a fault every two minutes, cycling executor
kills, node crashes, data loss, and stragglers). Two platform builds run
every cell:

* **ft** — data-plane fault tolerance enabled
  (:class:`repro.dataplane.DataPlaneConfig`): task-granular execution
  with lineage recompute and speculation, stream checkpoint/replay, and
  the storage repair loop;
* **baseline** — the seed-identical default (fluid big-data model, no
  checkpoints, no repair).

The ft build must degrade *gracefully*: every cell completes (no
quarantine, no stall), makespan grows boundedly with fault rate, the
stream recovers its backlog after each checkpoint restart, and the
repair loop re-replicates what data-loss faults wiped. At calm the
task-granular engine must match the fluid model's makespan — fault
tolerance is free until a fault actually lands. The baseline rides
through the same schedule on its optimistic fluid model, which simply
cannot see most of these faults — the fidelity gap ft mode closes.

Run standalone with ``python -m benchmarks.bench_t11_dataplane``
(``--smoke`` for the CI-sized variant).
"""

from __future__ import annotations

import argparse

from repro.cluster.pod import PodPhase, WorkloadClass
from repro.cluster.resources import ResourceVector
from repro.dataplane import DataPlaneConfig
from repro.platform.config import ClusterSpec, PlatformConfig
from repro.platform.evolve import EvolvePlatform
from repro.storage.placement import spread_blocks
from repro.workloads.bigdata import Stage
from repro.workloads.plo import LatencyPLO
from repro.workloads.stream import Operator
from repro.workloads.traces import ConstantTrace

NODES = 6
SEED = 47
DURATION = 1800.0
#: Fault levels: seconds between consecutive faults (None = no faults).
LEVELS: dict[str, float | None] = {
    "calm": None,
    "moderate": 240.0,
    "harsh": 120.0,
}
#: Injected fault kinds, cycled in order at the level's period. Crash
#: before data-loss so mid-job node loss (the lineage trigger) lands
#: while the analytics job is still running.
FAULT_CYCLE = ("executor-kill", "crash", "data-loss", "straggler")
#: How long a crashed node stays dark / a straggler stays slow.
CRASH_OUTAGE = 60.0
STRAGGLER_WINDOW = 120.0
STRAGGLER_FACTOR = 0.5

DATASET = "t11-data"
DATASET_MB = 2400.0
JOB_ALLOC = ResourceVector(cpu=2, memory=4, disk_bw=100, net_bw=100)
STREAM_ALLOC = ResourceVector(cpu=1.5, memory=2, disk_bw=10, net_bw=40)
STREAM_RATE = 150.0


def _build(*, ft: bool, seed: int = SEED) -> EvolvePlatform:
    platform = EvolvePlatform(
        cluster_spec=ClusterSpec(node_count=NODES),
        config=PlatformConfig(
            seed=seed,
            data_plane=DataPlaneConfig(enabled=ft),
        ),
        scheduler="converged",
        policy="adaptive",
    )
    nodes = sorted(platform.cluster.nodes)
    spread_blocks(
        platform.store,
        DATASET,
        total_mb=DATASET_MB,
        block_mb=100.0,
        nodes=nodes[:3],
        replication=2,
    )
    platform.submit_bigdata(
        "t11-job",
        stages=[
            Stage("scan", 360.0, input_mb=DATASET_MB),
            Stage("agg", 240.0, input_mb=DATASET_MB / 10, deps=("scan",)),
        ],
        allocation=JOB_ALLOC,
        executors=3,
        dataset=DATASET,
    )
    platform.deploy_stream(
        "t11-stream",
        trace=ConstantTrace(STREAM_RATE),
        operators=[Operator("parse", 0.004), Operator("agg", 0.002)],
        allocation=STREAM_ALLOC,
        plo=LatencyPLO(5.0, window=30),
        workers=2,
    )
    return platform


def _schedule_faults(
    platform: EvolvePlatform, period: float | None, duration: float
) -> None:
    """Deterministic fault schedule: one fault per ``period`` seconds,
    cycling :data:`FAULT_CYCLE`. Targets are picked by a running strike
    counter over sorted candidate lists, so the schedule is a pure
    function of the scenario — no RNG draws, both builds see the exact
    same faults.
    """
    if period is None:
        return
    engine = platform.engine
    strikes = iter(range(10_000))

    def executor_kill() -> None:
        victims = sorted(
            pod.name
            for pod in platform.cluster.pods.values()
            if pod.phase is PodPhase.RUNNING
            and pod.spec.workload_class is WorkloadClass.BIGDATA
        )
        if victims:
            k = next(strikes)
            platform.cluster.evict(
                victims[k % len(victims)], reason="executor-kill"
            )

    def crash() -> None:
        healthy = [n.name for n in platform.injector.healthy_nodes()]
        if len(healthy) <= 2:
            return
        name = healthy[next(strikes) % len(healthy)]
        platform.injector.fail_node(name)
        engine.schedule(CRASH_OUTAGE, lambda: _recover(name))

    def _recover(name: str) -> None:
        if platform.injector.is_failed(name):
            platform.injector.recover_node(name)

    def data_loss() -> None:
        bearing = sorted(platform.store.nodes_with_data())
        if bearing:
            platform.store.drop_node(bearing[next(strikes) % len(bearing)])

    def straggler() -> None:
        nodes = [
            n
            for n in platform.cluster.nodes.values()
            if n.speed_factor >= 1.0 and not n.allocatable.is_zero()
        ]
        if not nodes:
            return
        node = nodes[next(strikes) % len(nodes)]
        node.speed_factor = STRAGGLER_FACTOR
        engine.schedule(STRAGGLER_WINDOW, lambda: _heal(node.name))

    def _heal(name: str) -> None:
        platform.cluster.get_node(name).speed_factor = 1.0

    kinds = {
        "executor-kill": executor_kill,
        "crash": crash,
        "data-loss": data_loss,
        "straggler": straggler,
    }
    at = 60.0
    i = 0
    while at < duration - CRASH_OUTAGE:
        engine.schedule_at(at, kinds[FAULT_CYCLE[i % len(FAULT_CYCLE)]])
        at += period
        i += 1


def _run_cell(*, level: str, ft: bool, duration: float) -> dict:
    platform = _build(ft=ft)
    _schedule_faults(platform, LEVELS[level], duration)
    platform.run(duration)
    job = platform.apps["t11-job"]
    stream = platform.apps["t11-stream"]
    repair = platform.repair
    cell = {
        "level": level,
        "ft": ft,
        "makespan": job.makespan(),
        "job_failed": job.failed,
        "stream_lag_seconds": stream.current_lag_seconds,
        "stream_lag_events": stream.lag_events,
        "events": platform.engine.events_executed,
    }
    if ft:
        ledger = job.ft_accounting()
        residual = abs(
            ledger["retired"]
            - (
                ledger["useful"]
                + ledger["spec_inflight"]
                + ledger["wasted"]
                + ledger["reopened"]
            )
        )
        cell.update(
            {
                "executor_losses": job.executor_losses,
                "lineage_recomputes": job.lineage_recomputes,
                "speculative_wins": job.speculative_wins,
                "reopened_work": job.ft_reopened_work,
                "wasted_work": job.ft_wasted_work,
                "ledger_residual": residual,
                "stream_restarts": stream.restarts,
                "stream_replayed": stream.replayed_total,
                "checkpoints": stream.checkpoints,
                "stream_residual": abs(
                    stream.total_arrived
                    - (stream.total_processed + stream.lag_events)
                ),
                "repaired_mb": repair.repaired_mb if repair else 0.0,
                "repair_traffic_mb": (
                    repair.repair_traffic_mb if repair else 0.0
                ),
                "repair_backlog": repair.backlog() if repair else 0,
            }
        )
    return cell


def run_case(
    *,
    duration: float = DURATION,
    levels: tuple[str, ...] = ("calm", "moderate", "harsh"),
) -> dict:
    cells = {
        ft: [_run_cell(level=lvl, ft=ft, duration=duration) for lvl in levels]
        for ft in (True, False)
    }
    return {
        "duration": duration,
        "levels": levels,
        "ft": cells[True],
        "baseline": cells[False],
    }


def check_case(case: dict) -> None:
    ft_cells = {c["level"]: c for c in case["ft"]}
    base_cells = {c["level"]: c for c in case["baseline"]}
    calm_ft = ft_cells["calm"]
    harsh_ft = ft_cells[case["levels"][-1]]

    for level, cell in ft_cells.items():
        # Liveness: every ft cell finishes the job within the horizon —
        # retries and recompute never stall or quarantine it.
        assert cell["makespan"] is not None, f"ft job stalled at {level}"
        assert not cell["job_failed"], f"ft job quarantined at {level}"
        # The work-conservation ledger balances to float noise.
        assert cell["ledger_residual"] < 1e-6 * max(
            1.0, cell["reopened_work"] + cell["wasted_work"] + 600.0
        ), f"ledger imbalance at {level}: {cell['ledger_residual']}"
        assert cell["stream_residual"] < 1e-3, (
            f"stream conservation broken at {level}"
        )
        # The stream drains its replayed backlog before the horizon.
        assert cell["stream_lag_seconds"] < 30.0, (
            f"stream never recovered at {level}: "
            f"{cell['stream_lag_seconds']:.1f}s lag"
        )

    # Fault tolerance is free until a fault lands: at calm the
    # task-granular engine matches the fluid model's makespan.
    calm_base = base_cells["calm"]
    assert calm_base["makespan"] is not None
    assert (
        abs(calm_ft["makespan"] - calm_base["makespan"])
        <= 0.1 * calm_base["makespan"]
    ), (
        f"calm makespan diverged: ft={calm_ft['makespan']:.1f} "
        f"baseline={calm_base['makespan']:.1f}"
    )

    # Graceful degradation: the harshest fault rate costs at most 4x the
    # calm makespan — recovery machinery, not collapse.
    assert harsh_ft["makespan"] <= 4.0 * calm_ft["makespan"], (
        f"harsh makespan {harsh_ft['makespan']:.1f} vs "
        f"calm {calm_ft['makespan']:.1f}"
    )
    # The harsh schedule actually exercised the machinery.
    assert harsh_ft["executor_losses"] >= 1, "no executor loss reached the job"
    assert harsh_ft["stream_restarts"] >= 1, "stream never restarted"
    assert harsh_ft["stream_replayed"] > 0.0, "no checkpoint replay happened"
    assert harsh_ft["repair_traffic_mb"] > 0.0, "repair loop never ran"
    assert harsh_ft["repair_backlog"] == 0, "repair backlog never drained"
    # Faults cost work, and the ledger saw it.
    assert harsh_ft["reopened_work"] > 0.0, "faults re-opened no work"


def format_case(case: dict) -> list[str]:
    lines = [
        f"T11 data-plane fault tolerance ({case['duration']:.0f}s per cell, "
        f"levels {', '.join(case['levels'])})"
    ]
    for label, cells in (("ft", case["ft"]), ("baseline", case["baseline"])):
        lines.append(
            f"  makespan [{label}]: "
            + "  ".join(
                f"{c['level']}="
                + (f"{c['makespan']:.0f}s" if c["makespan"] else "stalled")
                for c in cells
            )
        )
    lines.append(
        "  stream lag @end [ft]: "
        + "  ".join(
            f"{c['level']}={c['stream_lag_seconds']:.1f}s" for c in case["ft"]
        )
    )
    harsh = case["ft"][-1]
    lines.append(
        f"  harsh [ft]: losses={harsh['executor_losses']} "
        f"lineage={harsh['lineage_recomputes']} "
        f"spec-wins={harsh['speculative_wins']} "
        f"reopened={harsh['reopened_work']:.0f} "
        f"wasted={harsh['wasted_work']:.0f} cpu-s"
    )
    lines.append(
        f"  harsh stream [ft]: restarts={harsh['stream_restarts']} "
        f"replayed={harsh['stream_replayed']:.0f} events "
        f"checkpoints={harsh['checkpoints']}"
    )
    lines.append(
        f"  harsh repair [ft]: {harsh['repaired_mb']:.0f} MB re-replicated "
        f"({harsh['repair_traffic_mb']:.0f} MB traffic, "
        f"backlog={harsh['repair_backlog']})"
    )
    return lines


def test_dataplane(report) -> None:
    case = run_case()
    report(*format_case(case))
    check_case(case)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI-sized variant: shorter runs, calm/harsh only, "
        "same assertions",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        case = run_case(duration=900.0, levels=("calm", "harsh"))
    else:
        case = run_case()
    for line in format_case(case):
        print(line)
    check_case(case)
    print("T11 OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
