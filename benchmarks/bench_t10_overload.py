"""T10: overload resilience — graceful degradation instead of collapse.

The resilience work so far (T7/T8) covered infrastructure and
control-plane faults at nominal load. T10 overloads the platform itself:
a latency-sensitive web service's offered load is swept from 1× to 4× of
its sized capacity on a cluster whose spare room is already claimed by
batch analytics and best-effort filler services. Two platform builds run
the identical seeded scenario:

* **resilient** — admission control + load shedding, control-loop
  backpressure, and brownout degradation enabled
  (:class:`repro.scheduler.admission.OverloadConfig`),
* **baseline** — all three disabled (the seed-identical default).

The resilient build must degrade *gracefully*: latency-sensitive goodput
at 4× offered load stays within 25 % of its 1× value because the
admission controller sheds best-effort work first (never latency or
stream pods) and the web service rides out the peak in its browned-out
tier. The baseline build shows the collapse that motivates the feature:
its 4× goodput ratio drops well below the resilient one.

A separate resilient run takes a correlated fault — a whole availability
zone dark for five minutes via
:class:`repro.cluster.chaos.ZoneOutageDomain` — and reports containment
(blast radius) plus time-to-recover from the fault-recovery report.

Run standalone with ``python -m benchmarks.bench_t10_overload``
(``--smoke`` for the CI-sized variant).
"""

from __future__ import annotations

import argparse

from repro.analysis.recovery import fault_recovery_report, summarize
from repro.cluster.chaos import ZoneOutageDomain
from repro.cluster.resources import ResourceVector
from repro.platform.config import ClusterSpec, PlatformConfig
from repro.platform.evolve import EvolvePlatform
from repro.scheduler.admission import SHED_CLASSES, OverloadConfig
from repro.workloads.microservice import ServiceDemands
from repro.workloads.plo import LatencyPLO
from repro.workloads.traces import ConstantTrace, ScaledTrace

NODES = 6
ZONES = 3
SEED = 42
DURATION = 1800.0
#: Web offered load at 1×; demands are 100 rps/core so this is ~6 cores.
BASE_RATE = 600.0
LOAD_FACTORS = (1.0, 2.0, 4.0)
#: Per-pod ceiling. Web starts at the rail so overload shows up as
#: horizontal scale-out (pending pods the scheduler must place), which
#: is the pressure admission control manages — not as node-blocked
#: vertical resizes.
POD_CEILING = ResourceVector(cpu=4, memory=16, disk_bw=200, net_bw=500)

WEB_DEMANDS = ServiceDemands(
    cpu_seconds=0.01, disk_mb=0.02, net_mb=0.05, base_latency=0.008
)
FILLER_DEMANDS = ServiceDemands(cpu_seconds=0.01, base_latency=0.01)


def _overload(enabled: bool) -> OverloadConfig:
    # Watermarks tuned to this topology: fillers strand ~3 cores per
    # node, so node pressure saturates near 0.8 and a 4x surge shows up
    # mostly as pending-queue depth.
    return OverloadConfig(
        admission=enabled, backpressure=enabled, brownout=enabled,
        high_watermark=0.8, low_watermark=0.65, pending_high=12,
    )


def _build(*, factor: float, resilient: bool, seed: int = SEED) -> EvolvePlatform:
    platform = EvolvePlatform(
        cluster_spec=ClusterSpec(node_count=NODES, zones=ZONES),
        config=PlatformConfig(
            seed=seed,
            overload=_overload(resilient),
            max_allocation=POD_CEILING,
        ),
        scheduler="converged",
        policy="adaptive",
    )
    # The latency-sensitive service under test: its offered load is the
    # swept axis; everything else in the mix stays fixed.
    platform.deploy_microservice(
        "web",
        trace=ScaledTrace(ConstantTrace(BASE_RATE), factor),
        demands=WEB_DEMANDS,
        allocation=ResourceVector(cpu=4, memory=4, disk_bw=20, net_bw=40),
        plo=LatencyPLO(0.05, window=30),
        replicas=2,
    )
    # A stream-class consumer: protected like latency work, never shed.
    platform.deploy_microservice(
        "stream",
        trace=ConstantTrace(300.0),
        demands=FILLER_DEMANDS,
        allocation=ResourceVector(cpu=1.5, memory=2, disk_bw=10, net_bw=40),
        plo=LatencyPLO(0.08, window=30),
        labels={"shed-class": "stream"},
    )
    # Unmanaged fillers sized to claim the cluster's spare room, so the
    # web service's 4× scale-out has nowhere to go unless the admission
    # controller reclaims it from the sheddable tiers.
    for i in range(3):
        platform.deploy_microservice(
            f"batch-{i}",
            trace=ConstantTrace(200.0),
            demands=FILLER_DEMANDS,
            allocation=ResourceVector(cpu=4, memory=4, disk_bw=10, net_bw=20),
            replicas=3,
            managed=False,
            labels={"shed-class": "batch"},
        )
    for i in range(3):
        platform.deploy_microservice(
            f"be-{i}",
            trace=ConstantTrace(150.0),
            demands=FILLER_DEMANDS,
            allocation=ResourceVector(cpu=4, memory=4, disk_bw=10, net_bw=20),
            replicas=3,
            managed=False,
            labels={"shed-class": "best-effort"},
        )
    return platform


def _goodput(platform: EvolvePlatform, factor: float, duration: float) -> float:
    """Served / offered for the web service over the whole run."""
    offered = BASE_RATE * factor * duration
    return platform.apps["web"].total_served / offered


def _run_point(
    *, factor: float, resilient: bool, duration: float
) -> dict:
    platform = _build(factor=factor, resilient=resilient)
    platform.run(duration)
    web = platform.apps["web"]
    admission = platform.admission
    shed_by_class = (
        dict(admission.shed_by_class) if admission is not None
        else {cls: 0 for cls in SHED_CLASSES}
    )
    return {
        "factor": factor,
        "resilient": resilient,
        "goodput": _goodput(platform, factor, duration),
        "violations": platform.result().violation_fraction("web"),
        "shed_total": admission.shed_total if admission else 0,
        "shed_by_class": shed_by_class,
        "evicted_running": admission.evicted_running if admission else 0,
        "brownout_duty": web.brownout_seconds / duration,
        "brownouts_entered": web.brownouts_entered,
        "events": platform.engine.events_executed,
    }


def _run_zone_outage(*, duration: float) -> dict:
    """Resilient build riding out a five-minute zone outage at 2× load."""
    platform = _build(factor=2.0, resilient=True)
    dom = ZoneOutageDomain(platform.injector, log=platform.fault_log)
    strike_at = duration / 3.0
    heal_at = strike_at + 300.0
    token: list = []

    platform.engine.schedule(strike_at, lambda: token.append(dom.strike_zone("z0")))
    platform.engine.schedule(heal_at, lambda: dom.heal(token[0]))
    platform.run(duration)
    platform.result()  # closes any danglers before the recovery report

    episode = platform.fault_log.by_kind("zone-outage")[0]
    stats = summarize(fault_recovery_report(
        platform.fault_log, platform.collector, ["web", "stream"],
        kinds=("zone-outage",),
    ))
    # Containment: the outage fails exactly one zone's worth of nodes.
    failed_peak = int(episode.detail.split("nodes=")[1].split()[0])
    return {
        "zone_nodes_failed": failed_peak,
        "pods_displaced": dom.pods_displaced,
        "mttr_s": stats.max_mttr,
        "time_to_recover_s": stats.max_reconvergence,
        "unconverged": stats.unconverged,
        "goodput": _goodput(platform, 2.0, duration),
        "events": platform.engine.events_executed,
    }


def run_case(
    *,
    duration: float = DURATION,
    factors: tuple[float, ...] = LOAD_FACTORS,
) -> dict:
    curve = {
        resilient: [
            _run_point(factor=f, resilient=resilient, duration=duration)
            for f in factors
        ]
        for resilient in (True, False)
    }
    return {
        "duration": duration,
        "factors": factors,
        "resilient": curve[True],
        "baseline": curve[False],
        "outage": _run_zone_outage(duration=duration),
    }


def check_case(case: dict) -> None:
    res, base = case["resilient"], case["baseline"]
    res_1x, res_peak = res[0], res[-1]
    base_peak = base[-1]

    # Graceful degradation: latency goodput at the peak factor stays
    # within 25 % of its 1× value when resilience is on.
    assert res_peak["goodput"] >= 0.75 * res_1x["goodput"], (
        f"resilient goodput collapsed: {res_peak['goodput']:.3f} at "
        f"{res_peak['factor']:.0f}x vs {res_1x['goodput']:.3f} at 1x"
    )
    # ... and the baseline shows the collapse the feature prevents.
    assert base_peak["goodput"] < 0.9 * res_peak["goodput"], (
        f"baseline did not collapse: {base_peak['goodput']:.3f} vs "
        f"resilient {res_peak['goodput']:.3f}"
    )
    # Shedding is priority-ordered: best-effort takes the brunt, and the
    # protected classes are never shed.
    shed = res_peak["shed_by_class"]
    assert shed["latency"] == 0 and shed["stream"] == 0, (
        f"protected classes were shed: {shed}"
    )
    assert shed["best-effort"] > 0, "overload never shed best-effort work"
    assert shed["best-effort"] >= shed["batch"], (
        f"batch shed before best-effort: {shed}"
    )
    # Under overload the web service actually used its degraded tier.
    assert res_peak["brownouts_entered"] >= 1
    assert 0.0 < res_peak["brownout_duty"] <= 1.0
    # The baseline build has none of the machinery engaged.
    assert base_peak["shed_total"] == 0
    assert base_peak["brownout_duty"] == 0.0

    outage = case["outage"]
    assert outage["zone_nodes_failed"] == NODES // ZONES, (
        f"blast radius {outage['zone_nodes_failed']} nodes is not one zone"
    )
    assert outage["mttr_s"] is not None and outage["mttr_s"] >= 300.0
    assert outage["unconverged"] == 0, "web/stream never re-converged"
    assert outage["time_to_recover_s"] is not None


def format_case(case: dict) -> list[str]:
    lines = [
        f"T10 overload resilience ({case['duration']:.0f}s per point, "
        f"factors {', '.join(f'{f:.0f}x' for f in case['factors'])})"
    ]
    for label, points in (("resilient", case["resilient"]),
                          ("baseline", case["baseline"])):
        lines.append(f"  goodput [{label}]: " + "  ".join(
            f"{p['factor']:.0f}x={p['goodput']:.3f}" for p in points))
    peak = case["resilient"][-1]
    shed = peak["shed_by_class"]
    total = max(peak["shed_total"], 1)
    lines.append(
        "  shed fraction by class @peak: " + " ".join(
            f"{cls}={shed[cls] / total:.2f}" for cls in SHED_CLASSES)
        + f" (total={peak['shed_total']}, running-evictions="
        f"{peak['evicted_running']})"
    )
    lines.append(
        f"  brownout duty @peak: {peak['brownout_duty']:.2f} "
        f"(entered {peak['brownouts_entered']}x)"
    )
    outage = case["outage"]
    lines.append(
        f"  zone outage: {outage['zone_nodes_failed']} nodes dark, "
        f"{outage['pods_displaced']} pods displaced, "
        f"mttr={outage['mttr_s']:.0f}s "
        f"time-to-recover={outage['time_to_recover_s']:.0f}s "
        f"goodput@2x={outage['goodput']:.3f}"
    )
    return lines


def test_overload(report) -> None:
    case = run_case()
    report(*format_case(case))
    check_case(case)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI-sized variant: shorter runs, 1x/4x only, same assertions",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        case = run_case(duration=900.0, factors=(1.0, 4.0))
    else:
        case = run_case()
    for line in format_case(case):
        print(line)
    check_case(case)
    print("T10 OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
