"""R-F1 — Latency timeline under diurnal + flash-crowd load, per policy.

The figure behind R-T1's headline number: p99 latency of the ``web``
service sampled every 5 minutes for each policy, so *when* each policy
violates is visible (static: whole peak; VPA: every ramp; HPA: flash
crowd only; adaptive: brief transients).
"""

import pytest

from repro.analysis.report import format_table
from benchmarks.scenarios import HOUR, build_platform, deploy_service_mix

POLICIES = ("static", "hpa", "vpa", "adaptive")
DURATION = 3 * HOUR
SAMPLE = 300.0
PLO_TARGET = 0.05


def run_policy(policy: str):
    platform = build_platform(policy, nodes=6, seed=42)
    deploy_service_mix(platform)
    platform.run(DURATION)
    series = platform.collector.series("app/web/latency")
    times, values = series.to_lists()
    samples = {}
    for t, v in zip(times, values):
        bucket = int(t // SAMPLE) * SAMPLE
        samples.setdefault(bucket, []).append(v)
    return {t: max(vs) for t, vs in sorted(samples.items())}


@pytest.mark.benchmark(group="f1-latency-timeline", min_rounds=1, max_time=1)
def test_f1_latency_timeline(benchmark, report):
    results = {}

    def experiment():
        for policy in POLICIES:
            if policy not in results:
                results[policy] = run_policy(policy)
        return results

    benchmark.pedantic(experiment, rounds=1, iterations=1)

    buckets = sorted(results["adaptive"])
    rows = []
    for t in buckets:
        rows.append([
            f"{t / 60:.0f}",
            *(f"{results[p].get(t, float('nan')) * 1000:.0f}" for p in POLICIES),
        ])
    report(
        "",
        "R-F1: worst p99 latency (ms) per 5-min bucket, web service "
        f"(target {PLO_TARGET * 1000:.0f} ms)",
        format_table(["t (min)", *POLICIES], rows),
    )

    # Shape: adaptive's worst bucket after warm-up beats static's typical
    # bucket, and the flash crowd (t≈130 min) is visible for static.
    warm = [t for t in buckets if t >= 600]
    adaptive_worst = max(results["adaptive"][t] for t in warm)
    static_peak = max(results["static"][t] for t in warm)
    benchmark.extra_info["adaptive_worst_ms"] = adaptive_worst * 1000
    assert static_peak > PLO_TARGET * 2
    # Adaptive spends most buckets under target.
    ok_buckets = sum(1 for t in warm if results["adaptive"][t] <= PLO_TARGET * 1.2)
    assert ok_buckets / len(warm) > 0.7
